#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md: paper-vs-measured for every table/figure.

Runs the full 8-kernel x 13-machine sweep and emits the comparison
document to stdout:

    python scripts/make_experiments.py [--jobs N] > EXPERIMENTS.md

The sweep goes through ``repro.pipeline``'s artifact store: warm re-runs
take seconds; a cold run takes tens of minutes serially in pure Python,
so pass ``--jobs`` (or pre-populate with ``python -m repro sweep``).
"""

from __future__ import annotations

import argparse
import math
import sys

from repro.eval.paper_data import (
    BENCHMARKS,
    PAPER_CYCLES_BASE,
    PAPER_CYCLES_REL,
    PAPER_INSTR_WIDTH,
    PAPER_PROGRAM_SIZE_REL,
    PAPER_SYNTHESIS,
)
from repro.eval.runner import run_sweep
from repro.eval.tables import ISSUE_GROUPS
from repro.fpga import synthesize
from repro.kernels import KERNELS
from repro.machine import build_machine, encode_machine, preset_names


def emit(line: str = "") -> None:
    print(line)


def rel_cycles(sweep, machine: str, baseline: str, kernel: str) -> float:
    return sweep[(machine, kernel)].cycles / sweep[(baseline, kernel)].cycles


def rel_bits(sweep, machine: str, baseline: str, kernel: str) -> float:
    return sweep[(machine, kernel)].program_bits / sweep[(baseline, kernel)].program_bits


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes for cold sweep pairs (warm pairs come "
        "from the artifact store regardless)",
    )
    args = parser.parse_args()
    sweep = run_sweep(jobs=args.jobs)

    emit("# EXPERIMENTS — paper vs. measured")
    emit()
    emit("Regenerate with `python scripts/make_experiments.py > EXPERIMENTS.md`")
    emit("(or per-artifact via `pytest benchmarks/ --benchmark-only -s` with")
    emit("`REPRO_BENCH_FULL=1`).  Absolute numbers are not expected to match")
    emit("(the substrate is a from-scratch simulator and an analytic area")
    emit("model, not the authors' Vivado/Zynq testbed and CHStone C sources —")
    emit("see DESIGN.md §3); the comparisons the paper draws are.")
    emit()
    emit("Every number below is engine-independent: the checked, fast,")
    emit("turbo and native simulation engines are bit- and cycle-exact with")
    emit("each other (enforced by the differential suites in")
    emit("tests/test_predecode.py, tests/test_blockcompile.py and")
    emit("tests/test_native.py), so results cached by one engine are valid")
    emit("for all of them.")
    emit()

    # ---- Table II -----------------------------------------------------
    emit("## Table II — instruction widths")
    emit()
    emit("| machine | paper (b) | measured (b) |")
    emit("|---|---|---|")
    for name in preset_names():
        width = encode_machine(build_machine(name)).instruction_width
        emit(f"| {name} | {PAPER_INSTR_WIDTH[name]} | {width} |")
    emit()
    emit("## Table II — program image sizes (relative to the class baseline)")
    emit()
    header = "| machine | " + " | ".join(BENCHMARKS) + " |"
    emit(header)
    emit("|" + "---|" * (len(BENCHMARKS) + 1))
    for baseline, members in ISSUE_GROUPS:
        for name in members:
            if name == baseline:
                cells = [
                    f"{sweep[(name, k)].program_bits / 1000:.0f}kb" for k in KERNELS
                ]
                emit(f"| **{name}** (abs) | " + " | ".join(cells) + " |")
                continue
            cells = []
            for kernel in KERNELS:
                ours = rel_bits(sweep, name, baseline, kernel)
                paper = PAPER_PROGRAM_SIZE_REL.get(name, {}).get(kernel)
                cells.append(f"{ours:.2f} ({paper:.2f})" if paper else f"{ours:.2f}")
            emit(f"| {name} ours (paper) | " + " | ".join(cells) + " |")
    emit()

    # ---- Table III -----------------------------------------------------
    emit("## Table III — synthesis (fmax MHz / core LUTs / RF LUTs / IC LUTs)")
    emit()
    emit("| machine | paper | measured |")
    emit("|---|---|---|")
    for name in preset_names():
        fmax_p, core_p, rf_p, _ram_p, ic_p, _ff_p = PAPER_SYNTHESIS[name]
        report = synthesize(build_machine(name))
        res = report.resources
        ic_p_text = ic_p if ic_p is not None else "—"
        ic_text = res.ic_luts if res.ic_luts else "—"
        emit(
            f"| {name} | {fmax_p} / {core_p} / {rf_p} / {ic_p_text} "
            f"| {report.fmax_mhz:.0f} / {res.core_luts} / {res.rf_luts} / {ic_text} |"
        )
    emit()

    # ---- Table IV -----------------------------------------------------
    emit("## Table IV — cycle counts (relative; ours (paper))")
    emit()
    emit(header)
    emit("|" + "---|" * (len(BENCHMARKS) + 1))
    for baseline, members in ISSUE_GROUPS:
        for name in members:
            if name == baseline:
                cells = [str(sweep[(name, k)].cycles) for k in KERNELS]
                emit(f"| **{name}** (abs) | " + " | ".join(cells) + " |")
                continue
            cells = []
            for kernel in KERNELS:
                ours = rel_cycles(sweep, name, baseline, kernel)
                paper = PAPER_CYCLES_REL.get(name, {}).get(kernel)
                cells.append(f"{ours:.2f} ({paper:.2f})" if paper else f"{ours:.2f}")
            emit(f"| {name} ours (paper) | " + " | ".join(cells) + " |")
    emit()

    # ---- Figures -------------------------------------------------------
    emit("## Figure 5 — runtime (cycles/fmax) relative to the class baseline")
    emit()
    emit(header)
    emit("|" + "---|" * (len(BENCHMARKS) + 1))
    for baseline, members in ISSUE_GROUPS:
        base_fmax = synthesize(build_machine(baseline)).fmax_mhz
        for name in members:
            fmax = synthesize(build_machine(name)).fmax_mhz
            cells = []
            for kernel in KERNELS:
                rel = rel_cycles(sweep, name, baseline, kernel) * base_fmax / fmax
                cells.append(f"{rel:.2f}")
            emit(f"| {name} vs {baseline} | " + " | ".join(cells) + " |")
    emit()

    emit("## Figure 6 — slices vs geometric-mean runtime (normalised to m-tta-1)")
    emit()

    def geomean_runtime(machine: str) -> float:
        fmax = synthesize(build_machine(machine)).fmax_mhz
        logs = [math.log(sweep[(machine, k)].cycles / fmax) for k in KERNELS]
        return math.exp(sum(logs) / len(logs))

    reference = geomean_runtime("m-tta-1")
    emit("| machine | slices (est) | runtime (rel) |")
    emit("|---|---|---|")
    for name in preset_names():
        report = synthesize(build_machine(name))
        emit(
            f"| {name} | {report.resources.slices} "
            f"| {geomean_runtime(name) / reference:.2f} |"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
