"""CI smoke test for ``repro serve``.

Starts the service exactly as a user would (``python -m repro serve``
on an ephemeral port), drives one of every request shape through the
bundled client — compile, run, repeat-run (must be a store hit),
batch run, sweep, stats — and shuts it down with SIGTERM, asserting a
clean graceful drain.

Run:  PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.serve import ServeClient  # noqa: E402


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as store_dir:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        env["REPRO_CACHE_DIR"] = store_dir
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--jobs", "2"],
            cwd=REPO, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            line = proc.stderr.readline()
            assert "serving on http://" in line, f"bad banner: {line!r}"
            port = int(line.split("http://", 1)[1].split()[0].rsplit(":", 1)[1])
            print(f"server up on port {port}")

            with ServeClient("127.0.0.1", port, timeout=600) as client:
                assert client.healthz()["status"] == "ok"
                print("healthz ok")

                compiled = client.compile("m-tta-2", kernel="mips")
                assert compiled["result"]["instruction_count"] > 0
                print(f"compile ok: {compiled['result']['instruction_count']} "
                      f"instructions")

                first = client.run("m-tta-2", kernel="mips", mode="fast")
                assert first["result"]["exit_code"] == 0
                assert first["cached"] is False
                print(f"run ok: {first['result']['cycles']} cycles "
                      f"(computed)")

                again = client.run("m-tta-2", kernel="mips", mode="fast")
                assert again["cached"] is True, "second run missed the store"
                assert again["result"] == first["result"], \
                    "cached result differs from computed result"
                print("repeat run ok: served from the artifact store, "
                      "byte-identical")

                batch = client.run("m-tta-2", kernel="mips", mode="batch",
                                   lanes=4)
                assert len(batch["results"]) == 4
                assert all(r["cycles"] == first["result"]["cycles"]
                           for r in batch["results"])
                print("batch run ok: 4 lanes, all lanes match the "
                      "fast-mode cycle count")

                swept = client.sweep(machines=["m-tta-2"],
                                     kernels=["mips", "motion"], wait=True)
                assert swept["state"] == "done"
                assert swept["result"]["stats"]["total"] == 2
                assert not swept["result"]["errors"]
                print("sweep ok: 2 pairs")

                stats = client.stats()
                dedup = stats["dedup"]
                assert dedup["cache_hits"] >= 1, dedup
                assert dedup["executed"] >= 3, dedup
                assert stats["store"]["corrupt_dropped"] == 0
                assert stats["queue"]["depth"] == 0
                print(f"stats ok: {dedup}")

            proc.send_signal(signal.SIGTERM)
            _, stderr = proc.communicate(timeout=120)
        except BaseException:
            proc.kill()
            raise
        assert proc.returncode == 0, f"exit {proc.returncode}: {stderr}"
        assert "draining..." in stderr and "drained:" in stderr, stderr
        print("graceful drain ok")
    print("serve smoke: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
