"""Ablation studies of the design choices DESIGN.md calls out.

1. **Bus-count ablation** -- the TTA's central resource dial: sweep a
   2-RF TTA from 3 to 8 buses and watch cycles fall while instruction
   width (and the IC model's LUTs) grow.  This generalises the paper's
   p-tta-2 vs bm-tta-2 comparison into a curve.
2. **TTA-freedoms ablation** -- the same datapath resources scheduled
   with the freedoms on (TTA) vs off (VLIW mode): isolates where the
   Table IV cycle advantage comes from.

Run:  pytest benchmarks/bench_ablation.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro import compile_for_machine, encode_machine, run_compiled, synthesize
from repro.isa.operations import ALU_OPS, CU_OPS, LSU_OPS, OpKind
from repro.kernels import compile_kernel
from repro.machine import Bus, FunctionUnit, Machine, RegisterFile, build_machine, validate_machine
from repro.machine.machine import MachineStyle


def _tta_with_buses(bus_count: int) -> Machine:
    alu = FunctionUnit("ALU0", OpKind.ALU, frozenset(ALU_OPS))
    lsu = FunctionUnit("LSU0", OpKind.LSU, frozenset(LSU_OPS))
    cu = FunctionUnit("CU", OpKind.CU, frozenset(CU_OPS))
    rf0 = RegisterFile("RF0", 32, 1, 1)
    rf1 = RegisterFile("RF1", 32, 1, 1)
    sources = frozenset(
        {"IMM", alu.result_port, lsu.result_port, cu.result_port,
         rf0.read_endpoint, rf1.read_endpoint}
    )
    destinations = frozenset(
        {alu.trigger_port, alu.operand_port, lsu.trigger_port, lsu.operand_port,
         cu.trigger_port, cu.operand_port, rf0.write_endpoint, rf1.write_endpoint}
    )
    machine = Machine(
        name=f"ablate-tta-{bus_count}",
        style=MachineStyle.TTA,
        issue_width=2,
        function_units=(alu, lsu),
        control_unit=cu,
        register_files=(rf0, rf1),
        buses=tuple(Bus(i, sources, destinations) for i in range(bus_count)),
        simm_bits=7,
    )
    validate_machine(machine)
    return machine


def test_bus_count_ablation(benchmark, capsys):
    module = compile_kernel("mips")

    def sweep():
        rows = []
        for buses in (3, 4, 5, 6, 8):
            machine = _tta_with_buses(buses)
            compiled = compile_for_machine(module, machine)
            result = run_compiled(compiled)
            assert result.exit_code == 0
            width = encode_machine(machine).instruction_width
            luts = synthesize(machine).resources.core_luts
            rows.append((buses, result.cycles, width, luts))
        return rows

    rows = benchmark(sweep)
    with capsys.disabled():
        print("\nbus-count ablation (kernel: mips)")
        print(f"{'buses':>5s} {'cycles':>8s} {'width':>6s} {'LUTs':>6s}")
        for buses, cycles, width, luts in rows:
            print(f"{buses:5d} {cycles:8d} {width:6d} {luts:6d}")
    cycles = [r[1] for r in rows]
    widths = [r[2] for r in rows]
    # more buses: monotonically non-increasing cycles, wider instructions
    assert all(a >= b for a, b in zip(cycles, cycles[1:]))
    assert all(a < b for a, b in zip(widths, widths[1:]))
    # diminishing returns: the 3->4 gain exceeds the 6->8 gain
    assert (cycles[0] - cycles[1]) >= (cycles[3] - cycles[4])


def _tta_with_rf_ports(reads: int, writes: int) -> Machine:
    base = build_machine("m-tta-2")
    rf = RegisterFile("RF0", 64, read_ports=reads, write_ports=writes)
    machine = Machine(
        name=f"ablate-rf-{reads}r{writes}w",
        style=MachineStyle.TTA,
        issue_width=2,
        function_units=base.function_units,
        control_unit=base.control_unit,
        register_files=(rf,),
        buses=base.buses,
        simm_bits=7,
    )
    validate_machine(machine)
    return machine


def test_rf_port_ablation(benchmark, capsys):
    """The Hoogerbrugge/Corporaal result the paper builds on: thanks to
    software bypassing, adding RF ports to a TTA buys almost nothing,
    while the analytic area model charges for every port."""
    module = compile_kernel("adpcm")

    def sweep():
        rows = []
        for reads, writes in ((1, 1), (2, 1), (2, 2), (4, 2)):
            machine = _tta_with_rf_ports(reads, writes)
            compiled = compile_for_machine(module, machine)
            result = run_compiled(compiled)
            assert result.exit_code == 0
            luts = synthesize(machine).resources.rf_luts
            rows.append((f"{reads}r{writes}w", result.cycles, luts))
        return rows

    rows = benchmark(sweep)
    with capsys.disabled():
        print("\nRF-port ablation on m-tta-2's datapath (kernel: adpcm)")
        print(f"{'ports':>6s} {'cycles':>8s} {'RF LUTs':>8s}")
        for ports, cycles, luts in rows:
            print(f"{ports:>6s} {cycles:8d} {luts:8d}")
    cycles = [r[1] for r in rows]
    luts = [r[2] for r in rows]
    # area strictly grows with ports...
    assert all(a < b for a, b in zip(luts, luts[1:]))
    # ...but the bypassing TTA gains little speed: < 10% from 1r1w to 4r2w
    assert cycles[-1] > cycles[0] * 0.90


def test_tta_freedoms_ablation(benchmark, capsys):
    """Same storage resources, freedoms on vs off (m-tta-2 vs m-vliw-2)."""
    module = compile_kernel("gsm")

    def measure():
        out = {}
        for name in ("m-vliw-2", "m-tta-2"):
            compiled = compile_for_machine(module, build_machine(name))
            result = run_compiled(compiled)
            assert result.exit_code == 0
            out[name] = result
        return out

    results = benchmark(measure)
    tta = results["m-tta-2"]
    vliw = results["m-vliw-2"]
    with capsys.disabled():
        print("\nTTA-freedoms ablation (kernel: gsm)")
        print(f"  operation-triggered (m-vliw-2): {vliw.cycles} cycles")
        print(f"  exposed datapath   (m-tta-2)  : {tta.cycles} cycles "
              f"({vliw.cycles / tta.cycles:.2f}x)")
        print(f"  software bypasses: {tta.bypass_reads}, RF writes: {tta.rf_writes}, "
              f"triggers: {tta.triggers}")
    assert tta.cycles < vliw.cycles
    assert tta.bypass_reads > 0
    # dead-result elimination: fewer RF writes than executed operations
    assert tta.rf_writes < tta.triggers
