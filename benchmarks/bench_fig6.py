"""Regenerates Figure 6: slice utilisation vs overall execution time.

Run:  pytest benchmarks/bench_fig6.py --benchmark-only -s
"""

from __future__ import annotations

from repro.eval import figure6


def test_figure6(benchmark, kernels, capsys):
    points = benchmark(figure6, kernels)
    with capsys.disabled():
        print()
        print("Figure 6: slices vs geomean runtime (normalised to m-tta-1)")
        for machine, point in sorted(points.items(), key=lambda kv: kv[1]["slices"]):
            bar = "*" * int(point["runtime"] * 20)
            print(f"  {machine:10s} slices={point['slices']:6.0f} runtime={point['runtime']:5.2f} {bar}")
    # paper shape: 1-/2-issue TTAs give the best performance/area corner;
    # the 2-issue TTA strictly dominates the 2-issue monolithic VLIW.
    assert points["m-tta-2"]["runtime"] < points["m-vliw-2"]["runtime"]
    assert points["m-tta-2"]["slices"] < points["m-vliw-2"]["slices"]
    assert points["m-vliw-3"]["slices"] == max(p["slices"] for p in points.values())


def test_perf_per_area_ranking(benchmark, kernels, capsys):
    """Ablation view of Fig. 6: rank by 1/(runtime x slices)."""

    def ranking():
        points = figure6(kernels)
        scored = {
            name: 1.0 / (p["runtime"] * p["slices"]) for name, p in points.items()
        }
        return sorted(scored, key=scored.get, reverse=True)

    order = benchmark(ranking)
    with capsys.disabled():
        print("\nperformance/area ranking:", " > ".join(order[:5]), "...")
    # TTA design points populate the efficiency frontier: at least one in
    # the top three, and every TTA beats its same-issue VLIW counterpart.
    assert any("tta" in name for name in order[:3])
    assert order.index("m-tta-2") < order.index("m-vliw-2")
    assert order.index("m-tta-3") < order.index("m-vliw-3")
