"""Sweep pipeline benchmark: cold-serial vs cold-parallel vs warm-cache.

Runs the paper's (machine, kernel) evaluation matrix three ways through
``repro.pipeline.sweep`` against a throwaway artifact store:

* **cold serial** -- empty store, ``jobs=1`` (the pre-pipeline baseline);
* **cold parallel** -- empty store, one worker per CPU;
* **warm cache** -- fully populated store, ``jobs=1``.

Asserts that all three produce byte-identical ``EvalResult`` sets and
(in full mode) that the warm sweep beats cold-serial by at least the
10x floor the pipeline was built to deliver.  The parallel speedup is
reported but not asserted -- it tracks the runner's core count.

Run:  pytest benchmarks/bench_sweep.py -s
      (REPRO_BENCH_FULL=1 sweeps all 8 kernels over all 13 machines)

Smoke mode (for CI):  REPRO_BENCH_SMOKE=1 pytest benchmarks/bench_sweep.py -s
runs 1 machine x 2 kernels with jobs=2 and skips the hard speedup floor
(shared CI runners have too much timing noise for a ratio assert).
"""

from __future__ import annotations

import json
import os
import time

from repro.pipeline import ArtifactStore, sweep

#: minimum warm-cache speedup over cold-serial required in full runs
WARM_SPEEDUP_FLOOR = 10.0


def _smoke() -> bool:
    return bool(os.environ.get("REPRO_BENCH_SMOKE"))


def _matrix(kernels) -> tuple[tuple[str, ...] | None, tuple[str, ...]]:
    if _smoke():
        return ("m-tta-2",), ("mips", "motion")
    return None, kernels  # None = all 13 design points


def _result_bytes(outcome) -> bytes:
    return json.dumps(
        [r.to_dict() for r in outcome.results.values()], sort_keys=True
    ).encode()


def test_sweep_pipeline(kernels, tmp_path, capsys):
    machines, bench_kernels = _matrix(kernels)
    jobs = 2 if _smoke() else max(2, os.cpu_count() or 1)
    store = ArtifactStore(tmp_path / "artifacts")

    def timed(**kwargs):
        start = time.perf_counter()
        outcome = sweep(machines=machines, kernels=bench_kernels,
                        store=store, **kwargs)
        elapsed = time.perf_counter() - start
        assert outcome.ok, outcome.errors
        return outcome, elapsed

    cold_serial, t_serial = timed(jobs=1)
    store.clear()
    cold_parallel, t_parallel = timed(jobs=jobs)
    warm, t_warm = timed(jobs=1)

    # all three paths must agree byte-for-byte
    assert _result_bytes(cold_parallel) == _result_bytes(cold_serial)
    assert _result_bytes(warm) == _result_bytes(cold_serial)
    assert warm.stats.cache_hits == warm.stats.total

    pairs = cold_serial.stats.total
    with capsys.disabled():
        print()
        print(f"sweep matrix: {pairs} pairs, jobs={jobs}")
        print(f"{'configuration':15s} {'wall':>9s} {'pairs/s':>9s} {'speedup':>8s}")
        for label, elapsed in (
            ("cold serial", t_serial),
            ("cold parallel", t_parallel),
            ("warm cache", t_warm),
        ):
            print(
                f"{label:15s} {elapsed:8.2f}s {pairs / elapsed:9.1f} "
                f"{t_serial / elapsed:7.1f}x"
            )

    if _smoke():
        # CI: correctness + the cache actually being exercised is the
        # signal; shared-runner timing is too noisy for a hard ratio.
        assert t_warm < t_serial
    else:
        warm_speedup = t_serial / t_warm
        assert warm_speedup >= WARM_SPEEDUP_FLOOR, (
            f"warm-cache sweep only {warm_speedup:.1f}x faster than "
            f"cold-serial (target {WARM_SPEEDUP_FLOOR}x)"
        )
