"""Regenerates Table III: FPGA resource usage and maximum frequency.

Run:  pytest benchmarks/bench_table3.py --benchmark-only -s
"""

from __future__ import annotations

from repro.eval import format_table, table3


def test_table3(benchmark, capsys):
    rows = benchmark(table3)
    with capsys.disabled():
        print()
        print(format_table(rows, "Table III: FPGA resources and fmax"))
    by_name = {r["machine"]: r for r in rows}
    # paper shape: the monolithic VLIW RFs dominate everything
    assert by_name["m-vliw-3"]["rf_luts"] > 9 * by_name["p-tta-3"]["rf_luts"]
    assert by_name["m-vliw-2"]["fmax_mhz"] < by_name["m-tta-2"]["fmax_mhz"]
    assert by_name["m-tta-2"]["core_rel"] < 0.85
