"""Regenerates Table II: instruction widths and program image sizes.

Run:  pytest benchmarks/bench_table2.py --benchmark-only -s
"""

from __future__ import annotations

from repro.eval import format_table, table2


def test_table2(benchmark, kernels, capsys):
    rows = benchmark(table2, kernels)
    with capsys.disabled():
        print()
        print(format_table(rows, "Table II: instruction widths and program image sizes"))
    # paper shape: monolithic TTA images are larger than the VLIW's but
    # far less than the raw width ratio suggests
    by_name = {r["machine"]: r for r in rows}
    for kernel in kernels:
        assert by_name["m-tta-2"][kernel] > 1.0
        assert by_name["m-tta-2"][kernel] < by_name["m-tta-2"]["instr_width_rel"] + 0.35
