"""Benchmark configuration.

The benchmarks regenerate every table and figure of the paper.  The full
8-kernel x 13-machine sweep takes tens of minutes in pure Python, so by
default the benchmarks run on a representative 4-kernel subset; set
``REPRO_BENCH_FULL=1`` to sweep all eight CHStone-like kernels (this is
what EXPERIMENTS.md reports).
"""

from __future__ import annotations

import os

import pytest

from repro.kernels import KERNELS

#: fast, algorithm-diverse subset for default benchmark runs
FAST_KERNELS = ("adpcm", "gsm", "mips", "motion")


def bench_kernels() -> tuple[str, ...]:
    if os.environ.get("REPRO_BENCH_FULL"):
        return KERNELS
    return FAST_KERNELS


@pytest.fixture(scope="session")
def kernels():
    return bench_kernels()
