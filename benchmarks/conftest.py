"""Benchmark configuration.

The benchmarks regenerate every table and figure of the paper.  The full
8-kernel x 13-machine sweep takes tens of minutes in pure Python when
cold, so by default the benchmarks run on a representative 4-kernel
subset; set ``REPRO_BENCH_FULL=1`` to sweep all eight CHStone-like
kernels (this is what EXPERIMENTS.md reports).

All table/figure benchmarks consume the sweep through
``repro.pipeline``'s content-addressed artifact store: a warm store
(e.g. from a previous benchmark run or a restored CI cache) makes them
near-instant, and ``repro sweep --jobs N`` can pre-populate it in
parallel.  The session prints the store traffic at the end; run with
``REPRO_NO_CACHE=1`` to force every measurement to recompute.
"""

from __future__ import annotations

import os

import pytest

from repro.kernels import KERNELS

#: fast, algorithm-diverse subset for default benchmark runs
FAST_KERNELS = ("adpcm", "gsm", "mips", "motion")


def bench_kernels() -> tuple[str, ...]:
    if os.environ.get("REPRO_BENCH_FULL"):
        return KERNELS
    return FAST_KERNELS


@pytest.fixture(scope="session")
def kernels():
    return bench_kernels()


@pytest.fixture(scope="session", autouse=True)
def artifact_store_traffic():
    """Report how much of the benchmark sweep came from the disk cache."""
    from repro.pipeline import default_store

    yield
    store = default_store()
    if store is None:
        print("\n[artifact store] disabled (REPRO_NO_CACHE)")
        return
    stats = store.stats
    if stats.hits or stats.misses or stats.writes:
        print(
            f"\n[artifact store] {store.root}: {stats.hits} hits, "
            f"{stats.misses} misses, {stats.writes} writes, "
            f"{stats.corrupt_dropped} corrupt entries rebuilt"
        )
