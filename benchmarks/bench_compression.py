"""Instruction-compression study (the paper's future-work extension).

Compresses every machine's program image for a kernel with the
dictionary schemes of `repro.compress` and reports how much of the
TTA's program-size drawback (Table II) compression recovers.

Run:  pytest benchmarks/bench_compression.py --benchmark-only -s
"""

from __future__ import annotations

from repro import build_machine, compile_for_machine
from repro.compress import compress_program, per_slot_compression
from repro.kernels import compile_kernel
from repro.machine import encode_machine, preset_names


def test_compression_recovers_tta_size(benchmark, capsys):
    module = compile_kernel("motion")

    def sweep():
        rows = []
        for name in preset_names():
            machine = build_machine(name)
            compiled = compile_for_machine(module, machine)
            program = compiled.program
            width = encode_machine(machine).instruction_width
            raw = compiled.instruction_count * width
            full = compress_program(program)
            slot = per_slot_compression(program)
            rows.append((name, raw, full, slot))
        return rows

    rows = benchmark(sweep)
    with capsys.disabled():
        print("\ninstruction compression (kernel: motion; sizes in kbit)")
        print(f"{'machine':10s} {'raw':>7s} {'full-dict':>10s} {'per-slot':>9s}  ratios")
        for name, raw, full, slot in rows:
            print(
                f"{name:10s} {raw / 1000:7.1f} {full.total_bits / 1000:10.1f} "
                f"{slot.total_bits / 1000:9.1f}  {full.ratio:.2f} / {slot.ratio:.2f}"
            )
    by_name = {r[0]: r for r in rows}
    raw_tta = by_name["m-tta-2"][1]
    raw_vliw = by_name["m-vliw-2"][1]
    best_tta = min(by_name["m-tta-2"][2].total_bits, by_name["m-tta-2"][3].total_bits)
    # compression is lossless and must actually help the wide TTA words
    assert best_tta < raw_tta
    # the paper's conjecture: compressed TTA images become competitive
    # with (here: no worse than ~1.1x) the uncompressed VLIW image
    assert best_tta < raw_vliw * 1.1
