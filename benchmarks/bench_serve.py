"""Service benchmark: closed-loop load against ``repro serve``.

Drives a live server (spawned as a subprocess, exactly as a user would
run it) with concurrent closed-loop clients and reports three things the
service was built to deliver:

* **warm vs cold latency** — the first request of each distinct job pays
  the full compile+simulate cost; repeats are artifact-store hits, so
  the warm p50 should sit orders of magnitude under the cold mean;
* **dedup effectiveness** — N concurrent clients all requesting the same
  (machine, kernel, mode) coalesce onto one pipeline execution; the
  ``/v1/stats`` counters prove how many executions the store and the
  in-flight map absorbed;
* **sustained request throughput** — total requests served per wall
  second across the run, plus the server-side per-endpoint percentiles.

Asserts correctness invariants (every response identical to the first
cold result; executed counts match the distinct-job count), not timing
floors — shared runners are too noisy for ratio asserts in smoke mode.

Run:  python benchmarks/bench_serve.py [--smoke] [--json [PATH]]
      (--smoke shrinks the matrix and client count for CI)
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # standalone `python benchmarks/...` without PYTHONPATH
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.serve import ServeClient

#: (machine, kernel) jobs driven through the server
FULL_JOBS = (
    ("m-tta-2", "mips"),
    ("m-tta-2", "motion"),
    ("m-vliw-2", "mips"),
    ("mblaze-3", "gsm"),
)
SMOKE_JOBS = (("m-tta-2", "mips"),)

#: concurrent closed-loop clients in the dedup phase
FULL_CLIENTS = 8
SMOKE_CLIENTS = 4

#: warm-phase requests per client
FULL_WARM_REQUESTS = 50
SMOKE_WARM_REQUESTS = 10


def bench_start_server(store_dir: str, jobs: int) -> tuple[subprocess.Popen, int]:
    """Spawn ``repro serve --port 0`` and return (process, bound port)."""
    repo = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo / "src")
    env["REPRO_CACHE_DIR"] = store_dir
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--jobs", str(jobs)],
        cwd=repo, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    line = proc.stderr.readline()
    if "serving on http://" not in line:
        proc.kill()
        raise RuntimeError(f"server failed to start: {line!r}")
    port = int(line.split("http://", 1)[1].split()[0].rsplit(":", 1)[1])
    return proc, port


def bench_dedup_storm(port: int, machine: str, kernel: str,
                      clients: int) -> dict:
    """All clients request the identical *cold* job at once; exactly one
    pipeline execution must absorb the whole storm (the rest coalesce
    in-flight or hit the store just after the winner finishes)."""
    barrier = threading.Barrier(clients)
    results: list[dict] = [None] * clients
    latencies: list[float] = [0.0] * clients

    def worker(slot: int) -> None:
        with ServeClient("127.0.0.1", port, timeout=600) as client:
            barrier.wait()
            start = time.perf_counter()
            results[slot] = client.run(machine, kernel=kernel, mode="turbo")
            latencies[slot] = time.perf_counter() - start

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(clients)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start

    reference = results[0]["result"]
    for got in results[1:]:
        assert got["result"] == reference, "dedup changed a response payload"
    return {
        "clients": clients,
        "wall_s": round(elapsed, 3),
        "mean_latency_s": round(sum(latencies) / clients, 3),
        "max_latency_s": round(max(latencies), 3),
        "cycles": reference["cycles"],
    }


def bench_warm_loop(port: int, jobs, requests_per_client: int,
                    clients: int) -> dict:
    """Closed-loop warm-cache load: every request is a store hit."""
    latencies: list[list[float]] = [[] for _ in range(clients)]

    def worker(slot: int) -> None:
        with ServeClient("127.0.0.1", port, timeout=600) as client:
            for i in range(requests_per_client):
                machine, kernel = jobs[(slot + i) % len(jobs)]
                start = time.perf_counter()
                got = client.run(machine, kernel=kernel, mode="fast")
                latencies[slot].append(time.perf_counter() - start)
                assert got["cached"] is True, "warm request missed the store"

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(clients)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    flat = sorted(lat for per in latencies for lat in per)
    total = len(flat)
    return {
        "requests": total,
        "wall_s": round(elapsed, 3),
        "throughput_rps": round(total / elapsed, 1),
        "p50_ms": round(flat[total // 2] * 1e3, 3),
        "p99_ms": round(flat[min(total - 1, total * 99 // 100)] * 1e3, 3),
        "max_ms": round(flat[-1] * 1e3, 3),
    }


def run_benchmark(smoke: bool) -> dict:
    jobs = SMOKE_JOBS if smoke else FULL_JOBS
    clients = SMOKE_CLIENTS if smoke else FULL_CLIENTS
    warm_requests = SMOKE_WARM_REQUESTS if smoke else FULL_WARM_REQUESTS

    doc: dict = {"smoke": smoke, "jobs": [f"{m}/{k}" for m, k in jobs]}
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as store_dir:
        proc, port = bench_start_server(store_dir, jobs=2)
        try:
            with ServeClient("127.0.0.1", port) as client:
                assert client.healthz()["status"] == "ok"

            # phase 1: cold, sequential -- the baseline cost of each job
            cold = {}
            with ServeClient("127.0.0.1", port, timeout=600) as client:
                for machine, kernel in jobs:
                    start = time.perf_counter()
                    got = client.run(machine, kernel=kernel, mode="fast")
                    cold[f"{machine}/{kernel}"] = {
                        "latency_s": round(time.perf_counter() - start, 3),
                        "cycles": got["result"]["cycles"],
                        "cached": got["cached"],
                    }
                    assert got["cached"] is False
            doc["cold"] = cold

            # phase 2: dedup storm on a job the store has NOT seen
            # (turbo mode keys differently from the fast-mode phase 1)
            storm_machine, storm_kernel = jobs[0]
            with ServeClient("127.0.0.1", port, timeout=600) as client:
                stats_before = client.stats()["dedup"]
            doc["dedup_storm"] = bench_dedup_storm(
                port, storm_machine, storm_kernel, clients
            )
            with ServeClient("127.0.0.1", port, timeout=600) as client:
                stats_after = client.stats()["dedup"]
            absorbed = {
                "executed_delta":
                    stats_after["executed"] - stats_before["executed"],
                "coalesced_delta":
                    stats_after["coalesced"] - stats_before["coalesced"],
                "cache_hits_delta":
                    stats_after["cache_hits"] - stats_before["cache_hits"],
            }
            # the acceptance contract: N identical concurrent requests,
            # ONE pipeline execution; the rest coalesce in-flight or hit
            # the store entry the winner just wrote
            assert absorbed["executed_delta"] == 1, absorbed
            assert (absorbed["cache_hits_delta"]
                    + absorbed["coalesced_delta"]) == clients - 1, absorbed
            doc["dedup_storm"]["absorbed"] = absorbed

            # phase 3: warm closed loop
            doc["warm"] = bench_warm_loop(port, jobs, warm_requests, clients)

            # server-side view
            with ServeClient("127.0.0.1", port) as client:
                server_stats = client.stats()
            doc["server"] = {
                "dedup": server_stats["dedup"],
                "run_endpoint": server_stats["endpoints"].get("POST /v1/run"),
                "store": {
                    k: server_stats["store"][k]
                    for k in ("hits", "misses", "corrupt_dropped")
                },
            }
            # phase 1 executed each job once; the storm added exactly one
            assert server_stats["dedup"]["executed"] == len(jobs) + 1
        finally:
            proc.send_signal(signal.SIGTERM)
            try:
                _, stderr = proc.communicate(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                _, stderr = proc.communicate()
        doc["drained_cleanly"] = ("drained:" in stderr
                                  and proc.returncode == 0)
        assert doc["drained_cleanly"], stderr
    return doc


def format_report(doc: dict) -> str:
    lines = [f"serve benchmark ({'smoke' if doc['smoke'] else 'full'})", ""]
    lines.append(f"{'job':20s} {'cold':>10s}")
    for name, row in doc["cold"].items():
        lines.append(f"{name:20s} {row['latency_s']:8.3f}s")
    storm = doc["dedup_storm"]
    lines.append("")
    lines.append(
        f"dedup storm: {storm['clients']} concurrent identical requests "
        f"in {storm['wall_s']}s (mean {storm['mean_latency_s']}s) -- "
        f"executed {storm['absorbed']['executed_delta']} pipeline job(s)"
    )
    warm = doc["warm"]
    lines.append(
        f"warm loop:   {warm['requests']} requests in {warm['wall_s']}s "
        f"({warm['throughput_rps']} req/s; p50 {warm['p50_ms']}ms, "
        f"p99 {warm['p99_ms']}ms)"
    )
    lines.append(f"graceful drain: {'ok' if doc['drained_cleanly'] else 'FAILED'}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="closed-loop load benchmark for the repro service"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: 1 job, 4 clients")
    parser.add_argument("--json", nargs="?", const="BENCH_serve.json",
                        default=None, metavar="PATH",
                        help="write machine-readable results "
                        "(default BENCH_serve.json)")
    args = parser.parse_args(argv)
    doc = run_benchmark(smoke=args.smoke or bool(os.environ.get("REPRO_BENCH_SMOKE")))
    print(format_report(doc))
    if args.json:
        Path(args.json).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
