"""Regenerates Figure 5: expected runtimes at achieved max frequencies.

Run:  pytest benchmarks/bench_fig5.py --benchmark-only -s
"""

from __future__ import annotations

from repro.eval import figure5


def test_figure5(benchmark, kernels, capsys):
    panels = benchmark(figure5, kernels)
    with capsys.disabled():
        print()
        print("Figure 5: runtimes (cycles/fmax) normalised per issue class")
        for baseline, panel in panels.items():
            print(f"  normalised to {baseline}:")
            for machine, series in panel.items():
                bars = "  ".join(f"{k}={v:5.2f}" for k, v in series.items())
                print(f"    {machine:10s} {bars}")
    # paper shape: every TTA runtime beats its same-issue VLIW baseline
    for kernel in kernels:
        assert panels["m-vliw-2"]["m-tta-2"][kernel] < 1.0
        assert panels["m-vliw-3"]["m-tta-3"][kernel] < 1.0
    # and the single-issue TTA beats the baseline MicroBlaze on wall
    # clock (the paper also beats mblaze-5, but most of that margin came
    # from TCE's LLVM out-optimising MicroBlaze's GCC; our flow shares
    # one compiler, so we assert the compiler-neutral part of the claim
    # -- see EXPERIMENTS.md)
    mtta1 = sum(panels["mblaze-3"]["m-tta-1"].values()) / len(kernels)
    assert mtta1 < 1.0
