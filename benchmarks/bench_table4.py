"""Regenerates Table IV: instruction cycle counts.

Run:  pytest benchmarks/bench_table4.py --benchmark-only -s
"""

from __future__ import annotations

from repro.eval import format_table, table4


def test_table4(benchmark, kernels, capsys):
    rows = benchmark(table4, kernels)
    with capsys.disabled():
        print()
        print(format_table(rows, "Table IV: cycle counts"))
    by_name = {r["machine"]: r for r in rows}
    for kernel in kernels:
        # the TTA programming freedoms must win cycles at equal issue width
        assert by_name["m-tta-2"][kernel] < 1.0, kernel
        assert by_name["m-tta-3"][kernel] < 1.0, kernel
        # the split-RF VLIW stays within a few percent of the monolithic
        assert by_name["p-vliw-2"][kernel] < 1.25, kernel
