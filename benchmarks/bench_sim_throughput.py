"""Simulator throughput: checked vs fast vs turbo vs native engines.

Reports simulated MIPS (million simulated cycles per wall second) for the
Table IV workloads in all four single-run execution modes, asserting
bit-exact agreement on every architectural statistic along the way (the
differential tests in ``tests/test_predecode.py``,
``tests/test_blockcompile.py`` and ``tests/test_native.py`` enforce the
same property exhaustively).

Two entry points:

* ``pytest benchmarks/bench_sim_throughput.py -s`` — the historical
  benchmark-as-test: prints the table and asserts the engine speedup
  floors (fast >= 3x over checked; turbo >= 3x over fast and native
  >= 3x over turbo on at least one TTA and one VLIW design point).
  Native is timed with a warm compiled-object cache — the warm-up run
  pays the one-time C compile (or pulls the shared object from the
  artifact store) before the clock starts, matching the sweep/service
  steady state.  Without a C compiler on PATH the native column degrades
  to turbo and its floor is skipped.
  Smoke mode for CI: ``REPRO_BENCH_SMOKE=1`` shrinks the matrix and
  skips the hard ratio asserts (shared runners have too much timing
  noise).

* ``python benchmarks/bench_sim_throughput.py [--smoke] [--json [PATH]]``
  — standalone runner; ``--json`` writes the machine-readable results
  (default ``BENCH_sim.json`` next to this file's repo root) so the
  measured ratios are versioned alongside the code that produced them.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import asdict
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # standalone `python benchmarks/...` without PYTHONPATH
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import build_machine, compile_for_machine, compile_source, obs
from repro.kernels import KERNELS, kernel_source
from repro.sim import run_batch, run_compiled

#: Table IV design points exercised by the throughput comparison.
MACHINES = ("m-tta-2", "m-vliw-2")

#: engines compared, slowest first
ENGINES = ("checked", "fast", "turbo", "native")

#: lanes per batched run; the sweep/fuzz use case re-runs one decoded
#: program across many evaluations, which the batch tier dedups and
#: amortises into a single decoded execution
BATCH_LANES = 32

#: minimum aggregate simulated-MIPS ratio of the batch tier over turbo
#: at BATCH_LANES lanes (matrix aggregate, not best row)
BATCH_FLOOR = 5.0

#: minimum fast/checked speedup required on at least one workload
SPEEDUP_FLOOR = 3.0

#: minimum turbo/fast speedup required on at least one workload per style
TURBO_FLOOR = 3.0

#: minimum native/turbo speedup required on at least one workload per
#: style, with a warm compiled-object cache (the ISSUE acceptance floor)
NATIVE_FLOOR = 3.0

#: maximum tracing overhead on the fast engine (enabled-tracer wall time
#: over untraced wall time, best row): the observability layer never
#: reaches into a per-cycle loop, so tracing a run costs one span plus a
#: handful of post-run counter folds regardless of cycle count.
TRACE_OVERHEAD_CEILING = 1.02  # < 2%

#: kernels used when --smoke / REPRO_BENCH_SMOKE trims the matrix
SMOKE_KERNELS = ("mips",)


def _smoke_env() -> bool:
    return bool(os.environ.get("REPRO_BENCH_SMOKE"))


def _native_available() -> bool:
    from repro.sim import native

    return native.find_compiler() is not None


def _time_mode(compiled, mode: str):
    start = time.perf_counter()
    result = run_compiled(compiled, mode=mode)
    elapsed = time.perf_counter() - start
    return result, elapsed


def _time_mode_traced(compiled, mode: str):
    """Like :func:`_time_mode` but with a tracer enabled for the run.

    Returns ``(result, elapsed, payload)``; the tracer is installed
    *outside* the timed region's interpretation of fairness — enabling
    it is part of what we are measuring, so the enable/disable pair sits
    inside the timer just as a ``--trace`` CLI run would pay it.
    """
    start = time.perf_counter()
    with obs.tracing() as tracer:
        result = run_compiled(compiled, mode=mode)
    elapsed = time.perf_counter() - start
    return result, elapsed, tracer.to_payload()


def measure(machines, kernels):
    """Run every machine x kernel in all three modes.

    Returns a list of row dicts; raises AssertionError if any engine
    disagrees with the checked reference on any statistic.
    """
    rows = []
    for machine_name in machines:
        machine = build_machine(machine_name)
        for kernel in kernels:
            compiled = compile_for_machine(
                compile_source(kernel_source(kernel)), machine
            )
            # Warm the per-program caches (structural verification, static
            # decode, compiled block code, the native shared object — the
            # one-time C compile or store fetch happens here) before
            # timing: the sweep use case simulates each program many
            # times, so steady-state throughput is the relevant number.
            # Checked has no caches.
            run_compiled(compiled, mode="turbo")
            run_compiled(compiled, mode="native")
            results, seconds = {}, {}
            for mode in ENGINES:
                results[mode], seconds[mode] = _time_mode(compiled, mode)
            reference = asdict(results["checked"])
            for mode in ENGINES[1:]:
                assert asdict(results[mode]) == reference, (
                    machine_name, kernel, mode,
                )
            assert results["checked"].exit_code == 0, (machine_name, kernel)
            # Traced-vs-untraced on the fast engine: best-of-3 each side
            # (single runs are noise-dominated at these durations).  The
            # traced run must stay byte-identical on every statistic —
            # the observability layer derives its counters from the
            # statistics the engine already computed, after the run.
            untraced_best = seconds["fast"]
            traced_best = float("inf")
            for _ in range(3):
                _, elapsed = _time_mode(compiled, "fast")
                untraced_best = min(untraced_best, elapsed)
                traced_result, elapsed, payload = _time_mode_traced(compiled, "fast")
                traced_best = min(traced_best, elapsed)
                assert asdict(traced_result) == reference, (machine_name, kernel)
                assert payload["counters"]["sim.cycles"] == traced_result.cycles
            cycles = results["checked"].cycles
            # Batched tier: N independent runs of the decoded program at
            # once (the sweep shape: identical lanes dedup onto one
            # decoded execution).  Aggregate MIPS counts every lane's
            # simulated cycles; every lane must stay byte-identical to
            # the checked reference.
            start = time.perf_counter()
            batch_results = run_batch(compiled, lanes=BATCH_LANES)
            batch_seconds = time.perf_counter() - start
            for lane, lane_result in enumerate(batch_results):
                assert asdict(lane_result) == reference, (
                    machine_name, kernel, "batch", lane,
                )
            rows.append(
                {
                    "machine": machine_name,
                    "style": machine.style.value,
                    "kernel": kernel,
                    "cycles": cycles,
                    "seconds": {m: seconds[m] for m in ENGINES},
                    "mips": {
                        m: cycles / seconds[m] / 1e6 if seconds[m] > 0 else 0.0
                        for m in ENGINES
                    },
                    "speedup": {
                        "fast_vs_checked": seconds["checked"] / seconds["fast"],
                        "turbo_vs_fast": seconds["fast"] / seconds["turbo"],
                        "turbo_vs_checked": seconds["checked"] / seconds["turbo"],
                        "native_vs_turbo": seconds["turbo"] / seconds["native"],
                    },
                    "batch": {
                        "lanes": BATCH_LANES,
                        "seconds": batch_seconds,
                        "mips_aggregate": (
                            cycles * BATCH_LANES / batch_seconds / 1e6
                            if batch_seconds > 0
                            else 0.0
                        ),
                        "vs_turbo": (
                            seconds["turbo"] * BATCH_LANES / batch_seconds
                            if batch_seconds > 0
                            else 0.0
                        ),
                    },
                    "trace_overhead": traced_best / untraced_best,
                }
            )
    return rows


def batch_aggregate_ratio(rows) -> float:
    """Matrix-aggregate MIPS ratio of the batch tier over turbo.

    Total simulated cycles (every lane counts) per total wall second,
    batch vs turbo -- the number the ROADMAP's >=5x target refers to.
    """
    batch_cycles = sum(row["cycles"] * row["batch"]["lanes"] for row in rows)
    batch_seconds = sum(row["batch"]["seconds"] for row in rows)
    turbo_cycles = sum(row["cycles"] for row in rows)
    turbo_seconds = sum(row["seconds"]["turbo"] for row in rows)
    if batch_seconds <= 0 or turbo_seconds <= 0:
        return 0.0
    return (batch_cycles / batch_seconds) / (turbo_cycles / turbo_seconds)


def best_per_style(rows, ratio: str) -> dict[str, float]:
    best: dict[str, float] = {}
    for row in rows:
        style = row["style"]
        best[style] = max(best.get(style, 0.0), row["speedup"][ratio])
    return best


def format_table(rows) -> str:
    lines = [
        f"{'machine':10s} {'kernel':10s} {'cycles':>10s} "
        f"{'checked':>9s} {'fast':>9s} {'turbo':>9s} {'native':>9s} "
        f"{'batch@' + str(BATCH_LANES):>10s} "
        f"{'fast/chk':>9s} {'turbo/fast':>11s} {'native/turbo':>13s} "
        f"{'batch/turbo':>12s} {'traced':>8s}"
    ]
    for row in rows:
        mips = row["mips"]
        speedup = row["speedup"]
        batch = row["batch"]
        overhead_pct = (row["trace_overhead"] - 1.0) * 100.0
        lines.append(
            f"{row['machine']:10s} {row['kernel']:10s} {row['cycles']:10d} "
            f"{mips['checked']:8.2f}M {mips['fast']:8.2f}M {mips['turbo']:8.2f}M "
            f"{mips['native']:8.2f}M "
            f"{batch['mips_aggregate']:9.2f}M "
            f"{speedup['fast_vs_checked']:8.1f}x {speedup['turbo_vs_fast']:10.1f}x "
            f"{speedup['native_vs_turbo']:12.1f}x "
            f"{batch['vs_turbo']:11.1f}x "
            f"{overhead_pct:+6.1f}%"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# pytest entry point
# ---------------------------------------------------------------------------


def test_sim_throughput(kernels, capsys):
    smoke = _smoke_env()
    machines = MACHINES
    bench_kernels = SMOKE_KERNELS if smoke else kernels
    rows = measure(machines, bench_kernels)
    with capsys.disabled():
        print()
        print(format_table(rows))
    if smoke:
        # CI smoke run: correctness only; timing on shared runners is noise.
        assert all(row["speedup"]["fast_vs_checked"] > 0 for row in rows)
        return
    # Tracing overhead: the best row must stay under the ceiling (every
    # row would be ideal, but co-tenants perturb the worst case; the best
    # row is what the design guarantees — no per-cycle instrumentation).
    overhead_best = min(row["trace_overhead"] for row in rows)
    assert overhead_best <= TRACE_OVERHEAD_CEILING, (
        f"tracing cost {(overhead_best - 1) * 100:.1f}% on the *best* row "
        f"(ceiling {(TRACE_OVERHEAD_CEILING - 1) * 100:.0f}%): instrumentation "
        f"has leaked into a per-cycle path"
    )
    fast_best = max(row["speedup"]["fast_vs_checked"] for row in rows)
    assert fast_best >= SPEEDUP_FLOOR, (
        f"fast engine only reached {fast_best:.1f}x over the checked "
        f"reference (target {SPEEDUP_FLOOR}x)"
    )
    turbo_best = best_per_style(rows, "turbo_vs_fast")
    for style in ("tta", "vliw"):
        assert turbo_best.get(style, 0.0) >= TURBO_FLOOR, (
            f"turbo engine only reached {turbo_best.get(style, 0.0):.1f}x over "
            f"fast on the best {style} point (target {TURBO_FLOOR}x)"
        )
    if _native_available():
        native_best = best_per_style(rows, "native_vs_turbo")
        for style in ("tta", "vliw"):
            assert native_best.get(style, 0.0) >= NATIVE_FLOOR, (
                f"native engine only reached {native_best.get(style, 0.0):.1f}x "
                f"over turbo on the best {style} point (target {NATIVE_FLOOR}x, "
                f"warm compiled-object cache)"
            )
    batch_ratio = batch_aggregate_ratio(rows)
    assert batch_ratio >= BATCH_FLOOR, (
        f"batch tier only reached {batch_ratio:.1f}x aggregate MIPS over "
        f"turbo at N={BATCH_LANES} (target {BATCH_FLOOR}x)"
    )


def test_smoke_covers_both_styles(kernels):
    """Touch every engine on both styles cheaply so CI exercises the full
    engine matrix end to end even when the main benchmark is trimmed."""
    if not _smoke_env():
        import pytest

        pytest.skip("only exercised in smoke mode")
    kernel = "mips"
    for machine_name in MACHINES:
        compiled = compile_for_machine(
            compile_source(kernel_source(kernel)), build_machine(machine_name)
        )
        reference = asdict(run_compiled(compiled, mode="checked"))
        # native degrades to turbo without a C compiler; both ways the
        # result must stay byte-identical to the checked reference
        for mode in ("fast", "turbo", "native"):
            assert asdict(run_compiled(compiled, mode=mode)) == reference, (
                machine_name, mode,
            )


# ---------------------------------------------------------------------------
# standalone runner: python benchmarks/bench_sim_throughput.py --json
# ---------------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="simulator engine throughput benchmark"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="1 kernel on both machines; correctness only, no speedup floors",
    )
    parser.add_argument(
        "--json",
        nargs="?",
        const="",
        default=None,
        metavar="PATH",
        help="write machine-readable results (default: BENCH_sim.json at the "
        "repo root)",
    )
    args = parser.parse_args(argv)

    bench_kernels = SMOKE_KERNELS if args.smoke else KERNELS
    rows = measure(MACHINES, bench_kernels)
    print(format_table(rows))

    turbo_best = best_per_style(rows, "turbo_vs_fast")
    native_best = best_per_style(rows, "native_vs_turbo")
    fast_best = max(row["speedup"]["fast_vs_checked"] for row in rows)
    overhead_best = min(row["trace_overhead"] for row in rows)
    batch_ratio = batch_aggregate_ratio(rows)
    print()
    print(
        "best speedups: fast/checked "
        + f"{fast_best:.1f}x; turbo/fast "
        + ", ".join(f"{s} {v:.1f}x" for s, v in sorted(turbo_best.items()))
        + "; native/turbo "
        + ", ".join(f"{s} {v:.1f}x" for s, v in sorted(native_best.items()))
        + f"; batch/turbo aggregate {batch_ratio:.1f}x at N={BATCH_LANES}"
        + f"; tracing overhead (best row) {(overhead_best - 1) * 100:+.1f}%"
    )

    if args.json is not None:
        path = (
            Path(args.json)
            if args.json
            else Path(__file__).resolve().parent.parent / "BENCH_sim.json"
        )
        payload = {
            "benchmark": "sim_throughput",
            "smoke": bool(args.smoke),
            "engines": list(ENGINES) + ["batch"],
            "machines": list(MACHINES),
            "kernels": list(bench_kernels),
            "batch_lanes": BATCH_LANES,
            "results": rows,
            "best_speedup": {
                "fast_vs_checked": fast_best,
                "turbo_vs_fast": turbo_best,
                "native_vs_turbo": native_best,
            },
            "native_compiler_available": _native_available(),
            "batch_vs_turbo_aggregate": batch_ratio,
            "trace_overhead_best": overhead_best,
        }
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {path}")

    if args.smoke:
        return 0
    ok = fast_best >= SPEEDUP_FLOOR and all(
        turbo_best.get(style, 0.0) >= TURBO_FLOOR for style in ("tta", "vliw")
    )
    if _native_available():
        ok = ok and all(
            native_best.get(style, 0.0) >= NATIVE_FLOOR for style in ("tta", "vliw")
        )
    if not ok:
        print("warning: speedup floors not met", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
