"""Simulator throughput: pre-decoded fast engine vs per-cycle reference.

Reports simulated cycles per second for the Table IV workloads in both
execution modes and asserts the load-time-verified fast engine reaches
at least the 3x speedup that motivated the split (plus bit-exact
agreement on every architectural statistic, which the differential
tests in ``tests/test_predecode.py`` also enforce).

Run:  pytest benchmarks/bench_sim_throughput.py -s

Smoke mode (for CI):  REPRO_BENCH_SMOKE=1 pytest benchmarks/bench_sim_throughput.py -s
runs a single kernel on a single machine and skips the speedup floor
(shared CI runners have too much timing noise for a hard ratio assert).
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict

import pytest

from repro import build_machine, compile_for_machine, compile_source
from repro.kernels import kernel_source
from repro.sim import run_compiled

#: Table IV design points exercised by the throughput comparison.
MACHINES = ("m-tta-2", "m-vliw-2")

#: minimum fast/checked speedup required on at least one workload
SPEEDUP_FLOOR = 3.0


def _smoke() -> bool:
    return bool(os.environ.get("REPRO_BENCH_SMOKE"))


def _bench_kernels(kernels) -> tuple[str, ...]:
    return kernels[:1] if _smoke() else kernels


def _time_mode(compiled, mode: str):
    start = time.perf_counter()
    result = run_compiled(compiled, mode=mode)
    elapsed = time.perf_counter() - start
    return result, elapsed


def test_sim_throughput(kernels, capsys):
    rows = []
    best_speedup = 0.0
    for machine_name in MACHINES[:1] if _smoke() else MACHINES:
        machine = build_machine(machine_name)
        for kernel in _bench_kernels(kernels):
            compiled = compile_for_machine(
                compile_source(kernel_source(kernel)), machine
            )
            fast, t_fast = _time_mode(compiled, "fast")
            checked, t_checked = _time_mode(compiled, "checked")
            # The two engines must agree on every architectural statistic.
            assert asdict(fast) == asdict(checked), (machine_name, kernel)
            assert fast.exit_code == 0, (machine_name, kernel)
            speedup = t_checked / t_fast if t_fast > 0 else float("inf")
            best_speedup = max(best_speedup, speedup)
            rows.append(
                (
                    machine_name,
                    kernel,
                    fast.cycles,
                    fast.cycles / t_checked / 1e3,
                    fast.cycles / t_fast / 1e3,
                    speedup,
                )
            )
    with capsys.disabled():
        print()
        print(
            f"{'machine':10s} {'kernel':10s} {'cycles':>10s} "
            f"{'checked':>12s} {'fast':>12s} {'speedup':>8s}"
        )
        for machine_name, kernel, cycles, kcps_checked, kcps_fast, speedup in rows:
            print(
                f"{machine_name:10s} {kernel:10s} {cycles:10d} "
                f"{kcps_checked:8.0f} kc/s {kcps_fast:8.0f} kc/s {speedup:7.1f}x"
            )
    if _smoke():
        # CI smoke run: correctness only; timing on shared runners is noise.
        assert best_speedup > 1.0
    else:
        assert best_speedup >= SPEEDUP_FLOOR, (
            f"fast engine only reached {best_speedup:.1f}x over the checked "
            f"reference (target {SPEEDUP_FLOOR}x)"
        )


@pytest.mark.skipif(not _smoke(), reason="only exercised in smoke mode")
def test_smoke_covers_both_styles():
    """In smoke mode the main test runs one machine; still touch the other
    style cheaply so CI exercises both fast engines end to end."""
    kernel = "mips"
    for machine_name in MACHINES:
        compiled = compile_for_machine(
            compile_source(kernel_source(kernel)), build_machine(machine_name)
        )
        fast = run_compiled(compiled, mode="fast")
        checked = run_compiled(compiled, mode="checked")
        assert asdict(fast) == asdict(checked), machine_name
        assert fast.exit_code == 0
