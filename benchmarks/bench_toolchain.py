"""Toolchain micro-benchmarks: compiler and simulator throughput.

Not a paper artifact, but useful when hacking on the stack: measures
compile time per design point and simulation speed (cycles/second).

Run:  pytest benchmarks/bench_toolchain.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro import build_machine, compile_for_machine
from repro.kernels import compile_kernel
from repro.sim import run_compiled


@pytest.mark.parametrize("machine_name", ["mblaze-3", "m-vliw-2", "m-tta-2"])
def test_compile_throughput(benchmark, machine_name):
    module = compile_kernel("mips")
    machine = build_machine(machine_name)
    benchmark(compile_for_machine, module, machine)


@pytest.mark.parametrize("machine_name", ["mblaze-3", "m-vliw-2", "m-tta-2"])
def test_simulation_throughput(benchmark, machine_name):
    compiled = compile_for_machine(compile_kernel("mips"), build_machine(machine_name))
    result = benchmark(run_compiled, compiled)
    assert result.exit_code == 0
