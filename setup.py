"""Legacy setup shim: enables editable installs on older setuptools."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro.kernels": ["*.mc"]},
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
