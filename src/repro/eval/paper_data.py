"""The paper's published numbers (Tables II-IV), used for comparison in
EXPERIMENTS.md and in the shape-checking tests.

All relative values are exactly as printed in the paper; absolute
program sizes are kilobits.
"""

from __future__ import annotations

BENCHMARKS = ("adpcm", "aes", "blowfish", "gsm", "jpeg", "mips", "motion", "sha")

#: Table II -- instruction widths (bits).
PAPER_INSTR_WIDTH = {
    "mblaze-3": 32,
    "mblaze-5": 32,
    "m-tta-1": 43,
    "m-vliw-2": 48,
    "p-vliw-2": 48,
    "m-tta-2": 81,
    "p-tta-2": 83,
    "bm-tta-2": 66,
    "m-vliw-3": 72,
    "p-vliw-3": 72,
    "m-tta-3": 145,
    "p-tta-3": 134,
    "bm-tta-3": 99,
}

#: Table II -- program image sizes relative to the baseline of each issue
#: class (mblaze for 1-issue, m-vliw-2/3 for the multi-issue classes).
PAPER_PROGRAM_SIZE_REL = {
    "m-tta-1": {"adpcm": 1.32, "aes": 1.10, "blowfish": 0.54, "gsm": 1.42,
                "jpeg": 2.48, "mips": 0.89, "motion": 0.83, "sha": 0.32},
    "p-vliw-2": {"adpcm": 0.98, "aes": 1.01, "blowfish": 0.99, "gsm": 1.01,
                 "jpeg": 1.00, "mips": 1.01, "motion": 1.10, "sha": 1.03},
    "m-tta-2": {"adpcm": 1.47, "aes": 1.29, "blowfish": 1.23, "gsm": 1.49,
                "jpeg": 1.31, "mips": 1.43, "motion": 1.28, "sha": 1.21},
    "p-tta-2": {"adpcm": 1.44, "aes": 1.37, "blowfish": 1.38, "gsm": 1.48,
                "jpeg": 1.38, "mips": 1.52, "motion": 1.34, "sha": 1.28},
    "bm-tta-2": {"adpcm": 1.14, "aes": 1.05, "blowfish": 1.10, "gsm": 1.24,
                 "jpeg": 1.11, "mips": 1.23, "motion": 1.04, "sha": 1.03},
    "p-vliw-3": {"adpcm": 1.03, "aes": 1.03, "blowfish": 1.05, "gsm": 1.03,
                 "jpeg": 1.04, "mips": 1.04, "motion": 1.05, "sha": 1.01},
    "m-tta-3": {"adpcm": 1.63, "aes": 1.39, "blowfish": 1.32, "gsm": 1.58,
                "jpeg": 1.45, "mips": 1.67, "motion": 1.21, "sha": 1.08},
    "p-tta-3": {"adpcm": 1.50, "aes": 1.29, "blowfish": 1.22, "gsm": 1.48,
                "jpeg": 1.36, "mips": 1.54, "motion": 1.10, "sha": 1.01},
    "bm-tta-3": {"adpcm": 1.01, "aes": 0.86, "blowfish": 0.85, "gsm": 1.09,
                 "jpeg": 0.97, "mips": 1.17, "motion": 0.76, "sha": 0.74},
}

#: Table III -- fmax (MHz) and resource usage.
PAPER_SYNTHESIS = {
    # name: (fmax MHz, core LUTs, RF LUTs, LUTRAM, IC LUTs, FFs)
    "mblaze-3": (169, 715, 128, 128, None, 303),
    "mblaze-5": (174, 829, 64, 64, None, 582),
    "m-tta-1": (216, 956, 24, 24, 265, 507),
    "m-vliw-2": (176, 1806, 638, 352, 439, 680),
    "p-vliw-2": (203, 1441, 96, 96, 587, 1290),
    "m-tta-2": (212, 1208, 44, 44, 437, 932),
    "p-tta-2": (213, 1342, 48, 48, 542, 1290),
    "bm-tta-2": (212, 1212, 48, 48, 438, 1023),
    "m-vliw-3": (146, 3825, 1970, 1056, 694, 977),
    "p-vliw-3": (194, 2710, 144, 144, 632, 923),
    "m-tta-3": (167, 2399, 210, 176, 599, 895),
    "p-tta-3": (197, 2651, 72, 72, 619, 908),
    "bm-tta-3": (189, 2320, 72, 72, 590, 850),
}

#: Table IV -- absolute cycle counts of the baselines.
PAPER_CYCLES_BASE = {
    "mblaze-3": {"adpcm": 283954, "aes": 84892, "blowfish": 2081752, "gsm": 33731,
                 "jpeg": 4483651, "mips": 72650, "motion": 12670, "sha": 1843148},
    "m-vliw-2": {"adpcm": 142402, "aes": 39491, "blowfish": 1594847, "gsm": 27279,
                 "jpeg": 4731551, "mips": 53612, "motion": 17362, "sha": 1172304},
    "m-vliw-3": {"adpcm": 133718, "aes": 37899, "blowfish": 1552318, "gsm": 26760,
                 "jpeg": 4638550, "mips": 51661, "motion": 17154, "sha": 1121799},
}

#: Table IV -- relative cycle counts.
PAPER_CYCLES_REL = {
    "mblaze-5": {"adpcm": 0.90, "aes": 0.92, "blowfish": 0.89, "gsm": 0.87,
                 "jpeg": 0.91, "mips": 0.97, "motion": 0.97, "sha": 0.87},
    "m-tta-1": {"adpcm": 0.53, "aes": 0.42, "blowfish": 0.66, "gsm": 0.66,
                "jpeg": 0.98, "mips": 0.73, "motion": 1.05, "sha": 0.56},
    "p-vliw-2": {"adpcm": 1.01, "aes": 0.99, "blowfish": 0.95, "gsm": 1.00,
                 "jpeg": 1.01, "mips": 1.00, "motion": 1.05, "sha": 1.01},
    "m-tta-2": {"adpcm": 0.84, "aes": 0.77, "blowfish": 0.73, "gsm": 0.74,
                "jpeg": 0.88, "mips": 0.97, "motion": 0.64, "sha": 0.71},
    "p-tta-2": {"adpcm": 0.81, "aes": 0.68, "blowfish": 0.77, "gsm": 0.69,
                "jpeg": 0.86, "mips": 1.00, "motion": 0.62, "sha": 0.67},
    "bm-tta-2": {"adpcm": 0.82, "aes": 0.87, "blowfish": 0.84, "gsm": 0.78,
                 "jpeg": 0.93, "mips": 1.02, "motion": 0.65, "sha": 0.77},
    "p-vliw-3": {"adpcm": 1.03, "aes": 1.01, "blowfish": 1.01, "gsm": 1.01,
                 "jpeg": 1.03, "mips": 1.02, "motion": 1.00, "sha": 1.00},
    "m-tta-3": {"adpcm": 0.76, "aes": 0.59, "blowfish": 0.53, "gsm": 0.57,
                "jpeg": 0.77, "mips": 0.96, "motion": 0.38, "sha": 0.45},
    "p-tta-3": {"adpcm": 0.75, "aes": 0.57, "blowfish": 0.53, "gsm": 0.56,
                "jpeg": 0.77, "mips": 0.95, "motion": 0.37, "sha": 0.45},
    "bm-tta-3": {"adpcm": 0.67, "aes": 0.65, "blowfish": 0.59, "gsm": 0.62,
                 "jpeg": 0.80, "mips": 0.98, "motion": 0.41, "sha": 0.50},
}
