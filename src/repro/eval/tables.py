"""Regeneration of the paper's Tables II, III and IV.

Each function returns a list of row dicts in the paper's layout:
relative values are normalised exactly the way the paper normalises them
(1-issue rows against mblaze, multi-issue rows against m-vliw-2/3).
"""

from __future__ import annotations

from repro.eval.runner import run_sweep
from repro.fpga import synthesize
from repro.kernels import KERNELS
from repro.machine import build_machine, encode_machine

#: the paper's presentation groups and their program-size/cycle baselines
ISSUE_GROUPS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("mblaze-3", ("mblaze-3", "mblaze-5", "m-tta-1")),
    ("m-vliw-2", ("m-vliw-2", "p-vliw-2", "m-tta-2", "p-tta-2", "bm-tta-2")),
    ("m-vliw-3", ("m-vliw-3", "p-vliw-3", "m-tta-3", "p-tta-3", "bm-tta-3")),
)


def subset_groups(
    machines: tuple[str, ...] | None,
) -> tuple[tuple[tuple[str, tuple[str, ...]], ...], tuple[str, ...]]:
    """Restrict the presentation groups to a machine subset.

    Returns ``(groups, sweep_machines)``: groups keep only the requested
    members (whole group dropped when none requested), while
    ``sweep_machines`` additionally includes each surviving group's
    baseline — relative columns stay normalised exactly as the paper
    normalises them even when the baseline row itself is filtered out.
    """
    if machines is None:
        return ISSUE_GROUPS, tuple(m for _, members in ISSUE_GROUPS for m in members)
    groups = []
    needed: list[str] = []
    for baseline, members in ISSUE_GROUPS:
        kept = tuple(m for m in members if m in machines)
        if not kept:
            continue
        groups.append((baseline, kept))
        for name in (baseline, *kept):
            if name not in needed:
                needed.append(name)
    return tuple(groups), tuple(needed)


def table2(
    kernels: tuple[str, ...] = KERNELS,
    machines: tuple[str, ...] | None = None,
) -> list[dict]:
    """Table II: instruction widths and program image sizes.

    Absolute sizes in kilobits for the baselines; relative factors for
    the other design points, exactly as the paper reports them.
    """
    groups, sweep_machines = subset_groups(machines)
    sweep = run_sweep(machines=sweep_machines, kernels=kernels)
    rows: list[dict] = []
    for baseline, members in groups:
        base_width = encode_machine(build_machine(baseline)).instruction_width
        for name in members:
            width = encode_machine(build_machine(name)).instruction_width
            row: dict = {
                "machine": name,
                "instr_width": width,
                "instr_width_rel": round(width / base_width, 2),
            }
            for kernel in kernels:
                bits = sweep[(name, kernel)].program_bits
                base_bits = sweep[(baseline, kernel)].program_bits
                if name == baseline:
                    row[kernel] = f"{bits / 1000:.0f}kb"
                else:
                    row[kernel] = round(bits / base_bits, 2)
            rows.append(row)
    return rows


def table3(machines: tuple[str, ...] | None = None) -> list[dict]:
    """Table III: RF ports, fmax and resource usage (relative columns
    normalised to the group baseline, as in the paper)."""
    groups, _ = subset_groups(machines)
    rows: list[dict] = []
    for baseline, members in groups:
        base = synthesize(build_machine(baseline))
        for name in members:
            machine = build_machine(name)
            report = synthesize(machine)
            res = report.resources
            max_reads = max(rf.read_ports for rf in machine.register_files)
            max_writes = max(rf.write_ports for rf in machine.register_files)
            rows.append(
                {
                    "machine": name,
                    "rf_read_ports": max_reads,
                    "rf_write_ports": max_writes,
                    "fmax_mhz": report.fmax_mhz,
                    "fmax_rel": round(report.fmax_mhz / base.fmax_mhz, 2),
                    "core_luts": res.core_luts,
                    "core_rel": round(res.core_luts / base.resources.core_luts, 2),
                    "rf_luts": res.rf_luts,
                    "lutram": res.lutram,
                    "ic_luts": res.ic_luts,
                    "ffs": res.ffs,
                    "dsps": res.dsps,
                }
            )
    return rows


#: the ``EvalResult.extras`` counters the traffic table surfaces, in
#: presentation order (absent counters render blank — e.g. VLIW rows have
#: no transport moves, scalar rows no issued ops)
TRAFFIC_COLUMNS = (
    "moves",
    "triggers",
    "rf_reads",
    "rf_writes",
    "bypass_reads",
    "ops",
    "instructions",
)


def traffic_table(
    kernels: tuple[str, ...] = KERNELS,
    machines: tuple[str, ...] | None = None,
) -> list[dict]:
    """Transport and RF traffic per design point, summed over *kernels*.

    Surfaces the architectural counters the simulators fold into
    :attr:`~repro.pipeline.types.EvalResult.extras`: TTA rows report
    moves/triggers and the RF-read traffic split into port reads versus
    bypassed (operand-network) reads — ``bypass_pct`` is the share of
    operand reads the transport network served without touching an RF
    read port, the effect the paper's TTA design points exist to
    exploit.  VLIW rows report issued ops, scalar rows instruction
    counts.  Counters absent for a style render blank.
    """
    groups, sweep_machines = subset_groups(machines)
    sweep = run_sweep(machines=sweep_machines, kernels=kernels)
    rows: list[dict] = []
    for _baseline, members in groups:
        for name in members:
            totals: dict[str, int] = {}
            cycles = 0
            for kernel in kernels:
                result = sweep[(name, kernel)]
                cycles += result.cycles
                for key, value in result.extras.items():
                    totals[key] = totals.get(key, 0) + value
            row: dict = {"machine": name, "cycles": cycles}
            for column in TRAFFIC_COLUMNS:
                row[column] = totals.get(column, "")
            reads = totals.get("rf_reads", 0) + totals.get("bypass_reads", 0)
            row["bypass_pct"] = (
                round(100.0 * totals["bypass_reads"] / reads, 1)
                if totals.get("bypass_reads") and reads
                else ""
            )
            rows.append(row)
    return rows


def table4(
    kernels: tuple[str, ...] = KERNELS,
    machines: tuple[str, ...] | None = None,
) -> list[dict]:
    """Table IV: cycle counts (absolute for baselines, relative else)."""
    groups, sweep_machines = subset_groups(machines)
    sweep = run_sweep(machines=sweep_machines, kernels=kernels)
    rows: list[dict] = []
    for baseline, members in groups:
        for name in members:
            row: dict = {"machine": name}
            for kernel in kernels:
                cycles = sweep[(name, kernel)].cycles
                if name == baseline:
                    row[kernel] = cycles
                else:
                    row[kernel] = round(cycles / sweep[(baseline, kernel)].cycles, 2)
            rows.append(row)
    return rows
