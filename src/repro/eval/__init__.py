"""Evaluation harness: regenerates every table and figure of the paper.

* Table II -- instruction widths and relative program image sizes
* Table III -- FPGA resource usage and fmax (relative)
* Table IV -- cycle counts (relative)
* Figure 5 -- normalised runtimes (cycles / fmax)
* Figure 6 -- slice utilisation vs geometric-mean runtime scatter

`repro.eval.runner` does the underlying compile+simulate sweep once and
caches it; the table/figure functions are pure formatting on top.
"""

from repro.eval.runner import EvalResult, run_sweep, sweep_cache_clear
from repro.eval.tables import table2, table3, table4, traffic_table
from repro.eval.figures import figure5, figure6
from repro.eval.report import format_table, render_all

__all__ = [
    "EvalResult",
    "figure5",
    "figure6",
    "format_table",
    "render_all",
    "run_sweep",
    "sweep_cache_clear",
    "table2",
    "table3",
    "table4",
    "traffic_table",
]
