"""Regeneration of the paper's Figures 5 and 6 (as data series)."""

from __future__ import annotations

import math

from repro.eval.runner import run_sweep
from repro.eval.tables import subset_groups
from repro.fpga import synthesize
from repro.kernels import KERNELS
from repro.machine import build_machine, preset_names


def figure5(
    kernels: tuple[str, ...] = KERNELS,
    machines: tuple[str, ...] | None = None,
) -> dict[str, dict[str, dict[str, float]]]:
    """Figure 5: wall-clock runtimes (cycles / fmax) normalised to the
    group baseline, one bar group per benchmark, one panel per issue
    class.  Returns {panel_baseline: {machine: {kernel: rel_runtime}}}."""
    groups, sweep_machines = subset_groups(machines)
    sweep = run_sweep(machines=sweep_machines, kernels=kernels)
    panels: dict[str, dict[str, dict[str, float]]] = {}
    for baseline, members in groups:
        panel: dict[str, dict[str, float]] = {}
        for name in members:
            series = {}
            for kernel in kernels:
                rel = (
                    sweep[(name, kernel)].runtime_us
                    / sweep[(baseline, kernel)].runtime_us
                )
                series[kernel] = round(rel, 3)
            panel[name] = series
        panels[baseline] = panel
    return panels


def figure6(
    kernels: tuple[str, ...] = KERNELS,
    machines: tuple[str, ...] | None = None,
) -> dict[str, dict[str, float]]:
    """Figure 6: slice utilisation vs overall execution time (geometric
    mean over the benchmarks, normalised to m-tta-1).  Returns
    {machine: {"slices": n, "runtime": geomean_rel}}."""
    requested = machines if machines is not None else preset_names()
    # m-tta-1 is the normalisation reference; always measure it even
    # when it is filtered out of the emitted points.
    sweep_machines = tuple(
        dict.fromkeys((*requested, "m-tta-1"))
    )
    sweep = run_sweep(machines=sweep_machines, kernels=kernels)

    def geomean_runtime(machine: str) -> float:
        logs = [math.log(sweep[(machine, k)].runtime_us) for k in kernels]
        return math.exp(sum(logs) / len(logs))

    reference = geomean_runtime("m-tta-1")
    points: dict[str, dict[str, float]] = {}
    for name in requested:
        report = synthesize(build_machine(name))
        points[name] = {
            "slices": float(report.resources.slices),
            "runtime": round(geomean_runtime(name) / reference, 3),
        }
    return points
