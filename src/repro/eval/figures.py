"""Regeneration of the paper's Figures 5 and 6 (as data series)."""

from __future__ import annotations

import math

from repro.eval.runner import run_sweep
from repro.eval.tables import ISSUE_GROUPS
from repro.fpga import synthesize
from repro.kernels import KERNELS
from repro.machine import build_machine, preset_names


def figure5(kernels: tuple[str, ...] = KERNELS) -> dict[str, dict[str, dict[str, float]]]:
    """Figure 5: wall-clock runtimes (cycles / fmax) normalised to the
    group baseline, one bar group per benchmark, one panel per issue
    class.  Returns {panel_baseline: {machine: {kernel: rel_runtime}}}."""
    sweep = run_sweep(kernels=kernels)
    panels: dict[str, dict[str, dict[str, float]]] = {}
    for baseline, members in ISSUE_GROUPS:
        panel: dict[str, dict[str, float]] = {}
        for name in members:
            series = {}
            for kernel in kernels:
                rel = (
                    sweep[(name, kernel)].runtime_us
                    / sweep[(baseline, kernel)].runtime_us
                )
                series[kernel] = round(rel, 3)
            panel[name] = series
        panels[baseline] = panel
    return panels


def figure6(kernels: tuple[str, ...] = KERNELS) -> dict[str, dict[str, float]]:
    """Figure 6: slice utilisation vs overall execution time (geometric
    mean over the benchmarks, normalised to m-tta-1).  Returns
    {machine: {"slices": n, "runtime": geomean_rel}}."""
    sweep = run_sweep(kernels=kernels)

    def geomean_runtime(machine: str) -> float:
        logs = [math.log(sweep[(machine, k)].runtime_us) for k in kernels]
        return math.exp(sum(logs) / len(logs))

    reference = geomean_runtime("m-tta-1")
    points: dict[str, dict[str, float]] = {}
    for name in preset_names():
        report = synthesize(build_machine(name))
        points[name] = {
            "slices": float(report.resources.slices),
            "runtime": round(geomean_runtime(name) / reference, 3),
        }
    return points
