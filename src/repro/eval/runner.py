"""The compile+simulate sweep underlying every table and figure.

``run_sweep`` measures each kernel on each design point through the
:mod:`repro.pipeline` subsystem: results are served from the
content-addressed on-disk artifact store when warm (so a re-run of the
full paper reproduction is near-instant), computed through the shared
task executor when cold (optionally in parallel via ``jobs=``), and
memoised in-process so the five table/figure generators and the
benchmark harness share one sweep *object-identically*, exactly as the
old ``lru_cache`` layer did.

This module keeps the historical API surface — ``EvalResult``,
``run_sweep`` and ``sweep_cache_clear`` — so the evaluation layer and
its tests are untouched by the pipeline rewrite.
"""

from __future__ import annotations

from repro.pipeline.sweep import sweep_tasks as _sweep_tasks
from repro.pipeline.sweep import tasks_for_machines as _tasks_for_machines

# Re-exported for backwards compatibility: EvalResult historically lived
# here; it now belongs to the pipeline layer.
from repro.pipeline.types import EvalResult, SweepFailure  # noqa: F401

#: process-local memo so repeated ``run_sweep`` calls return the *same*
#: EvalResult objects (tests and generators rely on identity), keyed by
#: (machine name, kernel) for the default fast/optimised configuration.
#: Generated machines key by their display name; callers minting mutants
#: must give each structure a distinct name (``structural_name`` does).
_MEMO: dict[tuple[str, str], EvalResult] = {}


def run_sweep(
    machines: tuple | None = None,
    kernels: tuple[str, ...] | None = None,
    jobs: int = 1,
) -> dict[tuple[str, str], EvalResult]:
    """Measure every (machine, kernel) pair; cached across calls.

    *machines* entries may be preset names **or**
    :class:`~repro.machine.Machine` objects (generated design points) —
    mixed freely; results key by the machine's display name either way.

    Serves from (in order): the in-process memo, the on-disk artifact
    store, fresh computation (fanned out over *jobs* worker processes
    when ``jobs > 1``).  Any failing pair raises
    :class:`~repro.pipeline.types.SweepFailure` (an ``AssertionError``
    subclass, matching the historical abort-on-failure behaviour of the
    serial sweep).
    """
    from repro.kernels import KERNELS
    from repro.machine import preset_names
    from repro.machine.machine import Machine

    machines = machines or preset_names()
    kernels = kernels or KERNELS
    by_name = {
        (m.name if isinstance(m, Machine) else str(m)): m for m in machines
    }
    wanted = [(name, k) for name in by_name for k in kernels]
    missing = sorted({m for m, k in wanted if (m, k) not in _MEMO})
    missing_kernels = sorted({k for m, k in wanted if (m, k) not in _MEMO})
    if missing:
        tasks = _tasks_for_machines(
            [by_name[name] for name in missing], tuple(missing_kernels)
        )
        outcome = _sweep_tasks(tasks, jobs=jobs)
        outcome.raise_on_error()
        for pair, result in outcome.results.items():
            _MEMO.setdefault(pair, result)
    return {pair: _MEMO[pair] for pair in wanted}


def sweep_cache_clear() -> None:
    """Drop the in-process memo (tests use this).

    The on-disk artifact store is *not* touched: it is content-addressed
    (machine description + kernel source + toolchain digest), so stale
    entries cannot be served — clearing it is a disk-space operation,
    available via ``repro sweep --clear-cache`` or
    ``ArtifactStore.clear()``.
    """
    _MEMO.clear()
