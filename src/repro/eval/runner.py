"""The compile+simulate sweep underlying every table and figure.

``run_sweep`` compiles each kernel for each design point, runs it on the
cycle-accurate simulator, asserts the kernel's self-check passed, and
collects program-size/cycle/synthesis facts.  Results are cached
process-wide so the five table/figure generators and the benchmark
harness share one sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.backend import compile_for_machine
from repro.fpga import synthesize
from repro.kernels import KERNELS, compile_kernel
from repro.machine import build_machine, encode_machine, preset_names
from repro.sim import run_compiled


@dataclass(frozen=True)
class EvalResult:
    """One (machine, kernel) measurement."""

    machine: str
    kernel: str
    exit_code: int
    cycles: int
    instruction_count: int
    instruction_width: int
    fmax_mhz: float

    @property
    def program_bits(self) -> int:
        return self.instruction_count * self.instruction_width

    @property
    def runtime_us(self) -> float:
        return self.cycles / self.fmax_mhz


@lru_cache(maxsize=None)
def _measure(machine_name: str, kernel_name: str) -> EvalResult:
    machine = build_machine(machine_name)
    module = compile_kernel(kernel_name)
    compiled = compile_for_machine(module, machine)
    result = run_compiled(compiled)
    if result.exit_code != 0:
        raise AssertionError(
            f"kernel {kernel_name} self-check failed on {machine_name}: "
            f"exit={result.exit_code}"
        )
    encoding = encode_machine(machine)
    report = synthesize(machine)
    return EvalResult(
        machine=machine_name,
        kernel=kernel_name,
        exit_code=result.exit_code,
        cycles=result.cycles,
        instruction_count=compiled.instruction_count,
        instruction_width=encoding.instruction_width,
        fmax_mhz=report.fmax_mhz,
    )


def run_sweep(
    machines: tuple[str, ...] | None = None,
    kernels: tuple[str, ...] | None = None,
) -> dict[tuple[str, str], EvalResult]:
    """Measure every (machine, kernel) pair; cached across calls."""
    machines = machines or preset_names()
    kernels = kernels or KERNELS
    return {
        (m, k): _measure(m, k)
        for m in machines
        for k in kernels
    }


def sweep_cache_clear() -> None:
    """Drop all cached measurements (tests use this)."""
    _measure.cache_clear()
