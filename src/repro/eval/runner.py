"""The compile+simulate sweep underlying every table and figure.

``run_sweep`` measures each kernel on each design point through the
:mod:`repro.pipeline` subsystem: results are served from the
content-addressed on-disk artifact store when warm (so a re-run of the
full paper reproduction is near-instant), computed through the shared
task executor when cold (optionally in parallel via ``jobs=``), and
memoised in-process so the five table/figure generators and the
benchmark harness share one sweep *object-identically*, exactly as the
old ``lru_cache`` layer did.

This module keeps the historical API surface — ``EvalResult``,
``run_sweep`` and ``sweep_cache_clear`` — so the evaluation layer and
its tests are untouched by the pipeline rewrite.
"""

from __future__ import annotations

from repro.pipeline.sweep import sweep as _pipeline_sweep

# Re-exported for backwards compatibility: EvalResult historically lived
# here; it now belongs to the pipeline layer.
from repro.pipeline.types import EvalResult, SweepFailure  # noqa: F401

#: process-local memo so repeated ``run_sweep`` calls return the *same*
#: EvalResult objects (tests and generators rely on identity), keyed by
#: (machine, kernel) for the default fast/optimised configuration.
_MEMO: dict[tuple[str, str], EvalResult] = {}


def run_sweep(
    machines: tuple[str, ...] | None = None,
    kernels: tuple[str, ...] | None = None,
    jobs: int = 1,
) -> dict[tuple[str, str], EvalResult]:
    """Measure every (machine, kernel) pair; cached across calls.

    Serves from (in order): the in-process memo, the on-disk artifact
    store, fresh computation (fanned out over *jobs* worker processes
    when ``jobs > 1``).  Any failing pair raises
    :class:`~repro.pipeline.types.SweepFailure` (an ``AssertionError``
    subclass, matching the historical abort-on-failure behaviour of the
    serial sweep).
    """
    from repro.kernels import KERNELS
    from repro.machine import preset_names

    machines = machines or preset_names()
    kernels = kernels or KERNELS
    wanted = [(m, k) for m in machines for k in kernels]
    missing = sorted({m for m, k in wanted if (m, k) not in _MEMO})
    missing_kernels = sorted({k for m, k in wanted if (m, k) not in _MEMO})
    if missing:
        outcome = _pipeline_sweep(
            machines=tuple(missing), kernels=tuple(missing_kernels), jobs=jobs
        )
        outcome.raise_on_error()
        for pair, result in outcome.results.items():
            _MEMO.setdefault(pair, result)
    return {pair: _MEMO[pair] for pair in wanted}


def sweep_cache_clear() -> None:
    """Drop the in-process memo (tests use this).

    The on-disk artifact store is *not* touched: it is content-addressed
    (machine description + kernel source + toolchain digest), so stale
    entries cannot be served — clearing it is a disk-space operation,
    available via ``repro sweep --clear-cache`` or
    ``ArtifactStore.clear()``.
    """
    _MEMO.clear()
