"""Plain-text rendering of the regenerated tables and figures."""

from __future__ import annotations

from repro.eval.figures import figure5, figure6
from repro.eval.tables import table2, table3, table4, traffic_table


def format_table(rows: list[dict], title: str = "") -> str:
    """Render a list of row dicts as an aligned text table."""
    if not rows:
        return title
    columns = list(rows[0].keys())
    widths = {
        c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows)) for c in columns
    }
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(c).ljust(widths[c]) for c in columns))
    lines.append("  ".join("-" * widths[c] for c in columns))
    for row in rows:
        lines.append("  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def render_all(
    kernels: tuple[str, ...] | None = None,
    machines: tuple[str, ...] | None = None,
) -> str:
    """Regenerate every table and figure as one report string.

    *machines* restricts the emitted rows/points to a subset of the
    design points; each surviving issue group's baseline (and figure 6's
    ``m-tta-1`` reference) is still measured so relative values keep the
    paper's normalisation.
    """
    from repro.kernels import KERNELS

    kernels = kernels or KERNELS
    parts = [
        format_table(
            table2(kernels, machines),
            "Table II: instruction widths and program image sizes",
        ),
        "",
        format_table(table3(machines), "Table III: FPGA resources and fmax"),
        "",
        format_table(table4(kernels, machines), "Table IV: cycle counts"),
        "",
        format_table(
            traffic_table(kernels, machines),
            "Transport and RF traffic (simulator counters, summed over kernels)",
        ),
        "",
        "Figure 5: relative runtimes (cycles/fmax, normalised per panel)",
    ]
    for baseline, panel in figure5(kernels, machines).items():
        parts.append(f"  panel normalised to {baseline}:")
        for machine, series in panel.items():
            values = "  ".join(f"{k}={v}" for k, v in series.items())
            parts.append(f"    {machine:10s} {values}")
    parts.append("")
    parts.append("Figure 6: slices vs geomean runtime (normalised to m-tta-1)")
    for machine, point in figure6(kernels, machines).items():
        parts.append(
            f"    {machine:10s} slices={point['slices']:7.0f} runtime={point['runtime']}"
        )
    return "\n".join(parts)
