"""Minimal HTTP/1.1 request parsing and response writing over asyncio
streams.

The service speaks a deliberately small subset of HTTP/1.1 — exactly
what a JSON API needs and nothing the standard library's ``http.client``
(the bundled :mod:`repro.serve.client`) or ``curl`` would not send:

* request line + headers + ``Content-Length``-framed bodies;
* keep-alive by default, ``Connection: close`` honoured;
* bodies larger than the server's limit are rejected with **413**
  *before* they are read (the connection is then closed, since the
  unread body would desynchronise the stream);
* chunked transfer encoding and multiline headers are rejected rather
  than misparsed.

Parsing failures raise :class:`HttpError` subtypes carrying the status
code to respond with; the connection loop in
:mod:`repro.serve.server` turns them into JSON error responses.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from http import HTTPStatus

#: maximum size of one header section (request line + headers)
MAX_HEADER_BYTES = 16384
#: maximum number of header lines per request
MAX_HEADER_COUNT = 100

#: stream limit for ``asyncio.start_server`` — must exceed the longest
#: single line we are willing to parse
STREAM_LIMIT = 65536


class HttpError(Exception):
    """A protocol-level failure with the HTTP status to report.

    ``keep_alive`` is False when the stream can no longer be trusted
    (e.g. an unread oversized body) and the connection must close after
    the error response.
    """

    def __init__(self, status: int, message: str, *, keep_alive: bool = False):
        super().__init__(message)
        self.status = status
        self.message = message
        self.keep_alive = keep_alive


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: str
    version: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        token = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return token == "keep-alive"
        return token != "close"


async def read_request(reader, *, max_body: int) -> Request | None:
    """Parse one request from *reader*; ``None`` on clean EOF.

    Raises :class:`HttpError` on malformed input (400), unsupported
    framing (411) or a declared body over *max_body* (413 — the body is
    left unread, so the error response must close the connection).
    """
    try:
        line = await reader.readline()
    except (ValueError, OSError) as exc:  # line over the stream limit
        raise HttpError(400, f"request line too long or unreadable: {exc}") from exc
    if not line:
        return None  # clean EOF between requests
    try:
        text = line.decode("latin-1").rstrip("\r\n")
        method, _, rest = text.partition(" ")
        target, _, version = rest.rpartition(" ")
    except Exception as exc:  # pragma: no cover - latin-1 never fails
        raise HttpError(400, "malformed request line") from exc
    if not method or not target or not version.startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {text!r}")
    path, _, query = target.partition("?")

    headers: dict[str, str] = {}
    total = len(line)
    while True:
        try:
            raw = await reader.readline()
        except (ValueError, OSError) as exc:
            raise HttpError(400, f"header line too long: {exc}") from exc
        total += len(raw)
        if total > MAX_HEADER_BYTES:
            raise HttpError(400, "header section too large")
        if raw in (b"\r\n", b"\n"):
            break
        if not raw:
            raise HttpError(400, "truncated header section")
        if len(headers) >= MAX_HEADER_COUNT:
            raise HttpError(400, "too many header lines")
        decoded = raw.decode("latin-1").rstrip("\r\n")
        name, sep, value = decoded.partition(":")
        if not sep or not name or name != name.strip() or name.startswith(("\t", " ")):
            raise HttpError(400, f"malformed header line {decoded!r}")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(411, "chunked transfer encoding is not supported; "
                             "send a Content-Length-framed body")
    length_text = headers.get("content-length")
    if length_text is None:
        if method in ("POST", "PUT", "PATCH"):
            raise HttpError(411, "Content-Length required")
        length = 0
    else:
        try:
            length = int(length_text)
        except ValueError as exc:
            raise HttpError(400, f"malformed Content-Length {length_text!r}") from exc
        if length < 0:
            raise HttpError(400, f"negative Content-Length {length}")
    if length > max_body:
        # the body stays unread: the stream is now desynchronised, so
        # the 413 response must be the connection's last
        raise HttpError(
            413,
            f"request body of {length} bytes exceeds the {max_body} byte limit",
            keep_alive=False,
        )
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except Exception as exc:
            raise HttpError(400, f"truncated request body: {exc}") from exc
    return Request(
        method=method, path=path, query=query, version=version,
        headers=headers, body=body,
    )


def encode_response(
    status: int,
    payload: dict | bytes,
    *,
    request_id: str | None = None,
    keep_alive: bool = True,
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    """Serialise one JSON response (headers + body) to wire bytes."""
    if isinstance(payload, bytes):
        body = payload
    else:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
    try:
        reason = HTTPStatus(status).phrase
    except ValueError:
        reason = "Unknown"
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    if request_id is not None:
        lines.append(f"X-Request-Id: {request_id}")
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body
