"""Compile-and-simulate service.

An asyncio HTTP/1.1 JSON server (standard library only) that exposes
the repro pipeline — compile, run (all engine modes, including batched
lanes), sweep — with bounded queueing and backpressure, content-keyed
request dedup against the artifact store, and sharded child-process
workers with per-job timeout and cancellation.

Start one with ``repro serve`` or in-process::

    from repro.serve import ReproServer
    server = await ReproServer(port=0, jobs=4).start()
    ...
    await server.drain()

and talk to it with :class:`~repro.serve.client.ServeClient`.
"""

from repro.serve.client import ServeClient, ServeError, encode_inputs
from repro.serve.http import HttpError, Request, encode_response, read_request
from repro.serve.jobs import (
    DEFAULT_MAX_CYCLES,
    BadJob,
    Draining,
    Job,
    JobManager,
    QueueFull,
    compute_job_key,
    execute_job,
    normalize_params,
)
from repro.serve.server import SERVE_SCHEMA, ReproServer
from repro.serve.stats import LatencyReservoir, ServeMetrics
from repro.serve.testing import BackgroundServer

__all__ = [
    "SERVE_SCHEMA",
    "DEFAULT_MAX_CYCLES",
    "BackgroundServer",
    "BadJob",
    "Draining",
    "HttpError",
    "Job",
    "JobManager",
    "LatencyReservoir",
    "QueueFull",
    "ReproServer",
    "Request",
    "ServeClient",
    "ServeError",
    "ServeMetrics",
    "compute_job_key",
    "encode_inputs",
    "encode_response",
    "execute_job",
    "normalize_params",
    "read_request",
]
