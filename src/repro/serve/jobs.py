"""Job model, dedup/coalescing, sharded execution for the service.

A **job** is one unit of pipeline work — a compile, a run (any engine
mode, optionally batched over per-lane inputs), or a sweep — identified
by a content key from :mod:`repro.pipeline.fingerprint`.  The manager
gives the service its three scaling properties:

* **bounded queueing with backpressure** — at most ``queue_limit`` jobs
  wait; a submit past that raises :class:`QueueFull`, which the HTTP
  layer turns into ``429 Retry-After`` *without executing anything*;
* **request dedup** — identical in-flight requests coalesce onto one
  job (same content key ⇒ same result), and finished results are served
  from the content-addressed :class:`~repro.pipeline.store.ArtifactStore`
  across requests *and across the sweep CLI* (a warm sweep cache answers
  ``/v1/run`` and vice versa, because plain run jobs use the exact
  ``task_fingerprint`` key contract);
* **sharded workers** — jobs hash onto ``shards`` asyncio workers by
  content key (key-affine: a hot key never occupies two shards), and
  each worker executes its job in a **dedicated child process** so
  CPU-bound compile/simulate work never blocks the event loop and both
  timeout and cancellation are a clean ``terminate()`` with no orphaned
  state.

Child processes are started via the ``forkserver`` method when
available (``spawn`` otherwise): the server's event loop runs threads,
and forking a multi-threaded process is unsound; the fork server gives
fork-cheap children without that hazard.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import time
import traceback
from concurrent.futures import ThreadPoolExecutor

from repro import obs
from repro.pipeline.fingerprint import fingerprint, job_fingerprint
from repro.pipeline.store import ArtifactStore
from repro.pipeline.types import EvalResult

# job states
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
TIMEOUT = "timeout"

TERMINAL_STATES = (DONE, FAILED, CANCELLED, TIMEOUT)

JOB_KINDS = ("compile", "run", "sweep")
RUN_MODES = ("checked", "fast", "turbo", "native", "batch")

#: default simulator cycle budget (mirrors ``run_compiled``)
DEFAULT_MAX_CYCLES = 500_000_000

#: finished jobs retained for ``GET /v1/jobs/<id>`` after completion
MAX_FINISHED_JOBS = 512

#: child poll interval while waiting for completion/cancel/timeout (s)
_POLL_S = 0.05


class BadJob(ValueError):
    """Request parameter validation failure (HTTP 400)."""


class QueueFull(Exception):
    """The bounded job queue is at capacity (HTTP 429)."""

    def __init__(self, depth: int, limit: int):
        super().__init__(f"job queue full ({depth}/{limit})")
        self.depth = depth
        self.limit = limit


class Draining(Exception):
    """The server is shutting down and accepts no new work (HTTP 503)."""


# ---------------------------------------------------------------------------
# parameter validation (event-loop side, before anything is queued)
# ---------------------------------------------------------------------------


def normalize_params(kind: str, body: dict) -> dict:
    """Validate and canonicalise one request body into job params.

    Raises :class:`BadJob` with a user-facing message on any problem;
    the result is a plain, picklable dict (the kernel source text is
    resolved here so the content key can hash exactly what will be
    compiled, mirroring :class:`~repro.pipeline.types.SweepTask`).
    """
    if kind not in JOB_KINDS:
        raise BadJob(f"unknown job kind {kind!r}")
    if not isinstance(body, dict):
        raise BadJob("request body must be a JSON object")
    if kind == "sweep":
        return _normalize_sweep(body)

    from repro.kernels import load
    from repro.machine import preset_names

    machine = body.get("machine")
    if not isinstance(machine, str) or machine not in preset_names():
        raise BadJob(
            f"unknown machine {machine!r}; known: {', '.join(preset_names())}"
        )
    kernel = body.get("kernel")
    source = body.get("source")
    if (kernel is None) == (source is None):
        raise BadJob("exactly one of 'kernel' (builtin or promoted name) or "
                     "'source' (MiniC text) is required")
    if kernel is not None:
        if not isinstance(kernel, str):
            raise BadJob(f"'kernel' must be a string, got {kernel!r}")
        try:
            source = load(kernel)
        except KeyError as exc:
            raise BadJob(str(exc.args[0]) if exc.args else str(exc)) from exc
    elif not isinstance(source, str) or not source.strip():
        raise BadJob("'source' must be non-empty MiniC text")

    params: dict = {
        "machine": machine,
        "kernel": kernel,
        "_source": source,
        "optimize": _bool(body, "optimize", True),
        "trace": _bool(body, "trace", False),
    }
    if kind == "compile":
        return params

    mode = body.get("mode", "fast")
    if mode not in RUN_MODES:
        raise BadJob(f"unknown mode {mode!r}; known: {', '.join(RUN_MODES)}")
    params["mode"] = mode

    max_cycles = body.get("max_cycles", DEFAULT_MAX_CYCLES)
    if not isinstance(max_cycles, int) or isinstance(max_cycles, bool) or max_cycles < 1:
        raise BadJob(f"'max_cycles' must be a positive integer, got {max_cycles!r}")
    params["max_cycles"] = max_cycles

    timeout_s = body.get("timeout_s")
    if timeout_s is not None:
        if not isinstance(timeout_s, (int, float)) or isinstance(timeout_s, bool) \
                or timeout_s <= 0:
            raise BadJob(f"'timeout_s' must be a positive number, got {timeout_s!r}")
    params["timeout_s"] = timeout_s

    lanes = body.get("lanes")
    inputs = body.get("inputs")
    if (lanes is not None or inputs is not None) and mode != "batch":
        raise BadJob("'lanes'/'inputs' require mode 'batch'")
    if lanes is not None:
        if not isinstance(lanes, int) or isinstance(lanes, bool) or lanes < 1:
            raise BadJob(f"'lanes' must be a positive integer, got {lanes!r}")
    if inputs is not None:
        inputs = _normalize_inputs(inputs)
        if lanes is not None and lanes != len(inputs):
            raise BadJob(
                f"'lanes' ({lanes}) disagrees with len(inputs) ({len(inputs)})"
            )
    params["lanes"] = lanes
    params["inputs"] = inputs
    return params


def _normalize_sweep(body: dict) -> dict:
    from repro.machine import preset_names
    from repro.pipeline import parse_subset
    from repro.pipeline.sweep import resolve_kernel_sources

    mode = body.get("mode", "fast")
    if mode not in RUN_MODES:
        raise BadJob(f"unknown mode {mode!r}; known: {', '.join(RUN_MODES)}")
    try:
        machines = parse_subset(body.get("machines"), preset_names(), "machine")
        # default: the paper's built-in matrix; explicit subsets may
        # name extra/promoted kernels (resolved again in the worker)
        kernels, _ = resolve_kernel_sources(body.get("kernels"))
    except ValueError as exc:
        raise BadJob(str(exc)) from exc
    return {
        "machines": list(machines),
        "kernels": list(kernels),
        "mode": mode,
        "optimize": _bool(body, "optimize", True),
        "trace": False,
    }


def _bool(body: dict, name: str, default: bool) -> bool:
    value = body.get(name, default)
    if not isinstance(value, bool):
        raise BadJob(f"'{name}' must be a boolean, got {value!r}")
    return value


def _normalize_inputs(inputs) -> list:
    """Per-lane preloads as ``[[ [address, hex-data], ... ], ...]``."""
    if not isinstance(inputs, list) or not inputs:
        raise BadJob("'inputs' must be a non-empty list of lanes")
    normalized = []
    for lane_no, lane in enumerate(inputs):
        if not isinstance(lane, list):
            raise BadJob(f"lane {lane_no} must be a list of [address, hex] pairs")
        entries = []
        for entry in lane:
            if (not isinstance(entry, (list, tuple)) or len(entry) != 2
                    or not isinstance(entry[0], int) or isinstance(entry[0], bool)
                    or entry[0] < 0 or not isinstance(entry[1], str)):
                raise BadJob(
                    f"lane {lane_no}: each preload must be [address>=0, hex-string]"
                )
            try:
                bytes.fromhex(entry[1])
            except ValueError as exc:
                raise BadJob(
                    f"lane {lane_no}: bad hex data {entry[1]!r}"
                ) from exc
            entries.append([entry[0], entry[1].lower()])
        normalized.append(entries)
    return normalized


# ---------------------------------------------------------------------------
# content keys
# ---------------------------------------------------------------------------


def compute_job_key(kind: str, params: dict) -> tuple[str, bool]:
    """``(key, plain)`` for normalized *params*.

    *plain* run jobs — a bare (machine, source, mode, optimize)
    measurement with default cycle budget and at most one pristine lane
    — key exactly like sweep tasks (:func:`fingerprint`), so the service
    and ``repro sweep`` share artifact-store entries in both directions.
    Everything else gets a :func:`job_fingerprint` under the same
    toolchain-digest + engine-version contract.

    Traced requests key separately from untraced ones (and are never
    *plain*): a store/in-flight hit on an untraced twin could not carry
    the per-request span payload the caller asked for.
    """
    from repro.machine import build_machine

    trace = bool(params.get("trace"))
    if kind == "sweep":
        return job_fingerprint("sweep", {
            "machines": params["machines"],
            "kernels": params["kernels"],
            "mode": params["mode"],
            "optimize": params["optimize"],
        }), False
    machine = build_machine(params["machine"])
    if kind == "compile":
        fp = fingerprint(
            machine, params["_source"], mode="program",
            optimize=params["optimize"],
        )
        if trace:
            return job_fingerprint("compile", {"fingerprint": fp,
                                               "trace": True}), False
        return fp, False
    fp = fingerprint(
        machine, params["_source"], mode=params["mode"],
        optimize=params["optimize"],
    )
    plain = (
        not trace
        and params["inputs"] is None
        and params["lanes"] in (None, 1)
        and params["max_cycles"] == DEFAULT_MAX_CYCLES
    )
    if plain:
        return fp, True
    return job_fingerprint("run", {
        "fingerprint": fp,
        "lanes": params["lanes"],
        "inputs": params["inputs"],
        "max_cycles": params["max_cycles"],
        "trace": trace,
    }), False


# ---------------------------------------------------------------------------
# job execution (child-process side; also callable in-process by tests)
# ---------------------------------------------------------------------------


def execute_job(
    kind: str,
    params: dict,
    *,
    store: ArtifactStore | None = None,
    key: str | None = None,
    plain: bool = False,
    request_id: str | None = None,
) -> dict:
    """Run one job to completion and return its response payload.

    With ``params['trace']`` the whole execution runs under a fresh
    tracer stamped with *request_id* and the span/counter payload rides
    back in ``payload['trace']`` — per-request tracing through the
    worker process boundary.
    """
    if not params.get("trace"):
        with obs.span(f"serve.job.{kind}", request_id=request_id or ""):
            return _execute(kind, params, store, key, plain, request_id)
    ambient = obs.disable()
    tracer = obs.enable(obs.Tracer(process=f"serve-{kind}", request_id=request_id))
    try:
        with tracer.span(f"serve.job.{kind}", request_id=request_id or ""):
            payload = _execute(kind, params, store, key, plain, request_id)
    finally:
        obs.disable()
        if ambient is not None:
            obs.enable(ambient)
    payload["trace"] = tracer.to_payload()
    return payload


def _execute(kind, params, store, key, plain, request_id) -> dict:
    if kind == "compile":
        return _compile_job(params, store, key)
    if kind == "run":
        return _run_job(params, store, key, plain)
    if kind == "sweep":
        return _sweep_job(params, store)
    raise BadJob(f"unknown job kind {kind!r}")


def _compiled_program(params, store):
    """The compiled program, through the shared program cache."""
    from repro.backend import compile_for_machine
    from repro.frontend import compile_source
    from repro.machine import build_machine

    machine = build_machine(params["machine"])
    pkey = fingerprint(
        machine, params["_source"], mode="program", optimize=params["optimize"]
    )
    compiled = store.load_program(pkey) if store is not None else None
    if compiled is None:
        module = compile_source(
            params["_source"],
            module_name=params.get("kernel") or "request",
            optimize=params["optimize"],
        )
        compiled = compile_for_machine(module, machine)
        if store is not None:
            store.store_program(pkey, compiled)
    return machine, compiled


def _compile_job(params, store, key) -> dict:
    from repro.machine import encode_machine

    machine, compiled = _compiled_program(params, store)
    encoding = encode_machine(machine)
    summary = {
        "machine": params["machine"],
        "kernel": params.get("kernel") or "adhoc",
        "instruction_count": compiled.instruction_count,
        "instruction_width": encoding.instruction_width,
        "program_bits": compiled.instruction_count * encoding.instruction_width,
        "fingerprint": key,
    }
    payload = {"result": summary}
    if store is not None and key is not None and not params.get("trace"):
        store.store_json(key, payload)
    return payload


def _run_job(params, store, key, plain) -> dict:
    from repro.fpga import synthesize
    from repro.machine import encode_machine
    from repro.pipeline.executor import result_extras
    from repro.sim import run_compiled
    from repro.sim.batch import run_batch

    machine, compiled = _compiled_program(params, store)
    if params["mode"] == "batch":
        inputs = params["inputs"]
        if inputs is not None:
            decoded = [
                tuple((address, bytes.fromhex(data)) for address, data in lane)
                for lane in inputs
            ]
            results = run_batch(
                compiled, inputs=decoded, max_cycles=params["max_cycles"]
            )
        else:
            results = run_batch(
                compiled, lanes=params["lanes"] or 1,
                max_cycles=params["max_cycles"],
            )
    else:
        results = [
            run_compiled(
                compiled, mode=params["mode"], max_cycles=params["max_cycles"]
            )
        ]
    encoding = encode_machine(machine)
    report = synthesize(machine)
    first = results[0]
    lane_stats = [
        {
            "exit_code": r.exit_code,
            "cycles": r.cycles,
            "stats": result_extras(r),
        }
        for r in results
    ]
    result = {
        "machine": params["machine"],
        "kernel": params.get("kernel") or "adhoc",
        "mode": params["mode"],
        "exit_code": first.exit_code,
        "cycles": first.cycles,
        "instruction_count": compiled.instruction_count,
        "instruction_width": encoding.instruction_width,
        "fmax_mhz": report.fmax_mhz,
        "stats": lane_stats[0]["stats"],
    }
    payload = {"result": result}
    if len(results) > 1:
        payload["results"] = lane_stats
    if store is not None and key is not None and not params.get("trace"):
        if plain and first.exit_code == 0:
            # the exact entry `repro sweep` would write: warm either
            # side, serve the other
            store.store_result(key, EvalResult(
                machine=params["machine"],
                kernel=params.get("kernel") or "adhoc",
                exit_code=first.exit_code,
                cycles=first.cycles,
                instruction_count=compiled.instruction_count,
                instruction_width=encoding.instruction_width,
                fmax_mhz=report.fmax_mhz,
                extras=result_extras(first),
            ))
        else:
            store.store_json(key, payload)
    return payload


def _sweep_job(params, store) -> dict:
    from repro.pipeline import sweep

    outcome = sweep(
        machines=params["machines"],
        kernels=params["kernels"],
        mode=params["mode"],
        optimize=params["optimize"],
        jobs=1,
        store=store,
        use_cache=store is not None,
    )
    return {"result": outcome.to_dict()}


def load_cached_payload(
    kind: str, params: dict, key: str, plain: bool, store: ArtifactStore | None
) -> dict | None:
    """Serve a finished job's payload straight from the artifact store."""
    if store is None or kind == "sweep" or params.get("trace"):
        return None
    if kind == "run" and plain:
        res = store.load_result(key)
        if res is not None:
            return {
                "result": {
                    "machine": params["machine"],
                    "kernel": params.get("kernel") or "adhoc",
                    "mode": params["mode"],
                    "exit_code": res.exit_code,
                    "cycles": res.cycles,
                    "instruction_count": res.instruction_count,
                    "instruction_width": res.instruction_width,
                    "fmax_mhz": res.fmax_mhz,
                    "stats": {
                        k: v for k, v in res.extras.items()
                        if not k.startswith("_")
                    },
                }
            }
    return store.load_json(key)


# ---------------------------------------------------------------------------
# the child process entry point
# ---------------------------------------------------------------------------


def _error_payload(exc: BaseException) -> dict:
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": traceback.format_exc(),
    }


def _child_main(conn, kind, params, store_root, key, plain, request_id) -> None:
    """Execute one job and ship ``(status, payload)`` through *conn*.

    Never raises: every failure becomes a structured verdict so the
    parent can map it to a 4xx/5xx JSON body instead of hanging on a
    silent child death.
    """
    from repro.frontend import CompileError
    from repro.sim.errors import SimError

    status, payload = "error", {}
    try:
        store = ArtifactStore(store_root) if store_root is not None else None
        payload = execute_job(
            kind, params, store=store, key=key, plain=plain,
            request_id=request_id,
        )
        status = "ok"
    except (CompileError, SimError, BadJob, ValueError) as exc:
        # the request's fault (bad program, bad parameters): 4xx
        status, payload = "client_error", _error_payload(exc)
    except BaseException as exc:  # noqa: BLE001 - isolation is the point
        status, payload = "error", _error_payload(exc)
    try:
        conn.send((status, payload))
    except Exception:  # parent gone (cancelled/timed out): nothing to do
        pass
    finally:
        conn.close()


def _job_context():
    """Start-method context for job children.

    ``forkserver`` (preloading this module, so children inherit a warm
    toolchain import) when the platform has it; ``spawn`` otherwise.
    Plain ``fork`` is not safe here: the server process runs an event
    loop plus worker threads.
    """
    methods = multiprocessing.get_all_start_methods()
    if "forkserver" in methods:
        ctx = multiprocessing.get_context("forkserver")
        try:
            ctx.set_forkserver_preload(["repro.serve.jobs"])
        except Exception:  # pragma: no cover - forkserver already running
            pass
        return ctx
    return multiprocessing.get_context("spawn")


# ---------------------------------------------------------------------------
# jobs and the manager
# ---------------------------------------------------------------------------


class Job:
    """One queued/running/finished unit of work."""

    _SLOTTED = (
        "id", "kind", "params", "key", "plain", "state", "cached",
        "result", "error", "request_ids", "timeout_s",
        "created", "started", "finished",
    )

    def __init__(self, job_id, kind, params, key, plain, timeout_s, request_id):
        self.id = job_id
        self.kind = kind
        self.params = params
        self.key = key
        self.plain = plain
        self.state = QUEUED
        self.cached = False
        self.result: dict | None = None
        self.error: dict | None = None
        self.request_ids = [request_id]
        self.timeout_s = timeout_s
        self.created = time.monotonic()
        self.started: float | None = None
        self.finished: float | None = None
        self.done_event = asyncio.Event()
        self.cancel_event = None  # threading.Event, set lazily at run time
        self.cancel_requested = False

    @property
    def finished_state(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def wall_s(self) -> float | None:
        if self.started is None or self.finished is None:
            return None
        return self.finished - self.started

    def describe(self) -> dict:
        """The public ``GET /v1/jobs/<id>`` body (sans schema wrapper)."""
        out: dict = {
            "job_id": self.id,
            "kind": self.kind,
            "state": self.state,
            "cached": self.cached,
            "coalesced_requests": len(self.request_ids) - 1,
            "request_ids": list(self.request_ids),
            "cancel_requested": self.cancel_requested,
        }
        if self.started is not None:
            out["queued_ms"] = round((self.started - self.created) * 1e3, 3)
        if self.wall_s is not None:
            out["run_ms"] = round(self.wall_s * 1e3, 3)
        if self.result is not None:
            out.update(self.result)
        if self.error is not None:
            out["error"] = self.error
        return out


class JobManager:
    """Bounded queue + dedup map + sharded child-process execution.

    All public methods except :meth:`drain` are synchronous and must be
    called from the event-loop thread; submit/cancel are therefore
    atomic with respect to the shard workers (no awaits inside).
    """

    def __init__(
        self,
        *,
        shards: int = 2,
        queue_limit: int = 64,
        job_timeout: float = 300.0,
        store: ArtifactStore | None = None,
        metrics=None,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        if job_timeout <= 0:
            raise ValueError(f"job_timeout must be positive, got {job_timeout}")
        self.shard_count = shards
        self.queue_limit = queue_limit
        self.job_timeout = job_timeout
        self.store = store
        self.metrics = metrics
        self._queues: list[asyncio.Queue] = []
        self._workers: list[asyncio.Task] = []
        self._threads = ThreadPoolExecutor(
            max_workers=shards, thread_name_prefix="serve-job"
        )
        self._ctx = _job_context()
        self._jobs: dict[str, Job] = {}
        self._finished_order: list[str] = []
        self._inflight: dict[str, Job] = {}
        self._active_procs: set = set()
        self._queued = 0
        self._running = 0
        self._next_id = 0
        self._draining = False

    # -- introspection ----------------------------------------------------

    @property
    def queued(self) -> int:
        return self._queued

    @property
    def running(self) -> int:
        return self._running

    @property
    def draining(self) -> bool:
        return self._draining

    def job_states(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for job in self._jobs.values():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def active_process_count(self) -> int:
        return sum(1 for proc in tuple(self._active_procs) if proc.is_alive())

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        self._queues = [asyncio.Queue() for _ in range(self.shard_count)]
        self._workers = [
            asyncio.ensure_future(self._shard_worker(i))
            for i in range(self.shard_count)
        ]

    async def drain(self, timeout: float = 30.0) -> dict:
        """Stop accepting work, let queued+running jobs finish, reap
        stragglers.  Returns ``{"completed", "terminated"}`` counts for
        the drain window."""
        self._draining = True
        before_completed = (self.metrics.jobs_completed + self.metrics.jobs_failed
                            if self.metrics else 0)
        for queue in self._queues:
            queue.put_nowait(None)  # sentinel behind any queued jobs
        done, pending = await asyncio.wait(
            self._workers, timeout=timeout
        ) if self._workers else (set(), set())
        terminated = 0
        if pending:
            # past the grace window: request cancellation of whatever is
            # still running; the poll loops terminate the children
            for job in tuple(self._inflight.values()):
                if job.state == RUNNING:
                    self._request_cancel(job)
                    terminated += 1
            await asyncio.wait(pending, timeout=10.0)
            for task in pending:
                task.cancel()
        self._threads.shutdown(wait=True)
        for proc in tuple(self._active_procs):
            if proc.is_alive():  # pragma: no cover - belt and braces
                proc.kill()
                proc.join(timeout=5)
            self._active_procs.discard(proc)
        completed = ((self.metrics.jobs_completed + self.metrics.jobs_failed
                      if self.metrics else 0) - before_completed)
        return {"completed": completed, "terminated": terminated}

    # -- submission (sync, event-loop thread) -----------------------------

    def submit(self, kind: str, params: dict, request_id: str) -> Job:
        """Dedup, cache-check, enqueue.  Raises :class:`QueueFull` /
        :class:`Draining`; returns the (possibly shared or already
        finished) job."""
        key, plain = compute_job_key(kind, params)
        live = self._inflight.get(key)
        if live is not None:
            live.request_ids.append(request_id)
            if self.metrics:
                self.metrics.coalesced += 1
            obs.count("serve.coalesced")
            return live
        cached = load_cached_payload(kind, params, key, plain, self.store)
        if cached is not None:
            job = self._new_job(kind, params, key, plain, request_id)
            job.state = DONE
            job.cached = True
            job.result = cached
            job.created = job.started = job.finished = time.monotonic()
            job.done_event.set()
            self._register(job)
            self._retire(job)
            if self.metrics:
                self.metrics.cache_hits += 1
            obs.count("serve.cache_hits")
            return job
        if self._draining:
            raise Draining("server is draining")
        if self._queued >= self.queue_limit:
            raise QueueFull(self._queued, self.queue_limit)
        job = self._new_job(kind, params, key, plain, request_id)
        self._register(job)
        self._inflight[key] = job
        self._queued += 1
        shard = int(key[:8], 16) % self.shard_count
        self._queues[shard].put_nowait(job)
        obs.count("serve.submitted")
        return job

    def cancel(self, job_id: str) -> Job | None:
        """Cancel a queued job immediately; flag a running one (its poll
        loop terminates the child within ~``_POLL_S``)."""
        job = self._jobs.get(job_id)
        if job is None:
            return None
        if job.state == QUEUED:
            self._queued -= 1
            self._inflight.pop(job.key, None)
            self._finish(job, CANCELLED, None, {"type": "Cancelled",
                                                "message": "cancelled while queued"})
        elif job.state == RUNNING:
            self._request_cancel(job)
        return job

    # -- internals --------------------------------------------------------

    def _new_job(self, kind, params, key, plain, request_id) -> Job:
        self._next_id += 1
        timeout_s = params.get("timeout_s") or self.job_timeout
        timeout_s = min(timeout_s, self.job_timeout)
        return Job(f"j{self._next_id:06d}", kind, params, key, plain,
                   timeout_s, request_id)

    def _register(self, job: Job) -> None:
        self._jobs[job.id] = job
        while len(self._finished_order) > MAX_FINISHED_JOBS:
            oldest = self._finished_order.pop(0)
            self._jobs.pop(oldest, None)

    def _retire(self, job: Job) -> None:
        self._finished_order.append(job.id)

    def _request_cancel(self, job: Job) -> None:
        job.cancel_requested = True
        if job.cancel_event is not None:
            job.cancel_event.set()

    def _finish(self, job: Job, state: str, result: dict | None,
                error: dict | None) -> None:
        job.state = state
        job.result = result
        job.error = error
        job.finished = time.monotonic()
        job.done_event.set()
        self._retire(job)
        if self.metrics:
            self.metrics.record_job(state, job.wall_s)
        obs.count(f"serve.jobs.{state}")

    async def _shard_worker(self, index: int) -> None:
        import threading

        loop = asyncio.get_running_loop()
        queue = self._queues[index]
        while True:
            job = await queue.get()
            if job is None:
                return  # drain sentinel
            if job.state != QUEUED:  # cancelled while waiting
                continue
            job.state = RUNNING
            job.started = time.monotonic()
            job.cancel_event = threading.Event()
            if job.cancel_requested:  # raced with cancel()
                job.cancel_event.set()
            self._queued -= 1
            self._running += 1
            if self.metrics:
                self.metrics.executed += 1
            obs.count("serve.executed")
            try:
                status, payload = await loop.run_in_executor(
                    self._threads, self._run_in_child, job
                )
            except Exception as exc:  # pragma: no cover - defensive
                status, payload = "error", _error_payload(exc)
            finally:
                self._running -= 1
            self._inflight.pop(job.key, None)
            if status == "ok":
                self._finish(job, DONE, payload, None)
            elif status == "cancelled":
                self._finish(job, CANCELLED, None,
                             {"type": "Cancelled",
                              "message": "cancelled while running"})
            elif status == "timeout":
                self._finish(job, TIMEOUT, None,
                             {"type": "JobTimeout",
                              "message": f"job exceeded its "
                                         f"{job.timeout_s:g}s timeout"})
            else:  # "error" / "client_error"
                payload = dict(payload)
                payload["client_error"] = status == "client_error"
                self._finish(job, FAILED, None, payload)

    def _run_in_child(self, job: Job) -> tuple[str, dict]:
        """Thread-side: run *job* in a dedicated child process, policing
        its timeout and cancellation by polling; the child is terminated
        (then killed) the moment either trips."""
        store_root = str(self.store.root) if self.store is not None else None
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_child_main,
            args=(child_conn, job.kind, job.params, store_root, job.key,
                  job.plain, job.request_ids[0]),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._active_procs.add(proc)
        deadline = time.monotonic() + job.timeout_s
        verdict: tuple[str, dict] | None = None
        try:
            while verdict is None:
                if parent_conn.poll(_POLL_S):
                    try:
                        verdict = parent_conn.recv()
                    except EOFError:
                        verdict = ("error", {
                            "type": "WorkerDied",
                            "message": f"worker exited with code {proc.exitcode}",
                            "traceback": "",
                        })
                elif not proc.is_alive():
                    # one last poll: the child may have sent and exited
                    # between our poll() and is_alive() checks
                    if parent_conn.poll(0):
                        continue
                    verdict = ("error", {
                        "type": "WorkerDied",
                        "message": f"worker exited with code {proc.exitcode}",
                        "traceback": "",
                    })
                elif job.cancel_event.is_set():
                    verdict = ("cancelled", {})
                elif time.monotonic() > deadline:
                    verdict = ("timeout", {})
            if verdict[0] in ("cancelled", "timeout"):
                proc.terminate()
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - SIGTERM ignored
                proc.kill()
                proc.join(timeout=5.0)
        finally:
            parent_conn.close()
            self._active_procs.discard(proc)
        return verdict
