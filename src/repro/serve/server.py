"""The compile-and-simulate service: asyncio HTTP front end.

:class:`ReproServer` binds an ``asyncio.start_server`` listener and
exposes the pipeline over six JSON endpoints:

========================  ====================================================
``GET  /healthz``         liveness (also reports draining state)
``GET  /v1/stats``        queue depth, in-flight, dedup counters, latency
                          percentiles, artifact-store hit/miss
``POST /v1/compile``      compile a kernel for a machine (program summary)
``POST /v1/run``          compile + simulate; ``mode`` checked/fast/turbo/
                          native/batch, optional per-lane ``inputs``
``POST /v1/sweep``        a full (machines × kernels) sweep; async by default
``GET  /v1/jobs/<id>``    poll a job; ``DELETE`` cancels it
========================  ====================================================

Request/response contract:

* bodies and responses are JSON; responses carry
  ``schema_version = SERVE_SCHEMA`` and echo (or mint) an
  ``X-Request-Id`` header that is also threaded into the worker's
  :mod:`repro.obs` spans;
* ``wait`` (default true for compile/run, false for sweep) controls
  whether the response blocks for the result or returns ``202`` with a
  ``job_id`` to poll;
* a full queue answers ``429`` with ``Retry-After`` **without executing
  anything**; a draining server answers ``503``;
* job failures map to status codes by fault domain: bad request
  parameters and uncompilable programs are ``400``, worker crashes are
  ``500``, per-job timeouts are ``504``, cancellations are ``409``.

The server owns one :class:`~repro.serve.jobs.JobManager`; all handler
code runs on the event loop, so manager state needs no locks.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import time

from repro import obs
from repro.pipeline.store import ArtifactStore
from repro.serve.http import (
    STREAM_LIMIT,
    HttpError,
    Request,
    encode_response,
    read_request,
)
from repro.serve.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    RUNNING,
    TIMEOUT,
    BadJob,
    Draining,
    JobManager,
    QueueFull,
    normalize_params,
)
from repro.serve.stats import ServeMetrics

#: bump when the request/response JSON layout changes
SERVE_SCHEMA = 1

#: how long an idle keep-alive connection may sit between requests (s)
IDLE_TIMEOUT = 120.0

#: default cap on request body size (1 MiB)
DEFAULT_MAX_BODY = 1 << 20


def _status_for(job) -> int:
    """Map a terminal job state to its HTTP status."""
    if job.state == DONE:
        return 200
    if job.state == TIMEOUT:
        return 504
    if job.state == CANCELLED:
        return 409
    if job.state == FAILED:
        return 400 if (job.error or {}).get("client_error") else 500
    return 202  # queued / running


class ReproServer:
    """One service instance: listener + job manager + metrics."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        jobs: int = 2,
        queue_limit: int = 64,
        job_timeout: float = 300.0,
        max_body: int = DEFAULT_MAX_BODY,
        drain_grace: float = 30.0,
        store: ArtifactStore | None | str = "default",
    ):
        self.host = host
        self.port = port
        self.max_body = max_body
        self.drain_grace = drain_grace
        if store == "default":
            from repro.pipeline.store import default_store

            store = default_store()
        self.store = store
        self.metrics = ServeMetrics()
        self.manager = JobManager(
            shards=jobs,
            queue_limit=queue_limit,
            job_timeout=job_timeout,
            store=store,
            metrics=self.metrics,
        )
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.Task] = set()
        self._request_ids = itertools.count(1)
        self._draining = False

    # -- lifecycle --------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — useful after binding port 0."""
        if self._server is None:
            raise RuntimeError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> "ReproServer":
        await self.manager.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=STREAM_LIMIT
        )
        self.port = self.address[1]
        return self

    async def drain(self) -> dict:
        """Graceful shutdown: stop accepting connections, let queued and
        running jobs finish (up to ``drain_grace``), terminate
        stragglers, close lingering connections."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        summary = await self.manager.drain(timeout=self.drain_grace)
        if self._connections:
            await asyncio.wait(tuple(self._connections), timeout=5.0)
            for task in tuple(self._connections):
                task.cancel()
        return summary

    # -- connection handling ----------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        read_request(reader, max_body=self.max_body),
                        timeout=IDLE_TIMEOUT,
                    )
                except asyncio.TimeoutError:
                    break
                except HttpError as exc:
                    writer.write(self._error_bytes(exc, self._next_request_id()))
                    await writer.drain()
                    if not exc.keep_alive:
                        break
                    continue
                if request is None:
                    break  # clean EOF
                keep_alive = await self._serve_one(request, writer)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _next_request_id(self) -> str:
        return f"r{next(self._request_ids):06d}-{os.getpid():d}"

    def _error_bytes(self, exc: HttpError, request_id: str) -> bytes:
        return encode_response(
            exc.status,
            {
                "schema_version": SERVE_SCHEMA,
                "error": {"type": "HttpError", "message": exc.message},
            },
            request_id=request_id,
            keep_alive=exc.keep_alive,
        )

    async def _serve_one(self, request: Request, writer) -> bool:
        request_id = request.headers.get("x-request-id") or self._next_request_id()
        started = time.perf_counter()
        route = self._route_label(request)
        with obs.span("serve.request", route=route, request_id=request_id):
            status, payload, extra = await self._dispatch(request, request_id)
        keep_alive = request.keep_alive
        writer.write(
            encode_response(
                status,
                payload,
                request_id=request_id,
                keep_alive=keep_alive,
                extra_headers=extra,
            )
        )
        await writer.drain()
        self.metrics.record_request(route, status, time.perf_counter() - started)
        return keep_alive

    @staticmethod
    def _route_label(request: Request) -> str:
        path = request.path
        if path.startswith("/v1/jobs/"):
            path = "/v1/jobs"
        return f"{request.method} {path}"

    # -- routing ----------------------------------------------------------

    async def _dispatch(
        self, request: Request, request_id: str
    ) -> tuple[int, dict, dict]:
        """Returns ``(status, payload, extra_headers)``."""
        method, path = request.method, request.path
        try:
            if path == "/healthz":
                if method != "GET":
                    return self._method_not_allowed("GET")
                return 200, self._wrap({
                    "status": "draining" if self._draining else "ok",
                }), {}
            if path == "/v1/stats":
                if method != "GET":
                    return self._method_not_allowed("GET")
                return 200, self._wrap(self.stats_snapshot()), {}
            if path in ("/v1/compile", "/v1/run", "/v1/sweep"):
                if method != "POST":
                    return self._method_not_allowed("POST")
                kind = path.rsplit("/", 1)[1]
                return await self._submit(kind, request, request_id)
            if path.startswith("/v1/jobs/"):
                job_id = path[len("/v1/jobs/"):]
                if method == "GET":
                    return self._job_status(job_id)
                if method == "DELETE":
                    return self._job_cancel(job_id)
                return self._method_not_allowed("GET, DELETE")
            return 404, self._error("NotFound", f"no route for {path!r}"), {}
        except HttpError as exc:
            return exc.status, self._error("HttpError", exc.message), {}
        except BadJob as exc:
            return 400, self._error("BadJob", str(exc)), {}

    def _method_not_allowed(self, allow: str) -> tuple[int, dict, dict]:
        return (
            405,
            self._error("MethodNotAllowed", f"allowed: {allow}"),
            {"Allow": allow},
        )

    def _wrap(self, payload: dict) -> dict:
        return {"schema_version": SERVE_SCHEMA, **payload}

    def _error(self, err_type: str, message: str) -> dict:
        return self._wrap({"error": {"type": err_type, "message": message}})

    # -- job endpoints ----------------------------------------------------

    async def _submit(
        self, kind: str, request: Request, request_id: str
    ) -> tuple[int, dict, dict]:
        body = self._parse_body(request)
        declared = body.pop("schema_version", SERVE_SCHEMA)
        if declared != SERVE_SCHEMA:
            raise BadJob(
                f"schema_version {declared!r} not supported "
                f"(this server speaks {SERVE_SCHEMA})"
            )
        wait = body.pop("wait", kind != "sweep")
        if not isinstance(wait, bool):
            raise BadJob(f"'wait' must be a boolean, got {wait!r}")
        params = normalize_params(kind, body)
        try:
            job = self.manager.submit(kind, params, request_id)
        except QueueFull as exc:
            return (
                429,
                self._error("QueueFull", str(exc)),
                {"Retry-After": "1"},
            )
        except Draining as exc:
            return 503, self._error("Draining", str(exc)), {}
        if wait:
            await job.done_event.wait()
        if job.finished_state:
            return _status_for(job), self._wrap(job.describe()), {}
        return 202, self._wrap(job.describe()), {}

    def _parse_body(self, request: Request) -> dict:
        if not request.body:
            raise BadJob("request body required")
        try:
            body = json.loads(request.body)
        except ValueError as exc:
            raise HttpError(400, f"malformed JSON body: {exc}") from None
        if not isinstance(body, dict):
            raise BadJob("request body must be a JSON object")
        return body

    def _job_status(self, job_id: str) -> tuple[int, dict, dict]:
        job = self.manager.get(job_id)
        if job is None:
            return 404, self._error("UnknownJob", f"no job {job_id!r}"), {}
        return _status_for(job), self._wrap(job.describe()), {}

    def _job_cancel(self, job_id: str) -> tuple[int, dict, dict]:
        job = self.manager.cancel(job_id)
        if job is None:
            return 404, self._error("UnknownJob", f"no job {job_id!r}"), {}
        return 200, self._wrap(job.describe()), {}

    # -- stats ------------------------------------------------------------

    def stats_snapshot(self) -> dict:
        snapshot = self.metrics.snapshot()
        snapshot["queue"] = {
            "depth": self.manager.queued,
            "limit": self.manager.queue_limit,
            "in_flight": self.manager.running,
            "shards": self.manager.shard_count,
            "draining": self._draining,
        }
        snapshot["jobs_by_state"] = self.manager.job_states()
        if self.store is not None:
            stats = self.store.stats
            snapshot["store"] = {
                "root": str(self.store.root),
                "hits": stats.hits,
                "misses": stats.misses,
                "writes": stats.writes,
                "corrupt_dropped": stats.corrupt_dropped,
                "entries": self.store.entry_count(),
            }
        else:
            snapshot["store"] = None
        return snapshot
