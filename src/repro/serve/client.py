"""A small stdlib client for the compile-and-simulate service.

:class:`ServeClient` wraps ``http.client`` with the service's JSON
conventions (``schema_version`` stamping, ``X-Request-Id`` propagation,
error objects raised as :class:`ServeError` carrying the HTTP status and
decoded payload).  It is what the test suite, the CI smoke script and
``benchmarks/bench_serve.py`` use — one shared implementation so the
wire contract is exercised the same way everywhere.

The client keeps one persistent keep-alive connection and transparently
reconnects once if the server closed it between requests (idle timeout,
post-413 close).
"""

from __future__ import annotations

import http.client
import json
import time

from repro.serve.server import SERVE_SCHEMA


class ServeError(Exception):
    """A non-2xx response; carries ``status`` and the decoded ``payload``."""

    def __init__(self, status: int, payload: dict, *, headers=None):
        error = payload.get("error", {}) if isinstance(payload, dict) else {}
        message = error.get("message") or f"HTTP {status}"
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload
        self.headers = dict(headers or {})


def encode_inputs(lanes) -> list:
    """Per-lane ``[(address, bytes), ...]`` preloads → wire format.

    The wire format is ``[[ [address, hex-string], ... ], ...]`` —
    JSON-safe and decoded back with ``bytes.fromhex`` server-side.
    """
    return [
        [[address, bytes(data).hex()] for address, data in lane]
        for lane in lanes
    ]


class ServeClient:
    """JSON client for one server address."""

    def __init__(self, host: str, port: int, *, timeout: float = 120.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    # -- plumbing ---------------------------------------------------------

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def raw_request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: dict | None = None,
    ) -> tuple[int, dict, dict]:
        """One request with an arbitrary (possibly malformed) body.

        Returns ``(status, payload, headers)`` without raising on error
        statuses — the error-path tests assert on these directly.
        """
        send_headers = dict(headers or {})
        if body is not None:
            send_headers.setdefault("Content-Type", "application/json")
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=send_headers)
                response = conn.getresponse()
                break
            except (ConnectionError, http.client.HTTPException, OSError):
                # stale keep-alive connection: reconnect once
                self.close()
                if attempt:
                    raise
        data = response.read()
        if response.will_close:
            self.close()
        try:
            payload = json.loads(data) if data else {}
        except ValueError:
            payload = {"raw": data.decode("latin-1")}
        return response.status, payload, dict(response.getheaders())

    def request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        *,
        request_id: str | None = None,
    ) -> dict:
        """One JSON request; raises :class:`ServeError` on non-2xx."""
        headers = {}
        if request_id is not None:
            headers["X-Request-Id"] = request_id
        encoded = None
        if body is not None:
            body = {"schema_version": SERVE_SCHEMA, **body}
            encoded = json.dumps(body).encode()
        status, payload, resp_headers = self.raw_request(
            method, path, encoded, headers
        )
        if status >= 400:
            raise ServeError(status, payload, headers=resp_headers)
        return payload

    # -- endpoints --------------------------------------------------------

    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    def stats(self) -> dict:
        return self.request("GET", "/v1/stats")

    def compile(self, machine: str, *, kernel: str | None = None,
                source: str | None = None, **kwargs) -> dict:
        body = {"machine": machine, **kwargs}
        if kernel is not None:
            body["kernel"] = kernel
        if source is not None:
            body["source"] = source
        return self.request("POST", "/v1/compile", body)

    def run(self, machine: str, *, kernel: str | None = None,
            source: str | None = None, mode: str = "fast", **kwargs) -> dict:
        body = {"machine": machine, "mode": mode, **kwargs}
        if kernel is not None:
            body["kernel"] = kernel
        if source is not None:
            body["source"] = source
        return self.request("POST", "/v1/run", body)

    def sweep(self, *, machines=None, kernels=None, mode: str = "fast",
              **kwargs) -> dict:
        body = {"mode": mode, **kwargs}
        if machines is not None:
            body["machines"] = machines
        if kernels is not None:
            body["kernels"] = kernels
        return self.request("POST", "/v1/sweep", body)

    def job(self, job_id: str) -> dict:
        return self.request("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self.request("DELETE", f"/v1/jobs/{job_id}")

    def wait_job(self, job_id: str, *, timeout: float = 120.0,
                 poll_s: float = 0.05) -> dict:
        """Poll ``GET /v1/jobs/<id>`` until the job reaches a terminal
        state; raises :class:`ServeError` for failed/timed-out/cancelled
        jobs (mirroring a ``wait=true`` submit) and ``TimeoutError`` if
        the client-side budget runs out first."""
        deadline = time.monotonic() + timeout
        while True:
            status, payload, headers = self.raw_request(
                "GET", f"/v1/jobs/{job_id}"
            )
            if status == 202:
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"job {job_id} still {payload.get('state')!r} "
                        f"after {timeout:g}s"
                    )
                time.sleep(poll_s)
                continue
            if status >= 400:
                raise ServeError(status, payload, headers=headers)
            return payload
