"""In-process test harness: a server on a background event loop.

:class:`BackgroundServer` runs a :class:`~repro.serve.server.ReproServer`
on a private asyncio loop in a daemon thread, so synchronous test code
(and the benchmark harness) can drive it with the blocking
:class:`~repro.serve.client.ServeClient` while still reaching into
``server.manager`` / ``server.metrics`` for white-box assertions.
"""

from __future__ import annotations

import asyncio
import threading

from repro.serve.client import ServeClient
from repro.serve.server import ReproServer


class BackgroundServer:
    """``with BackgroundServer(store=...) as bg:`` — serve for the block.

    Exiting the block drains the server (graceful shutdown) and stops
    the loop; the drain summary is kept on ``.drain_summary``.
    """

    def __init__(self, **server_kwargs):
        server_kwargs.setdefault("host", "127.0.0.1")
        server_kwargs.setdefault("port", 0)
        self._kwargs = server_kwargs
        self.server: ReproServer | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self.drain_summary: dict | None = None

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run_loop, name="serve-test-loop", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("background server failed to start")
        return self

    def _run_loop(self) -> None:
        self.loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self.loop)
        self.server = ReproServer(**self._kwargs)
        self.loop.run_until_complete(self.server.start())
        self._started.set()
        self.loop.run_forever()
        # drain scheduled by stop() has completed by the time we get here
        self.loop.close()

    def stop(self, *, drain_timeout: float = 60.0) -> dict | None:
        if self.loop is None or self._thread is None:
            return None
        future = asyncio.run_coroutine_threadsafe(self.server.drain(), self.loop)
        try:
            self.drain_summary = future.result(timeout=drain_timeout)
        finally:
            self.loop.call_soon_threadsafe(self.loop.stop)
            self._thread.join(timeout=30)
        return self.drain_summary

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- conveniences -----------------------------------------------------

    @property
    def host(self) -> str:
        return self.server.address[0]

    @property
    def port(self) -> int:
        return self.server.address[1]

    def client(self, **kwargs) -> ServeClient:
        return ServeClient(self.host, self.port, **kwargs)

    def submit_threadsafe(self, kind: str, params: dict, request_id: str):
        """Call ``manager.submit`` on the loop thread (white-box tests)."""
        future = asyncio.run_coroutine_threadsafe(
            self._submit(kind, params, request_id), self.loop
        )
        return future.result(timeout=30)

    async def _submit(self, kind, params, request_id):
        return self.server.manager.submit(kind, params, request_id)
