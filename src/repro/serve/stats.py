"""Service metrics: request/latency accounting behind ``GET /v1/stats``.

Everything here is mutated from the event-loop thread only (the
connection handlers and the job manager's shard coroutines), so no
locking is needed.  Latencies go into bounded reservoirs — the last
``RESERVOIR_SIZE`` observations per endpoint — and percentiles are
computed on demand by nearest-rank over a sorted copy, which is exact
for the reservoir's contents and plenty for SLO dashboards.
"""

from __future__ import annotations

import time
from collections import deque

#: per-endpoint latency samples retained for percentile queries
RESERVOIR_SIZE = 2048

#: percentile points reported by ``/v1/stats``
PERCENTILES = (50, 90, 99)


class LatencyReservoir:
    """Bounded sample of recent latencies (milliseconds)."""

    def __init__(self, size: int = RESERVOIR_SIZE):
        self._samples: deque[float] = deque(maxlen=size)
        self.count = 0
        self.total_ms = 0.0

    def record(self, ms: float) -> None:
        self._samples.append(ms)
        self.count += 1
        self.total_ms += ms

    def summary(self) -> dict:
        """Percentiles over the retained window plus lifetime count/mean."""
        window = sorted(self._samples)
        out: dict = {
            "count": self.count,
            "mean_ms": round(self.total_ms / self.count, 3) if self.count else 0.0,
        }
        for pct in PERCENTILES:
            if window:
                rank = max(0, -(-pct * len(window) // 100) - 1)  # nearest-rank
                out[f"p{pct}_ms"] = round(window[rank], 3)
            else:
                out[f"p{pct}_ms"] = 0.0
        out["max_ms"] = round(window[-1], 3) if window else 0.0
        return out


class EndpointStats:
    """Request count, error count and latency reservoir for one route."""

    def __init__(self):
        self.count = 0
        self.errors = 0
        self.latency = LatencyReservoir()

    def record(self, status: int, seconds: float) -> None:
        self.count += 1
        if status >= 400:
            self.errors += 1
        self.latency.record(seconds * 1e3)

    def summary(self) -> dict:
        return {
            "count": self.count,
            "errors": self.errors,
            "latency_ms": self.latency.summary(),
        }


class ServeMetrics:
    """All counters the service exposes, owned by the event loop."""

    def __init__(self):
        self.started = time.monotonic()
        self.endpoints: dict[str, EndpointStats] = {}
        # request dedup accounting (the acceptance contract: N identical
        # concurrent requests -> executed grows by exactly 1)
        self.coalesced = 0
        self.cache_hits = 0
        self.executed = 0
        # job terminal states
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.jobs_cancelled = 0
        self.jobs_timeout = 0
        # job execution wall time (successful runs), for /v1/stats
        self.job_latency = LatencyReservoir()

    def record_request(self, route: str, status: int, seconds: float) -> None:
        stats = self.endpoints.get(route)
        if stats is None:
            stats = self.endpoints[route] = EndpointStats()
        stats.record(status, seconds)

    def record_job(self, state: str, wall_s: float | None) -> None:
        field = {
            "done": "jobs_completed",
            "failed": "jobs_failed",
            "cancelled": "jobs_cancelled",
            "timeout": "jobs_timeout",
        }.get(state)
        if field is not None:
            setattr(self, field, getattr(self, field) + 1)
        if state == "done" and wall_s is not None:
            self.job_latency.record(wall_s * 1e3)

    def snapshot(self) -> dict:
        return {
            "uptime_s": round(time.monotonic() - self.started, 3),
            "endpoints": {
                route: stats.summary()
                for route, stats in sorted(self.endpoints.items())
            },
            "dedup": {
                "coalesced": self.coalesced,
                "cache_hits": self.cache_hits,
                "executed": self.executed,
            },
            "jobs": {
                "completed": self.jobs_completed,
                "failed": self.jobs_failed,
                "cancelled": self.jobs_cancelled,
                "timeout": self.jobs_timeout,
                "execution_ms": self.job_latency.summary(),
            },
        }
