"""IR operands, instructions and terminators.

Design notes:

* Non-SSA: virtual registers may be redefined.  Passes that need def-use
  information compute liveness on demand (:mod:`repro.ir.liveness`).
* The arithmetic operation set is exactly the machine's (Table I), so the
  backend lowers almost one-to-one.  Richer C comparisons are synthesised
  by the frontend from ``eq``/``gt``/``gtu`` plus ``xor``.
* Division is not in the operation set; the frontend lowers ``/`` and
  ``%`` to calls into a MiniC runtime library (software emulation, as TCE
  does for operations missing from a datapath).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

#: Binary IR operations (subset of the ALU repertoire).
BINARY_OPS = frozenset(
    {"add", "sub", "mul", "and", "ior", "xor", "eq", "gt", "gtu", "shl", "shr", "shru"}
)
#: Unary IR operations.
UNARY_OPS = frozenset({"sxhw", "sxqw"})
#: Load operations with their access width and signedness.
LOAD_OPS = frozenset({"ldw", "ldh", "ldq", "ldqu", "ldhu"})
#: Store operations.
STORE_OPS = frozenset({"stw", "sth", "stq"})


@dataclass(frozen=True)
class VReg:
    """A virtual register (32-bit)."""

    id: int

    def __repr__(self) -> str:
        return f"%v{self.id}"


@dataclass(frozen=True)
class Const:
    """An integer literal operand (stored unwrapped; consumers mask)."""

    value: int

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Sym:
    """The address of a global object (resolved at memory layout time)."""

    name: str

    def __repr__(self) -> str:
        return f"@{self.name}"


Operand = Union[VReg, Const, Sym]


class Instr:
    """Base class of straight-line IR instructions."""

    def uses(self) -> tuple[VReg, ...]:
        """Virtual registers read by this instruction."""
        raise NotImplementedError

    def defs(self) -> tuple[VReg, ...]:
        """Virtual registers written by this instruction."""
        raise NotImplementedError

    def operands(self) -> tuple[Operand, ...]:
        """All value operands, in evaluation order."""
        raise NotImplementedError

    @property
    def has_side_effects(self) -> bool:
        """True when the instruction cannot be removed even if dead."""
        return False


def _regs(*operands: Operand) -> tuple[VReg, ...]:
    return tuple(op for op in operands if isinstance(op, VReg))


@dataclass
class BinOp(Instr):
    """``dest = op(a, b)`` -- pure two-operand arithmetic."""

    op: str
    dest: VReg
    a: Operand
    b: Operand

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise ValueError(f"unknown binary op {self.op!r}")

    def uses(self) -> tuple[VReg, ...]:
        return _regs(self.a, self.b)

    def defs(self) -> tuple[VReg, ...]:
        return (self.dest,)

    def operands(self) -> tuple[Operand, ...]:
        return (self.a, self.b)

    def __repr__(self) -> str:
        return f"{self.dest} = {self.op} {self.a}, {self.b}"


@dataclass
class UnOp(Instr):
    """``dest = op(a)`` -- pure one-operand arithmetic (sign extensions)."""

    op: str
    dest: VReg
    a: Operand

    def __post_init__(self) -> None:
        if self.op not in UNARY_OPS:
            raise ValueError(f"unknown unary op {self.op!r}")

    def uses(self) -> tuple[VReg, ...]:
        return _regs(self.a)

    def defs(self) -> tuple[VReg, ...]:
        return (self.dest,)

    def operands(self) -> tuple[Operand, ...]:
        return (self.a,)

    def __repr__(self) -> str:
        return f"{self.dest} = {self.op} {self.a}"


@dataclass
class Copy(Instr):
    """``dest = src`` -- register copy or constant/symbol materialisation."""

    dest: VReg
    src: Operand

    def uses(self) -> tuple[VReg, ...]:
        return _regs(self.src)

    def defs(self) -> tuple[VReg, ...]:
        return (self.dest,)

    def operands(self) -> tuple[Operand, ...]:
        return (self.src,)

    def __repr__(self) -> str:
        return f"{self.dest} = {self.src}"


@dataclass
class Load(Instr):
    """``dest = op [addr]`` -- memory load (absolute byte address)."""

    op: str
    dest: VReg
    addr: Operand

    def __post_init__(self) -> None:
        if self.op not in LOAD_OPS:
            raise ValueError(f"unknown load op {self.op!r}")

    def uses(self) -> tuple[VReg, ...]:
        return _regs(self.addr)

    def defs(self) -> tuple[VReg, ...]:
        return (self.dest,)

    def operands(self) -> tuple[Operand, ...]:
        return (self.addr,)

    @property
    def has_side_effects(self) -> bool:
        # Loads are kept ordered against stores but a dead load is removable.
        return False

    def __repr__(self) -> str:
        return f"{self.dest} = {self.op} [{self.addr}]"


@dataclass
class Store(Instr):
    """``op [addr] = value`` -- memory store."""

    op: str
    addr: Operand
    value: Operand

    def __post_init__(self) -> None:
        if self.op not in STORE_OPS:
            raise ValueError(f"unknown store op {self.op!r}")

    def uses(self) -> tuple[VReg, ...]:
        return _regs(self.addr, self.value)

    def defs(self) -> tuple[VReg, ...]:
        return ()

    def operands(self) -> tuple[Operand, ...]:
        return (self.addr, self.value)

    @property
    def has_side_effects(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"{self.op} [{self.addr}] = {self.value}"


@dataclass
class Call(Instr):
    """``dest = call callee(args...)`` (dest may be None)."""

    dest: VReg | None
    callee: str
    args: list[Operand] = field(default_factory=list)

    def uses(self) -> tuple[VReg, ...]:
        return _regs(*self.args)

    def defs(self) -> tuple[VReg, ...]:
        return (self.dest,) if self.dest is not None else ()

    def operands(self) -> tuple[Operand, ...]:
        return tuple(self.args)

    @property
    def has_side_effects(self) -> bool:
        return True

    def __repr__(self) -> str:
        args = ", ".join(map(repr, self.args))
        prefix = f"{self.dest} = " if self.dest is not None else ""
        return f"{prefix}call {self.callee}({args})"


@dataclass
class FrameAddr(Instr):
    """``dest = &frame[slot]`` -- address of a stack-frame slot."""

    dest: VReg
    slot: str

    def uses(self) -> tuple[VReg, ...]:
        return ()

    def defs(self) -> tuple[VReg, ...]:
        return (self.dest,)

    def operands(self) -> tuple[Operand, ...]:
        return ()

    def __repr__(self) -> str:
        return f"{self.dest} = frameaddr {self.slot}"


class Terminator:
    """Base class of block terminators."""

    def uses(self) -> tuple[VReg, ...]:
        return ()

    def successors(self) -> tuple[str, ...]:
        return ()


@dataclass
class Jump(Terminator):
    """Unconditional branch to *target*."""

    target: str

    def successors(self) -> tuple[str, ...]:
        return (self.target,)

    def __repr__(self) -> str:
        return f"jump {self.target}"


@dataclass
class CJump(Terminator):
    """Branch to *true_target* when *cond* is non-zero, else *false_target*."""

    cond: Operand
    true_target: str
    false_target: str

    def uses(self) -> tuple[VReg, ...]:
        return _regs(self.cond)

    def successors(self) -> tuple[str, ...]:
        return (self.true_target, self.false_target)

    def __repr__(self) -> str:
        return f"cjump {self.cond} ? {self.true_target} : {self.false_target}"


@dataclass
class Ret(Terminator):
    """Return from the function, optionally with a value."""

    value: Operand | None = None

    def uses(self) -> tuple[VReg, ...]:
        return _regs(self.value) if isinstance(self.value, VReg) else ()

    def __repr__(self) -> str:
        return f"ret {self.value}" if self.value is not None else "ret"
