"""Convenience builder for constructing IR by hand (tests, examples)."""

from __future__ import annotations

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    BinOp,
    Call,
    CJump,
    Const,
    Copy,
    FrameAddr,
    Jump,
    Load,
    Operand,
    Ret,
    Store,
    UnOp,
    VReg,
)


class IRBuilder:
    """Appends instructions to a current insertion block.

    Example::

        fn = Function("square", num_params=1)
        b = IRBuilder(fn)
        b.set_block(fn.new_block("entry"))
        result = b.binop("mul", fn.params[0], fn.params[0])
        b.ret(result)
    """

    def __init__(self, function: Function) -> None:
        self.function = function
        self.block: BasicBlock | None = None

    def set_block(self, block: BasicBlock) -> BasicBlock:
        self.block = block
        return block

    def _emit(self, instr) -> None:
        if self.block is None:
            raise ValueError("no insertion block set")
        self.block.append(instr)

    # ---- instruction helpers ---------------------------------------------

    def binop(self, op: str, a: Operand, b: Operand, dest: VReg | None = None) -> VReg:
        dest = dest or self.function.new_vreg()
        self._emit(BinOp(op, dest, a, b))
        return dest

    def unop(self, op: str, a: Operand, dest: VReg | None = None) -> VReg:
        dest = dest or self.function.new_vreg()
        self._emit(UnOp(op, dest, a))
        return dest

    def copy(self, src: Operand, dest: VReg | None = None) -> VReg:
        dest = dest or self.function.new_vreg()
        self._emit(Copy(dest, src))
        return dest

    def const(self, value: int, dest: VReg | None = None) -> VReg:
        return self.copy(Const(value), dest)

    def load(self, op: str, addr: Operand, dest: VReg | None = None) -> VReg:
        dest = dest or self.function.new_vreg()
        self._emit(Load(op, dest, addr))
        return dest

    def store(self, op: str, addr: Operand, value: Operand) -> None:
        self._emit(Store(op, addr, value))

    def call(self, callee: str, args: list[Operand], want_result: bool = True) -> VReg | None:
        dest = self.function.new_vreg() if want_result else None
        self._emit(Call(dest, callee, list(args)))
        return dest

    def frame_addr(self, slot: str, dest: VReg | None = None) -> VReg:
        dest = dest or self.function.new_vreg()
        self._emit(FrameAddr(dest, slot))
        return dest

    # ---- terminators -------------------------------------------------------

    def jump(self, target: BasicBlock | str) -> None:
        name = target.name if isinstance(target, BasicBlock) else target
        if self.block is None:
            raise ValueError("no insertion block set")
        self.block.terminator = Jump(name)

    def cjump(
        self,
        cond: Operand,
        true_target: BasicBlock | str,
        false_target: BasicBlock | str,
    ) -> None:
        tname = true_target.name if isinstance(true_target, BasicBlock) else true_target
        fname = false_target.name if isinstance(false_target, BasicBlock) else false_target
        if self.block is None:
            raise ValueError("no insertion block set")
        self.block.terminator = CJump(cond, tname, fname)

    def ret(self, value: Operand | None = None) -> None:
        if self.block is None:
            raise ValueError("no insertion block set")
        self.block.terminator = Ret(value)
