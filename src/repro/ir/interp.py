"""Reference IR interpreter -- the semantic oracle of the whole stack.

Programs executed here must produce bit-identical results to the same
programs compiled and run on any of the TTA/VLIW/scalar simulators; the
test suite enforces this by differential testing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.semantics import MASK32, evaluate, sext8, sext16
from repro.ir.function import Function
from repro.ir.instructions import (
    BinOp,
    Call,
    CJump,
    Const,
    Copy,
    FrameAddr,
    Jump,
    Load,
    Operand,
    Ret,
    Store,
    Sym,
    UnOp,
    VReg,
)
from repro.ir.module import Module

#: Default data-memory size (bytes): 1 MiB data + stack.
DEFAULT_MEMORY = 1 << 20
#: Default stack top (grows downward).
DEFAULT_STACK_TOP = DEFAULT_MEMORY - 16


class InterpError(RuntimeError):
    """Raised on invalid programs or runaway execution."""


@dataclass
class InterpStats:
    """Dynamic execution statistics."""

    instructions: int = 0
    calls: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    per_op: dict[str, int] = field(default_factory=dict)

    def count(self, op: str) -> None:
        self.per_op[op] = self.per_op.get(op, 0) + 1


class Interpreter:
    """Executes an IR module with a flat byte-addressed data memory.

    Args:
        module: verified IR module.
        memory_size: data memory size in bytes.
        max_steps: dynamic IR instruction budget (guards against runaway
            loops in generated test programs).
    """

    def __init__(
        self,
        module: Module,
        memory_size: int = DEFAULT_MEMORY,
        max_steps: int = 200_000_000,
    ) -> None:
        module.verify()
        self.module = module
        self.memory = bytearray(memory_size)
        self.symbols = module.layout_globals()
        self.stats = InterpStats()
        self.max_steps = max_steps
        self._sp = DEFAULT_STACK_TOP if memory_size >= DEFAULT_MEMORY else memory_size - 16
        for name, var in module.globals.items():
            addr = self.symbols[name]
            self.memory[addr : addr + len(var.init)] = var.init

    # ---- memory access ----------------------------------------------------

    def _check(self, addr: int, size: int) -> None:
        if addr < 0 or addr + size > len(self.memory):
            raise InterpError(f"memory access out of range: addr={addr:#x} size={size}")

    def load(self, op: str, addr: int) -> int:
        addr &= MASK32
        self.stats.loads += 1
        if op == "ldw":
            self._check(addr, 4)
            return int.from_bytes(self.memory[addr : addr + 4], "little")
        if op in ("ldh", "ldhu"):
            self._check(addr, 2)
            raw = int.from_bytes(self.memory[addr : addr + 2], "little")
            return sext16(raw) if op == "ldh" else raw
        if op in ("ldq", "ldqu"):
            self._check(addr, 1)
            raw = self.memory[addr]
            return sext8(raw) if op == "ldq" else raw
        raise InterpError(f"unknown load op {op}")

    def store(self, op: str, addr: int, value: int) -> None:
        addr &= MASK32
        value &= MASK32
        self.stats.stores += 1
        if op == "stw":
            self._check(addr, 4)
            self.memory[addr : addr + 4] = value.to_bytes(4, "little")
        elif op == "sth":
            self._check(addr, 2)
            self.memory[addr : addr + 2] = (value & 0xFFFF).to_bytes(2, "little")
        elif op == "stq":
            self._check(addr, 1)
            self.memory[addr] = value & 0xFF
        else:
            raise InterpError(f"unknown store op {op}")

    # ---- execution ----------------------------------------------------------

    def run(self, args: list[int] | None = None, entry: str | None = None) -> int:
        """Execute the module's entry function; returns its (u32) result."""
        entry = entry or self.module.entry
        result = self.call(entry, [a & MASK32 for a in (args or [])])
        return result if result is not None else 0

    def call(self, name: str, args: list[int]) -> int | None:
        function = self.module.functions.get(name)
        if function is None:
            raise InterpError(f"call to undefined function {name!r}")
        if len(args) != len(function.params):
            raise InterpError(
                f"{name} expects {len(function.params)} args, got {len(args)}"
            )
        self.stats.calls += 1

        # Lay out this activation's frame slots on the downward stack.
        saved_sp = self._sp
        slot_addr: dict[str, int] = {}
        sp = self._sp
        for slot in function.frame_slots.values():
            sp -= slot.size
            sp -= sp % slot.align
            slot_addr[slot.name] = sp
        if sp < 0:
            raise InterpError("stack overflow")
        self._sp = sp

        env: dict[VReg, int] = dict(zip(function.params, args))
        block = function.entry
        try:
            while True:
                for instr in block.instrs:
                    self._step(function, instr, env, slot_addr)
                term = block.terminator
                self.stats.instructions += 1
                if self.stats.instructions > self.max_steps:
                    raise InterpError(f"step budget exceeded in {name}")
                if isinstance(term, Ret):
                    if term.value is None:
                        return None
                    return self._value(term.value, env)
                self.stats.branches += 1
                if isinstance(term, Jump):
                    block = function.blocks[term.target]
                elif isinstance(term, CJump):
                    taken = self._value(term.cond, env) != 0
                    block = function.blocks[term.true_target if taken else term.false_target]
                else:  # pragma: no cover - verify() excludes this
                    raise InterpError(f"bad terminator {term!r}")
        finally:
            self._sp = saved_sp

    def _value(self, operand: Operand, env: dict[VReg, int]) -> int:
        if isinstance(operand, VReg):
            try:
                return env[operand]
            except KeyError:
                raise InterpError(f"read of undefined vreg {operand}") from None
        if isinstance(operand, Const):
            return operand.value & MASK32
        if isinstance(operand, Sym):
            try:
                return self.symbols[operand.name]
            except KeyError:
                raise InterpError(f"undefined symbol {operand.name}") from None
        raise InterpError(f"bad operand {operand!r}")

    def _step(
        self,
        function: Function,
        instr,
        env: dict[VReg, int],
        slot_addr: dict[str, int],
    ) -> None:
        self.stats.instructions += 1
        if self.stats.instructions > self.max_steps:
            raise InterpError(f"step budget exceeded in {function.name}")
        if isinstance(instr, BinOp):
            self.stats.count(instr.op)
            env[instr.dest] = evaluate(
                instr.op, (self._value(instr.a, env), self._value(instr.b, env))
            )
        elif isinstance(instr, Copy):
            env[instr.dest] = self._value(instr.src, env)
        elif isinstance(instr, UnOp):
            self.stats.count(instr.op)
            env[instr.dest] = evaluate(instr.op, (self._value(instr.a, env),))
        elif isinstance(instr, Load):
            self.stats.count(instr.op)
            env[instr.dest] = self.load(instr.op, self._value(instr.addr, env))
        elif isinstance(instr, Store):
            self.stats.count(instr.op)
            self.store(instr.op, self._value(instr.addr, env), self._value(instr.value, env))
        elif isinstance(instr, Call):
            result = self.call(instr.callee, [self._value(a, env) for a in instr.args])
            if instr.dest is not None:
                env[instr.dest] = result if result is not None else 0
        elif isinstance(instr, FrameAddr):
            env[instr.dest] = slot_addr[instr.slot]
        else:
            raise InterpError(f"unknown instruction {instr!r}")
