"""IR optimisation passes.

The pipeline mirrors what the paper's TCE/LLVM flow does at -O3 for the
parts that matter to the evaluation: aggressive local simplification,
global dead-code elimination, control-flow cleanup, and whole-program
pruning of unreachable functions (the effect the paper credits for the
small TTA program images, e.g. blowfish).
"""

from repro.ir.passes.local import const_fold, copy_prop, local_cse, strength_reduce
from repro.ir.passes.dce import dead_code_elim
from repro.ir.passes.simplifycfg import simplify_cfg
from repro.ir.passes.prune import prune_unreachable_functions
from repro.ir.passes.pipeline import optimize_function, optimize_module

__all__ = [
    "const_fold",
    "copy_prop",
    "dead_code_elim",
    "local_cse",
    "optimize_function",
    "optimize_module",
    "prune_unreachable_functions",
    "simplify_cfg",
    "strength_reduce",
]
