"""The standard optimisation pipeline."""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.passes.dce import dead_code_elim
from repro.ir.passes.local import const_fold, copy_prop, local_cse, strength_reduce
from repro.ir.passes.prune import prune_unreachable_functions
from repro.ir.passes.simplifycfg import simplify_cfg

#: Safety bound on fixpoint iteration.
_MAX_ROUNDS = 8


def optimize_function(function: Function) -> None:
    """Run the per-function pass pipeline to a fixpoint."""
    for _ in range(_MAX_ROUNDS):
        changed = False
        changed |= simplify_cfg(function)
        changed |= const_fold(function)
        changed |= copy_prop(function)
        changed |= strength_reduce(function)
        changed |= local_cse(function)
        changed |= dead_code_elim(function)
        if not changed:
            break
    function.verify()


def optimize_module(module: Module) -> None:
    """Optimise every function and prune unreachable ones."""
    prune_unreachable_functions(module)
    for function in module.functions.values():
        optimize_function(function)
    module.verify()
