"""The standard optimisation pipeline."""

from __future__ import annotations

from repro import obs
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.passes.dce import dead_code_elim
from repro.ir.passes.local import const_fold, copy_prop, local_cse, strength_reduce
from repro.ir.passes.prune import prune_unreachable_functions
from repro.ir.passes.simplifycfg import simplify_cfg

#: Safety bound on fixpoint iteration.
_MAX_ROUNDS = 8

#: the per-function pass pipeline, in application order
_PASSES = (
    ("simplify_cfg", simplify_cfg),
    ("const_fold", const_fold),
    ("copy_prop", copy_prop),
    ("strength_reduce", strength_reduce),
    ("local_cse", local_cse),
    ("dce", dead_code_elim),
)


def optimize_function(function: Function) -> None:
    """Run the per-function pass pipeline to a fixpoint.

    When tracing is enabled each pass application gets its own span
    (``ir.pass.<name>``) and a ``ir.pass.<name>.changed`` counter, so a
    compile trace shows exactly where optimisation time goes and which
    passes still find work in late rounds.
    """
    for _ in range(_MAX_ROUNDS):
        changed = False
        for name, pass_fn in _PASSES:
            with obs.span(f"ir.pass.{name}", function=function.name):
                pass_changed = pass_fn(function)
            if pass_changed:
                obs.count(f"ir.pass.{name}.changed")
            changed |= pass_changed
        obs.count("ir.rounds")
        if not changed:
            break
    function.verify()


def optimize_module(module: Module) -> None:
    """Optimise every function and prune unreachable ones."""
    with obs.span("ir.pass.prune_unreachable"):
        prune_unreachable_functions(module)
    for function in module.functions.values():
        optimize_function(function)
    module.verify()
