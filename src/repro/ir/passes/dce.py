"""Global dead-code elimination based on liveness."""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import BinOp, Copy, FrameAddr, Load, UnOp
from repro.ir.liveness import compute_liveness

_PURE = (BinOp, UnOp, Copy, FrameAddr, Load)


def dead_code_elim(function: Function) -> bool:
    """Remove pure instructions whose results are never used."""
    changed = False
    # Iterate: removing one dead instruction can make its inputs dead too.
    while True:
        _, live_out = compute_liveness(function)
        removed = False
        for block in function.ordered_blocks():
            live = set(live_out[block.name])
            if block.terminator is not None:
                live.update(block.terminator.uses())
            keep = []
            for instr in reversed(block.instrs):
                defs = instr.defs()
                if isinstance(instr, _PURE) and defs and not any(d in live for d in defs):
                    removed = True
                    continue
                live.difference_update(defs)
                live.update(instr.uses())
                keep.append(instr)
            keep.reverse()
            if len(keep) != len(block.instrs):
                block.instrs = keep
        if not removed:
            break
        changed = True
    return changed
