"""Control-flow graph cleanup."""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import CJump, Jump


def simplify_cfg(function: Function) -> bool:
    """Remove unreachable blocks, thread trivial jumps, merge chains."""
    changed = False
    while True:
        pass_changed = False
        pass_changed |= _remove_unreachable(function)
        pass_changed |= _fold_trivial_cjumps(function)
        pass_changed |= _thread_jumps(function)
        pass_changed |= _merge_chains(function)
        if not pass_changed:
            break
        changed = True
    return changed


def _remove_unreachable(function: Function) -> bool:
    reachable: set[str] = set()
    stack = [function.block_order[0]]
    while stack:
        name = stack.pop()
        if name in reachable:
            continue
        reachable.add(name)
        stack.extend(function.blocks[name].successors())
    dead = [name for name in function.block_order if name not in reachable]
    for name in dead:
        function.remove_block(name)
    return bool(dead)


def _fold_trivial_cjumps(function: Function) -> bool:
    changed = False
    for block in function.ordered_blocks():
        term = block.terminator
        if isinstance(term, CJump) and term.true_target == term.false_target:
            block.terminator = Jump(term.true_target)
            changed = True
    return changed


def _jump_target(function: Function, name: str, seen: set[str]) -> str:
    """Follow chains of empty jump-only blocks."""
    while name not in seen:
        block = function.blocks[name]
        if block.instrs or not isinstance(block.terminator, Jump):
            break
        seen.add(name)
        name = block.terminator.target
    return name


def _thread_jumps(function: Function) -> bool:
    changed = False
    for block in function.ordered_blocks():
        term = block.terminator
        if isinstance(term, Jump):
            target = _jump_target(function, term.target, {block.name})
            if target != term.target:
                term.target = target
                changed = True
        elif isinstance(term, CJump):
            true_target = _jump_target(function, term.true_target, {block.name})
            false_target = _jump_target(function, term.false_target, {block.name})
            if true_target != term.true_target or false_target != term.false_target:
                term.true_target = true_target
                term.false_target = false_target
                changed = True
    return changed


def _merge_chains(function: Function) -> bool:
    changed = False
    while True:
        preds = function.predecessors()
        merged = False
        for block in function.ordered_blocks():
            term = block.terminator
            if not isinstance(term, Jump):
                continue
            succ_name = term.target
            if succ_name == block.name or succ_name == function.block_order[0]:
                continue
            if len(preds[succ_name]) != 1:
                continue
            succ = function.blocks[succ_name]
            block.instrs.extend(succ.instrs)
            block.terminator = succ.terminator
            function.remove_block(succ_name)
            merged = True
            changed = True
            break
        if not merged:
            return changed
