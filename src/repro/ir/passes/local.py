"""Local (per-basic-block) optimisations.

All four passes are forward scans with an environment that is killed at
definitions -- safe in the non-SSA IR.  Each returns True when it changed
the function.
"""

from __future__ import annotations

from repro.isa.semantics import evaluate
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    BinOp,
    Call,
    CJump,
    Const,
    Copy,
    FrameAddr,
    Jump,
    Load,
    Operand,
    Store,
    UnOp,
    VReg,
)

_COMMUTATIVE = frozenset({"add", "mul", "and", "ior", "xor", "eq"})


def _sub_operand(operand: Operand, env: dict[VReg, Const]) -> Operand:
    if isinstance(operand, VReg) and operand in env:
        return env[operand]
    return operand


def const_fold(function: Function) -> bool:
    """Fold constant expressions and propagate constants within blocks."""
    changed = False
    for block in function.ordered_blocks():
        env: dict[VReg, Const] = {}
        new_instrs = []
        for instr in block.instrs:
            instr, block_changed = _fold_instr(instr, env)
            changed |= block_changed
            new_instrs.append(instr)
        block.instrs = new_instrs
        term = block.terminator
        if isinstance(term, CJump):
            cond = _sub_operand(term.cond, env)
            if isinstance(cond, Const):
                target = term.true_target if (cond.value & 0xFFFFFFFF) != 0 else term.false_target
                block.terminator = Jump(target)
                changed = True
            elif cond is not term.cond:
                term.cond = cond
                changed = True
    return changed


def _fold_instr(instr, env: dict[VReg, Const]):
    changed = False
    if isinstance(instr, BinOp):
        a, b = _sub_operand(instr.a, env), _sub_operand(instr.b, env)
        if a is not instr.a or b is not instr.b:
            instr.a, instr.b = a, b
            changed = True
        if isinstance(a, Const) and isinstance(b, Const):
            value = evaluate(instr.op, (a.value, b.value))
            env.pop(instr.dest, None)
            env[instr.dest] = Const(value)
            return Copy(instr.dest, Const(value)), True
        env.pop(instr.dest, None)
        return instr, changed
    if isinstance(instr, UnOp):
        a = _sub_operand(instr.a, env)
        if a is not instr.a:
            instr.a = a
            changed = True
        if isinstance(a, Const):
            value = evaluate(instr.op, (a.value,))
            env[instr.dest] = Const(value)
            return Copy(instr.dest, Const(value)), True
        env.pop(instr.dest, None)
        return instr, changed
    if isinstance(instr, Copy):
        src = _sub_operand(instr.src, env)
        if src is not instr.src:
            instr.src = src
            changed = True
        if isinstance(src, Const):
            env[instr.dest] = src
        else:
            env.pop(instr.dest, None)
        return instr, changed
    if isinstance(instr, Load):
        addr = _sub_operand(instr.addr, env)
        if addr is not instr.addr:
            instr.addr = addr
            changed = True
        env.pop(instr.dest, None)
        return instr, changed
    if isinstance(instr, Store):
        addr = _sub_operand(instr.addr, env)
        value = _sub_operand(instr.value, env)
        if addr is not instr.addr or value is not instr.value:
            instr.addr, instr.value = addr, value
            changed = True
        return instr, changed
    if isinstance(instr, Call):
        new_args = [_sub_operand(a, env) for a in instr.args]
        if any(n is not o for n, o in zip(new_args, instr.args)):
            instr.args = new_args
            changed = True
        if instr.dest is not None:
            env.pop(instr.dest, None)
        return instr, changed
    if isinstance(instr, FrameAddr):
        env.pop(instr.dest, None)
        return instr, changed
    return instr, changed


def copy_prop(function: Function) -> bool:
    """Forward-propagate register copies within blocks."""
    changed = False
    for block in function.ordered_blocks():
        env: dict[VReg, VReg] = {}

        def resolve(reg: VReg) -> VReg:
            seen = set()
            while reg in env and reg not in seen:
                seen.add(reg)
                reg = env[reg]
            return reg

        def kill(reg: VReg) -> None:
            env.pop(reg, None)
            for key in [k for k, v in env.items() if v == reg]:
                del env[key]

        for instr in block.instrs:
            # Substitute uses.
            for attr in _reg_operand_attrs(instr):
                value = getattr(instr, attr)
                if isinstance(value, VReg):
                    resolved = resolve(value)
                    if resolved != value:
                        setattr(instr, attr, resolved)
                        changed = True
            if isinstance(instr, Call):
                new_args = []
                for arg in instr.args:
                    if isinstance(arg, VReg):
                        resolved = resolve(arg)
                        changed |= resolved != arg
                        new_args.append(resolved)
                    else:
                        new_args.append(arg)
                instr.args = new_args
            # Record/kill definitions.
            for dest in instr.defs():
                kill(dest)
            if isinstance(instr, Copy) and isinstance(instr.src, VReg) and instr.src != instr.dest:
                env[instr.dest] = instr.src
        term = block.terminator
        if isinstance(term, CJump) and isinstance(term.cond, VReg):
            resolved = resolve(term.cond)
            if resolved != term.cond:
                term.cond = resolved
                changed = True
        from repro.ir.instructions import Ret

        if isinstance(term, Ret) and isinstance(term.value, VReg):
            resolved = resolve(term.value)
            if resolved != term.value:
                term.value = resolved
                changed = True
    return changed


def _reg_operand_attrs(instr) -> tuple[str, ...]:
    if isinstance(instr, BinOp):
        return ("a", "b")
    if isinstance(instr, UnOp):
        return ("a",)
    if isinstance(instr, Copy):
        return ("src",)
    if isinstance(instr, Load):
        return ("addr",)
    if isinstance(instr, Store):
        return ("addr", "value")
    return ()


def _operand_key(operand: Operand):
    if isinstance(operand, VReg):
        return ("r", operand.id)
    if isinstance(operand, Const):
        return ("c", operand.value & 0xFFFFFFFF)
    return ("s", operand.name)


def local_cse(function: Function) -> bool:
    """Common-subexpression elimination within blocks (pure ops only)."""
    changed = False
    for block in function.ordered_blocks():
        table: dict[tuple, VReg] = {}
        new_instrs = []
        for instr in block.instrs:
            if isinstance(instr, (BinOp, UnOp)):
                if isinstance(instr, BinOp):
                    key_ops = [_operand_key(instr.a), _operand_key(instr.b)]
                    if instr.op in _COMMUTATIVE:
                        key_ops.sort()
                    key = (instr.op, *key_ops)
                else:
                    key = (instr.op, _operand_key(instr.a))
                existing = table.get(key)
                if existing is not None and existing != instr.dest:
                    new_instrs.append(Copy(instr.dest, existing))
                    _invalidate(table, instr.dest)
                    changed = True
                    continue
                _invalidate(table, instr.dest)
                table[key] = instr.dest
                new_instrs.append(instr)
                continue
            for dest in instr.defs():
                _invalidate(table, dest)
            new_instrs.append(instr)
        block.instrs = new_instrs
    return changed


def _invalidate(table: dict[tuple, VReg], reg: VReg) -> None:
    reg_key = ("r", reg.id)
    stale = [
        key
        for key, value in table.items()
        if value == reg or reg_key in key[1:]
    ]
    for key in stale:
        del table[key]


def strength_reduce(function: Function) -> bool:
    """Algebraic identities and multiply-to-shift strength reduction."""
    changed = False
    for block in function.ordered_blocks():
        new_instrs = []
        for instr in block.instrs:
            if isinstance(instr, BinOp):
                replacement = _reduce_binop(instr)
                if replacement is not None:
                    new_instrs.append(replacement)
                    changed = True
                    continue
            new_instrs.append(instr)
        block.instrs = new_instrs
    return changed


def _reduce_binop(instr: BinOp):
    op, a, b = instr.op, instr.a, instr.b
    # Canonicalise constants to the right for commutative ops.
    if op in _COMMUTATIVE and isinstance(a, Const) and not isinstance(b, Const):
        instr.a, instr.b = b, a
        a, b = instr.a, instr.b
    if not isinstance(b, Const):
        return None
    value = b.value & 0xFFFFFFFF
    if op in ("add", "sub", "ior", "xor", "shl", "shr", "shru") and value == 0:
        return Copy(instr.dest, a)
    if op == "and" and value == 0xFFFFFFFF:
        return Copy(instr.dest, a)
    if op in ("and", "mul") and value == 0:
        return Copy(instr.dest, Const(0))
    if op == "mul":
        if value == 1:
            return Copy(instr.dest, a)
        if value & (value - 1) == 0:
            return BinOp("shl", instr.dest, a, Const(value.bit_length() - 1))
    return None
