"""Whole-program pruning of unreachable functions.

The paper attributes part of the small TTA program images to LLVM's
aggressive whole-program optimisation; this pass provides the dominant
effect (dropping never-called runtime and helper functions from the
image).
"""

from __future__ import annotations

from repro.ir.instructions import Call
from repro.ir.module import Module


def prune_unreachable_functions(module: Module) -> bool:
    """Remove functions not reachable from the entry point."""
    reachable: set[str] = set()
    stack = [module.entry]
    while stack:
        name = stack.pop()
        if name in reachable or name not in module.functions:
            continue
        reachable.add(name)
        for block in module.functions[name].ordered_blocks():
            for instr in block.instrs:
                if isinstance(instr, Call):
                    stack.append(instr.callee)
    dead = [name for name in module.functions if name not in reachable]
    for name in dead:
        del module.functions[name]
    return bool(dead)
