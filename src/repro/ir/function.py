"""Functions and basic blocks."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instructions import Instr, Jump, Terminator, VReg


@dataclass
class BasicBlock:
    """A straight-line run of instructions ending in a terminator."""

    name: str
    instrs: list[Instr] = field(default_factory=list)
    terminator: Terminator | None = None

    def append(self, instr: Instr) -> None:
        if self.terminator is not None:
            raise ValueError(f"block {self.name} already terminated")
        self.instrs.append(instr)

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successors(self) -> tuple[str, ...]:
        return self.terminator.successors() if self.terminator else ()

    def __repr__(self) -> str:
        lines = [f"{self.name}:"]
        lines += [f"  {instr!r}" for instr in self.instrs]
        if self.terminator is not None:
            lines.append(f"  {self.terminator!r}")
        return "\n".join(lines)


@dataclass
class FrameSlot:
    """A stack-frame allocation (local arrays, spills)."""

    name: str
    size: int
    align: int = 4


class Function:
    """An IR function: ordered basic blocks plus frame/vreg bookkeeping.

    Attributes:
        name: function name.
        params: virtual registers receiving the arguments, in order.
        blocks: mapping block name -> block; ``block_order`` preserves
            layout order (the first entry is the entry block).
        frame_slots: stack allocations made by the frontend or backend.
    """

    def __init__(self, name: str, num_params: int = 0) -> None:
        self.name = name
        self._next_vreg = 0
        self._next_block = 0
        self.params: list[VReg] = [self.new_vreg() for _ in range(num_params)]
        self.blocks: dict[str, BasicBlock] = {}
        self.block_order: list[str] = []
        self.frame_slots: dict[str, FrameSlot] = {}

    # ---- construction helpers -------------------------------------------

    def new_vreg(self) -> VReg:
        reg = VReg(self._next_vreg)
        self._next_vreg += 1
        return reg

    def new_block(self, hint: str = "bb") -> BasicBlock:
        name = f"{hint}{self._next_block}"
        self._next_block += 1
        block = BasicBlock(name)
        self.blocks[name] = block
        self.block_order.append(name)
        return block

    def add_frame_slot(self, name: str, size: int, align: int = 4) -> str:
        if name in self.frame_slots:
            raise ValueError(f"duplicate frame slot {name!r} in {self.name}")
        self.frame_slots[name] = FrameSlot(name, size, align)
        return name

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[self.block_order[0]]

    def ordered_blocks(self) -> list[BasicBlock]:
        return [self.blocks[name] for name in self.block_order]

    # ---- structural maintenance -----------------------------------------

    def remove_block(self, name: str) -> None:
        del self.blocks[name]
        self.block_order.remove(name)

    def predecessors(self) -> dict[str, list[str]]:
        preds: dict[str, list[str]] = {name: [] for name in self.block_order}
        for block in self.ordered_blocks():
            for succ in block.successors():
                preds[succ].append(block.name)
        return preds

    def verify(self) -> None:
        """Check structural invariants; raises ValueError on violation."""
        if not self.block_order:
            raise ValueError(f"function {self.name} has no blocks")
        for block in self.ordered_blocks():
            if block.terminator is None:
                raise ValueError(f"block {block.name} of {self.name} lacks a terminator")
            for succ in block.successors():
                if succ not in self.blocks:
                    raise ValueError(
                        f"block {block.name} of {self.name} jumps to unknown block {succ}"
                    )
            for instr in block.instrs:
                if isinstance(instr, (Terminator, Jump)):
                    raise ValueError(f"terminator in instruction list of {block.name}")

    def __repr__(self) -> str:
        header = f"func {self.name}({', '.join(map(repr, self.params))})"
        return "\n".join([header] + [repr(b) for b in self.ordered_blocks()])
