"""Backward liveness dataflow over IR functions.

Used by dead-code elimination, the register allocator and the TTA
scheduler (a value that is not live out of its block can have its RF
write-back elided entirely once every use is software-bypassed -- the
dead-result-move elimination of the paper's Section III-B).
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import VReg


def compute_liveness(function: Function) -> tuple[dict[str, set[VReg]], dict[str, set[VReg]]]:
    """Compute (live_in, live_out) sets per block name."""
    use: dict[str, set[VReg]] = {}
    defd: dict[str, set[VReg]] = {}
    for block in function.ordered_blocks():
        u: set[VReg] = set()
        d: set[VReg] = set()
        for instr in block.instrs:
            u.update(r for r in instr.uses() if r not in d)
            d.update(instr.defs())
        if block.terminator is not None:
            u.update(r for r in block.terminator.uses() if r not in d)
        use[block.name] = u
        defd[block.name] = d

    live_in: dict[str, set[VReg]] = {name: set() for name in function.block_order}
    live_out: dict[str, set[VReg]] = {name: set() for name in function.block_order}
    changed = True
    while changed:
        changed = False
        for block in reversed(function.ordered_blocks()):
            name = block.name
            out: set[VReg] = set()
            for succ in block.successors():
                out |= live_in[succ]
            inn = use[name] | (out - defd[name])
            if out != live_out[name] or inn != live_in[name]:
                live_out[name] = out
                live_in[name] = inn
                changed = True
    return live_in, live_out


def block_live_out(function: Function) -> dict[str, set[VReg]]:
    """Convenience wrapper returning only the live-out sets."""
    return compute_liveness(function)[1]
