"""Modules: the compilation unit (functions + global data)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.function import Function


@dataclass
class GlobalVar:
    """A global data object.

    Attributes:
        name: symbol name.
        size: size in bytes.
        align: required alignment.
        init: initialiser bytes (zero-padded to *size* at layout time).
    """

    name: str
    size: int
    align: int = 4
    init: bytes = b""

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"global {self.name} must have positive size")
        if len(self.init) > self.size:
            raise ValueError(f"initialiser of {self.name} exceeds its size")


@dataclass
class Module:
    """A linked program: functions, globals and the designated entry point."""

    name: str = "module"
    functions: dict[str, Function] = field(default_factory=dict)
    globals: dict[str, GlobalVar] = field(default_factory=dict)
    entry: str = "main"

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise ValueError(f"duplicate function {function.name}")
        self.functions[function.name] = function
        return function

    def add_global(self, var: GlobalVar) -> GlobalVar:
        if var.name in self.globals:
            raise ValueError(f"duplicate global {var.name}")
        self.globals[var.name] = var
        return var

    def verify(self) -> None:
        for function in self.functions.values():
            function.verify()
        if self.entry not in self.functions:
            raise ValueError(f"entry function {self.entry!r} not defined")

    def layout_globals(self, base: int = 0x100) -> dict[str, int]:
        """Assign each global an absolute byte address starting at *base*.

        Returns the symbol table.  Layout is deterministic (insertion
        order) so program images are reproducible.
        """
        table: dict[str, int] = {}
        addr = base
        for var in self.globals.values():
            align = max(var.align, 1)
            addr = (addr + align - 1) // align * align
            table[var.name] = addr
            addr += var.size
        return table

    def data_end(self, base: int = 0x100) -> int:
        """First free byte address after all globals."""
        table = self.layout_globals(base)
        if not table:
            return base
        last = max(table, key=table.__getitem__)
        return table[last] + self.globals[last].size

    def __repr__(self) -> str:
        parts = [f"module {self.name}"]
        parts += [f"global {g.name}[{g.size}]" for g in self.globals.values()]
        parts += [repr(f) for f in self.functions.values()]
        return "\n".join(parts)
