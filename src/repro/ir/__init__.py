"""Three-address intermediate representation.

The IR sits between the MiniC frontend and the machine backends: virtual
registers, basic blocks with explicit terminators, and an operation set
deliberately close to the Table I machine repertoire so that lowering is
nearly one-to-one.  The reference interpreter in :mod:`repro.ir.interp`
defines the semantics and acts as the correctness oracle for every
simulator in the stack.
"""

from repro.ir.instructions import (
    BinOp,
    Call,
    CJump,
    Const,
    Copy,
    FrameAddr,
    Instr,
    Jump,
    Load,
    Operand,
    Ret,
    Store,
    Sym,
    Terminator,
    UnOp,
    VReg,
)
from repro.ir.function import BasicBlock, Function
from repro.ir.module import GlobalVar, Module
from repro.ir.builder import IRBuilder
from repro.ir.interp import InterpError, Interpreter
from repro.ir.liveness import block_live_out, compute_liveness

__all__ = [
    "BasicBlock",
    "BinOp",
    "CJump",
    "Call",
    "Const",
    "Copy",
    "FrameAddr",
    "Function",
    "GlobalVar",
    "IRBuilder",
    "Instr",
    "InterpError",
    "Interpreter",
    "Jump",
    "Load",
    "Module",
    "Operand",
    "Ret",
    "Store",
    "Sym",
    "Terminator",
    "UnOp",
    "VReg",
    "block_live_out",
    "compute_liveness",
]
