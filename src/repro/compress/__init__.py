"""Instruction compression (the paper's future-work item).

The paper's conclusion names "FPGA-optimized instruction compression
methods" as the planned mitigation for the TTA's main drawback, citing
dictionary-based program compression (Heikkinen/Takala/Corporaal,
reference [24]).  This package implements that method over the linked
programs produced by the backend:

* **full-instruction dictionary** -- every distinct instruction word is
  stored once in an on-chip dictionary; the program stores only
  ``ceil(log2(|dict|))``-bit indices;
* **per-slot dictionaries** -- one dictionary per bus/issue slot, which
  exploits the high per-slot regularity of move code;
* a decompressor cost model (dictionary bits count against the saving,
  as they occupy the same on-chip memory).

`benchmarks/bench_compression.py` reproduces the paper's discussion
point: compression pulls the wide-instruction TTA program images back
to (or below) VLIW size.
"""

from repro.compress.dictionary import (
    CompressionReport,
    compress_program,
    per_slot_compression,
)

__all__ = ["CompressionReport", "compress_program", "per_slot_compression"]
