"""Dictionary-based program compression.

Both schemes are lossless and decompressible in one cycle of table
lookup, matching the dictionary method of the paper's reference [24]:

* *full-instruction*: the program memory holds an index per instruction;
  a dictionary RAM holds each distinct instruction word once.
* *per-slot*: each bus slot (TTA) or issue slot (VLIW) gets its own
  dictionary; an instruction is the concatenation of per-slot indices.
  Move code is highly regular per slot, so the indices are small.

Total cost = program indices + dictionary storage; both are reported so
the trade-off against the uncompressed image is honest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backend.mop import Imm, LabelRef, MOp, PhysReg
from repro.backend.program import Program, TTAInstr, VLIWInstr
from repro.machine.encoding import encode_machine


def _bits_for(count: int) -> int:
    return max(1, (max(count, 1) - 1).bit_length())


@dataclass(frozen=True)
class CompressionReport:
    """Result of compressing one program.

    Attributes:
        scheme: "full" or "per-slot".
        original_bits: uncompressed program image size.
        index_bits: program-side bits after compression.
        dictionary_bits: dictionary storage.
        entries: dictionary entry count (summed over slots for per-slot).
    """

    scheme: str
    original_bits: int
    index_bits: int
    dictionary_bits: int
    entries: int

    @property
    def total_bits(self) -> int:
        return self.index_bits + self.dictionary_bits

    @property
    def ratio(self) -> float:
        """Compressed/original -- below 1.0 is a win."""
        if self.original_bits == 0:
            return 1.0
        return round(self.total_bits / self.original_bits, 4)


def _canonical_operand(value) -> tuple:
    if isinstance(value, Imm):
        return ("i", value.value)
    if isinstance(value, LabelRef):
        return ("l", value.name)
    if isinstance(value, PhysReg):
        return ("r", value.rf, value.idx)
    return ("?", repr(value))


def _canonical_move(move) -> tuple:
    return (move.bus, tuple(move.src), tuple(move.dst), move.extra_slots)


def _canonical_op(op: MOp) -> tuple:
    dest = _canonical_operand(op.dest) if op.dest is not None else None
    return (op.op, dest, tuple(_canonical_operand(s) for s in op.srcs))


def _instruction_key(instr) -> tuple:
    if isinstance(instr, TTAInstr):
        return tuple(sorted(_canonical_move(m) for m in instr.moves))
    if isinstance(instr, VLIWInstr):
        return tuple(_canonical_op(op) for op in instr.ops)
    return _canonical_op(instr)


def compress_program(program: Program) -> CompressionReport:
    """Full-instruction dictionary compression of *program*."""
    width = encode_machine(program.machine).instruction_width
    original = program.instruction_count * width
    keys = [_instruction_key(instr) for instr in program.instrs]
    dictionary = sorted(set(keys), key=repr)
    index_bits = _bits_for(len(dictionary)) * len(keys)
    dictionary_bits = len(dictionary) * width
    return CompressionReport("full", original, index_bits, dictionary_bits, len(dictionary))


def _slot_keys(program: Program) -> list[list[tuple]]:
    """Per-slot canonical contents, one list per slot position."""
    machine = program.machine
    if program.style == "tta":
        slots = len(machine.buses)
        table: list[list[tuple]] = [[] for _ in range(slots)]
        for instr in program.instrs:
            by_bus = {m.bus: m for m in instr.moves}
            for bus in range(slots):
                move = by_bus.get(bus)
                table[bus].append(_canonical_move(move) if move else ("nop",))
        return table
    if program.style == "vliw":
        slots = machine.issue_width
        table = [[] for _ in range(slots)]
        for instr in program.instrs:
            for slot in range(slots):
                op = instr.ops[slot] if slot < len(instr.ops) else None
                table[slot].append(_canonical_op(op) if op else ("nop",))
        return table
    return [[_canonical_op(instr) for instr in program.instrs]]


def per_slot_compression(program: Program) -> CompressionReport:
    """Per-slot dictionary compression of *program*."""
    encoding = encode_machine(program.machine)
    width = encoding.instruction_width
    original = program.instruction_count * width
    slot_widths = encoding.slot_widths

    index_bits = 0
    dictionary_bits = 0
    entries = 0
    table = _slot_keys(program)
    for slot, contents in enumerate(table):
        dictionary = set(contents)
        entries += len(dictionary)
        index_bits += _bits_for(len(dictionary)) * len(contents)
        slot_width = slot_widths[slot] if slot < len(slot_widths) else slot_widths[-1]
        dictionary_bits += len(dictionary) * slot_width
    return CompressionReport("per-slot", original, index_bits, dictionary_bits, entries)
