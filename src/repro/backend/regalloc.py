"""Linear-scan register allocation with register-file partitioning.

Virtual registers get physical registers from a round-robin interleave of
the machine's register files (so partitioned design points spread port
pressure).  Values live across calls are restricted to callee-saved
registers; short-lived values prefer the caller-saved argument registers
to keep prologues small.  Spills use two reserved scratch registers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.backend.abi import allocatable_regs, caller_saved, scratch_regs, stack_pointer
from repro.backend.mop import FrameRef, Imm, MBlock, MFunction, MOp, PhysReg
from repro.ir.instructions import VReg
from repro.machine.machine import Machine


class RegAllocError(RuntimeError):
    """Raised when allocation is impossible (e.g. too few registers)."""


# ---------------------------------------------------------------------------
# Machine-level CFG and liveness
# ---------------------------------------------------------------------------


def block_successors(mfunc: MFunction) -> dict[str, list[str]]:
    """Successor labels per block (jump targets within the function plus
    fall-through)."""
    labels = {block.name for block in mfunc.blocks}
    succs: dict[str, list[str]] = {}
    for position, block in enumerate(mfunc.blocks):
        targets: list[str] = []
        falls_through = True
        for op in block.ops:
            if op.op in ("jump", "cjump", "cjumpz"):
                target = op.srcs[-1 if op.op == "jump" else 1]
                # jump target is srcs[0]; cjump target is srcs[1]
                if op.op == "jump":
                    target = op.srcs[0]
                name = target.name  # type: ignore[union-attr]
                if name in labels:
                    targets.append(name)
                if op.op == "jump":
                    falls_through = False
            elif op.op in ("ret", "halt"):
                falls_through = False
        if falls_through and position + 1 < len(mfunc.blocks):
            targets.append(mfunc.blocks[position + 1].name)
        succs[block.name] = targets
    return succs


def _op_uses_defs(
    op: MOp, clobbers: set[PhysReg], ret_uses: tuple[PhysReg, ...] = ()
) -> tuple[list, list]:
    uses = list(op.reg_srcs())
    defs = [op.dest] if op.dest is not None else []
    if op.op == "call":
        defs = defs + [r for r in clobbers if r not in defs]
    if op.op in ("ret", "halt"):
        # The function's contract: callee-saved registers, the stack
        # pointer and the return value must hold their final values when
        # control leaves -- they are live out of the exit block even
        # though no instruction in this function reads them again.
        uses = uses + [r for r in ret_uses if r not in uses]
    return uses, defs


def machine_liveness(
    mfunc: MFunction,
    clobbers: set[PhysReg],
    ret_uses: tuple[PhysReg, ...] = (),
) -> tuple[dict[str, set], dict[str, set]]:
    """(live_in, live_out) per machine block, over both vregs and pregs.

    *ret_uses* lists registers considered read by ``ret``/``halt`` (the
    ABI-preserved set); schedulers must pass it so write-backs that only
    matter to the caller are not eliminated.
    """
    use: dict[str, set] = {}
    defd: dict[str, set] = {}
    for block in mfunc.blocks:
        u: set = set()
        d: set = set()
        for op in block.ops:
            op_uses, op_defs = _op_uses_defs(op, clobbers, ret_uses)
            u.update(r for r in op_uses if r not in d)
            d.update(op_defs)
        use[block.name] = u
        defd[block.name] = d
    succs = block_successors(mfunc)
    live_in = {block.name: set() for block in mfunc.blocks}
    live_out = {block.name: set() for block in mfunc.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(mfunc.blocks):
            name = block.name
            out: set = set()
            for succ in succs[name]:
                out |= live_in[succ]
            inn = use[name] | (out - defd[name])
            if out != live_out[name] or inn != live_in[name]:
                live_out[name] = out
                live_in[name] = inn
                changed = True
    return live_in, live_out


# ---------------------------------------------------------------------------
# Intervals
# ---------------------------------------------------------------------------


@dataclass
class Interval:
    vreg: VReg
    start: int
    end: int
    crosses_call: bool = False
    reg: PhysReg | None = None
    spilled: bool = False


def _build_intervals(
    mfunc: MFunction, clobbers: set[PhysReg]
) -> tuple[list[Interval], list[int], dict[PhysReg, list[int]]]:
    live_in, live_out = machine_liveness(mfunc, clobbers)
    position = 0
    starts: dict[VReg, int] = {}
    ends: dict[VReg, int] = {}
    call_positions: list[int] = []
    fixed_pos: dict[PhysReg, set[int]] = {}
    numbered: list[tuple[str, list[tuple[int, MOp]]]] = []

    def touch(reg, pos: int) -> None:
        if isinstance(reg, VReg):
            starts.setdefault(reg, pos)
            ends[reg] = max(ends.get(reg, pos), pos)

    for block in mfunc.blocks:
        block_start = position
        ops_at: list[tuple[int, MOp]] = []
        for reg in live_in[block.name]:
            touch(reg, block_start)
        for op in block.ops:
            uses, defs = _op_uses_defs(op, clobbers)
            for reg in uses:
                touch(reg, position)
            for reg in defs:
                touch(reg, position)
            if op.op == "call":
                call_positions.append(position)
            ops_at.append((position, op))
            position += 1
        block_end = max(position - 1, block_start)
        for reg in live_out[block.name]:
            touch(reg, block_end)
        numbered.append((block.name, ops_at))

    # Physical registers get *dense* live ranges, not touch points.  A
    # machine register is occupied at every position from its definition
    # (or function entry, for live-in registers) up to its last read; a
    # vreg interval that sits entirely inside the gap between two touch
    # points would otherwise look conflict-free and silently clobber the
    # value in flight.  The incoming argument registers are the canonical
    # case: RF0[1..4] hold the caller's arguments from position 0 until
    # the entry copies consume them, so a dead first-parameter copy must
    # never be allocated a *later* parameter's still-unread register.
    for name, ops_at in numbered:
        live = {r for r in live_out[name] if not isinstance(r, VReg)}
        for pos, op in reversed(ops_at):
            uses, defs = _op_uses_defs(op, clobbers)
            for reg in defs:
                if not isinstance(reg, VReg):
                    live.discard(reg)
                    fixed_pos.setdefault(reg, set()).add(pos)
            for reg in uses:
                if not isinstance(reg, VReg):
                    live.add(reg)
            for reg in live:
                fixed_pos.setdefault(reg, set()).add(pos)

    fixed = {reg: sorted(positions) for reg, positions in fixed_pos.items()}
    intervals = [
        Interval(vreg, starts[vreg], ends.get(vreg, starts[vreg])) for vreg in starts
    ]
    for interval in intervals:
        interval.crosses_call = any(
            interval.start < p < interval.end for p in call_positions
        )
    intervals.sort(key=lambda iv: (iv.start, iv.end))
    return intervals, call_positions, fixed


# ---------------------------------------------------------------------------
# Linear scan
# ---------------------------------------------------------------------------


def _conflicts_fixed(interval: Interval, reg: PhysReg, fixed: dict[PhysReg, list[int]]) -> bool:
    positions = fixed.get(reg)
    if not positions:
        return False
    return any(interval.start <= p <= interval.end for p in positions)


def allocate_registers(mfunc: MFunction, machine: Machine) -> None:
    """Allocate physical registers in place; inserts spill code if needed."""
    csave = caller_saved(machine) | set(scratch_regs(machine))
    intervals, _calls, fixed = _build_intervals(mfunc, csave)
    caller_pool = [r for r in allocatable_regs(machine) if r in caller_saved(machine)]
    callee_pool = [r for r in allocatable_regs(machine) if r not in caller_saved(machine)]

    free_caller = list(caller_pool)
    free_callee = list(callee_pool)
    active: list[Interval] = []
    spilled: list[Interval] = []

    def release(reg: PhysReg) -> None:
        if reg in caller_saved(machine):
            free_caller.append(reg)
        else:
            free_callee.append(reg)

    for interval in intervals:
        active = [iv for iv in active if iv.end >= interval.start or release(iv.reg)]
        # (release returns None, so expired intervals are dropped above)
        candidates: list[PhysReg] = []
        if not interval.crosses_call:
            candidates.extend(free_caller)
        candidates.extend(free_callee)
        chosen = next(
            (reg for reg in candidates if not _conflicts_fixed(interval, reg, fixed)),
            None,
        )
        if chosen is None:
            # Spill the active interval with the furthest end among those
            # whose register this interval could legally take.
            victims = [
                iv
                for iv in active
                if iv.end > interval.end
                and (not interval.crosses_call or iv.reg not in caller_saved(machine))
                and not _conflicts_fixed(interval, iv.reg, fixed)
            ]
            if victims:
                victim = max(victims, key=lambda iv: iv.end)
                interval.reg = victim.reg
                victim.reg = None
                victim.spilled = True
                spilled.append(victim)
                active.remove(victim)
                active.append(interval)
            else:
                interval.spilled = True
                spilled.append(interval)
            continue
        if chosen in free_caller:
            free_caller.remove(chosen)
        else:
            free_callee.remove(chosen)
        interval.reg = chosen
        active.append(interval)

    assignment = {iv.vreg: iv.reg for iv in intervals if iv.reg is not None}
    spill_set = {iv.vreg for iv in spilled}
    if obs.enabled():
        obs.count("regalloc.intervals", len(intervals))
        obs.count("regalloc.spills", len(spilled))
    _rewrite(mfunc, machine, assignment, spill_set)
    mfunc.used_regs = {
        op.dest for op in mfunc.all_ops() if isinstance(op.dest, PhysReg)
    }


def _rewrite(
    mfunc: MFunction,
    machine: Machine,
    assignment: dict[VReg, PhysReg],
    spill_set: set[VReg],
) -> None:
    sp = stack_pointer(machine)
    scratch = scratch_regs(machine)
    spill_slots: dict[VReg, str] = {}

    def slot_for(vreg: VReg) -> str:
        if vreg not in spill_slots:
            name = f"@spill{len(spill_slots)}"
            spill_slots[vreg] = name
            mfunc.frame_slots[name] = (4, 4)
        return spill_slots[vreg]

    for block in mfunc.blocks:
        new_ops: list[MOp] = []
        for op in block.ops:
            pre: list[MOp] = []
            post: list[MOp] = []
            scratch_map: dict[VReg, PhysReg] = {}
            next_scratch = 0
            new_srcs = []
            for src in op.srcs:
                if isinstance(src, VReg):
                    if src in spill_set:
                        if src not in scratch_map:
                            if next_scratch >= len(scratch):
                                raise RegAllocError("out of spill scratch registers")
                            reg = scratch[next_scratch]
                            next_scratch += 1
                            scratch_map[src] = reg
                            pre.append(MOp("add", reg, [sp, FrameRef(slot_for(src))]))
                            pre.append(MOp("ldw", reg, [reg]))
                        new_srcs.append(scratch_map[src])
                    else:
                        new_srcs.append(assignment[src])
                else:
                    new_srcs.append(src)
            op.srcs = new_srcs
            if isinstance(op.dest, VReg):
                if op.dest in spill_set:
                    slot = slot_for(op.dest)
                    value_reg = scratch[0]
                    addr_reg = scratch[1]
                    op.dest = value_reg
                    post.append(MOp("add", addr_reg, [sp, FrameRef(slot)]))
                    post.append(MOp("stw", None, [addr_reg, value_reg]))
                else:
                    op.dest = assignment[op.dest]
            new_ops.extend(pre)
            new_ops.append(op)
            new_ops.extend(post)
        block.ops = new_ops
