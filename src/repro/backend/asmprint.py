"""Human-readable assembly listings for linked programs.

TTA programs print in TCE's parallel-assembly style: one line per
instruction word, one ``src -> dst`` move per bus slot.  VLIW programs
print one bundle per line; scalar programs one operation per line.

Example (m-tta-2)::

    12  [b0] RF0.3 -> ALU0.o1 ; [b1] #7 -> ALU0.add.t ; [b4] ALU0.r -> RF0.5

The listing includes label annotations so control flow is followable,
and is exercised by the test suite as a smoke check that every program
structure is printable.
"""

from __future__ import annotations

from repro.backend.mop import Imm, LabelRef, MOp, PhysReg
from repro.backend.program import Move, Program, TTAInstr, VLIWInstr


def _fmt_move_src(src) -> str:
    kind = src[0]
    if kind == "imm":
        value = src[1]
        return f"#{value.name}" if isinstance(value, LabelRef) else f"#{value}"
    if kind == "rf":
        return f"{src[1]}.{src[2]}"
    return f"{src[1]}.r"


def _fmt_move_dst(dst) -> str:
    if dst[0] == "rf":
        return f"{dst[1]}.{dst[2]}"
    _, fu, port, opcode = dst
    if port == "t" and opcode:
        return f"{fu}.{opcode}.t"
    return f"{fu}.{port}"


def format_move(move: Move) -> str:
    extra = f" (+{move.extra_slots} imm)" if move.extra_slots else ""
    return f"[b{move.bus}] {_fmt_move_src(move.src)} -> {_fmt_move_dst(move.dst)}{extra}"


def _fmt_operand(src) -> str:
    if isinstance(src, Imm):
        return f"#{src.value}"
    if isinstance(src, LabelRef):
        return f"&{src.name}"
    if isinstance(src, PhysReg):
        return f"{src.rf}.{src.idx}"
    return repr(src)


def format_op(op: MOp) -> str:
    dest = f"{_fmt_operand(op.dest)} = " if op.dest is not None else ""
    return f"{dest}{op.op} {', '.join(_fmt_operand(s) for s in op.srcs)}"


def format_program(program: Program, start: int = 0, count: int | None = None) -> str:
    """Render *program* (or a window of it) as an assembly listing."""
    by_address: dict[int, list[str]] = {}
    for label, address in program.labels.items():
        by_address.setdefault(address, []).append(label)

    end = len(program.instrs) if count is None else min(len(program.instrs), start + count)
    lines: list[str] = []
    for address in range(start, end):
        for label in sorted(by_address.get(address, [])):
            lines.append(f"{label}:")
        instr = program.instrs[address]
        if isinstance(instr, TTAInstr):
            body = " ; ".join(format_move(m) for m in instr.moves) or "nop"
        elif isinstance(instr, VLIWInstr):
            body = " || ".join(format_op(op) for op in instr.ops) or "nop"
        else:  # scalar: raw MOp
            body = format_op(instr)
        lines.append(f"{address:6d}  {body}")
    return "\n".join(lines)


def program_statistics(program: Program) -> dict[str, float]:
    """Static statistics of a linked program (fill rates, move counts)."""
    stats: dict[str, float] = {"instructions": float(program.instruction_count)}
    if program.style == "tta":
        moves = sum(len(i.moves) for i in program.instrs)
        slots = len(program.instrs) * max(len(program.machine.buses), 1)
        stats["moves"] = float(moves)
        stats["bus_fill"] = round(moves / slots, 4) if slots else 0.0
        stats["nop_instructions"] = float(
            sum(1 for i in program.instrs if not i.moves)
        )
    elif program.style == "vliw":
        ops = sum(len(i.ops) for i in program.instrs)
        slots = len(program.instrs) * program.machine.issue_width
        stats["ops"] = float(ops)
        stats["slot_fill"] = round(ops / slots, 4) if slots else 0.0
        stats["nop_instructions"] = float(sum(1 for i in program.instrs if not i.ops))
    else:
        stats["ops"] = float(len(program.instrs))
    return stats
