"""Machine-operation representation (post-lowering, pre-scheduling).

A machine operation names one Table I operation (plus the ``copy``
pseudo-op, which the TTA scheduler turns into a bare transport and the
VLIW/scalar backends execute on an ALU).  Register operands start as IR
virtual registers and become :class:`PhysReg` after allocation; immediate
operands are :class:`Imm` (resolved), :class:`LabelRef` (code address,
resolved at link time) or :class:`FrameRef` (stack offset, resolved after
frame layout).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.isa.operations import OPS
from repro.ir.instructions import VReg


@dataclass(frozen=True)
class PhysReg:
    """A physical register: file name plus index."""

    rf: str
    idx: int

    def __repr__(self) -> str:
        return f"{self.rf}[{self.idx}]"


@dataclass(frozen=True)
class Imm:
    """A resolved immediate operand."""

    value: int

    def __repr__(self) -> str:
        return f"#{self.value}"


@dataclass(frozen=True)
class LabelRef:
    """A code-address operand, resolved by the linker."""

    name: str

    def __repr__(self) -> str:
        return f"&{self.name}"


@dataclass(frozen=True)
class FrameRef:
    """A frame-slot offset operand, resolved after frame layout."""

    slot: str

    def __repr__(self) -> str:
        return f"fp:{self.slot}"


Reg = Union[VReg, PhysReg]
Src = Union[VReg, PhysReg, Imm, LabelRef, FrameRef]

#: Pseudo-operations understood by the schedulers in addition to OPS.
PSEUDO_OPS = frozenset({"copy", "getra", "setra", "halt"})

#: Result latency of the pseudo ops (copy via ALU / bare move).
_PSEUDO_LATENCY = {"copy": 1, "getra": 1, "setra": 0, "halt": 0}


def op_latency(op: str) -> int:
    if op in _PSEUDO_LATENCY:
        return _PSEUDO_LATENCY[op]
    return OPS[op].latency


def op_is_control(op: str) -> bool:
    return op in ("jump", "cjump", "cjumpz", "call", "ret", "halt")


def op_is_memory(op: str) -> bool:
    return op in OPS and (OPS[op].reads_mem or OPS[op].writes_mem)


_next_mop_id = 0


def _fresh_id() -> int:
    global _next_mop_id
    _next_mop_id += 1
    return _next_mop_id


@dataclass
class MOp:
    """One machine operation.

    Attributes:
        op: mnemonic (Table I op or pseudo).
        dest: destination register, or None.
        srcs: source operands in operand order (operand 0 is transported
            to the FU trigger port, operand 1 to the operand port).
        uid: unique id (for dependence graphs).
    """

    op: str
    dest: Reg | None
    srcs: list[Src]
    uid: int = field(default_factory=_fresh_id)

    def reg_srcs(self) -> list[Reg]:
        return [s for s in self.srcs if isinstance(s, (VReg, PhysReg))]

    @property
    def is_control(self) -> bool:
        return op_is_control(self.op)

    @property
    def latency(self) -> int:
        return op_latency(self.op)

    def __repr__(self) -> str:
        dest = f"{self.dest} = " if self.dest is not None else ""
        return f"{dest}{self.op} {', '.join(map(repr, self.srcs))}"


@dataclass
class MBlock:
    """A machine basic block: straight-line ops, control ops at the end."""

    name: str
    ops: list[MOp] = field(default_factory=list)

    def __repr__(self) -> str:
        return "\n".join([f"{self.name}:"] + [f"  {op!r}" for op in self.ops])


@dataclass
class MFunction:
    """A lowered machine function."""

    name: str
    blocks: list[MBlock] = field(default_factory=list)
    #: IR frame slots (name -> size, align) carried through for layout
    frame_slots: dict[str, tuple[int, int]] = field(default_factory=dict)
    has_calls: bool = False
    #: filled by the register allocator
    used_regs: set[PhysReg] = field(default_factory=set)
    #: filled by frame layout: total frame size in bytes
    frame_size: int = 0

    def entry_label(self) -> str:
        return self.blocks[0].name

    def all_ops(self):
        for block in self.blocks:
            yield from block.ops

    def __repr__(self) -> str:
        return "\n".join([f"mfunc {self.name}"] + [repr(b) for b in self.blocks])
