"""Scheduled-program containers and the linker.

All three program forms share the same linking model: scheduled blocks
are concatenated in layout order, every block label gets the absolute
instruction address of its first cycle, and ``LabelRef`` immediates are
patched to those addresses.  Instruction addresses are instruction-word
indices (Harvard organisation, as in the evaluated cores).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.backend.mop import Imm, LabelRef, MOp
from repro.machine.machine import Machine

# ---------------------------------------------------------------------------
# TTA moves
# ---------------------------------------------------------------------------

#: Move source: ("rf", rf, idx) | ("fu", fu) | ("imm", value-or-LabelRef)
MoveSrc = tuple
#: Move destination: ("rf", rf, idx) | ("op", fu, port, opcode-or-None)
MoveDst = tuple


@dataclass
class Move:
    """One data transport: src endpoint -> dst endpoint on some bus."""

    src: MoveSrc
    dst: MoveDst
    bus: int
    #: extra bus slots consumed by a long-immediate template
    extra_slots: int = 0

    def __repr__(self) -> str:
        return f"[b{self.bus}] {self.src} -> {self.dst}"


@dataclass
class TTAInstr:
    """One TTA instruction: parallel moves (at most one per bus)."""

    moves: list[Move] = field(default_factory=list)


@dataclass
class VLIWInstr:
    """One VLIW bundle: the operations triggered this cycle."""

    ops: list[MOp] = field(default_factory=list)


@dataclass
class ScheduledBlock:
    """A scheduled basic block of `length` instruction words."""

    label: str
    length: int
    instrs: list  # list[TTAInstr] or list[VLIWInstr]


Instr = Union[TTAInstr, VLIWInstr]


@dataclass
class Program:
    """A linked program for one machine.

    Attributes:
        machine: the design point this program is scheduled for.
        style: 'tta' | 'vliw' | 'scalar'.
        instrs: linked instruction stream.
        labels: label -> absolute instruction address.
        extra_imm_words: (scalar only) IMM-prefix words per address,
            counted into the program image size.
    """

    machine: Machine
    style: str
    instrs: list
    labels: dict[str, int] = field(default_factory=dict)
    extra_imm_words: int = 0
    #: load-time pre-decode artefacts keyed by engine name; filled lazily by
    #: :mod:`repro.sim.predecode` so repeated simulations of one program pay
    #: the structural verification and decode cost only once.
    predecode_cache: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def instruction_count(self) -> int:
        """Instruction words in the program image."""
        return len(self.instrs) + self.extra_imm_words

    def address_of(self, label: str) -> int:
        return self.labels[label]

    def invalidate_predecode(self) -> None:
        """Drop cached pre-decoded forms (call after mutating ``instrs``)."""
        self.predecode_cache.clear()

    def __getstate__(self):
        # The predecode cache holds unpicklable engine artefacts (compiled
        # code objects, the native engine's FFI handles); it is a lazily
        # rebuilt derivative, so pickling drops it.
        state = self.__dict__.copy()
        state["predecode_cache"] = {}
        return state


def link_blocks(
    machine: Machine,
    style: str,
    blocks: list[ScheduledBlock],
    aliases: dict[str, str] | None = None,
) -> Program:
    """Concatenate scheduled blocks and resolve label references.

    *aliases* maps extra label names (function names) to block labels.
    """
    labels: dict[str, int] = {}
    address = 0
    for block in blocks:
        labels[block.label] = address
        address += block.length
    for alias, target in (aliases or {}).items():
        labels[alias] = labels[target]
    instrs: list = []
    for block in blocks:
        instrs.extend(block.instrs)

    def patch_value(value):
        if isinstance(value, LabelRef):
            return labels[value.name]
        return value

    if style == "tta":
        for instr in instrs:
            for move in instr.moves:
                if move.src[0] == "imm" and isinstance(move.src[1], LabelRef):
                    move.src = ("imm", labels[move.src[1].name])
    else:
        for instr in instrs:
            ops = instr.ops if isinstance(instr, VLIWInstr) else [instr]
            for op in ops:
                op.srcs = [
                    Imm(patch_value(s)) if isinstance(s, LabelRef) else s for s in op.srcs
                ]
    return Program(machine, style, instrs, labels)
