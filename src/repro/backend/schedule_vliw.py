"""Operation-triggered (VLIW) list scheduler.

This is "the same compiler with the TTA freedoms turned off": operations
are bundled into issue slots; every operand is read from a register file
at the issue cycle and every result is written back ``latency`` cycles
later, becoming visible to consumers one cycle after write-back (these
lightweight soft-core datapaths have no forwarding network -- the paper
notes its VLIW implementations omit forward-resolution logic).

Resource model per cycle: ``issue_width`` slots (wide immediates consume
extension slots, like the MicroBlaze IMM prefix), one operation per
function unit, and the per-RF read/write port limits of the design point.
"""

from __future__ import annotations

from repro.backend.ddg import DDG, build_ddg
from repro.backend.mop import Imm, LabelRef, MBlock, MFunction, MOp, PhysReg
from repro.backend.program import ScheduledBlock, VLIWInstr
from repro.isa.operations import OPS, OpKind
from repro.machine.encoding import immediate_slot_cost
from repro.machine.machine import Machine

_SEARCH_HORIZON = 4096


class ScheduleError(RuntimeError):
    """Raised when a block cannot be scheduled (resource model too tight)."""


def _fu_pool(machine: Machine, op: str) -> str:
    """Resource pool key for an operation."""
    if op in ("copy",):
        return "alu"
    if op in ("getra", "setra", "halt", "jump", "cjump", "cjumpz", "call", "ret"):
        return "cu"
    kind = OPS[op].kind
    return {OpKind.ALU: "alu", OpKind.LSU: "lsu", OpKind.CU: "cu"}[kind]


def _imm_extra(machine: Machine, op: MOp) -> int:
    extra = 0
    for src in op.srcs:
        if isinstance(src, Imm):
            extra += immediate_slot_cost(machine, src.value)
        elif isinstance(src, LabelRef):
            extra += 1  # code addresses fit 16 bits in all measured programs
    # An extension slot carries a full issue slot's worth of bits (>= 24),
    # so one extension suffices for a 32-bit constant on 2-issue machines.
    return min(extra, max(machine.issue_width - 1, 1))


class _BlockScheduler:
    def __init__(self, block: MBlock, machine: Machine) -> None:
        self.block = block
        self.machine = machine
        self.jl = machine.jump_latency
        self.ddg: DDG = build_ddg(block, machine)
        self.pools = {
            "alu": sum(1 for fu in machine.function_units if fu.kind is OpKind.ALU),
            "lsu": sum(1 for fu in machine.function_units if fu.kind is OpKind.LSU),
            "cu": 1,
        }
        self.rf_reads = {rf.name: rf.read_ports for rf in machine.register_files}
        self.rf_writes = {rf.name: rf.write_ports for rf in machine.register_files}
        # per-cycle usage
        self.issue_used: dict[int, int] = {}
        self.pool_used: dict[tuple[int, str], int] = {}
        self.read_used: dict[tuple[int, str], int] = {}
        self.write_used: dict[tuple[int, str], int] = {}
        self.placement: dict[int, int] = {}  # uid -> cycle
        self.completion: dict[int, int] = {}  # uid -> cycle after last effect
        self.call_cycles: list[int] = []

    # ---- resource checks --------------------------------------------------

    def _fits(self, op: MOp, t: int) -> bool:
        width = 1 + _imm_extra(self.machine, op)
        if self.issue_used.get(t, 0) + width > self.machine.issue_width:
            return False
        pool = _fu_pool(self.machine, op.op)
        if self.pool_used.get((t, pool), 0) + 1 > self.pools[pool]:
            return False
        reads: dict[str, int] = {}
        # A call's register sources are ABI bookkeeping (the callee reads
        # the argument registers later); they cost no ports at the trigger.
        port_srcs = op.srcs if op.op != "call" else op.srcs[:1]
        for src in port_srcs:
            if isinstance(src, PhysReg):
                reads[src.rf] = reads.get(src.rf, 0) + 1
        for rf, count in reads.items():
            if self.read_used.get((t, rf), 0) + count > self.rf_reads[rf]:
                return False
        if isinstance(op.dest, PhysReg):
            wb = t + op.latency
            if self.write_used.get((wb, op.dest.rf), 0) + 1 > self.rf_writes[op.dest.rf]:
                return False
        completion = self._completion_of(op, t)
        if not self._fits_call_windows(t, completion):
            return False
        if op.op == "call" and not self._call_placeable(t):
            return False
        return True

    def _completion_of(self, op: MOp, t: int) -> int:
        if isinstance(op.dest, PhysReg):
            return t + op.latency + 1
        return t + 1

    def _fits_call_windows(self, trigger: int, completion: int) -> bool:
        for tc in self.call_cycles:
            if trigger <= tc + self.jl and completion - 1 > tc + self.jl:
                return False
        return True

    def _call_placeable(self, tc: int) -> bool:
        # Every already-scheduled op must be either fully complete by the
        # redirect cycle or belong entirely to the post-return stream.
        for uid, trigger in self.placement.items():
            completion = self.completion[uid]
            if trigger <= tc + self.jl and completion - 1 > tc + self.jl:
                return False
        return True

    def _commit(self, op: MOp, t: int) -> None:
        width = 1 + _imm_extra(self.machine, op)
        self.issue_used[t] = self.issue_used.get(t, 0) + width
        pool = _fu_pool(self.machine, op.op)
        self.pool_used[(t, pool)] = self.pool_used.get((t, pool), 0) + 1
        for src in op.srcs if op.op != "call" else op.srcs[:1]:
            if isinstance(src, PhysReg):
                self.read_used[(t, src.rf)] = self.read_used.get((t, src.rf), 0) + 1
        if isinstance(op.dest, PhysReg):
            wb = t + op.latency
            self.write_used[(wb, op.dest.rf)] = self.write_used.get((wb, op.dest.rf), 0) + 1
        self.placement[op.uid] = t
        self.completion[op.uid] = self._completion_of(op, t)
        if op.op == "call":
            self.call_cycles.append(t)

    # ---- main loop --------------------------------------------------------------

    def _earliest(self, op: MOp) -> int:
        earliest = 0
        for edge in self.ddg.preds.get(op.uid, []):
            pred_t = self.placement[edge.pred]
            gap = edge.min_gap if edge.min_gap is not None else 0
            earliest = max(earliest, pred_t + gap)
        return earliest

    def run(self) -> ScheduledBlock:
        ops = list(self.block.ops)
        terminators: list[MOp] = []
        while ops and ops[-1].is_control and ops[-1].op != "call":
            terminators.insert(0, ops.pop())

        unscheduled = {op.uid: op for op in ops}
        pred_count = {
            op.uid: sum(1 for e in self.ddg.preds.get(op.uid, []) if e.pred in unscheduled)
            for op in ops
        }
        order_index = {op.uid: i for i, op in enumerate(self.block.ops)}
        ready = [op for op in ops if pred_count[op.uid] == 0]

        while unscheduled:
            if not ready:
                raise ScheduleError(f"dependence cycle in block {self.block.name}")
            ready.sort(
                key=lambda o: (-self.ddg.height.get(o.uid, 0), order_index[o.uid])
            )
            op = ready.pop(0)
            earliest = self._earliest(op)
            t = earliest
            while not self._fits(op, t):
                t += 1
                if t - earliest > _SEARCH_HORIZON:
                    raise ScheduleError(
                        f"cannot place {op!r} in block {self.block.name}"
                    )
            self._commit(op, t)
            del unscheduled[op.uid]
            for edge in self.ddg.succs.get(op.uid, []):
                if edge.succ in unscheduled:
                    pred_count[edge.succ] -= 1
                    if pred_count[edge.succ] == 0:
                        ready.append(unscheduled[edge.succ])

        # Terminators, in order, as late-but-overlapping as allowed.
        last_ctrl = None
        for op in terminators:
            earliest = self._earliest(op)
            floor = 0
            if self.completion:
                floor = max(self.completion.values()) - self.jl - 1
            t = max(earliest, floor, 0)
            if last_ctrl is not None:
                t = max(t, last_ctrl + self.jl + 1)
            while not self._fits(op, t):
                t += 1
            self._commit(op, t)
            last_ctrl = t

        if last_ctrl is not None:
            length = last_ctrl + self.jl + 1
        elif self.completion:
            length = max(self.completion.values())
        else:
            length = 0
        # Calls keep their delay slots inside the block (the return
        # address points just past them).
        for tc in self.call_cycles:
            length = max(length, tc + self.jl + 1)

        instrs = [VLIWInstr() for _ in range(length)]
        for op in self.block.ops:
            instrs[self.placement[op.uid]].ops.append(op)
        return ScheduledBlock(self.block.name, length, instrs)


def schedule_vliw_function(mfunc: MFunction, machine: Machine) -> list[ScheduledBlock]:
    """Schedule every block of *mfunc* for a VLIW design point."""
    return [_BlockScheduler(block, machine).run() for block in mfunc.blocks]
