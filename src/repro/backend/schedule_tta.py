"""Exposed-datapath (TTA) move scheduler.

Implements the TTA programming freedoms the paper evaluates:

* **software bypassing** -- a consumer's operand move can read the
  producer's FU result port directly (``latency`` cycles after trigger),
  skipping the register file entirely;
* **dead-result-move elimination** -- the RF write-back of a value is
  placed lazily, only when some consumer must read it from the RF or the
  value is live out of its block; fully-bypassed block-local values never
  touch the RF;
* **operand sharing** -- an FU input-port register keeps its value, so a
  repeated operand needs no transport;
* **semi-virtual time latching** -- an FU result stays readable until the
  unit triggers again, letting result reads be postponed.

Resources tracked per cycle: one move per bus (with per-bus connectivity,
so merged-bus machines really pay their pruning), long-immediate template
slots, RF read/write port counts, one trigger and one operand-port write
per FU.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backend.ddg import DDG, build_ddg
from repro.backend.mop import Imm, LabelRef, MBlock, MFunction, MOp, PhysReg
from repro.backend.program import Move, ScheduledBlock, TTAInstr
from repro.backend.regalloc import machine_liveness
from repro.backend.abi import caller_saved, ret_preserved_regs, scratch_regs
from repro.isa.operations import OPS, OpKind
from repro.machine.encoding import immediate_slot_cost
from repro.machine.machine import Machine

_SEARCH_HORIZON = 4096


class ScheduleError(RuntimeError):
    """Raised when a block cannot be scheduled on the given machine."""


@dataclass
class _Value:
    """State of one produced value (one static definition)."""

    uid: int
    reg: PhysReg | None
    fu: str | None  # producing FU (None: value only ever lives in the RF)
    trigger: int
    ready: int
    wb: int | None = None
    last_fu_read: int = -1
    pending: int = 0
    live_out: bool = False

    @property
    def in_rf_only(self) -> bool:
        return self.fu is None


@dataclass
class _FUState:
    current: _Value | None = None
    #: (descriptor, write_cycle) of the latest operand-port write
    o1_holds: tuple | None = None


class _BlockScheduler:
    def __init__(
        self,
        block: MBlock,
        machine: Machine,
        live_out_regs: set[PhysReg],
    ) -> None:
        self.block = block
        self.machine = machine
        self.jl = machine.jump_latency
        self.ddg: DDG = build_ddg(block, machine)
        self.live_out_regs = live_out_regs
        # last static def per register decides live-out attribution
        self.last_def_uid: dict[PhysReg, int] = {}
        for op in block.ops:
            if op.op == "call":
                for reg in caller_saved(machine) | set(scratch_regs(machine)):
                    self.last_def_uid[reg] = op.uid
            if isinstance(op.dest, PhysReg):
                self.last_def_uid[op.dest] = op.uid
        # raw-consumer counts per producing op
        self.consumers: dict[int, int] = {}
        for edge in self.ddg.edges:
            if edge.kind in ("raw", "callout") and edge.reg is not None:
                self.consumers[edge.pred] = self.consumers.get(edge.pred, 0) + 1

        # ---- dynamic state ----
        self.fu_state: dict[str, _FUState] = {
            fu.name: _FUState() for fu in machine.all_units
        }
        self.trigger_used: dict[tuple[int, str], bool] = {}
        self.o1_used: dict[tuple[int, str], bool] = {}
        self.bus_used: dict[int, set[int]] = {}  # cycle -> busy bus indices
        self.read_used: dict[tuple[int, str], int] = {}
        self.write_used: dict[tuple[int, str], int] = {}
        self.reg_version: dict[PhysReg, _Value] = {}
        self.reg_last_read: dict[PhysReg, int] = {}
        self.reg_wb: dict[PhysReg, int] = {}
        self.values: dict[int, _Value] = {}
        self.placement: dict[int, int] = {}
        self.moves: list[tuple[int, Move]] = []
        self.call_cycles: list[int] = []
        self.max_move_cycle = -1
        #: per-FU operand-port occupancy windows (write_cycle, hold_until)
        self.fu_o1_windows: dict[str, list[tuple[int, int]]] = {}
        #: per-FU latest trigger cycle (triggers must stay monotone so
        #: results complete in trigger order on each unit)
        self.fu_last_trigger: dict[str, int] = {}
        #: per-FU protection watermark: the latest cycle at which ANY
        #: previously scheduled value on the unit is still read (ready
        #: cycle, committed bypass reads, write-back moves).  A new
        #: result may only land strictly after it.  Unlike the
        #: ``current`` pointer this survives call clobbers, closing the
        #: window where a later-scheduled op could overwrite a result
        #: before an already-committed read.
        self.fu_protect: dict[str, int] = {}
        self.op_by_uid: dict[int, MOp] = {op.uid: op for op in block.ops}

    # ------------------------------------------------------------------
    # resource primitives
    # ------------------------------------------------------------------

    def _free_bus(self, cycle: int, src_ep: str, dst_ep: str) -> int | None:
        busy = self.bus_used.get(cycle, set())
        for bus in self.machine.buses:
            if bus.index not in busy and bus.connects(src_ep, dst_ep):
                return bus.index
        return None

    def _free_extra_buses(self, cycle: int, count: int, excluding: set[int]) -> list[int] | None:
        busy = self.bus_used.get(cycle, set()) | excluding
        free = [b.index for b in self.machine.buses if b.index not in busy]
        if len(free) < count:
            return None
        return free[:count]

    def _rf_read_ok(self, cycle: int, rf: str, count: int = 1) -> bool:
        limit = self.machine.rf_by_name[rf].read_ports
        return self.read_used.get((cycle, rf), 0) + count <= limit

    def _rf_write_ok(self, cycle: int, rf: str) -> bool:
        limit = self.machine.rf_by_name[rf].write_ports
        return self.write_used.get((cycle, rf), 0) + 1 <= limit

    def _imm_extra(self, value) -> int:
        if isinstance(value, LabelRef):
            return 1
        return immediate_slot_cost(self.machine, value)

    def _spans_call(self, early: int, late: int) -> bool:
        """True when a callee executes between cycles *early* and *late*
        (the callee clobbers all FU ports, pipelines and result registers,
        so no FU-resident state may cross such a boundary)."""
        return any(early <= tc + self.jl < late for tc in self.call_cycles)

    def _window_deadline(self, trigger: int) -> int | None:
        """Latest cycle by which an op triggered at *trigger* must be
        fully transported, imposed by already-placed calls."""
        deadline = None
        for tc in self.call_cycles:
            if trigger <= tc + self.jl:
                limit = tc + self.jl
                deadline = limit if deadline is None else min(deadline, limit)
        return deadline

    # ------------------------------------------------------------------
    # write-back placement (lazy; this is dead-result elimination)
    # ------------------------------------------------------------------

    def _place_wb(self, value: _Value, by: int | None = None, commit: bool = True) -> int | None:
        """Find (and optionally commit) an RF write-back for *value*.

        Returns the write-back cycle, or None if impossible within *by*.
        """
        if value.wb is not None:
            return value.wb
        assert value.fu is not None and value.reg is not None
        if self.fu_state[value.fu].current is not value:
            # The producing unit has been retriggered; the result register
            # no longer holds this value (scheduler invariant violation if
            # the value was still needed -- refuse rather than emit a
            # wrong move).
            return None
        reg = value.reg
        fu = self.machine.fu_by_name[value.fu]
        rf = reg.rf
        start = max(
            value.ready,
            self.reg_last_read.get(reg, -1) + 1,
            self.reg_wb.get(reg, -1) + 1,
        )
        deadline = self._window_deadline(value.trigger)
        if by is not None:
            deadline = by if deadline is None else min(deadline, by)
        limit = start + _SEARCH_HORIZON if deadline is None else deadline
        cycle = start
        while cycle <= limit:
            if self._spans_call(value.trigger, cycle):
                return None  # the callee will have clobbered the result
            bus = self._free_bus(cycle, fu.result_port, f"{rf}.write")
            if bus is not None and self._rf_write_ok(cycle, rf):
                if commit:
                    self._commit_move(
                        cycle,
                        Move(("fu", value.fu), ("rf", rf, reg.idx), bus),
                    )
                    value.wb = cycle
                    value.last_fu_read = max(value.last_fu_read, cycle)
                    self._bump_protect(value.fu, cycle)
                    self.reg_wb[reg] = cycle
                return cycle
            cycle += 1
        return None

    def _bump_protect(self, fu_name: str, cycle: int) -> None:
        self.fu_protect[fu_name] = max(self.fu_protect.get(fu_name, -1), cycle)

    def _commit_move(self, cycle: int, move: Move) -> None:
        self.bus_used.setdefault(cycle, set()).add(move.bus)
        if move.dst[0] == "rf":
            self.write_used[(cycle, move.dst[1])] = (
                self.write_used.get((cycle, move.dst[1]), 0) + 1
            )
        if move.src[0] == "rf":
            self.read_used[(cycle, move.src[1])] = (
                self.read_used.get((cycle, move.src[1]), 0) + 1
            )
        self.moves.append((cycle, move))
        self.max_move_cycle = max(self.max_move_cycle, cycle)

    # ------------------------------------------------------------------
    # operand access planning
    # ------------------------------------------------------------------

    def _plan_src(
        self,
        src,
        dst_ep: str,
        cycle: int,
        taken_buses: set[int],
        taken_reads: dict[str, int] | None = None,
    ):
        """Plan the transport of *src* into *dst_ep* at *cycle*.

        Returns (move, extra_bus_list, descriptor) or None.  ``move`` is
        None when the value already sits in the port (operand sharing,
        handled by the caller) -- here a None return means infeasible.
        """
        if isinstance(src, (Imm, LabelRef)):
            value = src.value if isinstance(src, Imm) else src
            extra = self._imm_extra(src.value if isinstance(src, Imm) else src)
            bus = None
            busy = self.bus_used.get(cycle, set()) | taken_buses
            for candidate in self.machine.buses:
                if candidate.index not in busy and candidate.connects("IMM", dst_ep):
                    bus = candidate.index
                    break
            if bus is None:
                return None
            extra_buses = []
            if extra:
                found = self._free_extra_buses(cycle, extra, taken_buses | {bus})
                if found is None:
                    return None
                extra_buses = found
            move = Move(("imm", value), self._dst_tuple(dst_ep), bus, extra_slots=extra)
            descriptor = ("imm", value if not isinstance(value, LabelRef) else value.name)
            return move, extra_buses, descriptor

        assert isinstance(src, PhysReg)
        value = self.reg_version.get(src)
        descriptor = ("val", value.uid if value is not None else ("livein", src))
        # 1) software bypass from the producing FU's result port
        if value is not None and value.fu is not None:
            fu_current = self.fu_state[value.fu].current
            if (
                fu_current is value
                and value.ready <= cycle
                and not self._spans_call(value.trigger, cycle)
            ):
                fu = self.machine.fu_by_name[value.fu]
                busy = self.bus_used.get(cycle, set()) | taken_buses
                for candidate in self.machine.buses:
                    if candidate.index not in busy and candidate.connects(
                        fu.result_port, dst_ep
                    ):
                        move = Move(("fu", value.fu), self._dst_tuple(dst_ep), candidate.index)
                        return move, [], descriptor
        # 2) read from the register file
        if value is not None and not value.in_rf_only and value.wb is None:
            wb = self._place_wb(value, by=cycle - 1, commit=False)
            if wb is None:
                return None
            self._place_wb(value, by=cycle - 1, commit=True)
        if value is not None and value.wb is not None and value.wb > cycle - 1:
            return None
        pending = (taken_reads or {}).get(src.rf, 0)
        if not self._rf_read_ok(cycle, src.rf, 1 + pending):
            return None
        busy = self.bus_used.get(cycle, set()) | taken_buses
        for candidate in self.machine.buses:
            if candidate.index not in busy and candidate.connects(f"{src.rf}.read", dst_ep):
                move = Move(("rf", src.rf, src.idx), self._dst_tuple(dst_ep), candidate.index)
                return move, [], descriptor
        return None

    @staticmethod
    def _dst_tuple(dst_ep: str):
        unit, port = dst_ep.split(".", 1)
        if port in ("t", "o1"):
            return ("op", unit, port, None)
        return ("rf", unit, None)  # idx filled by caller for RF writes

    # ------------------------------------------------------------------
    # op scheduling
    # ------------------------------------------------------------------

    def _units_for(self, op: MOp):
        if op.op in ("getra", "setra", "halt", "jump", "cjump", "cjumpz", "call", "ret"):
            return (self.machine.control_unit,)
        return self.machine.units_for_op[op.op]

    def _earliest(self, op: MOp) -> int:
        earliest = 0
        for edge in self.ddg.preds.get(op.uid, []):
            pred_t = self.placement[edge.pred]
            if edge.kind == "raw":
                value = self.values.get(edge.pred)
                if value is not None:
                    earliest = max(earliest, value.ready)
                elif edge.min_gap is not None:
                    earliest = max(earliest, pred_t + edge.min_gap)
            elif edge.kind in ("war", "waw"):
                pred_op = self.op_by_uid.get(edge.pred)
                if pred_op is not None and pred_op.op == "call" and edge.min_gap is not None:
                    # The callee owns clobbered registers until it returns.
                    earliest = max(earliest, pred_t + edge.min_gap)
                else:
                    earliest = max(earliest, pred_t)
            elif edge.min_gap is not None:
                earliest = max(earliest, pred_t + edge.min_gap)
        return earliest

    def _try_schedule(self, op: MOp, cycle: int) -> bool:
        if op.op == "copy":
            return self._try_copy(op, cycle)
        for fu in self._units_for(op):
            if self._try_on_fu(op, fu, cycle):
                return True
        return False

    def _try_copy(self, op: MOp, cycle: int) -> bool:
        """A copy is a bare transport into the destination register."""
        dest = op.dest
        assert isinstance(dest, PhysReg)
        if not self._rf_write_ok(cycle, dest.rf):
            return False
        if self.reg_last_read.get(dest, -1) >= cycle or self.reg_wb.get(dest, -1) >= cycle:
            return False
        planned = self._plan_src(op.srcs[0], f"{dest.rf}.write", cycle, set())
        if planned is None:
            return False
        move, extra_buses, _descriptor = planned
        move.dst = ("rf", dest.rf, dest.idx)
        deadline = self._window_deadline(cycle)
        if deadline is not None and cycle > deadline:
            return False
        self._commit_move(cycle, move)
        for bus in extra_buses:
            self.bus_used.setdefault(cycle, set()).add(bus)
        if move.src[0] == "fu":
            source_value = self.fu_state[move.src[1]].current
            if source_value is not None:
                source_value.last_fu_read = max(source_value.last_fu_read, cycle)
            self._bump_protect(move.src[1], cycle)
        self._note_src_consumption(op.srcs[0], cycle)
        value = _Value(
            op.uid, dest, None, cycle, cycle, wb=cycle,
            pending=self.consumers.get(op.uid, 0),
            live_out=self._is_live_out(op),
        )
        self._install_value(dest, value, cycle)
        self.placement[op.uid] = cycle
        return True

    def _is_live_out(self, op: MOp) -> bool:
        return (
            isinstance(op.dest, PhysReg)
            and op.dest in self.live_out_regs
            and self.last_def_uid.get(op.dest) == op.uid
        )

    def _install_value(self, reg: PhysReg, value: _Value, cycle: int) -> None:
        self.reg_version[reg] = value
        if value.wb is not None:
            self.reg_wb[reg] = value.wb
        self.values[value.uid] = value

    def _note_src_consumption(self, src, cycle: int, consumed: set | None = None) -> None:
        if isinstance(src, PhysReg):
            value = self.reg_version.get(src)
            if value is not None:
                if consumed is None or value.uid not in consumed:
                    value.pending = max(0, value.pending - 1)
                    if consumed is not None:
                        consumed.add(value.uid)
            if value is None or value.wb is not None:
                # an RF read may have occurred at `cycle`
                self.reg_last_read[src] = max(self.reg_last_read.get(src, -1), cycle)

    def _try_on_fu(self, op: MOp, fu, cycle: int) -> bool:
        spec_latency = op.latency
        name = fu.name
        if self.trigger_used.get((cycle, name)):
            return False
        # Triggers on one unit must be placed in increasing time: the
        # semi-virtual latching model (and the result pipeline) requires
        # in-order completion per FU.
        if cycle <= self.fu_last_trigger.get(name, -1):
            return False
        # The new result must land strictly after every committed use of
        # any earlier result on this unit.
        if cycle + spec_latency <= self.fu_protect.get(name, -1):
            return False
        state = self.fu_state[name]
        current = state.current
        # Retriggering overwrites the FU result at cycle+latency: the old
        # value must be flushed/consumed by then.  The flush write-back is
        # committed up front so its bus/port reservations are visible to
        # the move planning below (a committed write-back is semantically
        # safe even if this op ends up placed elsewhere).
        if current is not None:
            overwrite = cycle + spec_latency
            if current.last_fu_read >= overwrite:
                return False
            # Results on one unit must complete in trigger order, strictly
            # separated: two results landing in the result register on the
            # same cycle would be a hardware write conflict.
            if overwrite <= current.ready:
                return False
            needs_flush = current.wb is None and (current.pending > 0 or current.live_out)
            if needs_flush:
                wb = self._place_wb(current, by=overwrite - 1, commit=False)
                if wb is None:
                    return False
                self._place_wb(current, by=overwrite - 1, commit=True)
            if current.wb is not None and current.wb >= overwrite:
                return False
        deadline = self._window_deadline(cycle)
        if deadline is not None and cycle > deadline:
            return False

        if op.op == "call":
            boundary = cycle + self.jl
            # No committed FU-resident state may straddle the redirect:
            # operand-port holds, bypass reads or write-backs scheduled
            # after the boundary for values triggered before it.
            for windows in self.fu_o1_windows.values():
                if any(w <= boundary < h for (w, h) in windows):
                    return False
            for value in self.values.values():
                if value.fu is None or value.trigger > boundary:
                    continue
                if value.last_fu_read > boundary:
                    return False
                if value.wb is not None and value.wb > boundary:
                    return False
                if value.ready > boundary and (value.pending > 0 or value.live_out):
                    return False
            # The callee clobbers every FU pipeline: any value still only
            # in an FU result register but needed later (or live out of
            # the block) must be written back before the redirect.
            flushes = [
                s.current
                for s in self.fu_state.values()
                if s.current is not None
                and s.current.wb is None
                and (s.current.pending > 0 or s.current.live_out)
            ]
            for value in flushes:
                if self._place_wb(value, by=cycle + self.jl, commit=False) is None:
                    return False
            for value in flushes:
                if self._place_wb(value, by=cycle + self.jl, commit=True) is None:
                    return False

        value_needed = (
            isinstance(op.dest, PhysReg)
            and op.op != "call"
            and (self.consumers.get(op.uid, 0) > 0 or self._is_live_out(op))
        )
        if deadline is not None and value_needed:
            # The op executes in a call's delay window; the callee will
            # clobber the FU, so the result must reach the RF inside the
            # window.  Check a write-back slot exists before committing.
            fu_result = fu.result_port
            rf_name = op.dest.rf
            feasible = any(
                self._rf_write_ok(w, rf_name)
                and self._free_bus(w, fu_result, f"{rf_name}.write") is not None
                for w in range(cycle + spec_latency, deadline + 1)
            )
            if not feasible:
                return False

        taken: set[int] = set()
        taken_reads: dict[str, int] = {}
        #: planned transports as (move_cycle, move, extra_buses)
        planned_moves: list[tuple[int, Move, list[int]]] = []
        # operand 1 -> o1 port: operand sharing if the port already holds
        # the value, else a transport at the trigger cycle or -- using the
        # input-port storage -- at an earlier free cycle.
        o1_commit: tuple | None = None  # (o1_cycle, descriptor) when a move is made
        shared = False
        if len(op.srcs) >= 2 and op.op != "call":
            src1 = op.srcs[1]
            descriptor = self._descriptor_of(src1)
            windows = self.fu_o1_windows.setdefault(name, [])
            held = state.o1_holds  # (descriptor, write_cycle) of latest write
            if (
                held is not None
                and held[0] == descriptor
                and held[1] <= cycle
                and not self._spans_call(held[1], cycle)
            ):
                shared = True  # port already holds the operand
            else:
                placed = False
                floor = max(cycle - 12, 0)
                for o1_cycle in range(cycle, floor - 1, -1):
                    if self._spans_call(o1_cycle, cycle):
                        break  # earlier cycles all cross the call boundary
                    if self.o1_used.get((o1_cycle, name)):
                        continue
                    # Our write must not clobber a held operand, and no
                    # existing write may clobber ours before the trigger.
                    if any(w < o1_cycle <= h for (w, h) in windows):
                        continue
                    if any(o1_cycle < w <= cycle for (w, _h) in windows):
                        continue
                    same = o1_cycle == cycle
                    o1_taken: set[int] = set(taken) if same else set()
                    o1_reads: dict[str, int] = dict(taken_reads) if same else {}
                    planned = self._plan_src(
                        src1,
                        fu.operand_port,
                        o1_cycle,
                        o1_taken,
                        o1_reads if same else None,
                    )
                    if planned is None:
                        continue
                    move, extra, descriptor = planned
                    if same:
                        o1_taken.add(move.bus)
                        o1_taken.update(extra)
                        if move.src[0] == "rf":
                            o1_reads[move.src[1]] = o1_reads.get(move.src[1], 0) + 1
                    # The trigger transport must also fit, given this
                    # operand placement; otherwise try an earlier cycle.
                    trig = self._plan_src(
                        op.srcs[0],
                        fu.trigger_port,
                        cycle,
                        o1_taken if same else taken,
                        o1_reads if same else taken_reads,
                    )
                    if trig is None:
                        continue
                    planned_moves.append((o1_cycle, move, extra))
                    o1_commit = (o1_cycle, descriptor)
                    trigger_move, trigger_extra, _ = trig
                    trigger_move.dst = ("op", name, "t", op.op)
                    planned_moves.append((cycle, trigger_move, trigger_extra))
                    placed = True
                    break
                if not placed:
                    return False
        if not planned_moves or planned_moves[-1][1].dst[:3] != ("op", name, "t"):
            # No operand move was needed (unary op, call, or shared
            # operand): plan the trigger transport now.
            planned = self._plan_src(op.srcs[0], fu.trigger_port, cycle, taken, taken_reads)
            if planned is None:
                return False
            trigger_move, trigger_extra, _ = planned
            trigger_move.dst = ("op", name, "t", op.op)
            planned_moves.append((cycle, trigger_move, trigger_extra))

        # ---- commit ----
        for move_cycle, move, extra in planned_moves:
            self._commit_move(move_cycle, move)
            for bus in extra:
                self.bus_used.setdefault(move_cycle, set()).add(bus)
            if move.src[0] == "fu":
                source_value = self.fu_state[move.src[1]].current
                if source_value is not None:
                    source_value.last_fu_read = max(source_value.last_fu_read, move_cycle)
                self._bump_protect(move.src[1], move_cycle)
        self.trigger_used[(cycle, name)] = True
        self.fu_last_trigger[name] = max(self.fu_last_trigger.get(name, -1), cycle)
        if o1_commit is not None:
            o1_cycle, descriptor = o1_commit
            self.o1_used[(o1_cycle, name)] = True
            self.fu_o1_windows.setdefault(name, []).append((o1_cycle, cycle))
            if state.o1_holds is None or o1_cycle >= state.o1_holds[1]:
                state.o1_holds = (descriptor, o1_cycle)
        elif shared and state.o1_holds is not None:
            # extend the hold window of the shared operand
            windows = self.fu_o1_windows.setdefault(name, [])
            for index, (w, h) in enumerate(windows):
                if w == state.o1_holds[1]:
                    windows[index] = (w, max(h, cycle))
                    break
        # Consume each distinct source value exactly once.
        consumed: set[int] = set()
        op_srcs = op.srcs if op.op != "call" else op.srcs[:1]
        for src_index, src in enumerate(op_srcs):
            read_cycle = cycle
            if src_index == 1 and o1_commit is not None:
                read_cycle = o1_commit[0]
            self._note_src_consumption(src, read_cycle, consumed)

        self.placement[op.uid] = cycle
        if op.op == "call":
            self._commit_call_effects(op, cycle)
            return True
        if isinstance(op.dest, PhysReg):
            value = _Value(
                op.uid,
                op.dest,
                name,
                cycle,
                cycle + spec_latency,
                pending=self.consumers.get(op.uid, 0),
                live_out=self._is_live_out(op),
            )
            state.current = value
            self._install_value(op.dest, value, cycle)
            self._bump_protect(name, value.ready)
            if deadline is not None and value_needed:
                if self._place_wb(value, by=deadline, commit=True) is None:
                    raise ScheduleError(
                        f"write-back of {op!r} does not fit its call window"
                    )
        else:
            state.current = None
        return True

    def _descriptor_of(self, src):
        if isinstance(src, Imm):
            return ("imm", src.value)
        if isinstance(src, LabelRef):
            return ("imm", src.name)
        value = self.reg_version.get(src)
        return ("val", value.uid if value is not None else ("livein", src))

    def _commit_call_effects(self, op: MOp, cycle: int) -> None:
        self.call_cycles.append(cycle)
        # The callee clobbers every FU pipeline and input port.
        for state in self.fu_state.values():
            state.current = None
            state.o1_holds = None
        # Caller-saved registers now hold callee-defined values; the
        # return value lands in the RF before the callee returns.
        clobbered = caller_saved(self.machine) | set(scratch_regs(self.machine))
        for reg in clobbered:
            value = _Value(
                op.uid if reg == op.dest else -op.uid,
                reg,
                None,
                cycle,
                cycle + self.jl,
                wb=cycle + self.jl,
                pending=self.consumers.get(op.uid, 0) if reg == op.dest else 0,
                live_out=self._is_live_out(op) if reg == op.dest else False,
            )
            self.reg_version[reg] = value
            self.reg_wb[reg] = cycle + self.jl
            self.reg_last_read[reg] = max(self.reg_last_read.get(reg, -1), cycle + self.jl)
        if isinstance(op.dest, PhysReg):
            self.values[op.uid] = self.reg_version[op.dest]

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------

    def run(self) -> ScheduledBlock:
        ops = list(self.block.ops)
        terminators: list[MOp] = []
        while ops and ops[-1].is_control and ops[-1].op != "call":
            terminators.insert(0, ops.pop())

        unscheduled = {op.uid: op for op in ops}
        pred_count = {
            op.uid: sum(1 for e in self.ddg.preds.get(op.uid, []) if e.pred in unscheduled)
            for op in ops
        }
        order_index = {op.uid: i for i, op in enumerate(self.block.ops)}
        ready = [op for op in ops if pred_count[op.uid] == 0]

        while unscheduled:
            if not ready:
                raise ScheduleError(f"dependence cycle in {self.block.name}")
            ready.sort(key=lambda o: (-self.ddg.height.get(o.uid, 0), order_index[o.uid]))
            op = ready.pop(0)
            earliest = self._earliest(op)
            cycle = earliest
            while not self._try_schedule(op, cycle):
                cycle += 1
                if cycle - earliest > _SEARCH_HORIZON:
                    raise ScheduleError(f"cannot place {op!r} in {self.block.name}")
            del unscheduled[op.uid]
            for edge in self.ddg.succs.get(op.uid, []):
                if edge.succ in unscheduled:
                    pred_count[edge.succ] -= 1
                    if pred_count[edge.succ] == 0:
                        ready.append(unscheduled[edge.succ])

        # Flush values that were never written back but are still
        # needed: live out of the block, or carrying ABI-preserved state
        # the terminator's synthetic uses reference (restored callee-saved
        # registers, the stack pointer, the return value).
        for value in list(self.values.values()):
            needed = value.live_out or value.pending > 0
            if needed and value.wb is None:
                if self._place_wb(value) is None:
                    raise ScheduleError(
                        f"cannot write back needed value in {self.block.name}"
                    )

        # Terminators.
        last_ctrl = None
        for op in terminators:
            earliest = max(self._earliest(op), self.max_move_cycle - self.jl, 0)
            if last_ctrl is not None:
                earliest = max(earliest, last_ctrl + self.jl + 1)
            cycle = earliest
            while not self._try_schedule(op, cycle):
                cycle += 1
                if cycle - earliest > _SEARCH_HORIZON:
                    raise ScheduleError(f"cannot place {op!r} in {self.block.name}")
            last_ctrl = cycle

        if last_ctrl is not None:
            length = last_ctrl + self.jl + 1
        else:
            length = self.max_move_cycle + 1 if self.max_move_cycle >= 0 else 0
        # A call needs its delay slots inside this block: the return
        # address is call + jump_latency + 1 and must point past them.
        for tc in self.call_cycles:
            length = max(length, tc + self.jl + 1)

        instrs = [TTAInstr() for _ in range(length)]
        for cycle, move in self.moves:
            instrs[cycle].moves.append(move)
        return ScheduledBlock(self.block.name, length, instrs)


def schedule_tta_function(mfunc: MFunction, machine: Machine) -> list[ScheduledBlock]:
    """Schedule every block of *mfunc* as TTA move code."""
    clobbers = caller_saved(machine) | set(scratch_regs(machine))
    _live_in, live_out = machine_liveness(mfunc, clobbers, ret_preserved_regs(machine))
    blocks = []
    for block in mfunc.blocks:
        out_regs = {r for r in live_out[block.name] if isinstance(r, PhysReg)}
        blocks.append(_BlockScheduler(block, machine, out_regs).run())
    return blocks
