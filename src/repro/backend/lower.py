"""Lowering IR functions to machine operations.

Lowering is style-independent: the same machine code (modulo register
allocation) feeds the TTA, VLIW and scalar schedulers, mirroring the
paper's methodology of using one compiler for every design point.

Code layout decisions made here:

* block labels become globally unique (``func:block``);
* conditional branches pick ``cjump``/``cjumpz`` so that the fall-through
  edge targets the next block in layout order whenever possible;
* calls expand to argument moves into the ABI registers (plus stack
  stores for arguments beyond four), and non-leaf functions capture the
  control unit's return address into an ordinary register (``getra``)
  at entry and restore it (``setra``) before returning.
"""

from __future__ import annotations

from repro.backend.abi import NUM_ARG_REGS, arg_regs, return_value_reg, stack_pointer
from repro.backend.mop import FrameRef, Imm, LabelRef, MBlock, MFunction, MOp, Src
from repro.ir.function import Function
from repro.ir.instructions import (
    BinOp,
    Call,
    CJump,
    Const,
    Copy,
    FrameAddr,
    Jump,
    Load,
    Operand,
    Ret,
    Store,
    Sym,
    UnOp,
    VReg,
)
from repro.machine.machine import Machine

_MASK32 = 0xFFFFFFFF


def block_label(function_name: str, block_name: str) -> str:
    return f"{function_name}:{block_name}"


class _Lowerer:
    def __init__(self, fn: Function, machine: Machine, symbols: dict[str, int]) -> None:
        self.fn = fn
        self.machine = machine
        self.symbols = symbols
        self.sp = stack_pointer(machine)
        self.args = arg_regs(machine)
        self.rv = return_value_reg(machine)
        self.has_calls = any(
            isinstance(instr, Call)
            for block in fn.ordered_blocks()
            for instr in block.instrs
        )
        self.ra_vreg: VReg | None = fn.new_vreg() if self.has_calls else None
        self.mfunc = MFunction(
            fn.name,
            frame_slots={
                name: (slot.size, slot.align) for name, slot in fn.frame_slots.items()
            },
            has_calls=self.has_calls,
        )

    # ---- operand conversion ---------------------------------------------

    def src(self, operand: Operand) -> Src:
        if isinstance(operand, VReg):
            return operand
        if isinstance(operand, Const):
            return Imm(operand.value & _MASK32)
        if isinstance(operand, Sym):
            return Imm(self.symbols[operand.name])
        raise TypeError(f"bad operand {operand!r}")

    # ---- driver --------------------------------------------------------------

    def run(self) -> MFunction:
        order = self.fn.block_order
        for position, name in enumerate(order):
            block = self.fn.blocks[name]
            mblock = MBlock(block_label(self.fn.name, name))
            self.mfunc.blocks.append(mblock)
            if position == 0:
                self._emit_entry(mblock)
            for instr in block.instrs:
                self._lower_instr(mblock, instr)
            next_name = order[position + 1] if position + 1 < len(order) else None
            self._lower_terminator(mblock, block.terminator, next_name)
        return self.mfunc

    def _emit_entry(self, mblock: MBlock) -> None:
        if self.ra_vreg is not None:
            mblock.ops.append(MOp("getra", self.ra_vreg, [Imm(0)]))
        for index, param in enumerate(self.fn.params):
            if index < NUM_ARG_REGS:
                mblock.ops.append(MOp("copy", param, [self.args[index]]))
            else:
                # Incoming stack argument: above this function's frame.
                slot = f"@inarg{index - NUM_ARG_REGS}"
                addr = self.fn.new_vreg()
                mblock.ops.append(MOp("add", addr, [self.sp, FrameRef(slot)]))
                mblock.ops.append(MOp("ldw", param, [addr]))

    # ---- instructions -------------------------------------------------------------

    def _lower_instr(self, mblock: MBlock, instr) -> None:
        if isinstance(instr, BinOp):
            mblock.ops.append(MOp(instr.op, instr.dest, [self.src(instr.a), self.src(instr.b)]))
        elif isinstance(instr, UnOp):
            mblock.ops.append(MOp(instr.op, instr.dest, [self.src(instr.a)]))
        elif isinstance(instr, Copy):
            mblock.ops.append(MOp("copy", instr.dest, [self.src(instr.src)]))
        elif isinstance(instr, Load):
            mblock.ops.append(MOp(instr.op, instr.dest, [self.src(instr.addr)]))
        elif isinstance(instr, Store):
            mblock.ops.append(
                MOp(instr.op, None, [self.src(instr.addr), self.src(instr.value)])
            )
        elif isinstance(instr, FrameAddr):
            mblock.ops.append(MOp("add", instr.dest, [self.sp, FrameRef(instr.slot)]))
        elif isinstance(instr, Call):
            self._lower_call(mblock, instr)
        else:
            raise TypeError(f"cannot lower {instr!r}")

    def _lower_call(self, mblock: MBlock, instr: Call) -> None:
        stack_args = instr.args[NUM_ARG_REGS:]
        outgoing = len(stack_args) * 4
        if outgoing:
            mblock.ops.append(MOp("sub", self.sp, [self.sp, Imm(outgoing)]))
            for index, arg in enumerate(stack_args):
                addr = self.fn.new_vreg()
                mblock.ops.append(MOp("add", addr, [self.sp, Imm(index * 4)]))
                mblock.ops.append(MOp("stw", None, [addr, self.src(arg)]))
        used_arg_regs = []
        for index, arg in enumerate(instr.args[:NUM_ARG_REGS]):
            mblock.ops.append(MOp("copy", self.args[index], [self.src(arg)]))
            used_arg_regs.append(self.args[index])
        mblock.ops.append(MOp("call", self.rv, [LabelRef(instr.callee), *used_arg_regs]))
        if outgoing:
            mblock.ops.append(MOp("add", self.sp, [self.sp, Imm(outgoing)]))
        if instr.dest is not None:
            mblock.ops.append(MOp("copy", instr.dest, [self.rv]))

    # ---- terminators -----------------------------------------------------------------

    def _lower_terminator(self, mblock: MBlock, term, next_name: str | None) -> None:
        label = lambda name: LabelRef(block_label(self.fn.name, name))  # noqa: E731
        if isinstance(term, Jump):
            if term.target != next_name:
                mblock.ops.append(MOp("jump", None, [label(term.target)]))
        elif isinstance(term, CJump):
            cond = self.src(term.cond)
            if term.false_target == next_name:
                mblock.ops.append(MOp("cjump", None, [cond, label(term.true_target)]))
            elif term.true_target == next_name:
                mblock.ops.append(MOp("cjumpz", None, [cond, label(term.false_target)]))
            else:
                mblock.ops.append(MOp("cjump", None, [cond, label(term.true_target)]))
                mblock.ops.append(MOp("jump", None, [label(term.false_target)]))
        elif isinstance(term, Ret):
            if term.value is not None:
                mblock.ops.append(MOp("copy", self.rv, [self.src(term.value)]))
            if self.ra_vreg is not None:
                mblock.ops.append(MOp("setra", None, [self.ra_vreg]))
            mblock.ops.append(MOp("ret", None, [Imm(0)]))
        else:
            raise TypeError(f"cannot lower terminator {term!r}")


def lower_function(fn: Function, machine: Machine, symbols: dict[str, int]) -> MFunction:
    """Lower one IR function for *machine* (symbols: global address map)."""
    return _Lowerer(fn, machine, symbols).run()
