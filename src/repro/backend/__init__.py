"""Machine backend: lowering, register allocation and scheduling.

The backend follows the TCE structure the paper relies on: a single code
generator lowers IR to machine operations, a linear-scan allocator with
register-file partitioning assigns physical registers, and then one of
three schedulers produces the executable program:

* :mod:`repro.backend.schedule_tta` -- exposed-datapath move scheduling
  with software bypassing, dead-result-move elimination and operand
  sharing (the TTA programming freedoms of Section III);
* :mod:`repro.backend.schedule_vliw` -- operation-triggered list
  scheduling into issue slots (the same compiler with the TTA freedoms
  switched off, as in the paper's methodology);
* sequential emission for the scalar (MicroBlaze-like) cores.
"""

from repro.backend.compile import CompiledProgram, compile_for_machine
from repro.backend.mop import FrameRef, Imm, LabelRef, MBlock, MFunction, MOp, PhysReg

__all__ = [
    "CompiledProgram",
    "FrameRef",
    "Imm",
    "LabelRef",
    "MBlock",
    "MFunction",
    "MOp",
    "PhysReg",
    "compile_for_machine",
]
