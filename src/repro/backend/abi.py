"""Calling convention shared by all design points.

* ``RF0[0]``  -- stack pointer (reserved).
* ``RF0[1]``  -- return value and first argument.
* ``RF0[1..4]`` -- argument registers; caller-saved (clobbered by calls).
* every other register -- callee-saved: a function saves/restores the
  ones it writes.  The return address is captured from the control unit
  into an ordinary register (``getra``) in non-leaf functions, so nested
  calls work without a dedicated link-register stack.
* arguments beyond four go on the stack: the caller decrements SP by the
  outgoing-area size, stores, calls, and restores SP; the callee reads
  them above its own frame.

The stack grows downward from the top of data memory.
"""

from __future__ import annotations

from repro.backend.mop import PhysReg
from repro.machine.machine import Machine

#: Number of register-passed arguments.
NUM_ARG_REGS = 4

#: Data memory size shared by the simulators and the interpreter.
MEMORY_SIZE = 1 << 20
#: Initial stack pointer.
STACK_TOP = MEMORY_SIZE - 16


def stack_pointer(machine: Machine) -> PhysReg:
    first_rf = machine.register_files[0].name
    return PhysReg(first_rf, 0)


def arg_regs(machine: Machine) -> list[PhysReg]:
    first_rf = machine.register_files[0].name
    return [PhysReg(first_rf, i + 1) for i in range(NUM_ARG_REGS)]


def return_value_reg(machine: Machine) -> PhysReg:
    first_rf = machine.register_files[0].name
    return PhysReg(first_rf, 1)


def caller_saved(machine: Machine) -> set[PhysReg]:
    """Registers clobbered by a call (argument/return-value registers)."""
    return set(arg_regs(machine))


def scratch_regs(machine: Machine) -> list[PhysReg]:
    """Two registers reserved for spill reload/store sequences."""
    last_rf = machine.register_files[-1].name
    size = machine.register_files[-1].size
    return [PhysReg(last_rf, size - 1), PhysReg(last_rf, size - 2)]


def ret_preserved_regs(machine: Machine) -> tuple[PhysReg, ...]:
    """Registers that must hold their ABI-mandated values when a function
    returns: the stack pointer, the return value, and every callee-saved
    register."""
    clobbered = caller_saved(machine) | set(scratch_regs(machine))
    preserved = [stack_pointer(machine), return_value_reg(machine)]
    for reg in allocatable_regs(machine):
        if reg not in clobbered:
            preserved.append(reg)
    return tuple(preserved)


def allocatable_regs(machine: Machine) -> list[PhysReg]:
    """All registers the allocator may hand out, in a round-robin order
    that interleaves the register files (spreads port pressure on the
    partitioned design points)."""
    reserved = {stack_pointer(machine), *scratch_regs(machine)}
    regs: list[PhysReg] = []
    max_size = max(rf.size for rf in machine.register_files)
    for idx in range(max_size):
        for rf in machine.register_files:
            if idx < rf.size:
                reg = PhysReg(rf.name, idx)
                if reg not in reserved:
                    regs.append(reg)
    return regs
