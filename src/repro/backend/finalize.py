"""Frame layout, prologue/epilogue insertion and frame-ref resolution.

Runs after register allocation, before scheduling.  Frame layout (from
SP upward): callee-saved register save area, IR frame slots (aligned),
spill slots; the total is rounded to 8 bytes.  Incoming stack arguments
(``@inargN`` refs) resolve to offsets above the frame.
"""

from __future__ import annotations

from repro.backend.abi import caller_saved, scratch_regs, stack_pointer
from repro.backend.mop import FrameRef, Imm, MFunction, MOp, PhysReg
from repro.machine.machine import Machine


def finalize_function(mfunc: MFunction, machine: Machine, synthetic: bool = False) -> None:
    """Lay out the frame, insert prologue/epilogue, resolve FrameRefs."""
    sp = stack_pointer(machine)
    scratch = scratch_regs(machine)
    not_saved = caller_saved(machine) | set(scratch) | {sp}
    saved = sorted(
        (reg for reg in mfunc.used_regs if reg not in not_saved),
        key=lambda r: (r.rf, r.idx),
    )
    if synthetic:
        saved = []

    offsets: dict[str, int] = {}
    offset = 0
    save_offsets: list[tuple[PhysReg, int]] = []
    for reg in saved:
        save_offsets.append((reg, offset))
        offset += 4
    for name, (size, align) in mfunc.frame_slots.items():
        align = max(align, 1)
        offset = (offset + align - 1) // align * align
        offsets[name] = offset
        offset += size
    frame_size = (offset + 7) // 8 * 8
    mfunc.frame_size = frame_size

    def resolve(ref: FrameRef) -> Imm:
        if ref.slot.startswith("@inarg"):
            index = int(ref.slot[len("@inarg") :])
            return Imm(frame_size + 4 * index)
        return Imm(offsets[ref.slot])

    for block in mfunc.blocks:
        for op in block.ops:
            op.srcs = [resolve(s) if isinstance(s, FrameRef) else s for s in op.srcs]

    if synthetic:
        return

    prologue: list[MOp] = []
    if frame_size:
        prologue.append(MOp("sub", sp, [sp, Imm(frame_size)]))
    for reg, off in save_offsets:
        if off == 0:
            prologue.append(MOp("stw", None, [sp, reg]))
        else:
            prologue.append(MOp("add", scratch[0], [sp, Imm(off)]))
            prologue.append(MOp("stw", None, [scratch[0], reg]))
    mfunc.blocks[0].ops[:0] = prologue

    if not (frame_size or save_offsets):
        return
    for block in mfunc.blocks:
        for index, op in enumerate(block.ops):
            if op.op == "ret":
                epilogue: list[MOp] = []
                for reg, off in save_offsets:
                    if off == 0:
                        epilogue.append(MOp("ldw", reg, [sp]))
                    else:
                        epilogue.append(MOp("add", scratch[0], [sp, Imm(off)]))
                        epilogue.append(MOp("ldw", reg, [scratch[0]]))
                if frame_size:
                    epilogue.append(MOp("add", sp, [sp, Imm(frame_size)]))
                block.ops[index:index] = epilogue
                break
