"""The full compilation driver: IR module -> linked machine program."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backend.abi import STACK_TOP, stack_pointer
from repro.backend.finalize import finalize_function
from repro.backend.lower import lower_function
from repro.backend.mop import Imm, LabelRef, MBlock, MFunction, MOp
from repro.backend.program import Program, ScheduledBlock, link_blocks
from repro.backend.regalloc import allocate_registers
from repro.backend.schedule_tta import schedule_tta_function
from repro.backend.schedule_vliw import _imm_extra, schedule_vliw_function
from repro.ir.module import Module
from repro.machine.machine import Machine, MachineStyle


@dataclass
class CompiledProgram:
    """A program compiled, scheduled and linked for one design point.

    Attributes:
        program: the linked instruction stream.
        machine: the target design point.
        module: the IR module it was built from.
        symbols: global-variable address map (for simulator memory init).
        data_init: (address, bytes) pairs to preload into data memory.
        mfuncs: the lowered machine functions (for inspection/tests).
    """

    program: Program
    machine: Machine
    module: Module
    symbols: dict[str, int]
    data_init: list[tuple[int, bytes]] = field(default_factory=list)
    mfuncs: dict[str, MFunction] = field(default_factory=dict)

    @property
    def instruction_count(self) -> int:
        return self.program.instruction_count


def _build_start(machine: Machine, entry: str) -> MFunction:
    """Synthesise the startup stub: set SP, call the entry, halt."""
    sp = stack_pointer(machine)
    block = MBlock("_start:entry")
    block.ops.append(MOp("copy", sp, [Imm(STACK_TOP)]))
    block.ops.append(MOp("call", None, [LabelRef(entry)]))
    block.ops.append(MOp("halt", None, [Imm(0)]))
    mfunc = MFunction("_start", blocks=[block], has_calls=True)
    return mfunc


def _schedule_scalar(mfunc: MFunction) -> list[ScheduledBlock]:
    """Scalar cores execute the lowered ops in program order."""
    return [
        ScheduledBlock(block.name, len(block.ops), list(block.ops))
        for block in mfunc.blocks
    ]


def compile_for_machine(module: Module, machine: Machine) -> CompiledProgram:
    """Compile an (optimised, verified) IR module for *machine*."""
    module.verify()
    symbols = module.layout_globals()

    mfuncs: dict[str, MFunction] = {"_start": _build_start(machine, module.entry)}
    for name, function in module.functions.items():
        mfunc = lower_function(function, machine, symbols)
        allocate_registers(mfunc, machine)
        finalize_function(mfunc, machine)
        mfuncs[name] = mfunc
    finalize_function(mfuncs["_start"], machine, synthetic=True)

    blocks: list[ScheduledBlock] = []
    aliases: dict[str, str] = {}
    extra_imm_words = 0
    for name, mfunc in mfuncs.items():
        if machine.style is MachineStyle.TTA:
            scheduled = schedule_tta_function(mfunc, machine)
        elif machine.style is MachineStyle.VLIW:
            scheduled = schedule_vliw_function(mfunc, machine)
        else:
            scheduled = _schedule_scalar(mfunc)
            extra_imm_words += sum(
                _imm_extra(machine, op) for block in mfunc.blocks for op in block.ops
            )
        aliases[name] = scheduled[0].label
        blocks.extend(scheduled)

    program = link_blocks(machine, machine.style.value, blocks, aliases)
    program.extra_imm_words = extra_imm_words

    data_init = [
        (symbols[gname], gvar.init)
        for gname, gvar in module.globals.items()
        if gvar.init
    ]
    return CompiledProgram(program, machine, module, symbols, data_init, mfuncs)
