"""The full compilation driver: IR module -> linked machine program."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.backend.abi import STACK_TOP, stack_pointer
from repro.backend.finalize import finalize_function
from repro.backend.lower import lower_function
from repro.backend.mop import Imm, LabelRef, MBlock, MFunction, MOp
from repro.backend.program import Program, ScheduledBlock, link_blocks
from repro.backend.regalloc import allocate_registers
from repro.backend.schedule_tta import schedule_tta_function
from repro.backend.schedule_vliw import _imm_extra, schedule_vliw_function
from repro.ir.module import Module
from repro.machine.machine import Machine, MachineStyle


@dataclass
class CompiledProgram:
    """A program compiled, scheduled and linked for one design point.

    Attributes:
        program: the linked instruction stream.
        machine: the target design point.
        module: the IR module it was built from.
        symbols: global-variable address map (for simulator memory init).
        data_init: (address, bytes) pairs to preload into data memory.
        mfuncs: the lowered machine functions (for inspection/tests).
    """

    program: Program
    machine: Machine
    module: Module
    symbols: dict[str, int]
    data_init: list[tuple[int, bytes]] = field(default_factory=list)
    mfuncs: dict[str, MFunction] = field(default_factory=dict)

    @property
    def instruction_count(self) -> int:
        return self.program.instruction_count


def _build_start(machine: Machine, entry: str) -> MFunction:
    """Synthesise the startup stub: set SP, call the entry, halt."""
    sp = stack_pointer(machine)
    block = MBlock("_start:entry")
    block.ops.append(MOp("copy", sp, [Imm(STACK_TOP)]))
    block.ops.append(MOp("call", None, [LabelRef(entry)]))
    block.ops.append(MOp("halt", None, [Imm(0)]))
    mfunc = MFunction("_start", blocks=[block], has_calls=True)
    return mfunc


def _schedule_scalar(mfunc: MFunction) -> list[ScheduledBlock]:
    """Scalar cores execute the lowered ops in program order."""
    return [
        ScheduledBlock(block.name, len(block.ops), list(block.ops))
        for block in mfunc.blocks
    ]


def _record_schedule_counters(machine: Machine, program: Program) -> None:
    """Fold schedule-quality statistics into the active tracer.

    Only called when tracing is enabled — one pass over the linked
    instruction stream, entirely outside any measured simulation loop.

    * ``sched.instrs``       linked instruction words
    * ``sched.moves``        scheduled TTA transports
    * ``sched.bypass_moves`` FU→FU transports (RF read eliminated: the
      operand rides the transport network instead of touching a
      register file — the paper's core RF-traffic argument)
    * ``sched.rf_write_moves`` transports landing in a register file
    * ``sched.longimm_slots``  extra bus slots consumed by wide
      immediates
    * ``sched.ops``          scheduled VLIW/scalar operations
    * ``sched.nop_slots``    empty TTA bus slots / VLIW issue slots
    """
    from repro.backend.program import TTAInstr, VLIWInstr

    obs.count("sched.instrs", program.instruction_count)
    moves = bypass = rf_writes = longimm = ops = nops = 0
    for instr in program.instrs:
        if isinstance(instr, TTAInstr):
            moves += len(instr.moves)
            used = len(instr.moves)
            for move in instr.moves:
                used += move.extra_slots
                longimm += move.extra_slots
                if move.src[0] == "fu" and move.dst[0] == "op":
                    bypass += 1
                if move.dst[0] == "rf":
                    rf_writes += 1
            nops += len(machine.buses) - used
        elif isinstance(instr, VLIWInstr):
            ops += len(instr.ops)
            nops += machine.issue_width - len(instr.ops)
        else:
            ops += 1
    if moves:
        obs.count("sched.moves", moves)
        obs.count("sched.bypass_moves", bypass)
        obs.count("sched.rf_write_moves", rf_writes)
        obs.count("sched.longimm_slots", longimm)
    if ops:
        obs.count("sched.ops", ops)
    obs.count("sched.nop_slots", nops)


def compile_for_machine(module: Module, machine: Machine) -> CompiledProgram:
    """Compile an (optimised, verified) IR module for *machine*."""
    module.verify()
    symbols = module.layout_globals()

    mfuncs: dict[str, MFunction] = {"_start": _build_start(machine, module.entry)}
    for name, function in module.functions.items():
        with obs.span("backend.lower", function=name):
            mfunc = lower_function(function, machine, symbols)
        with obs.span("backend.regalloc", function=name):
            allocate_registers(mfunc, machine)
        with obs.span("backend.finalize", function=name):
            finalize_function(mfunc, machine)
        mfuncs[name] = mfunc
    finalize_function(mfuncs["_start"], machine, synthetic=True)

    blocks: list[ScheduledBlock] = []
    aliases: dict[str, str] = {}
    extra_imm_words = 0
    for name, mfunc in mfuncs.items():
        if machine.style is MachineStyle.TTA:
            with obs.span("backend.schedule_tta", function=name):
                scheduled = schedule_tta_function(mfunc, machine)
        elif machine.style is MachineStyle.VLIW:
            with obs.span("backend.schedule_vliw", function=name):
                scheduled = schedule_vliw_function(mfunc, machine)
        else:
            scheduled = _schedule_scalar(mfunc)
            extra_imm_words += sum(
                _imm_extra(machine, op) for block in mfunc.blocks for op in block.ops
            )
        aliases[name] = scheduled[0].label
        blocks.extend(scheduled)

    with obs.span("backend.link"):
        program = link_blocks(machine, machine.style.value, blocks, aliases)
    program.extra_imm_words = extra_imm_words
    if obs.enabled():
        _record_schedule_counters(machine, program)

    data_init = [
        (symbols[gname], gvar.init)
        for gname, gvar in module.globals.items()
        if gvar.init
    ]
    return CompiledProgram(program, machine, module, symbols, data_init, mfuncs)
