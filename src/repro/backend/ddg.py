"""Data-dependence graphs over machine blocks (post-allocation).

Edges carry a *kind* and the information each scheduler needs to turn
them into timing constraints:

* ``raw``  -- true dependence through a register.  VLIW consumers wait
  for the write-back (``latency + 1``); the TTA scheduler may instead
  software-bypass at ``latency`` (Section III-B of the paper).
* ``war`` / ``waw`` -- anti/output dependences; order-only for the TTA
  scheduler (write-back placement enforces timing), numeric for VLIW.
* ``mem``  -- memory ordering (stores are barriers against loads/stores).
* ``ra``   -- ordering through the control unit's return-address state.
* ``ctrl`` -- ordering between control transfers (a second in-flight
  transfer must trigger after the first one's redirect).
* ``callout`` -- results/effects only valid after a call returns
  (``jump_latency + 1`` cycles after the call's trigger).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backend.abi import caller_saved, ret_preserved_regs, scratch_regs, stack_pointer
from repro.backend.mop import MBlock, MOp, PhysReg, op_is_memory
from repro.isa.operations import OPS
from repro.machine.machine import Machine


@dataclass(frozen=True)
class Edge:
    pred: int  # op uid
    succ: int
    kind: str
    #: minimum trigger-to-trigger distance (None = order-only)
    min_gap: int | None
    #: for raw edges: the register carrying the value
    reg: PhysReg | None = None


@dataclass
class DDG:
    """Dependence graph for one block."""

    block: MBlock
    edges: list[Edge] = field(default_factory=list)
    preds: dict[int, list[Edge]] = field(default_factory=dict)
    succs: dict[int, list[Edge]] = field(default_factory=dict)
    #: critical-path height per op uid (priority for list scheduling)
    height: dict[int, int] = field(default_factory=dict)

    def add(self, edge: Edge) -> None:
        self.edges.append(edge)
        self.preds.setdefault(edge.succ, []).append(edge)
        self.succs.setdefault(edge.pred, []).append(edge)


def _reads_ra(op: MOp) -> bool:
    return op.op in ("ret", "getra")


def _writes_ra(op: MOp) -> bool:
    return op.op in ("call", "setra")


def build_ddg(block: MBlock, machine: Machine) -> DDG:
    """Build the dependence graph of *block* for *machine*."""
    ddg = DDG(block)
    jl = machine.jump_latency
    clobber_set = sorted(caller_saved(machine) | set(scratch_regs(machine)), key=str)

    last_def: dict[PhysReg, MOp] = {}
    reads_since_def: dict[PhysReg, list[MOp]] = {}
    last_store: MOp | None = None
    loads_since_store: list[MOp] = []
    last_ra_write: MOp | None = None
    ra_reads_since: list[MOp] = []
    last_ctrl: MOp | None = None
    seen: set[tuple[int, int, str]] = set()

    def add(pred: MOp, succ: MOp, kind: str, min_gap: int | None, reg: PhysReg | None = None):
        if pred.uid == succ.uid:
            return
        key = (pred.uid, succ.uid, kind)
        if key in seen:
            return
        seen.add(key)
        ddg.add(Edge(pred.uid, succ.uid, kind, min_gap, reg))

    ret_uses = ret_preserved_regs(machine)
    for op in block.ops:
        uses = [r for r in op.reg_srcs() if isinstance(r, PhysReg)]
        defs = [op.dest] if isinstance(op.dest, PhysReg) else []
        is_call = op.op == "call"
        if is_call:
            defs = defs + [r for r in clobber_set if r not in defs]
            # The callee addresses its frame (and any incoming stack
            # arguments) through the caller's stack pointer.
            sp = stack_pointer(machine)
            if sp not in uses:
                uses = uses + [sp]
        if op.op in ("ret", "halt"):
            uses = uses + [r for r in ret_uses if r not in uses]

        # RAW: value producers -> this op.
        for reg in uses:
            producer = last_def.get(reg)
            if producer is not None:
                if producer.op == "call":
                    add(producer, op, "callout", jl + 1, reg)
                else:
                    add(producer, op, "raw", producer.latency + 1, reg)
            reads_since_def.setdefault(reg, []).append(op)

        # WAR: readers of the previous value -> this def.
        # WAW: previous def -> this def.
        for reg in defs:
            for reader in reads_since_def.get(reg, []):
                gap = jl + 1 if reader.op == "call" else 1 - op.latency
                add(reader, op, "war", gap)
            prev = last_def.get(reg)
            if prev is not None:
                gap = prev.latency - op.latency + 1
                if prev.op == "call":
                    gap = jl + 1
                add(prev, op, "waw", gap)
            last_def[reg] = op
            reads_since_def[reg] = []

        # Memory ordering.
        if op_is_memory(op.op) or is_call:
            writes = is_call or OPS[op.op].writes_mem
            if writes:
                if last_store is not None:
                    gap = jl + 1 if last_store.op == "call" else 1
                    add(last_store, op, "mem", gap)
                for load in loads_since_store:
                    add(load, op, "mem", 1)
                last_store = op
                loads_since_store = []
            else:
                if last_store is not None:
                    gap = jl + 1 if last_store.op == "call" else 1
                    add(last_store, op, "mem", gap)
                loads_since_store.append(op)

        # Return-address state.
        if _reads_ra(op) or _writes_ra(op):
            if _writes_ra(op):
                for reader in ra_reads_since:
                    add(reader, op, "ra", 1)
                if last_ra_write is not None:
                    gap = jl + 1 if last_ra_write.op == "call" else 1
                    add(last_ra_write, op, "ra", gap)
                last_ra_write = op
                ra_reads_since = []
            else:
                if last_ra_write is not None:
                    gap = jl + 1 if last_ra_write.op == "call" else 1
                    add(last_ra_write, op, "ra", gap)
                ra_reads_since.append(op)

        # Control-transfer ordering.
        if op.is_control:
            if last_ctrl is not None:
                add(last_ctrl, op, "ctrl", jl + 1)
            last_ctrl = op

    _compute_heights(ddg, block)
    return ddg


def _compute_heights(ddg: DDG, block: MBlock) -> None:
    """Critical-path height: longest latency path to any DDG sink."""
    heights: dict[int, int] = {}
    for op in reversed(block.ops):
        best = op.latency
        for edge in ddg.succs.get(op.uid, []):
            gap = edge.min_gap if edge.min_gap is not None else 0
            best = max(best, gap + heights.get(edge.succ, 0))
        heights[op.uid] = best
    ddg.height = heights
