"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``machines`` -- list the built-in design points with key facts.
* ``kernels`` -- list the CHStone-like workloads.
* ``run FILE.mc -m MACHINE`` -- compile a MiniC file and simulate it.
* ``asm FILE.mc -m MACHINE`` -- print the scheduled assembly listing.
* ``report [--kernels a,b,..] [--machines a,b,..]`` -- regenerate the
  paper's tables/figures (optionally on a subset).
* ``sweep`` -- run the (machine, kernel) evaluation matrix through the
  parallel, disk-cached pipeline (``--jobs``, ``--machines``,
  ``--kernels``, ``--no-cache``, ``--refresh``, ``--json``).
* ``synth MACHINE`` -- print the analytic synthesis report.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import (
    build_machine,
    compile_for_machine,
    compile_source,
    encode_machine,
    preset_names,
    run_compiled,
    synthesize,
)


def _cmd_machines(_args) -> int:
    print(f"{'name':10s} {'style':7s} {'issue':>5s} {'buses':>5s} {'regs':>5s} "
          f"{'width':>6s} {'fmax':>7s} {'LUTs':>6s}")
    for name in preset_names():
        machine = build_machine(name)
        encoding = encode_machine(machine)
        report = synthesize(machine)
        print(
            f"{name:10s} {machine.style.value:7s} {machine.issue_width:5d} "
            f"{len(machine.buses):5d} {machine.total_registers:5d} "
            f"{encoding.instruction_width:5d}b {report.fmax_mhz:4.0f}MHz "
            f"{report.resources.core_luts:6d}"
        )
    return 0


def _cmd_kernels(_args) -> int:
    from repro.kernels import KERNELS, kernel_source

    for name in KERNELS:
        first_line = kernel_source(name).strip().splitlines()[1].strip(" *")
        print(f"{name:10s} {first_line}")
    return 0


def _load_module(path: str):
    source = Path(path).read_text()
    return compile_source(source)


def _cmd_run(args) -> int:
    from repro.machine.machine import MachineStyle

    # --verify *is* the checked reference engine with full move routing;
    # combining it with an explicitly requested fast/turbo engine is a
    # contradiction, so reject it instead of silently overriding.
    if args.verify and args.mode not in (None, "checked"):
        print(
            f"error: --verify runs the checked reference engine and cannot "
            f"be combined with --mode {args.mode}; drop --verify or use "
            f"--mode checked",
            file=sys.stderr,
        )
        return 2
    mode = "checked" if args.verify else (args.mode or "fast")
    if args.profile and mode == "checked":
        print(
            "error: --profile needs the fast or turbo engine "
            "(the checked reference keeps no hit vector); "
            "use --mode fast or --mode turbo without --verify",
            file=sys.stderr,
        )
        return 2
    module = _load_module(args.file)
    machine = build_machine(args.machine)
    compiled = compile_for_machine(module, machine)
    scalar = machine.style is MachineStyle.SCALAR
    if args.profile:
        if scalar:
            print(
                "error: --profile supports TTA and VLIW cores only "
                "(the scalar core has a single engine)",
                file=sys.stderr,
            )
            return 2
        from repro.sim import format_profile, run_compiled_profiled

        result, profile = run_compiled_profiled(compiled, mode=mode)
    else:
        profile = None
        result = run_compiled(compiled, check_connectivity=args.verify, mode=mode)
    encoding = encode_machine(machine)
    print(f"exit code : {result.exit_code}")
    print(f"cycles    : {result.cycles}")
    # the scalar (MicroBlaze-like) core has a single engine: --mode is
    # accepted for CLI symmetry but ignored there
    print(f"engine    : {'scalar (single engine; --mode ignored)' if scalar else mode}")
    print(f"image     : {compiled.instruction_count} instructions "
          f"({compiled.instruction_count * encoding.instruction_width / 1000:.1f} kbit)")
    if hasattr(result, "bypass_reads"):
        print(f"transport : {result.moves} moves, {result.triggers} triggers, "
              f"{result.bypass_reads} bypassed reads, {result.rf_writes} RF writes")
    report = synthesize(machine)
    print(f"runtime   : {result.cycles / report.fmax_mhz:.1f} us at {report.fmax_mhz:.0f} MHz")
    if profile is not None:
        print()
        print(format_profile(profile))
    return 0 if result.exit_code == 0 else 1


def _cmd_asm(args) -> int:
    from repro.backend.asmprint import format_program, program_statistics

    module = _load_module(args.file)
    compiled = compile_for_machine(module, build_machine(args.machine))
    print(format_program(compiled.program, start=args.start, count=args.count))
    print()
    for key, value in program_statistics(compiled.program).items():
        print(f"; {key} = {value}")
    return 0


def _parse_subsets(args) -> tuple[tuple[str, ...], tuple[str, ...] | None]:
    """Shared ``--kernels``/``--machines`` parsing and validation.

    Returns ``(kernels, machines)`` with ``machines=None`` when no
    subset was requested; raises ``ValueError`` for unknown names (both
    ``report`` and ``sweep`` use this and turn it into exit code 2).
    """
    from repro.kernels import KERNELS
    from repro.pipeline import parse_subset

    kernels = parse_subset(args.kernels, KERNELS, "kernel")
    machines = (
        parse_subset(args.machines, preset_names(), "machine")
        if getattr(args, "machines", None)
        else None
    )
    return kernels, machines


def _cmd_report(args) -> int:
    from repro.eval import render_all

    try:
        kernels, machines = _parse_subsets(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(render_all(kernels, machines))
    return 0


def _cmd_sweep(args) -> int:
    from repro.pipeline import ArtifactStore, default_store, sweep

    try:
        kernels, machines = _parse_subsets(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    store = ArtifactStore(args.cache_dir) if args.cache_dir else default_store()
    if args.clear_cache:
        if store is None:
            print("no cache to clear (cache disabled)", file=sys.stderr)
        else:
            removed = store.clear()
            print(f"cleared {removed} cache entries from {store.root}", file=sys.stderr)

    def _progress(done: int, total: int, task, outcome) -> None:
        if args.quiet:
            return
        from repro.pipeline import EvalResult

        if isinstance(outcome, EvalResult):
            detail = f"{outcome.cycles} cycles"
        else:
            detail = f"FAILED: {outcome.error_type}: {outcome.message.splitlines()[0]}"
        print(
            f"[{done:3d}/{total}] {task.machine:10s} {task.kernel:10s} {detail}",
            file=sys.stderr,
        )

    outcome = sweep(
        machines=machines,
        kernels=kernels,
        mode=args.mode,
        jobs=args.jobs,
        retries=args.retries,
        store=store,
        use_cache=not args.no_cache,
        refresh=args.refresh,
        progress=_progress,
    )
    stats = outcome.stats
    print(
        f"swept {stats.total} pairs in {stats.elapsed_s:.2f}s "
        f"({stats.cache_hits} cached, {stats.computed} computed, "
        f"{stats.failed} failed, jobs={args.jobs})",
        file=sys.stderr,
    )
    if args.json:
        print(json.dumps(outcome.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"{'machine':10s} {'kernel':10s} {'cycles':>10s} {'instrs':>7s} "
              f"{'width':>6s} {'runtime':>10s}")
        for result in outcome.results.values():
            print(
                f"{result.machine:10s} {result.kernel:10s} {result.cycles:10d} "
                f"{result.instruction_count:7d} {result.instruction_width:5d}b "
                f"{result.runtime_us:8.1f}us"
            )
        for error in outcome.errors.values():
            print(
                f"{error.machine:10s} {error.kernel:10s} "
                f"ERROR {error.error_type} after {error.attempts} attempt(s): "
                f"{error.message.splitlines()[0] if error.message else ''}"
            )
    return 0 if outcome.ok else 1


def _cmd_synth(args) -> int:
    machine = build_machine(args.machine)
    report = synthesize(machine)
    res = report.resources
    print(f"machine      : {machine.name} ({machine.description})")
    print(f"fmax         : {report.fmax_mhz:.0f} MHz")
    print(f"core LUTs    : {res.core_luts}")
    print(f"  RF LUTs    : {res.rf_luts} ({res.lutram} as RAM)")
    print(f"  IC LUTs    : {res.ic_luts}")
    print(f"FFs          : {res.ffs}")
    print(f"DSP blocks   : {res.dsps}")
    print(f"slices (est) : {res.slices}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Transport-Triggered Soft Cores toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("machines", help="list design points").set_defaults(fn=_cmd_machines)
    sub.add_parser("kernels", help="list workloads").set_defaults(fn=_cmd_kernels)

    p_run = sub.add_parser("run", help="compile and simulate a MiniC file")
    p_run.add_argument("file")
    p_run.add_argument("-m", "--machine", default="m-tta-2", choices=preset_names())
    p_run.add_argument(
        "--verify",
        action="store_true",
        help="run the per-cycle reference engine with full connectivity checks "
        "(same as --mode checked; rejected alongside --mode fast/turbo)",
    )
    p_run.add_argument(
        "--mode",
        choices=("fast", "checked", "turbo"),
        default=None,
        help="simulation engine (default fast): 'fast' verifies the schedule "
        "once at load time and runs pre-decoded code; 'turbo' additionally "
        "compiles basic blocks to specialized Python; 'checked' re-verifies "
        "every cycle; the scalar (MicroBlaze-like) core has a single engine "
        "and ignores --mode",
    )
    p_run.add_argument(
        "--profile",
        action="store_true",
        help="print per-block execution counts and the trigger histogram "
        "after the run (fast/turbo engines on TTA/VLIW cores)",
    )
    p_run.set_defaults(fn=_cmd_run)

    p_asm = sub.add_parser("asm", help="print scheduled assembly")
    p_asm.add_argument("file")
    p_asm.add_argument("-m", "--machine", default="m-tta-2", choices=preset_names())
    p_asm.add_argument("--start", type=int, default=0)
    p_asm.add_argument("--count", type=int, default=None)
    p_asm.set_defaults(fn=_cmd_asm)

    p_rep = sub.add_parser("report", help="regenerate the paper's tables/figures")
    p_rep.add_argument("--kernels", default=None, help="comma-separated kernel subset")
    p_rep.add_argument(
        "--machines",
        default=None,
        help="comma-separated design-point subset (group baselines are "
        "still measured so relative columns keep the paper's normalisation)",
    )
    p_rep.set_defaults(fn=_cmd_report)

    p_sweep = sub.add_parser(
        "sweep",
        help="evaluate the (machine, kernel) matrix through the "
        "parallel, disk-cached pipeline",
    )
    p_sweep.add_argument("--kernels", default=None, help="comma-separated kernel subset")
    p_sweep.add_argument("--machines", default=None, help="comma-separated machine subset")
    p_sweep.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes (1 = serial, in-process)",
    )
    p_sweep.add_argument(
        "--mode", choices=("fast", "checked", "turbo"), default="fast",
        help="simulation engine for computed pairs",
    )
    p_sweep.add_argument(
        "--retries", type=int, default=1,
        help="re-attempts per failing pair before it is recorded as an error",
    )
    p_sweep.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the on-disk artifact store",
    )
    p_sweep.add_argument(
        "--refresh", action="store_true",
        help="recompute every pair and overwrite its cache entry",
    )
    p_sweep.add_argument(
        "--clear-cache", action="store_true",
        help="delete all store entries before sweeping",
    )
    p_sweep.add_argument(
        "--cache-dir", default=None,
        help="artifact store location (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro/artifacts)",
    )
    p_sweep.add_argument("--json", action="store_true", help="JSON results on stdout")
    p_sweep.add_argument("-q", "--quiet", action="store_true",
                         help="suppress per-pair progress on stderr")
    p_sweep.set_defaults(fn=_cmd_sweep)

    p_syn = sub.add_parser("synth", help="analytic synthesis report")
    p_syn.add_argument("machine", choices=preset_names())
    p_syn.set_defaults(fn=_cmd_synth)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
