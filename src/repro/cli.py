"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``machines`` -- list the built-in design points with key facts.
* ``kernels`` -- list the CHStone-like workloads.
* ``run FILE.mc -m MACHINE`` -- compile a MiniC file and simulate it
  (``--trace out.json`` records a compile+sim timeline).
* ``asm FILE.mc -m MACHINE`` -- print the scheduled assembly listing.
* ``report [--kernels a,b,..] [--machines a,b,..]`` -- regenerate the
  paper's tables/figures (optionally on a subset).
* ``sweep`` -- run the (machine, kernel) evaluation matrix through the
  parallel, disk-cached pipeline (``--jobs``, ``--machines``,
  ``--kernels``, ``--no-cache``, ``--refresh``, ``--json``;
  ``--trace out.json`` merges every worker's span/counter payload into
  one Chrome-trace timeline and implies ``--refresh``).
* ``trace summary FILE.json`` -- aggregate statistics of a trace file
  written by ``--trace``.
* ``fuzz`` -- differential fuzzing: generate seeded random kernels and
  co-simulate them on every design point and engine mode against the
  reference-interpreter oracle; divergences are auto-minimized into
  ``fuzz/corpus/`` reproducers (``--seed``, ``--count``, ``--machines``,
  ``--modes``, ``--jobs``, ``--time-budget``, ``--smoke``, ``--json``).
* ``corpus`` -- stress-benchmark corpus: ``promote`` fuzz kernels into
  a pinned conformance suite (interestingness scoring + per-(machine,
  engine) golden stats), ``replay`` every golden across all engines
  (non-zero exit on any drift), ``stats``, and ``pin`` to deliberately
  re-pin after intentional toolchain changes.
* ``synth MACHINE`` -- print the analytic synthesis report.
* ``serve`` -- HTTP compile-and-simulate service with bounded queueing,
  store-backed request dedup and sharded worker processes (``--host``,
  ``--port``, ``--jobs``, ``--queue-limit``, ``--job-timeout``,
  ``--drain-grace``; SIGINT/SIGTERM drain gracefully).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import (
    build_machine,
    compile_for_machine,
    compile_source,
    encode_machine,
    preset_names,
    run_compiled,
    synthesize,
)


def _cmd_machines(_args) -> int:
    print(f"{'name':10s} {'style':7s} {'issue':>5s} {'buses':>5s} {'regs':>5s} "
          f"{'width':>6s} {'fmax':>7s} {'LUTs':>6s}")
    for name in preset_names():
        machine = build_machine(name)
        encoding = encode_machine(machine)
        report = synthesize(machine)
        print(
            f"{name:10s} {machine.style.value:7s} {machine.issue_width:5d} "
            f"{len(machine.buses):5d} {machine.total_registers:5d} "
            f"{encoding.instruction_width:5d}b {report.fmax_mhz:4.0f}MHz "
            f"{report.resources.core_luts:6d}"
        )
    return 0


def _cmd_kernels(_args) -> int:
    from repro.kernels import EXTRA_KERNELS, KERNELS, kernel_source, promoted_sources

    for name in KERNELS:
        first_line = kernel_source(name).strip().splitlines()[1].strip(" *")
        print(f"{name:10s} {first_line}")
    for name in EXTRA_KERNELS:
        first_line = kernel_source(name).strip().splitlines()[1].strip(" *")
        print(f"{name:10s} {first_line} [extra; not in the paper's set]")
    promoted = promoted_sources()
    for name in sorted(promoted):
        print(f"{name:14s} [promoted fuzz kernel]")
    return 0


def _load_module(path: str):
    """Compile *path*, or ``None`` after an error message (exit code 2).

    Unreadable files and MiniC compile errors are user mistakes, not
    crashes: report them on stderr instead of dumping a traceback.
    """
    from repro.frontend import CompileError

    try:
        source = Path(path).read_text()
    except OSError as exc:
        print(f"error: cannot read {path}: {exc.strerror or exc}", file=sys.stderr)
        return None
    try:
        return compile_source(source)
    except CompileError as exc:
        print(f"error: {path}: {exc}", file=sys.stderr)
        return None


def _write_trace_file(path: str, payloads: list[dict]) -> int:
    """Merge *payloads* into one Chrome-trace document at *path*.

    Returns 0 on success, 2 (with a stderr message) when the destination
    is unwritable — a user mistake, not a crash.
    """
    from repro.obs import to_chrome_trace, write_trace

    doc = to_chrome_trace(payloads)
    try:
        out = write_trace(path, doc)
    except OSError as exc:
        print(
            f"error: cannot write trace to {path}: {exc.strerror or exc}",
            file=sys.stderr,
        )
        return 2
    print(
        f"trace: {len(payloads)} payload(s), {len(doc['traceEvents'])} "
        f"events -> {out}",
        file=sys.stderr,
    )
    return 0


def _cmd_run(args) -> int:
    # --verify *is* the checked reference engine with full move routing;
    # combining it with an explicitly requested fast/turbo engine is a
    # contradiction, so reject it instead of silently overriding.
    if args.verify and args.mode not in (None, "checked"):
        print(
            f"error: --verify runs the checked reference engine and cannot "
            f"be combined with --mode {args.mode}; drop --verify or use "
            f"--mode checked",
            file=sys.stderr,
        )
        return 2
    mode = "checked" if args.verify else (args.mode or "fast")
    if args.profile and mode in ("checked", "batch"):
        print(
            "error: --profile needs the fast, turbo or native engine "
            "(the checked reference keeps no hit vector and the batch "
            "engine runs many lanes); use --mode fast, --mode turbo or "
            "--mode native without --verify",
            file=sys.stderr,
        )
        return 2
    if args.batch is not None:
        if mode != "batch":
            print(
                f"error: --batch requires --mode batch (got "
                f"{'--verify' if args.verify else f'--mode {mode}'})",
                file=sys.stderr,
            )
            return 2
        if args.batch < 1:
            print(f"error: --batch must be >= 1, got {args.batch}", file=sys.stderr)
            return 2
    if not args.trace:
        return _run_and_report(args, mode)
    from repro import obs

    with obs.tracing(
        obs.Tracer(process=f"repro run {args.machine} {Path(args.file).name}")
    ) as tracer:
        status = _run_and_report(args, mode)
    if status == 2:  # nothing was measured; don't write an empty timeline
        return status
    write_status = _write_trace_file(args.trace, [tracer.to_payload()])
    return write_status or status


def _run_and_report(args, mode: str) -> int:
    """The measured portion of ``repro run`` (traced when ``--trace``)."""
    from repro.machine.machine import MachineStyle

    module = _load_module(args.file)
    if module is None:
        return 2
    machine = build_machine(args.machine)
    compiled = compile_for_machine(module, machine)
    scalar = machine.style is MachineStyle.SCALAR
    if args.profile:
        if scalar:
            print(
                "error: --profile supports TTA and VLIW cores only "
                "(the scalar core has a single engine)",
                file=sys.stderr,
            )
            return 2
        from repro.sim import format_profile, run_compiled_profiled

        result, profile = run_compiled_profiled(compiled, mode=mode)
    elif mode == "batch":
        from repro.sim import run_batch

        profile = None
        lanes = args.batch or 1
        result = run_batch(compiled, lanes=lanes)[0]
    else:
        profile = None
        result = run_compiled(compiled, check_connectivity=args.verify, mode=mode)
    encoding = encode_machine(machine)
    engine_label = f"batch ({args.batch or 1} lanes)" if mode == "batch" else mode
    print(f"exit code : {result.exit_code}")
    print(f"cycles    : {result.cycles}")
    # the scalar (MicroBlaze-like) core has a single engine: --mode is
    # accepted for CLI symmetry but ignored there
    print(f"engine    : {'scalar (single engine; --mode ignored)' if scalar else engine_label}")
    print(f"image     : {compiled.instruction_count} instructions "
          f"({compiled.instruction_count * encoding.instruction_width / 1000:.1f} kbit)")
    if hasattr(result, "bypass_reads"):
        print(f"transport : {result.moves} moves, {result.triggers} triggers, "
              f"{result.bypass_reads} bypassed reads, {result.rf_writes} RF writes")
    report = synthesize(machine)
    print(f"runtime   : {result.cycles / report.fmax_mhz:.1f} us at {report.fmax_mhz:.0f} MHz")
    if profile is not None:
        print()
        print(format_profile(profile))
    return 0 if result.exit_code == 0 else 1


def _cmd_asm(args) -> int:
    from repro.backend.asmprint import format_program, program_statistics

    module = _load_module(args.file)
    if module is None:
        return 2
    compiled = compile_for_machine(module, build_machine(args.machine))
    print(format_program(compiled.program, start=args.start, count=args.count))
    print()
    for key, value in program_statistics(compiled.program).items():
        print(f"; {key} = {value}")
    return 0


def _parse_subsets(args, full_catalog: bool = False) -> tuple[tuple[str, ...], tuple[str, ...] | None]:
    """Shared ``--kernels``/``--machines`` parsing and validation.

    Returns ``(kernels, machines)`` with ``machines=None`` when no
    subset was requested; raises ``ValueError`` for unknown names (both
    ``report`` and ``sweep`` use this and turn it into exit code 2).
    With ``full_catalog`` an explicit kernel subset may also name extra
    (``fft``) and promoted corpus kernels; ``report`` stays on the
    paper's eight (its tables compare against published numbers).
    """
    from repro.kernels import KERNELS
    from repro.pipeline import parse_subset

    if full_catalog:
        from repro.pipeline import resolve_kernel_sources

        kernels, _ = resolve_kernel_sources(args.kernels)
    else:
        kernels = parse_subset(args.kernels, KERNELS, "kernel")
    # "" is an *empty* subset (an error parse_subset reports), not "all
    # machines" -- only an absent flag means the full set
    machines = (
        parse_subset(args.machines, preset_names(), "machine")
        if getattr(args, "machines", None) is not None
        else None
    )
    return kernels, machines


def _cmd_report(args) -> int:
    from repro.eval import render_all

    try:
        kernels, machines = _parse_subsets(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(render_all(kernels, machines))
    return 0


def _cmd_sweep(args) -> int:
    from repro.pipeline import ArtifactStore, default_store, sweep

    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    try:
        kernels, machines = _parse_subsets(args, full_catalog=True)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    store = ArtifactStore(args.cache_dir) if args.cache_dir else default_store()
    if args.clear_cache:
        if store is None:
            print("no cache to clear (cache disabled)", file=sys.stderr)
        else:
            removed = store.clear()
            print(f"cleared {removed} cache entries from {store.root}", file=sys.stderr)

    def _progress(done: int, total: int, task, outcome) -> None:
        if args.quiet:
            return
        from repro.pipeline import EvalResult

        if isinstance(outcome, EvalResult):
            detail = f"{outcome.cycles} cycles"
        else:
            detail = f"FAILED: {outcome.error_type}: {outcome.message.splitlines()[0]}"
        print(
            f"[{done:3d}/{total}] {task.machine:10s} {task.kernel:10s} {detail}",
            file=sys.stderr,
        )

    tracer = None
    if args.trace:
        from repro import obs

        # --trace implies --refresh: cache hits compute nothing and thus
        # contribute no worker payload, so a warm-cache trace would be an
        # empty (misleading) timeline.
        tracer = obs.enable(obs.Tracer(process="sweep driver"))
    try:
        outcome = sweep(
            machines=machines,
            kernels=kernels,
            mode=args.mode,
            jobs=args.jobs,
            retries=args.retries,
            store=store,
            use_cache=not args.no_cache,
            refresh=args.refresh or tracer is not None,
            progress=_progress,
            trace=tracer is not None,
        )
    finally:
        if tracer is not None:
            from repro import obs

            obs.disable()
    if tracer is not None:
        write_status = _write_trace_file(
            args.trace, [tracer.to_payload(), *outcome.traces]
        )
        if write_status:
            return write_status
    stats = outcome.stats
    print(
        f"swept {stats.total} pairs in {stats.elapsed_s:.2f}s "
        f"({stats.cache_hits} cached, {stats.computed} computed, "
        f"{stats.failed} failed, jobs={args.jobs})",
        file=sys.stderr,
    )
    if args.json:
        print(json.dumps(outcome.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"{'machine':10s} {'kernel':10s} {'cycles':>10s} {'instrs':>7s} "
              f"{'width':>6s} {'runtime':>10s}")
        for result in outcome.results.values():
            print(
                f"{result.machine:10s} {result.kernel:10s} {result.cycles:10d} "
                f"{result.instruction_count:7d} {result.instruction_width:5d}b "
                f"{result.runtime_us:8.1f}us"
            )
        for error in outcome.errors.values():
            print(
                f"{error.machine:10s} {error.kernel:10s} "
                f"ERROR {error.error_type} after {error.attempts} attempt(s): "
                f"{error.message.splitlines()[0] if error.message else ''}"
            )
    return 0 if outcome.ok else 1


def _cmd_explore(args) -> int:
    from repro.explore import (
        ExploreConfig,
        ExploreError,
        render_explore,
        run_explore,
    )
    from repro.pipeline import ArtifactStore, default_store, resolve_kernel_sources

    # --smoke: a bounded, seeded CI-sized campaign on the cheap turbo
    # engine; explicit flags given alongside it still win.
    generations = args.generations
    population = args.population
    kernels = args.kernels
    jobs = args.jobs
    mode = args.mode
    if args.smoke:
        generations = 2 if generations is None else generations
        population = 4 if population is None else population
        kernels = "mips,motion" if kernels is None else kernels
        jobs = 2 if jobs is None else jobs
        mode = "turbo" if mode is None else mode
    generations = 3 if generations is None else generations
    population = 8 if population is None else population
    jobs = 1 if jobs is None else jobs
    mode = "native" if mode is None else mode
    if jobs < 1:
        print(f"error: --jobs must be >= 1, got {jobs}", file=sys.stderr)
        return 2
    try:
        kernel_subset = (
            resolve_kernel_sources(kernels)[0] if kernels is not None else None
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    base = tuple(part.strip() for part in args.base.split(",") if part.strip())
    if not base:
        print("error: --base must name at least one TTA preset", file=sys.stderr)
        return 2
    store = ArtifactStore(args.cache_dir) if args.cache_dir else default_store()
    config = ExploreConfig(
        base=base,
        kernels=kernel_subset,
        generations=generations,
        population=population,
        seed=args.seed,
        mode=mode,
        jobs=jobs,
    )

    def _progress(done: int, total: int, task, outcome) -> None:
        if args.quiet:
            return
        from repro.pipeline import EvalResult

        if isinstance(outcome, EvalResult):
            detail = f"{outcome.cycles} cycles"
        else:
            detail = f"infeasible: {outcome.error_type}"
        print(
            f"[{done:3d}/{total}] {task.machine:16s} {task.kernel:10s} {detail}",
            file=sys.stderr,
        )

    tracer = None
    if args.trace:
        from repro import obs

        tracer = obs.enable(obs.Tracer(process="explore driver"))
    try:
        result = run_explore(
            config,
            store=store,
            use_cache=not args.no_cache,
            progress=_progress,
        )
    except (ExploreError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if tracer is not None:
            from repro import obs

            obs.disable()
    if tracer is not None:
        write_status = _write_trace_file(args.trace, [tracer.to_payload()])
        if write_status:
            return write_status
    stats = result.stats
    print(
        f"explored {stats.evaluated + stats.infeasible} candidates in "
        f"{stats.elapsed_s:.2f}s ({stats.evaluated} feasible, "
        f"{stats.infeasible} infeasible, {stats.cache_hits} pairs cached, "
        f"{stats.computed} computed, frontier {len(result.frontier)})",
        file=sys.stderr,
    )
    payload = json.dumps(result.to_dict(), indent=2, sort_keys=True)
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
        except OSError as exc:
            print(f"error: cannot write {args.out}: {exc}", file=sys.stderr)
            return 1
        print(f"frontier JSON written to {args.out}", file=sys.stderr)
    if args.json:
        print(payload)
    else:
        print(render_explore(result))
    return 0


def _cmd_fuzz(args) -> int:
    from repro.fuzz import FuzzConfig, default_corpus_dir, run_fuzz
    from repro.fuzz.diff import ALL_MODES
    from repro.pipeline import ArtifactStore, default_store, parse_subset

    # --smoke: a bounded, deterministic CI-sized campaign; explicit
    # --count/--time-budget still win when given alongside it.
    count = args.count
    time_budget = args.time_budget
    minimize_checks = 2000
    if args.smoke:
        if count is None:
            count = 5
        if time_budget is None:
            time_budget = 120.0
        # smoke campaigns stay bounded even when they do find a bug:
        # minimization gets a small predicate budget instead of the
        # full overnight one.
        minimize_checks = 200
    if count is None:
        count = 50
    if count < 0:
        print(f"error: --count must be >= 0, got {count}", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if time_budget is not None and time_budget <= 0:
        print(
            f"error: --time-budget must be positive (seconds), got {time_budget}",
            file=sys.stderr,
        )
        return 2
    try:
        machines = (
            parse_subset(args.machines, preset_names(), "machine")
            if args.machines is not None
            else None
        )
        modes = (
            parse_subset(args.modes, ALL_MODES, "mode")
            if args.modes is not None
            else None
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    store = ArtifactStore(args.cache_dir) if args.cache_dir else default_store()

    def _progress(done: int, total: int, case, outcome) -> None:
        if args.quiet:
            return
        from repro.fuzz import FuzzCaseReport
        from repro.pipeline import TaskError

        if isinstance(outcome, FuzzCaseReport):
            detail = "ok" if outcome.ok else "DIVERGED: " + "; ".join(
                f"{d.mode}/{d.kind}" for d in outcome.divergences
            )
        elif isinstance(outcome, TaskError):
            detail = f"ERROR {outcome.error_type}"
        else:  # pragma: no cover - defensive
            detail = str(outcome)
        print(
            f"[{done:4d}/{total}] {case.machine:10s} {case.kernel:14s} {detail}",
            file=sys.stderr,
        )

    report = run_fuzz(
        FuzzConfig(
            seed=args.seed,
            count=count,
            machines=machines,
            modes=modes,
            jobs=args.jobs,
            time_budget=time_budget,
            minimize=not args.no_minimize,
            minimize_checks=minimize_checks,
            corpus_dir=args.corpus_dir or default_corpus_dir(),
            store=store,
            use_cache=not args.no_cache,
            progress=_progress,
        )
    )
    print(
        f"fuzzed {report.generated} kernels (seed {report.seed}) on "
        f"{len(report.machines)} machines x {'/'.join(report.modes)}: "
        f"{report.cases_ok}/{report.cases_total} cases ok "
        f"({report.cases_cached} cached), {report.cases_diverged} diverged, "
        f"{len(report.errors)} errors in {report.elapsed_s:.1f}s"
        + (" [time budget exhausted]" if report.budget_exhausted else ""),
        file=sys.stderr,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for div in report.divergences:
            print(f"DIVERGENCE: {div.summary()}")
        for rep in report.reproducers:
            print(
                f"reproducer : {rep.entry} ({rep.lines} lines)"
                + (f" -> {rep.path}" if rep.path else "")
            )
        for err in report.errors:
            print(
                f"ERROR      : {err.machine}/{err.kernel} {err.error_type}: "
                f"{err.message.splitlines()[0] if err.message else ''}"
            )
    return 0 if report.ok else 1


def _cmd_corpus_promote(args) -> int:
    from repro.corpus import PromoteConfig, promote
    from repro.corpus.goldens import GoldenError
    from repro.fuzz.diff import ALL_MODES
    from repro.pipeline import parse_subset

    count = args.count
    target = args.target
    machines = args.machines
    jobs = args.jobs
    if args.smoke:
        count = 8 if count is None else count
        target = 3 if target is None else target
        machines = "m-tta-2,mblaze-3" if machines is None else machines
        jobs = 2 if jobs is None else jobs
    count = 40 if count is None else count
    target = 12 if target is None else target
    jobs = 1 if jobs is None else jobs
    if jobs < 1:
        print(f"error: --jobs must be >= 1, got {jobs}", file=sys.stderr)
        return 2
    if count < 1 or target < 1:
        print(
            f"error: --count and --target must be >= 1, got {count}/{target}",
            file=sys.stderr,
        )
        return 2
    try:
        machine_subset = (
            parse_subset(machines, preset_names(), "machine")
            if machines is not None
            else ()
        )
        modes = (
            parse_subset(args.modes, ALL_MODES, "mode")
            if args.modes is not None
            else ALL_MODES
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    def _log(msg: str) -> None:
        if not args.quiet:
            print(msg, file=sys.stderr)

    try:
        report = promote(
            PromoteConfig(
                seed=args.seed,
                count=count,
                target=target,
                machines=machine_subset,
                modes=modes,
                jobs=jobs,
                out_dir=args.out_dir,
            ),
            log=_log,
        )
    except GoldenError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"{'name':18s} {'axis':10s} {'cycles':>9s} {'branch':>7s} "
              f"{'mem':>7s} {'opcodes':>7s}")
        for entry in report.selected:
            print(
                f"{entry['name']:18s} {entry['axis']:10s} {entry['cycles']:9d} "
                f"{entry['branch_ops']:7d} {entry['mem_ops']:7d} "
                f"{entry['distinct_opcodes']:7d}"
            )
    return 0


def _cmd_corpus_replay(args) -> int:
    from repro.corpus import discover_entries, replay_entries
    from repro.pipeline import parse_subset

    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    try:
        machines = (
            parse_subset(args.machines, preset_names(), "machine")
            if args.machines is not None
            else None
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    entries = discover_entries(
        promoted_dir=args.promoted_dir,
        corpus_dir=args.corpus_dir,
        include_builtin=not args.no_builtin,
    )
    if not entries:
        print("error: no golden-bearing kernels found to replay", file=sys.stderr)
        return 2

    def _progress(done: int, total: int, case, outcome) -> None:
        if args.quiet:
            return
        print(f"[{done:3d}/{total}] {case.machine:10s} {case.kernel}", file=sys.stderr)

    report = replay_entries(entries, jobs=args.jobs, machines=machines,
                            progress=_progress)
    print(
        f"replayed {report.cases} pinned (kernel, machine) cases from "
        f"{report.entries} entries: "
        f"{len(report.drift)} drift(s), {len(report.broken)} broken golden(s)",
        file=sys.stderr,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for line in report.broken:
            print(f"BROKEN: {line}")
        for line in report.drift:
            print(f"DRIFT: {line}")
        if report.ok:
            print("corpus replay ok: no drift against pinned goldens")
    return 0 if report.ok else 1


def _cmd_corpus_stats(args) -> int:
    from repro.corpus.promote import corpus_stats

    stats = corpus_stats(promoted=args.promoted_dir)
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    print(f"promoted corpus: {stats['dir']} ({stats['count']} kernels, "
          f"{len(stats['machines'])} machines pinned)")
    if stats["entries"]:
        print(f"{'name':18s} {'axis':10s} {'cycles':>9s} {'branch':>7s} "
              f"{'mem':>7s} {'opcodes':>7s} {'pinned':>6s}")
    for entry in stats["entries"]:
        if "golden_error" in entry:
            print(f"{entry['name']:18s} BROKEN: {entry['golden_error']}")
            continue
        print(
            f"{entry['name']:18s} {entry.get('axis', '?'):10s} "
            f"{entry.get('cycles', 0):9d} {entry.get('branch_ops', 0):7d} "
            f"{entry.get('mem_ops', 0):7d} {entry.get('distinct_opcodes', 0):7d} "
            f"{entry.get('machines_pinned', 0):6d}"
        )
    return 0


def _cmd_corpus_pin(args) -> int:
    """Deliberately (re-)pin goldens after an intentional change.

    Covers all three golden groups: built-in extras (``fft``) pin into
    ``src/repro/kernels/goldens/``, regression reproducers next to
    their ``.mc`` in the fuzz corpus (on their recorded machine only),
    and promoted kernels next to theirs.
    """
    from repro.corpus.goldens import GoldenError, save_golden
    from repro.corpus.replay import BUILTIN_GOLDEN_DIR, golden_path_for, pin_entry
    from repro.fuzz.corpus import default_corpus_dir, load_corpus
    from repro.kernels import ALL_KERNELS, kernel_source, promoted_dir
    from repro.pipeline import parse_subset

    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    try:
        machines = (
            parse_subset(args.machines, preset_names(), "machine")
            if args.machines is not None
            else preset_names()
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    # name -> (source, mc_path_or_None, golden_path, machines, exit)
    targets: dict[str, tuple] = {}
    corpus_dir = Path(args.corpus_dir) if args.corpus_dir else default_corpus_dir()
    for entry in load_corpus(corpus_dir):
        # regression reproducers stay pinned on their recorded machine:
        # they reproduce a machine-specific bug, and the vault must not
        # inflate replay cost 13x
        machine = entry.machine
        pin_machines = (machine,) if machine else machines
        targets[entry.name] = (entry.source, entry.path, golden_path_for(entry.path),
                               pin_machines)
    pdir = Path(args.promoted_dir) if args.promoted_dir else promoted_dir()
    if pdir.is_dir():
        for mc_path in sorted(pdir.glob("*.mc")):
            targets[mc_path.stem] = (mc_path.read_text(), mc_path,
                                     golden_path_for(mc_path), machines)
    # built-in extras always pin; paper kernels only when explicitly
    # named (their conformance is already covered by tier-1 tests, and
    # pinning them would inflate every replay by 8 x 13 machines)
    from repro.kernels import EXTRA_KERNELS

    for name in ALL_KERNELS:
        if name in EXTRA_KERNELS or name in (args.names or ()):
            golden_path = BUILTIN_GOLDEN_DIR / f"{name}.golden.json"
            targets[name] = (kernel_source(name), None, golden_path, machines)

    names = args.names or sorted(targets)
    unknown = [n for n in names if n not in targets]
    if unknown:
        print(
            f"error: nothing to pin for {', '.join(map(repr, unknown))}; "
            f"pinnable: {', '.join(sorted(targets))}",
            file=sys.stderr,
        )
        return 2
    status = 0
    for name in names:
        source, _mc, golden_path, pin_machines = targets[name]
        try:
            payload = pin_entry(name, source, tuple(pin_machines), jobs=args.jobs)
            save_golden(golden_path, payload)
        except GoldenError as exc:
            print(f"error: {exc}", file=sys.stderr)
            status = 1
            continue
        if not args.quiet:
            print(
                f"pinned {name} on {len(payload['machines'])} machine(s) "
                f"-> {golden_path}",
                file=sys.stderr,
            )
    return status


def _cmd_trace_summary(args) -> int:
    """Aggregate statistics of a trace file written by ``--trace``.

    Unreadable paths and non-trace files are user mistakes (exit 2 with
    a stderr message), mirroring :func:`_load_module`.
    """
    from repro.obs import format_summary, load_trace, summarize

    try:
        doc = load_trace(args.file)
    except OSError as exc:
        print(
            f"error: cannot read {args.file}: {exc.strerror or exc}",
            file=sys.stderr,
        )
        return 2
    except ValueError as exc:
        print(f"error: {args.file}: {exc}", file=sys.stderr)
        return 2
    summary = summarize(doc)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(format_summary(summary, top=args.top))
    return 0


def _cmd_synth(args) -> int:
    machine = build_machine(args.machine)
    report = synthesize(machine)
    res = report.resources
    print(f"machine      : {machine.name} ({machine.description})")
    print(f"fmax         : {report.fmax_mhz:.0f} MHz")
    print(f"core LUTs    : {res.core_luts}")
    print(f"  RF LUTs    : {res.rf_luts} ({res.lutram} as RAM)")
    print(f"  IC LUTs    : {res.ic_luts}")
    print(f"FFs          : {res.ffs}")
    print(f"DSP blocks   : {res.dsps}")
    print(f"slices (est) : {res.slices}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    import signal

    from repro.pipeline import ArtifactStore, default_store
    from repro.serve import ReproServer

    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.queue_limit < 1:
        print(f"error: --queue-limit must be >= 1, got {args.queue_limit}",
              file=sys.stderr)
        return 2
    if args.job_timeout <= 0:
        print(f"error: --job-timeout must be positive, got {args.job_timeout}",
              file=sys.stderr)
        return 2
    if not 0 <= args.port <= 65535:
        print(f"error: --port must be in 0..65535, got {args.port}",
              file=sys.stderr)
        return 2
    if args.no_cache:
        store = None
    elif args.cache_dir:
        store = ArtifactStore(args.cache_dir)
    else:
        store = default_store()

    async def _serve_main() -> int:
        server = ReproServer(
            args.host,
            args.port,
            jobs=args.jobs,
            queue_limit=args.queue_limit,
            job_timeout=args.job_timeout,
            max_body=args.max_body,
            drain_grace=args.drain_grace,
            store=store,
        )
        await server.start()
        host, port = server.address
        print(f"serving on http://{host}:{port} "
              f"(jobs={args.jobs}, queue-limit={args.queue_limit}, "
              f"store={'disabled' if store is None else store.root})",
              file=sys.stderr, flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stop.set)
        await stop.wait()
        print("draining...", file=sys.stderr, flush=True)
        summary = await server.drain()
        print(f"drained: {summary['completed']} job(s) completed, "
              f"{summary['terminated']} terminated",
              file=sys.stderr, flush=True)
        return 0

    return asyncio.run(_serve_main())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Transport-Triggered Soft Cores toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("machines", help="list design points").set_defaults(fn=_cmd_machines)
    sub.add_parser("kernels", help="list workloads").set_defaults(fn=_cmd_kernels)

    p_run = sub.add_parser("run", help="compile and simulate a MiniC file")
    p_run.add_argument("file")
    p_run.add_argument("-m", "--machine", default="m-tta-2", choices=preset_names())
    p_run.add_argument(
        "--verify",
        action="store_true",
        help="run the per-cycle reference engine with full connectivity checks "
        "(same as --mode checked; rejected alongside --mode fast/turbo)",
    )
    p_run.add_argument(
        "--mode",
        choices=("fast", "checked", "turbo", "native", "batch"),
        default=None,
        help="simulation engine (default fast): 'fast' verifies the schedule "
        "once at load time and runs pre-decoded code; 'turbo' additionally "
        "compiles basic blocks to specialized Python; 'native' compiles the "
        "same blocks to C via cffi/ctypes with the shared object cached in "
        "the artifact store (falls back to turbo without a C compiler); "
        "'checked' re-verifies "
        "every cycle; 'batch' runs N identical lanes through the vectorized "
        "lockstep tier (see --batch); the scalar (MicroBlaze-like) core has "
        "a single engine and ignores --mode",
    )
    p_run.add_argument(
        "--batch",
        type=int,
        default=None,
        metavar="N",
        help="lane count for --mode batch (default 1); lanes run in "
        "lockstep and are reported via lane 0 (all lanes are identical "
        "for a CLI run)",
    )
    p_run.add_argument(
        "--profile",
        action="store_true",
        help="print per-block execution counts and the trigger histogram "
        "after the run (fast/turbo/native engines on TTA/VLIW cores)",
    )
    p_run.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="record a compile+simulate timeline (spans + counters) as a "
        "Chrome-trace JSON file; inspect with 'repro trace summary FILE' "
        "or chrome://tracing",
    )
    p_run.set_defaults(fn=_cmd_run)

    p_asm = sub.add_parser("asm", help="print scheduled assembly")
    p_asm.add_argument("file")
    p_asm.add_argument("-m", "--machine", default="m-tta-2", choices=preset_names())
    p_asm.add_argument("--start", type=int, default=0)
    p_asm.add_argument("--count", type=int, default=None)
    p_asm.set_defaults(fn=_cmd_asm)

    p_rep = sub.add_parser("report", help="regenerate the paper's tables/figures")
    p_rep.add_argument("--kernels", default=None, help="comma-separated kernel subset")
    p_rep.add_argument(
        "--machines",
        default=None,
        help="comma-separated design-point subset (group baselines are "
        "still measured so relative columns keep the paper's normalisation)",
    )
    p_rep.set_defaults(fn=_cmd_report)

    p_sweep = sub.add_parser(
        "sweep",
        help="evaluate the (machine, kernel) matrix through the "
        "parallel, disk-cached pipeline",
    )
    p_sweep.add_argument("--kernels", default=None, help="comma-separated kernel subset")
    p_sweep.add_argument("--machines", default=None, help="comma-separated machine subset")
    p_sweep.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes (1 = serial, in-process)",
    )
    p_sweep.add_argument(
        "--mode", choices=("fast", "checked", "turbo", "native", "batch"),
        default="fast",
        help="simulation engine for computed pairs ('batch' routes each "
        "pair through the batched lockstep tier; 'native' runs generated "
        "C with store-cached shared objects)",
    )
    p_sweep.add_argument(
        "--retries", type=int, default=1,
        help="re-attempts per failing pair before it is recorded as an error",
    )
    p_sweep.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the on-disk artifact store",
    )
    p_sweep.add_argument(
        "--refresh", action="store_true",
        help="recompute every pair and overwrite its cache entry",
    )
    p_sweep.add_argument(
        "--clear-cache", action="store_true",
        help="delete all store entries before sweeping",
    )
    p_sweep.add_argument(
        "--cache-dir", default=None,
        help="artifact store location (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro/artifacts)",
    )
    p_sweep.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="merge every worker's span/counter payload plus the driver's "
        "own phases into one Chrome-trace JSON timeline (implies "
        "--refresh: cache hits compute nothing and would leave an empty "
        "timeline)",
    )
    p_sweep.add_argument("--json", action="store_true", help="JSON results on stdout")
    p_sweep.add_argument("-q", "--quiet", action="store_true",
                         help="suppress per-pair progress on stderr")
    p_sweep.set_defaults(fn=_cmd_sweep)

    p_exp = sub.add_parser(
        "explore",
        help="automated design-space exploration: seeded mutations over "
        "TTA machines, evaluated through the cached pipeline, reported "
        "as a Pareto frontier over (cycles, area, fmax)",
    )
    p_exp.add_argument("--seed", type=int, default=0, help="campaign seed")
    p_exp.add_argument(
        "--generations", type=int, default=None,
        help="mutation rounds after the baseline evaluation (default 3)",
    )
    p_exp.add_argument(
        "--population", type=int, default=None,
        help="new candidates per generation (default 8)",
    )
    p_exp.add_argument(
        "--base", default="m-tta-2",
        help="comma-separated TTA preset(s) to explore outward from",
    )
    p_exp.add_argument("--kernels", default=None, help="comma-separated kernel subset")
    p_exp.add_argument(
        "--mode", choices=("fast", "checked", "turbo", "native", "batch"),
        default=None,
        help="simulation engine for computed pairs (default 'native', "
        "which falls back to turbo without a C compiler)",
    )
    p_exp.add_argument(
        "-j", "--jobs", type=int, default=None,
        help="worker processes (1 = serial, in-process)",
    )
    p_exp.add_argument(
        "--smoke", action="store_true",
        help="bounded CI-sized campaign: 2 generations x 4 candidates on "
        "mips+motion, turbo engine, 2 jobs (explicit flags still win)",
    )
    p_exp.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the frontier JSON payload to FILE",
    )
    p_exp.add_argument("--json", action="store_true",
                       help="frontier JSON on stdout instead of the report")
    p_exp.add_argument(
        "--cache-dir", default=None,
        help="artifact store location (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro/artifacts)",
    )
    p_exp.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the on-disk artifact store",
    )
    p_exp.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write the driver's explore.*/sweep.* span timeline as "
        "Chrome-trace JSON",
    )
    p_exp.add_argument("-q", "--quiet", action="store_true",
                       help="suppress per-pair progress on stderr")
    p_exp.set_defaults(fn=_cmd_explore)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing: random kernels co-simulated on every "
        "design point and engine against the reference interpreter",
    )
    p_fuzz.add_argument(
        "--seed", type=int, default=0,
        help="campaign seed; kernel i of seed s is fully deterministic",
    )
    p_fuzz.add_argument(
        "--count", type=int, default=None,
        help="how many kernels to generate (default 50; 5 with --smoke)",
    )
    p_fuzz.add_argument("--machines", default=None,
                        help="comma-separated design-point subset (default: all 13)")
    p_fuzz.add_argument(
        "--modes", default=None,
        help="comma-separated engine subset of checked,fast,turbo,native,"
        "batch (default: all five; 'batch' adds a vectorized differential "
        "pass over perturbed lane inputs; the scalar core always runs its "
        "single engine)",
    )
    p_fuzz.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes (1 = serial, in-process)",
    )
    p_fuzz.add_argument(
        "--time-budget", type=float, default=None,
        help="stop scheduling new kernels after this many seconds",
    )
    p_fuzz.add_argument(
        "--smoke", action="store_true",
        help="bounded CI preset: 5 kernels, 120s budget (explicit "
        "--count/--time-budget still win)",
    )
    p_fuzz.add_argument(
        "--no-minimize", action="store_true",
        help="report divergences without delta-debugging reproducers",
    )
    p_fuzz.add_argument(
        "--corpus-dir", default=None,
        help="where minimized reproducers are written "
        "(default: $REPRO_FUZZ_CORPUS or fuzz/corpus at the repo root)",
    )
    p_fuzz.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write memoised passing verdicts",
    )
    p_fuzz.add_argument(
        "--cache-dir", default=None,
        help="artifact store location (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro/artifacts)",
    )
    p_fuzz.add_argument("--json", action="store_true",
                        help="JSON campaign report on stdout")
    p_fuzz.add_argument("-q", "--quiet", action="store_true",
                        help="suppress per-case progress on stderr")
    p_fuzz.set_defaults(fn=_cmd_fuzz)

    p_corpus = sub.add_parser(
        "corpus",
        help="stress-benchmark corpus: promote fuzz kernels with pinned "
        "golden stats, replay them across every engine, inspect them",
    )
    corpus_sub = p_corpus.add_subparsers(dest="corpus_command", required=True)

    p_cpro = corpus_sub.add_parser(
        "promote",
        help="run a seeded fuzz campaign, score candidates by "
        "interestingness (branchy/fu-diverse/memory extremes), select a "
        "diverse subset and persist it with pinned per-(machine, engine) "
        "golden stats",
    )
    p_cpro.add_argument("--seed", type=int, default=0, help="campaign seed")
    p_cpro.add_argument(
        "--count", type=int, default=None,
        help="candidates to generate and score (default 40; 8 with --smoke)",
    )
    p_cpro.add_argument(
        "--target", type=int, default=None,
        help="corpus size to select (default 12; 3 with --smoke)",
    )
    p_cpro.add_argument(
        "--machines", default=None,
        help="comma-separated presets to pin goldens on (default: all 13)",
    )
    p_cpro.add_argument(
        "--modes", default=None,
        help="comma-separated engine subset to pin (default: all five)",
    )
    p_cpro.add_argument(
        "-j", "--jobs", type=int, default=None,
        help="worker processes for golden pinning (default 1)",
    )
    p_cpro.add_argument(
        "--out-dir", default=None,
        help="promoted-corpus directory (default: $REPRO_PROMOTED_CORPUS "
        "or fuzz/promoted at the repo root)",
    )
    p_cpro.add_argument(
        "--smoke", action="store_true",
        help="bounded CI preset: 8 candidates, 3 selected, 2 machines "
        "(explicit flags still win)",
    )
    p_cpro.add_argument("--json", action="store_true",
                        help="JSON promotion report on stdout")
    p_cpro.add_argument("-q", "--quiet", action="store_true",
                        help="suppress progress on stderr")
    p_cpro.set_defaults(fn=_cmd_corpus_promote)

    p_crep = corpus_sub.add_parser(
        "replay",
        help="re-run every golden-bearing kernel (promoted corpus, fuzz "
        "regression vault, built-in extras) across its pinned engines and "
        "machines; any stat drifting from its golden fails the replay",
    )
    p_crep.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes (1 = serial, in-process)",
    )
    p_crep.add_argument(
        "--machines", default=None,
        help="comma-separated preset subset (pairs pinned on other "
        "machines are skipped; default: every pinned machine)",
    )
    p_crep.add_argument(
        "--promoted-dir", default=None,
        help="promoted-corpus directory (default: $REPRO_PROMOTED_CORPUS "
        "or fuzz/promoted)",
    )
    p_crep.add_argument(
        "--corpus-dir", default=None,
        help="fuzz regression vault (default: $REPRO_FUZZ_CORPUS or "
        "fuzz/corpus)",
    )
    p_crep.add_argument(
        "--no-builtin", action="store_true",
        help="skip the built-in extra kernels' goldens (fft)",
    )
    p_crep.add_argument("--json", action="store_true",
                        help="JSON replay report on stdout")
    p_crep.add_argument("-q", "--quiet", action="store_true",
                        help="suppress per-case progress on stderr")
    p_crep.set_defaults(fn=_cmd_corpus_replay)

    p_csta = corpus_sub.add_parser(
        "stats", help="summarize the promoted corpus (traits, axes, coverage)"
    )
    p_csta.add_argument("--promoted-dir", default=None,
                        help="promoted-corpus directory")
    p_csta.add_argument("--json", action="store_true",
                        help="machine-readable stats on stdout")
    p_csta.set_defaults(fn=_cmd_corpus_stats)

    p_cpin = corpus_sub.add_parser(
        "pin",
        help="(re-)pin golden stats after an intentional toolchain or "
        "scheduler change (goldens freeze cycles and every transport "
        "counter, so legitimate perf changes require an explicit re-pin)",
    )
    p_cpin.add_argument(
        "names", nargs="*",
        help="kernels to pin (default: fft + every corpus/promoted entry)",
    )
    p_cpin.add_argument(
        "--machines", default=None,
        help="comma-separated presets to pin on (default: all 13; "
        "regression reproducers always pin on their recorded machine)",
    )
    p_cpin.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes (1 = serial, in-process)",
    )
    p_cpin.add_argument("--promoted-dir", default=None,
                        help="promoted-corpus directory")
    p_cpin.add_argument("--corpus-dir", default=None,
                        help="fuzz regression vault directory")
    p_cpin.add_argument("-q", "--quiet", action="store_true",
                        help="suppress per-kernel progress on stderr")
    p_cpin.set_defaults(fn=_cmd_corpus_pin)

    p_trace = sub.add_parser(
        "trace", help="inspect trace files written by --trace"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_tsum = trace_sub.add_parser(
        "summary",
        help="aggregate span timings, counters and gauges of a trace file",
    )
    p_tsum.add_argument("file", help="trace JSON written by run/sweep --trace")
    p_tsum.add_argument(
        "--top", type=int, default=20,
        help="how many span rows to show (by total time; default 20)",
    )
    p_tsum.add_argument("--json", action="store_true",
                        help="machine-readable summary on stdout")
    p_tsum.set_defaults(fn=_cmd_trace_summary)

    p_syn = sub.add_parser("synth", help="analytic synthesis report")
    p_syn.add_argument("machine", choices=preset_names())
    p_syn.set_defaults(fn=_cmd_synth)

    p_serve = sub.add_parser(
        "serve",
        help="HTTP compile-and-simulate service",
        description="Serve the pipeline over HTTP/JSON: POST /v1/compile, "
        "/v1/run (mode=checked/fast/turbo/native/batch), /v1/sweep; "
        "GET /healthz, "
        "/v1/stats, /v1/jobs/<id>. Identical in-flight requests coalesce "
        "and finished results are served from the artifact store; a full "
        "queue answers 429 with Retry-After. SIGINT/SIGTERM drain "
        "gracefully (queued and running jobs finish, up to --drain-grace).",
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8321,
                         help="bind port; 0 picks a free port (default 8321)")
    p_serve.add_argument("--jobs", type=int, default=2,
                         help="worker shards / max concurrent jobs (default 2)")
    p_serve.add_argument("--queue-limit", type=int, default=64,
                         help="max queued jobs before 429 (default 64)")
    p_serve.add_argument("--job-timeout", type=float, default=300.0,
                         help="per-job wall-clock budget in seconds "
                         "(default 300)")
    p_serve.add_argument("--max-body", type=int, default=1 << 20,
                         help="max request body bytes before 413 "
                         "(default 1048576)")
    p_serve.add_argument("--drain-grace", type=float, default=30.0,
                         help="seconds to let in-flight jobs finish on "
                         "shutdown (default 30)")
    p_serve.add_argument("--cache-dir", default=None,
                         help="artifact store root (default: "
                         "$REPRO_CACHE_DIR or the user cache dir)")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="serve without the artifact store (no dedup "
                         "across requests)")
    p_serve.set_defaults(fn=_cmd_serve)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
