"""Post-run observability counters shared by the simulation engines.

The engines never touch the tracer from inside their per-cycle loops —
that would perturb exactly the numbers the tracer exists to explain.
Instead each simulator's ``run()`` records, once per completed run, the
architectural statistics it already computed: cycles and instructions
retired, transport traffic (moves/triggers/bypassed reads), register
file traffic, VLIW bundle occupancy, scalar memory traffic.  This is
what makes "enabled tracing keeps byte-identical statistics" a
structural property (asserted by ``tests/test_obs.py`` and
``benchmarks/bench_sim_throughput.py``).
"""

from __future__ import annotations

from repro import obs

#: per-style statistics folded into ``sim.<field>`` counters when present
#: (also the whitelist for ``EvalResult.extras`` — see
#: ``repro.pipeline.executor.result_extras``)
STAT_FIELDS = (
    "moves",
    "triggers",
    "rf_reads",
    "rf_writes",
    "bypass_reads",
    "bundles",
    "ops",
    "instructions",
    "loads",
    "stores",
    "taken_branches",
)


def record_run(result, style: str) -> None:
    """Fold one simulator result into the active tracer (no-op when
    tracing is disabled)."""
    if not obs.enabled():
        return
    obs.count("sim.runs")
    obs.count(f"sim.runs.{style}")
    obs.count("sim.cycles", result.cycles)
    for name in STAT_FIELDS:
        value = getattr(result, name, None)
        if value is not None:
            obs.count(f"sim.{name}", value)
