"""Basic-block-compiled "turbo" simulation engine with block chaining.

The pre-decoded fast engine (:mod:`repro.sim.predecode`) removed
per-cycle re-verification but still walks tuples of bound closures every
cycle.  This module adds a third execution mode, ``mode="turbo"``, that

1. partitions the pre-decoded TTA/VLIW program into **basic blocks**
   (control-transfer boundaries *including their exposed delay-slot
   windows*, ``halt`` instructions, program end);
2. generates **specialized Python source per block**: register-file and
   bus traffic become local list indexing, ALU semantics from
   :data:`~repro.sim.predecode.ALU_FUNCS` are inlined as expressions,
   function-unit result latching/pushing is open-coded, and all
   loop-invariant lookups (register files, function units, memory
   load/store, helpers) are hoisted into default arguments bound once;
3. compiles each block once with :func:`compile`/``exec`` (code objects
   are cached on ``Program.predecode_cache`` so every simulator instance
   of one linked program shares them) and **chains blocks through a
   dispatch table keyed on the entry pc**.

Dynamic, data-dependent checks stay in the generated code and in the
driver loop: reading a function-unit result before it is due,
non-monotonic result completion, overlapping control transfers, PC range
and the cycle budget all still raise :class:`SimError`/``ValueError``
with the reference engine's exact messages at the exact cycle.  All
*structural* properties are already guaranteed by
:func:`~repro.sim.predecode.static_decode_tta` /
``static_decode_vliw``, which turbo runs first.

Anything the code generator cannot prove static falls back **per block**
to the fast engine's bound closures (and any carried-over redirect or
out-of-range pc is stepped one precise cycle at a time), so turbo is
never less general than ``mode="fast"``.  The differential tests in
``tests/test_blockcompile.py`` assert byte-identical results -- exit
code, cycles and every statistic counter -- against ``mode="checked"``
for every kernel x machine pair in both styles.
"""

from __future__ import annotations

from heapq import heappop as _heappop

from repro import obs
from repro.backend.abi import return_value_reg
from repro.backend.program import Program
from repro.isa.operations import OPS, OpKind
from repro.isa.semantics import sext8, sext16, to_signed
from repro.sim.errors import SimError
from repro.sim.predecode import (
    _VLIW_LOADS,
    _VLIW_STORES,
    _bind_tta_sampler,
    _bind_tta_thunk,
    _bind_vliw_op,
    static_decode_tta,
    static_decode_vliw,
)

#: Version token for the simulation-engine family.  It participates in
#: the pipeline artifact fingerprint (:mod:`repro.pipeline.fingerprint`)
#: so a cached sweep result can never mask a codegen semantics change:
#: bump this whenever the semantics of any engine (checked / fast /
#: turbo / batch / native) or of the generated block or C code could
#: change.  It also keys the native engine's stored shared objects.
SIM_ENGINE_VERSION = 5

#: cache keys on ``Program.predecode_cache`` for compiled block code
_TTA_TURBO_KEY = "tta-turbo"
_VLIW_TURBO_KEY = "vliw-turbo"

#: soft cap on block length before any control transfer is seen
_MAX_BLOCK = 256

_TTA_CTL = frozenset({"jump", "call", "ret", "cjump", "cjumpz"})
_VLIW_CTL = _TTA_CTL

#: ALU opcodes inlined as Python expressions.  Each template must agree
#: bit-exactly with ``predecode.ALU_FUNCS`` (differential tests enforce
#: it); ``{a}`` is the trigger/first operand, ``{b}`` the second.
_ALU_EXPR = {
    "add": "({a} + {b}) & 4294967295",
    "sub": "({a} - {b}) & 4294967295",
    "mul": "({a} * {b}) & 4294967295",
    "and": "{a} & {b}",
    "ior": "{a} | {b}",
    "xor": "{a} ^ {b}",
    "eq": "1 if {a} == {b} else 0",
    "gt": "1 if _ts({a}) > _ts({b}) else 0",
    "gtu": "1 if {a} > {b} else 0",
    "shl": "({a} << ({b} & 31)) & 4294967295",
    "shru": "{a} >> ({b} & 31)",
    "shr": "(_ts({a}) >> ({b} & 31)) & 4294967295",
    "sxhw": "_sx16({a})",
    "sxqw": "_sx8({a})",
}

#: helper names each ALU template needs in the generated namespace
_ALU_HELPERS = {
    "gt": ("_ts",),
    "shr": ("_ts",),
    "sxhw": ("_sx16",),
    "sxqw": ("_sx8",),
}


class _Unsupported(Exception):
    """Raised during codegen for anything not provably static; the block
    is then materialised as ``None`` and the driver falls back to the
    fast engine's per-cycle closures for it."""


def _cexpr(k: int) -> str:
    return "c" if k == 0 else f"c + {k}"


def _param_maps(machine):
    """Deterministic short local names for the machine's RFs and FUs."""
    rf_param = {rf.name: f"r{i}" for i, rf in enumerate(machine.register_files)}
    fu_param = {fu.name: f"f{i}" for i, fu in enumerate(machine.all_units)}
    return rf_param, fu_param


def _assemble(lines, prologue, used, tag):
    """Build the block function source and compile it.

    The generated function receives the entry cycle ``c`` and returns a
    ``(status, pc, cycle, redirect_cycle, redirect_target)`` tuple:
    status 0 = fell through (a still-pending redirect may be carried),
    status 1 = redirect consumed at block end (pc is the target),
    status 3 = halted (cycle is the halt cycle).
    Everything else the block touches -- register-file lists, FU
    objects, memory accessors, the execution counter ``_x`` -- is bound
    once as a default argument, so the body runs on locals only.
    """
    params = ["c", "_x=_x"]
    params.extend(f"{name}={name}" for name in sorted(used))
    header = "def _b(" + ", ".join(params) + "):"
    body = "\n".join("    " + line for line in prologue + lines)
    source = header + "\n" + body + "\n"
    return source, compile(source, f"<turbo:{tag}>", "exec")


# ---------------------------------------------------------------------------
# TTA block compilation
# ---------------------------------------------------------------------------


def _partition(start, n_instrs, jl, has_halt, has_ctl):
    """Find the block length from *start* and whether it is halt-terminal.

    A halt instruction is always the last of its block.  The first
    control transfer at relative index ``k`` extends the block through
    its delay-slot window to ``k + jl`` inclusive, so its redirect fires
    exactly at block end; later control transfers inside the window
    either trap as overlapping or carry their pending redirect out
    through the fall-through exit.
    """
    n = 0
    end_rel = None
    halts = False
    while start + n < n_instrs:
        p = start + n
        n += 1
        if has_halt(p):
            halts = True
            break
        if end_rel is None and has_ctl(p):
            end_rel = (n - 1) + jl
        if end_rel is not None:
            if n - 1 >= end_rel:
                break
        elif n >= _MAX_BLOCK:
            break
    return n, halts, end_rel is not None


def _compile_tta_block(program: Program, start: int, decoded, rf_param, fu_param):
    """Generate + compile one TTA basic block; ``None`` if unsupported."""
    machine = program.machine
    jl = machine.jump_latency
    jl1 = jl + 1
    n_instrs = len(decoded)

    def has_halt(p):
        return any(op == "halt" for _, _, op in decoded[p][2])

    def has_ctl(p):
        return any(op in _TTA_CTL for _, _, op in decoded[p][2])

    n, halts, any_ctl = _partition(start, n_instrs, jl, has_halt, has_ctl)
    if n == 0:
        return None

    lines: list[str] = []
    used: set[str] = set()
    tempc = [0]

    def emit(s, ind=""):
        lines.append(ind + s)

    def newtemp():
        tempc[0] += 1
        return f"t{tempc[0]}"

    def sample_fu(fu_name, C, ind=""):
        """Open-coded FU result read: commit due results, then read or
        raise exactly like ``_FU.commit`` + ``fu_unavailable_error``."""
        f = fu_param[fu_name]
        used.add(f)
        used.add("_ua")
        t = newtemp()
        emit(f"_p = {f}.pending", ind)
        emit(f"while _p and _p[0][0] <= {C}:", ind)
        emit(f"    {f}.result = _p.pop(0)[1]", ind)
        emit(f"    {f}.has_result = True", ind)
        emit(f"if not {f}.has_result:", ind)
        emit(f"    raise _ua({f}, {C})", ind)
        emit(f"{t} = {f}.result", ind)
        return t

    def value_expr(src, C, ind=""):
        kind = src[0]
        if kind == "imm":
            return repr(src[1])
        if kind == "rf":
            rp = rf_param[src[1]]
            used.add(rp)
            return f"{rp}[{src[2]}]"
        return sample_fu(src[1], C, ind)

    def emit_push(f, due, val, ind=""):
        """Open-coded ``_FU.push`` with the reference error message."""
        emit(f"_p = {f}.pending", ind)
        emit(f"if _p and {due} <= _p[-1][0]:", ind)
        emit(
            "    raise ValueError('%s: result due %s not after pending %s'"
            f" % ({f}.name, {due}, _p[-1][0]))",
            ind,
        )
        emit(f"_p.append(({due}, {val}))", ind)

    def emit_ctl_check(ind=""):
        used.add("_se")
        emit("if rc >= 0:", ind)
        emit("    raise _se('overlapping control transfers')", ind)

    ctl_emitted = False
    try:
        for k in range(n):
            p = start + k
            C = _cexpr(k)
            rf_moves, o1_moves, trig_moves, _counts = decoded[p]
            # phase 1: sample every RF-bound source into a temp *before*
            # any latch, trigger or commit of this cycle can run, so an
            # aliasing write (RF[1]->RF[2]; RF[2]->RF[3]) still reads the
            # pre-cycle value and early-FU-read errors keep their order.
            commits = []
            for src, rf, idx in rf_moves:
                rp = rf_param[rf]
                used.add(rp)
                if src[0] == "imm":
                    commits.append((rp, idx, repr(src[1])))
                elif src[0] == "rf":
                    sp = rf_param[src[1]]
                    used.add(sp)
                    t = newtemp()
                    emit(f"{t} = {sp}[{src[2]}]")
                    commits.append((rp, idx, t))
                else:
                    commits.append((rp, idx, sample_fu(src[1], C)))
            # phase 2: operand-port latches
            for src, fu in o1_moves:
                f = fu_param[fu]
                used.add(f)
                e = value_expr(src, C)
                emit(f"{f}.o1 = {e}")
            # phase 3: triggers, in move order
            for src, fu, opcode in trig_moves:
                f = fu_param[fu]
                used.add(f)
                if opcode == "halt":
                    # value sampled for side effects/errors only
                    if src[0] == "fu":
                        sample_fu(src[1], C)
                    continue
                if opcode == "getra":
                    if src[0] == "fu":
                        sample_fu(src[1], C)
                    used.add("_sim")
                    emit_push(f, f"c + {k + 1}", "_sim.ra")
                    continue
                if opcode == "setra":
                    e = value_expr(src, C)
                    used.add("_sim")
                    emit(f"_sim.ra = {e}")
                    continue
                if opcode == "jump":
                    e = value_expr(src, C)
                    if ctl_emitted:
                        emit_ctl_check()
                    emit(f"rc = c + {k + jl1}")
                    emit(f"rt = {e}")
                    ctl_emitted = True
                    continue
                if opcode == "call":
                    e = value_expr(src, C)
                    used.add("_sim")
                    emit(f"_sim.ra = {p + jl1}")
                    if ctl_emitted:
                        emit_ctl_check()
                    emit(f"rc = c + {k + jl1}")
                    emit(f"rt = {e}")
                    ctl_emitted = True
                    continue
                if opcode == "ret":
                    if src[0] == "fu":
                        sample_fu(src[1], C)
                    used.add("_sim")
                    if ctl_emitted:
                        emit_ctl_check()
                    emit(f"rc = c + {k + jl1}")
                    emit("rt = _sim.ra")
                    ctl_emitted = True
                    continue
                if opcode in ("cjump", "cjumpz"):
                    e = value_expr(src, C)
                    if opcode == "cjump":
                        emit(f"if {e}:")
                    else:
                        emit(f"if not ({e}):")
                    if ctl_emitted:
                        emit_ctl_check("    ")
                    emit(f"rc = c + {k + jl1}", "    ")
                    emit(f"rt = {f}.o1", "    ")
                    ctl_emitted = True
                    continue
                spec = OPS.get(opcode)
                if spec is None:
                    raise _Unsupported(opcode)
                if spec.kind is OpKind.LSU:
                    e = value_expr(src, C)
                    if spec.writes_mem:
                        used.add("_st")
                        emit(f"_st({opcode!r}, {e}, {f}.o1)")
                    else:
                        used.add("_ld")
                        t = newtemp()
                        emit(f"{t} = _ld({opcode!r}, {e})")
                        emit_push(f, f"c + {k + spec.latency}", t)
                    continue
                tmpl = _ALU_EXPR.get(opcode)
                if tmpl is None or spec.latency < 1:
                    raise _Unsupported(opcode)
                used.update(_ALU_HELPERS.get(opcode, ()))
                e = value_expr(src, C)
                if spec.operands == 2:
                    expr = tmpl.format(a=e, b=f"{f}.o1")
                else:
                    expr = tmpl.format(a=e)
                emit_push(f, f"c + {k + spec.latency}", expr)
            # phase 4: RF write commit
            for rp, idx, e in commits:
                emit(f"{rp}[{idx}] = {e}")
    except _Unsupported:
        return None

    emit("_x[0] += 1")
    if halts:
        emit(f"return (3, 0, {_cexpr(n - 1)}, -1, 0)")
    elif ctl_emitted:
        emit(f"if rc == c + {n}:")
        emit(f"    return (1, rt, c + {n}, -1, 0)")
        emit(f"return (0, {start + n}, c + {n}, rc, rt)")
    else:
        emit(f"return (0, {start + n}, c + {n}, -1, 0)")

    prologue = ["rc = -1", "rt = 0"] if ctl_emitted else []
    source, code = _assemble(lines, prologue, used, f"tta:{start}")
    return (n, halts, source, code)


# ---------------------------------------------------------------------------
# VLIW block compilation
# ---------------------------------------------------------------------------


def _vliw_max_latency(decoded) -> int:
    """Longest write-back latency of any result-writing op in the
    program; bounds how far external in-flight writes can reach into a
    block, so heap drains beyond relative index ``maxlat`` are elided."""
    return max(
        (op[3] for bundle in decoded for op in bundle if op[2] is not None),
        default=0,
    )


def _compile_vliw_block(program: Program, start: int, decoded, rf_param, maxlat):
    """Generate + compile one VLIW basic block; ``None`` if unsupported."""
    machine = program.machine
    jl = machine.jump_latency
    jl1 = jl + 1
    n_instrs = len(decoded)

    def has_halt(p):
        return any(op[0] == "halt" for op in decoded[p])

    def has_ctl(p):
        return any(op[0] in _VLIW_CTL for op in decoded[p])

    n, halts, _any_ctl = _partition(start, n_instrs, jl, has_halt, has_ctl)
    if n == 0:
        return None

    lines: list[str] = []
    used: set[str] = set()
    tempc = [0]
    #: textual write-back application points inside the block:
    #: rel index -> [(reg_param, idx, temp)] in issue order
    apply_at: dict[int, list] = {}
    #: writes whose application point falls past block end, issue order
    exit_writes: list[tuple[int, str, int, str]] = []

    def emit(s, ind=""):
        lines.append(ind + s)

    def newtemp():
        tempc[0] += 1
        return f"t{tempc[0]}"

    def vsrc(src):
        if src[0] == "imm":
            return repr(src[1])
        rp = rf_param[src[1]]
        used.add(rp)
        return f"{rp}[{src[2]}]"

    def sched_write(due_rel, rf, idx, t):
        """A write due at ``c + due_rel`` becomes visible one cycle
        later.  Inside the block it is applied textually (bypassing the
        heap); past block end it is pushed to the simulator heap at exit
        in issue order, which preserves the fast engine's sequence
        numbering for same-due writes."""
        rp = rf_param[rf]
        used.add(rp)
        point = due_rel + 1
        if point <= n - 1:
            apply_at.setdefault(point, []).append((rp, idx, t))
        else:
            exit_writes.append((due_rel, rp, idx, t))

    def emit_ctl_check(ind=""):
        used.add("_se")
        emit("if rc >= 0:", ind)
        emit("    raise _se('overlapping control transfers')", ind)

    def emit_drain(C):
        used.update(("_hp", "_hpop"))
        emit(f"while _hp and _hp[0][0] < {C}:")
        emit("    _w = _hpop(_hp)")
        emit("    _w[2][_w[3]] = _w[4]")

    ctl_emitted = False
    try:
        for k in range(n):
            C = _cexpr(k)
            # external in-flight writes (due <= entry_cycle - 1 + maxlat)
            # can only land within the first maxlat instructions
            if k <= maxlat:
                emit_drain(C)
            for rp, idx, t in apply_at.get(k, ()):
                emit(f"{rp}[{idx}] = {t}")
            for name, srcs, dest, lat in decoded[start + k]:
                if name == "halt":
                    continue
                if name == "jump":
                    e = vsrc(srcs[0])
                    if ctl_emitted:
                        emit_ctl_check()
                    emit(f"rc = c + {k + jl1}")
                    emit(f"rt = {e}")
                    ctl_emitted = True
                    continue
                if name == "call":
                    e = vsrc(srcs[0])
                    used.add("_sim")
                    emit(f"_sim.ra = {start + k + jl1}")
                    if ctl_emitted:
                        emit_ctl_check()
                    emit(f"rc = c + {k + jl1}")
                    emit(f"rt = {e}")
                    ctl_emitted = True
                    continue
                if name == "ret":
                    used.add("_sim")
                    if ctl_emitted:
                        emit_ctl_check()
                    emit(f"rc = c + {k + jl1}")
                    emit("rt = _sim.ra")
                    ctl_emitted = True
                    continue
                if name in ("cjump", "cjumpz"):
                    pe = vsrc(srcs[0])
                    te = vsrc(srcs[1])
                    if name == "cjump":
                        emit(f"if {pe}:")
                    else:
                        emit(f"if not ({pe}):")
                    if ctl_emitted:
                        emit_ctl_check("    ")
                    emit(f"rc = c + {k + jl1}", "    ")
                    emit(f"rt = {te}", "    ")
                    ctl_emitted = True
                    continue
                if lat < 0:
                    raise _Unsupported(name)
                if name in _VLIW_LOADS:
                    used.add("_ld")
                    t = newtemp()
                    emit(f"{t} = _ld({name!r}, {vsrc(srcs[0])})")
                    sched_write(k + lat, dest[0], dest[1], t)
                    continue
                if name in _VLIW_STORES:
                    used.add("_st")
                    emit(f"_st({name!r}, {vsrc(srcs[0])}, {vsrc(srcs[1])})")
                    continue
                if name == "setra":
                    used.add("_sim")
                    emit(f"_sim.ra = {vsrc(srcs[0])}")
                    continue
                if name == "getra":
                    used.add("_sim")
                    t = newtemp()
                    emit(f"{t} = _sim.ra")
                    sched_write(k + lat, dest[0], dest[1], t)
                    continue
                if name == "copy":
                    t = newtemp()
                    emit(f"{t} = {vsrc(srcs[0])}")
                    sched_write(k + lat, dest[0], dest[1], t)
                    continue
                tmpl = _ALU_EXPR.get(name)
                if tmpl is None:
                    raise _Unsupported(name)
                used.update(_ALU_HELPERS.get(name, ()))
                if len(srcs) == 2:
                    expr = tmpl.format(a=vsrc(srcs[0]), b=vsrc(srcs[1]))
                else:
                    expr = tmpl.format(a=vsrc(srcs[0]))
                t = newtemp()
                emit(f"{t} = {expr}")
                sched_write(k + lat, dest[0], dest[1], t)
    except _Unsupported:
        return None

    for due_rel, rp, idx, t in exit_writes:
        used.add("_wl")
        emit(f"_wl({_cexpr(due_rel)}, {rp}, {idx}, {t})")
    emit("_x[0] += 1")
    if halts:
        # flush every in-flight write so the exit code is final
        used.update(("_hp", "_hpop"))
        emit("while _hp:")
        emit("    _w = _hpop(_hp)")
        emit("    _w[2][_w[3]] = _w[4]")
        emit(f"return (3, 0, {_cexpr(n - 1)}, -1, 0)")
    elif ctl_emitted:
        emit(f"if rc == c + {n}:")
        emit(f"    return (1, rt, c + {n}, -1, 0)")
        emit(f"return (0, {start + n}, c + {n}, rc, rt)")
    else:
        emit(f"return (0, {start + n}, c + {n}, -1, 0)")

    prologue = ["rc = -1", "rt = 0"] if ctl_emitted else []
    source, code = _assemble(lines, prologue, used, f"vliw:{start}")
    return (n, halts, source, code)


# ---------------------------------------------------------------------------
# shared driver plumbing
# ---------------------------------------------------------------------------

_ABSENT = object()


def _block_cache(program: Program, key: str) -> dict:
    cache = program.predecode_cache.get(key)
    if cache is None:
        cache = program.predecode_cache[key] = {}
    return cache


def tta_block_source(program: Program, start: int) -> str | None:
    """Generated source of the TTA block starting at *start* (debugging
    and tests); ``None`` when the block falls back to the fast engine."""
    decoded = static_decode_tta(program)
    rf_param, fu_param = _param_maps(program.machine)
    cache = _block_cache(program, _TTA_TURBO_KEY)
    entry = cache.get(start, _ABSENT)
    if entry is _ABSENT:
        entry = _compile_tta_block(program, start, decoded, rf_param, fu_param)
        cache[start] = entry
    return None if entry is None else entry[2]


def vliw_block_source(program: Program, start: int) -> str | None:
    """Generated source of the VLIW block starting at *start*."""
    decoded = static_decode_vliw(program)
    rf_param, _ = _param_maps(program.machine)
    cache = _block_cache(program, _VLIW_TURBO_KEY)
    entry = cache.get(start, _ABSENT)
    if entry is _ABSENT:
        entry = _compile_vliw_block(
            program, start, decoded, rf_param, _vliw_max_latency(decoded)
        )
        cache[start] = entry
    return None if entry is None else entry[2]


def _expand_hits(hits, block_counters):
    for start, length, counter in block_counters:
        count = counter[0]
        if count:
            for i in range(start, start + length):
                hits[i] += count
    return hits


# ---------------------------------------------------------------------------
# TTA turbo driver
# ---------------------------------------------------------------------------


def run_tta_turbo(sim):
    """Execute *sim*'s program with the block-compiled engine.

    Bit- and cycle-exact with ``TTASimulator`` in checked mode, including
    every statistics counter (enforced by ``tests/test_blockcompile.py``).
    """
    from repro.sim.tta_sim import TTAResult, fu_unavailable_error

    program = sim.program
    decoded = static_decode_tta(program)
    machine = program.machine
    jl = machine.jump_latency
    rf_param, fu_param = _param_maps(machine)
    code_cache = _block_cache(program, _TTA_TURBO_KEY)
    max_cycles = sim.max_cycles
    n_instrs = len(decoded)
    hits = [0] * n_instrs

    ns = {
        "_sim": sim,
        "_se": SimError,
        "_ua": fu_unavailable_error,
        "_ld": sim.memory.load,
        "_st": sim.memory.store,
        "_ts": to_signed,
        "_sx16": sext16,
        "_sx8": sext8,
    }
    for name, param in rf_param.items():
        ns[param] = sim.rfs[name]
    for name, param in fu_param.items():
        ns[param] = sim.fus[name]

    bound_blocks: dict[int, tuple | None] = {}
    block_counters: list[tuple[int, int, list]] = []

    def materialize(pc):
        entry = code_cache.get(pc, _ABSENT)
        if entry is _ABSENT:
            entry = _compile_tta_block(program, pc, decoded, rf_param, fu_param)
            code_cache[pc] = entry
            obs.count("sim.turbo.blocks_compiled")
        else:
            obs.count("sim.turbo.block_cache_hits")
        if entry is None:
            bound_blocks[pc] = None
            obs.count("sim.turbo.fallback_blocks")
            return None
        length, _halts, _source, code = entry
        counter = [0]
        ns["_x"] = counter
        exec(code, ns)  # noqa: S102 - self-generated, cached block code
        blk = (length, ns.pop("_b"), counter)
        bound_blocks[pc] = blk
        block_counters.append((pc, length, counter))
        return blk

    fallback: dict[int, tuple] = {}

    def bind_instr(pc):
        rf_moves, o1_moves, trig_moves, _counts = decoded[pc]
        bound = (
            tuple(
                (_bind_tta_sampler(src, sim), sim.rfs[rf], idx)
                for src, rf, idx in rf_moves
            ),
            tuple((_bind_tta_sampler(src, sim), sim.fus[fu]) for src, fu in o1_moves),
            tuple(
                (_bind_tta_sampler(src, sim), _bind_tta_thunk(fu, opcode, sim, jl))
                for src, fu, opcode in trig_moves
            ),
        )
        fallback[pc] = bound
        return bound

    get_block = bound_blocks.get
    pc = 0
    cycle = 0
    rc = -1  # pending redirect fire cycle (-1 = none)
    rt = 0
    while True:
        if rc < 0 and 0 <= pc < n_instrs:
            blk = get_block(pc, _ABSENT)
            if blk is _ABSENT:
                blk = materialize(pc)
            if blk is not None and cycle + blk[0] <= max_cycles + 1:
                status, pc, cycle, rc, rt = blk[1](cycle)
                if status == 3:
                    break
                if cycle > max_cycles:
                    raise SimError("cycle budget exceeded (runaway program?)")
                continue
        # precise single-cycle fallback: carried redirects, out-of-range
        # pcs, budget-edge cycles and uncompilable blocks all land here
        if cycle == rc:
            pc = rt
            rc = -1
        if pc < 0 or pc >= n_instrs:
            raise SimError(f"PC out of range: {pc}")
        bound = fallback.get(pc)
        if bound is None:
            bound = bind_instr(pc)
        rf_moves, o1_moves, trig_moves = bound
        hits[pc] += 1
        if rf_moves:
            pending = [(regs, idx, sample(cycle)) for sample, regs, idx in rf_moves]
        else:
            pending = ()
        for sample, fu in o1_moves:
            fu.o1 = sample(cycle)
        halted = False
        for sample, thunk in trig_moves:
            effect = thunk(sample(cycle), cycle, pc)
            if effect is not None:
                if effect is True:
                    halted = True
                elif rc >= 0:
                    raise SimError("overlapping control transfers")
                else:
                    rc, rt = effect
        for regs, idx, value in pending:
            regs[idx] = value
        if halted:
            break
        cycle += 1
        pc += 1
        if cycle > max_cycles:
            raise SimError("cycle budget exceeded (runaway program?)")

    rv = return_value_reg(machine)
    stats = TTAResult(sim.rfs[rv.rf][rv.idx], cycle + 1)
    _expand_hits(hits, block_counters)
    for count, (_, _, _, counts) in zip(hits, decoded):
        if count:
            stats.moves += count * counts[0]
            stats.triggers += count * counts[1]
            stats.rf_reads += count * counts[2]
            stats.bypass_reads += count * counts[3]
            stats.rf_writes += count * counts[4]
    sim._last_hits = hits
    sim._last_blocks = [(s, n, ctr[0]) for s, n, ctr in block_counters]
    sim._last_engine = "turbo"
    return stats


# ---------------------------------------------------------------------------
# VLIW turbo driver
# ---------------------------------------------------------------------------


def run_vliw_turbo(sim):
    """Execute *sim*'s program with the block-compiled engine.

    Bit- and cycle-exact with ``VLIWSimulator`` in checked mode,
    including the exposed delayed-write-back semantics.
    """
    from repro.sim.vliw_sim import VLIWResult

    program = sim.program
    decoded = static_decode_vliw(program)
    machine = program.machine
    jl1 = machine.jump_latency + 1
    rf_param, _ = _param_maps(machine)
    code_cache = _block_cache(program, _VLIW_TURBO_KEY)
    maxlat = _vliw_max_latency(decoded)
    max_cycles = sim.max_cycles
    n_instrs = len(decoded)
    hits = [0] * n_instrs
    op_counts = [len(bundle) for bundle in decoded]

    rfs = {rf.name: [0] * rf.size for rf in machine.register_files}
    sim._fast_rfs = rfs
    heap = sim._pending_slot_writes

    ns = {
        "_sim": sim,
        "_se": SimError,
        "_ld": sim.memory.load,
        "_st": sim.memory.store,
        "_ts": to_signed,
        "_sx16": sext16,
        "_sx8": sext8,
        "_hp": heap,
        "_hpop": _heappop,
        "_wl": sim._write_later_slot,
    }
    for name, param in rf_param.items():
        ns[param] = rfs[name]

    bound_blocks: dict[int, tuple | None] = {}
    block_counters: list[tuple[int, int, list]] = []

    def materialize(pc):
        entry = code_cache.get(pc, _ABSENT)
        if entry is _ABSENT:
            entry = _compile_vliw_block(program, pc, decoded, rf_param, maxlat)
            code_cache[pc] = entry
            obs.count("sim.turbo.blocks_compiled")
        else:
            obs.count("sim.turbo.block_cache_hits")
        if entry is None:
            bound_blocks[pc] = None
            obs.count("sim.turbo.fallback_blocks")
            return None
        length, _halts, _source, code = entry
        counter = [0]
        ns["_x"] = counter
        exec(code, ns)  # noqa: S102 - self-generated, cached block code
        blk = (length, ns.pop("_b"), counter)
        bound_blocks[pc] = blk
        block_counters.append((pc, length, counter))
        return blk

    fallback: dict[int, tuple] = {}

    def bind_bundle(pc):
        bound = tuple(_bind_vliw_op(op, sim, rfs, jl1) for op in decoded[pc])
        fallback[pc] = bound
        return bound

    get_block = bound_blocks.get
    pc = 0
    cycle = 0
    rc = -1
    rt = 0
    while True:
        if rc < 0 and 0 <= pc < n_instrs:
            blk = get_block(pc, _ABSENT)
            if blk is _ABSENT:
                blk = materialize(pc)
            if blk is not None and cycle + blk[0] <= max_cycles + 1:
                status, pc, cycle, rc, rt = blk[1](cycle)
                if status == 3:
                    break
                if cycle > max_cycles:
                    raise SimError("cycle budget exceeded (runaway program?)")
                continue
        # precise single-cycle fallback
        while heap and heap[0][0] < cycle:
            _, _, regs, idx, value = _heappop(heap)
            regs[idx] = value
        if cycle == rc:
            pc = rt
            rc = -1
        if pc < 0 or pc >= n_instrs:
            raise SimError(f"PC out of range: {pc}")
        bound = fallback.get(pc)
        if bound is None:
            bound = bind_bundle(pc)
        hits[pc] += 1
        halted = False
        for op_fn in bound:
            effect = op_fn(cycle, pc)
            if effect is not None:
                if effect is True:
                    halted = True
                elif rc >= 0:
                    raise SimError("overlapping control transfers")
                else:
                    rc, rt = effect
        if halted:
            while heap:
                _, _, regs, idx, value = _heappop(heap)
                regs[idx] = value
            break
        cycle += 1
        pc += 1
        if cycle > max_cycles:
            raise SimError("cycle budget exceeded (runaway program?)")

    rv = return_value_reg(machine)
    result = VLIWResult(rfs[rv.rf][rv.idx], cycle + 1, cycle + 1)
    _expand_hits(hits, block_counters)
    result.ops = sum(count * ops for count, ops in zip(hits, op_counts))
    sim._sync_regs_from_fast(rfs)
    sim._last_hits = hits
    sim._last_blocks = [(s, n, ctr[0]) for s, n, ctr in block_counters]
    sim._last_engine = "turbo"
    return result
