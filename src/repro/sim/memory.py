"""Byte-addressed data memory shared by all simulators."""

from __future__ import annotations

from repro.isa.semantics import MASK32, sext8, sext16
from repro.sim.errors import SimError


class DataMemory:
    """Little-endian byte-addressed memory with typed accessors."""

    def __init__(self, size: int) -> None:
        self.data = bytearray(size)

    def preload(self, address: int, blob: bytes) -> None:
        address = self._normalize(address, len(blob))
        self.data[address : address + len(blob)] = blob

    def _normalize(self, address: int, size: int) -> int:
        """Wrap *address* to the 32-bit space and bounds-check the access.

        The error reports the address as the program produced it (a
        negative value stays negative), not the wrapped form.
        """
        wrapped = address & MASK32
        if wrapped + size > len(self.data):
            raise SimError(f"memory access out of range: {address:#x}+{size}")
        return wrapped

    def load(self, op: str, address: int) -> int:
        if op == "ldw":
            address = self._normalize(address, 4)
            return int.from_bytes(self.data[address : address + 4], "little")
        if op in ("ldh", "ldhu"):
            address = self._normalize(address, 2)
            raw = int.from_bytes(self.data[address : address + 2], "little")
            return sext16(raw) if op == "ldh" else raw
        if op in ("ldq", "ldqu"):
            address = self._normalize(address, 1)
            raw = self.data[address]
            return sext8(raw) if op == "ldq" else raw
        raise SimError(f"unknown load {op}")

    def store(self, op: str, address: int, value: int) -> None:
        value &= MASK32
        if op == "stw":
            address = self._normalize(address, 4)
            self.data[address : address + 4] = value.to_bytes(4, "little")
        elif op == "sth":
            address = self._normalize(address, 2)
            self.data[address : address + 2] = (value & 0xFFFF).to_bytes(2, "little")
        elif op == "stq":
            address = self._normalize(address, 1)
            self.data[address] = value & 0xFF
        else:
            raise SimError(f"unknown store {op}")
