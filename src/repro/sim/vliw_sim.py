"""VLIW simulator with exposed write-back timing.

Each instruction word (bundle) takes one cycle.  Operations read their
register operands from the state at the start of their issue cycle and
write results back ``latency`` cycles later; the scheduler guarantees no
consumer reads early, and the simulator's delayed-write queue makes a
violation produce the stale value (caught by differential tests) rather
than silently matching the interpreter.

Control transfers redirect fetch ``jump_latency + 1`` instructions after
the trigger (exposed delay slots).

Three execution modes are offered (``mode="fast"`` is the default):
``"fast"`` validates every bundle once at load time and runs the
pre-decoded engine of :mod:`repro.sim.predecode`; ``"turbo"``
additionally compiles basic blocks into specialized Python code
(:mod:`repro.sim.blockcompile`); ``"native"`` compiles the same blocks
to C through :mod:`repro.sim.native` (degrading to turbo when no C
compiler is available); ``"checked"`` is the per-cycle reference
implementation.  Differential tests assert all modes agree bit- and
cycle-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import heapq

from repro.backend.abi import MEMORY_SIZE, return_value_reg
from repro.backend.mop import Imm, MOp, PhysReg
from repro.backend.program import Program, VLIWInstr
from repro.isa.semantics import MASK32, evaluate
from repro.sim.errors import SimError
from repro.sim.memory import DataMemory
from repro.sim.predecode import run_vliw_fast


@dataclass
class VLIWResult:
    exit_code: int
    cycles: int
    bundles: int
    ops: int = 0


@dataclass
class VLIWSimulator:
    program: Program
    memory_size: int = MEMORY_SIZE
    max_cycles: int = 500_000_000
    #: "fast" = load-time verification + pre-decoded engine;
    #: "turbo" = fast plus basic-block compilation with block chaining;
    #: "native" = turbo's blocks compiled to C via cffi/ctypes;
    #: "checked" = per-cycle reference implementation
    mode: str = "fast"
    memory: DataMemory = field(init=False)

    def __post_init__(self) -> None:
        if self.mode not in ("fast", "checked", "turbo", "native"):
            raise ValueError(f"unknown simulation mode {self.mode!r}")
        self.memory = DataMemory(self.memory_size)
        self.regs: dict[PhysReg, int] = {}
        self.ra = 0
        #: delayed register writes: (due_cycle, seq, reg, value)
        self.pending_writes: list[tuple[int, int, PhysReg, int]] = []
        #: fast engine's delayed writes: (due_cycle, seq, rf_list, idx, value)
        self._pending_slot_writes: list = []
        self._seq = 0

    def preload(self, data_init: list[tuple[int, bytes]]) -> None:
        for address, blob in data_init:
            self.memory.preload(address, blob)

    def _read(self, src) -> int:
        if isinstance(src, Imm):
            return src.value & MASK32
        if isinstance(src, PhysReg):
            return self.regs.get(src, 0)
        raise SimError(f"unresolved operand {src!r}")

    def _write_later(self, cycle: int, reg: PhysReg, value: int) -> None:
        self._seq += 1
        heapq.heappush(self.pending_writes, (cycle, self._seq, reg, value))

    def _write_later_slot(self, cycle: int, regs: list, idx: int, value: int) -> None:
        """Fast-engine variant of :meth:`_write_later` writing straight into
        a pre-resolved register-file slot."""
        self._seq += 1
        heapq.heappush(self._pending_slot_writes, (cycle, self._seq, regs, idx, value))

    def _sync_regs_from_fast(self, rfs: dict[str, list[int]]) -> None:
        """Mirror the fast engine's final register state into ``self.regs``
        so callers observe the same post-run API in both modes."""
        for rf_name, values in rfs.items():
            for idx, value in enumerate(values):
                self.regs[PhysReg(rf_name, idx)] = value

    def _commit_due(self, cycle: int) -> None:
        """Commit writes whose write-back cycle has passed (visible now)."""
        while self.pending_writes and self.pending_writes[0][0] < cycle:
            _, _, reg, value = heapq.heappop(self.pending_writes)
            self.regs[reg] = value

    def run(self) -> VLIWResult:
        from repro import obs
        from repro.sim.counters import record_run

        with obs.span(
            "sim.run",
            machine=self.program.machine.name,
            style="vliw",
            mode=self.mode,
        ):
            if self.mode == "fast":
                result = run_vliw_fast(self)
            elif self.mode == "turbo":
                from repro.sim.blockcompile import run_vliw_turbo

                result = run_vliw_turbo(self)
            elif self.mode == "native":
                from repro.sim.native import run_vliw_native

                result = run_vliw_native(self)
            else:
                result = self._run_checked()
        record_run(result, "vliw")
        return result

    def _run_checked(self) -> VLIWResult:
        """Reference implementation; the pre-decoded fast engine must agree
        with this path bit- and cycle-exactly."""
        machine = self.program.machine
        jl = machine.jump_latency
        instrs = self.program.instrs
        pc = 0
        cycle = 0
        ops_executed = 0
        redirect: tuple[int, int] | None = None  # (cycle, target)
        result = VLIWResult(0, 0, 0)
        while True:
            self._commit_due(cycle)
            if redirect is not None and cycle == redirect[0]:
                pc = redirect[1]
                redirect = None
            if pc < 0 or pc >= len(instrs):
                raise SimError(f"PC out of range: {pc}")
            bundle: VLIWInstr = instrs[pc]
            halted = False
            # Sample all reads before applying any effect of this bundle.
            sampled = [
                (op, [self._read(s) for s in op.srcs]) for op in bundle.ops
            ]
            for op, values in sampled:
                ops_executed += 1
                name = op.op
                if name == "halt":
                    halted = True
                elif name in ("jump", "call"):
                    if redirect is not None:
                        raise SimError("overlapping control transfers")
                    redirect = (cycle + jl + 1, values[0])
                    if name == "call":
                        self.ra = pc + jl + 1
                elif name == "ret":
                    if redirect is not None:
                        raise SimError("overlapping control transfers")
                    redirect = (cycle + jl + 1, self.ra)
                elif name in ("cjump", "cjumpz"):
                    taken = (values[0] != 0) if name == "cjump" else (values[0] == 0)
                    if taken:
                        if redirect is not None:
                            raise SimError("overlapping control transfers")
                        redirect = (cycle + jl + 1, values[1])
                elif name in ("ldw", "ldh", "ldq", "ldqu", "ldhu"):
                    value = self.memory.load(name, values[0])
                    self._write_later(cycle + op.latency, op.dest, value)
                elif name in ("stw", "sth", "stq"):
                    self.memory.store(name, values[0], values[1])
                elif name == "copy":
                    self._write_later(cycle + op.latency, op.dest, values[0])
                elif name == "getra":
                    self._write_later(cycle + op.latency, op.dest, self.ra)
                elif name == "setra":
                    self.ra = values[0]
                else:
                    self._write_later(cycle + op.latency, op.dest, evaluate(name, values))
            if halted:
                # Flush in-flight writes so the exit code is final.
                self._commit_due(1 << 62)
                result.exit_code = self.regs.get(return_value_reg(machine), 0)
                break
            cycle += 1
            pc += 1
            if cycle > self.max_cycles:
                raise SimError("cycle budget exceeded (runaway program?)")
        result.cycles = cycle + 1
        result.bundles = cycle + 1
        result.ops = ops_executed
        return result
