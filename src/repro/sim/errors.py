"""Simulator diagnostics."""

from __future__ import annotations


class SimError(RuntimeError):
    """Raised on schedule violations, bad memory accesses or runaway
    execution detected during simulation."""
