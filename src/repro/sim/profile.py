"""Post-run simulation profiling: hot blocks and trigger histograms.

The fast, turbo and native engines already maintain a per-pc
execution-count vector to reconstruct the architectural statistics
(moves, triggers, port traffic), and the turbo/native engines already
count block executions to expand that vector -- so profiling is
**zero overhead when disabled**:
:func:`collect_profile` only *reads* state the engines leave behind
(``sim._last_hits`` / ``sim._last_blocks`` / ``sim._last_engine``) and
derives everything else from the cached static decode.

Per-block execution counts show where the cycles go (and justify which
blocks the turbo codegen should care about); per-opcode trigger
histograms show what the scheduler actually emits on the hot path --
input for future scheduler work.

Exposed on the CLI as ``repro run FILE.mc --profile``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.machine import MachineStyle


@dataclass(frozen=True)
class BlockProfile:
    """One profiled region: either a turbo/native-compiled basic block
    or a single interpreted pc (length 1) on the fast/fallback path."""

    start: int
    length: int
    executions: int
    #: executed instruction slots contributed (executions * length)
    instructions: int


@dataclass
class SimProfile:
    engine: str
    cycles: int
    #: executed instructions (== occupied cycles; TTA/VLIW issue 1/cycle)
    instructions: int
    #: per-pc execution counts, len == program length
    pc_hits: list[int] = field(repr=False)
    #: hottest regions first
    blocks: list[BlockProfile] = field(default_factory=list)
    #: opcode -> dynamic trigger/op executions, hottest first
    opcode_counts: dict[str, int] = field(default_factory=dict)


def collect_profile(sim, result) -> SimProfile:
    """Build a :class:`SimProfile` from a finished fast/turbo/native run.

    Raises :class:`ValueError` if *sim* has not run yet or ran with the
    checked engine (which keeps no hit vector).
    """
    from repro import obs

    hits = getattr(sim, "_last_hits", None)
    if hits is None:
        raise ValueError(
            "no profile data: run the simulator with mode='fast' or "
            "mode='turbo' or mode='native' first (the checked engine "
            "keeps no hit vector)"
        )
    engine = getattr(sim, "_last_engine", None)
    if engine is None:
        raise ValueError(
            "no profile data: run the simulator with mode='fast' or "
            "mode='turbo' or mode='native' first (the checked engine "
            "keeps no hit vector)"
        )
    with obs.span("sim.profile.collect", engine=engine):
        return _collect(sim, result, hits, engine)


def _collect(sim, result, hits, engine) -> SimProfile:
    program = sim.program
    style = program.machine.style

    # opcode histogram from the cached static decode x the hit vector
    opcode_counts: dict[str, int] = {}
    if style is MachineStyle.TTA:
        from repro.sim.predecode import static_decode_tta

        for count, (_, _, trig_moves, _) in zip(hits, static_decode_tta(program)):
            if count:
                for _src, _fu, opcode in trig_moves:
                    opcode_counts[opcode] = opcode_counts.get(opcode, 0) + count
    elif style is MachineStyle.VLIW:
        from repro.sim.predecode import static_decode_vliw

        for count, bundle in zip(hits, static_decode_vliw(program)):
            if count:
                for op in bundle:
                    opcode_counts[op[0]] = opcode_counts.get(op[0], 0) + count
    else:  # pragma: no cover - engines never set _last_hits for scalar
        raise ValueError("profiling supports TTA and VLIW cores only")
    opcode_counts = dict(
        sorted(opcode_counts.items(), key=lambda item: (-item[1], item[0]))
    )

    raw_blocks = getattr(sim, "_last_blocks", None)
    blocks: list[BlockProfile] = []
    if raw_blocks:
        covered = set()
        for start, length, executions in raw_blocks:
            if executions:
                blocks.append(
                    BlockProfile(start, length, executions, executions * length)
                )
            covered.update(range(start, start + length))
        # pcs only ever executed by the interpreted fallback path
        for pc, count in enumerate(hits):
            if count and pc not in covered:
                blocks.append(BlockProfile(pc, 1, count, count))
    else:
        for pc, count in enumerate(hits):
            if count:
                blocks.append(BlockProfile(pc, 1, count, count))
    blocks.sort(key=lambda b: (-b.instructions, b.start))

    return SimProfile(
        engine=engine,
        cycles=result.cycles,
        instructions=sum(hits),
        pc_hits=list(hits),
        blocks=blocks,
        opcode_counts=opcode_counts,
    )


def format_profile(profile: SimProfile, top: int = 10) -> str:
    """Human-readable hot-block/opcode report for the CLI."""
    lines = [
        f"engine         : {profile.engine}",
        f"cycles         : {profile.cycles}",
        f"instructions   : {profile.instructions} "
        f"({100.0 * profile.instructions / max(profile.cycles, 1):.1f}% issue slots)",
        "",
        f"hot blocks (top {min(top, len(profile.blocks))} of {len(profile.blocks)}):",
        f"  {'pc range':>12s} {'len':>4s} {'execs':>10s} {'instrs':>10s} {'share':>7s}",
    ]
    total = max(profile.instructions, 1)
    for block in profile.blocks[:top]:
        span = (
            f"{block.start}"
            if block.length == 1
            else f"{block.start}-{block.start + block.length - 1}"
        )
        lines.append(
            f"  {span:>12s} {block.length:4d} {block.executions:10d} "
            f"{block.instructions:10d} {100.0 * block.instructions / total:6.1f}%"
        )
    lines.append("")
    lines.append("trigger histogram:")
    op_total = max(sum(profile.opcode_counts.values()), 1)
    for opcode, count in list(profile.opcode_counts.items())[:top]:
        lines.append(
            f"  {opcode:8s} {count:10d} {100.0 * count / op_total:6.1f}%"
        )
    return "\n".join(lines)
