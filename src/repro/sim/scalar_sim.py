"""Scalar (MicroBlaze-like) core simulator.

Executes one operation per instruction in program order and charges the
pipeline stall model of the design point (:class:`ScalarTiming`): extra
cycles for loads/shifts/multiplies without forwarding, taken-branch
bubbles, and IMM-prefix words for constants wider than 16 bits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backend.abi import MEMORY_SIZE, return_value_reg
from repro.backend.mop import Imm, MOp, PhysReg
from repro.backend.program import Program
from repro.isa.operations import OPS
from repro.isa.semantics import MASK32, evaluate
from repro.machine.encoding import immediate_slot_cost
from repro.sim.errors import SimError
from repro.sim.memory import DataMemory


@dataclass
class ScalarResult:
    exit_code: int
    cycles: int
    instructions: int
    loads: int = 0
    stores: int = 0
    taken_branches: int = 0


@dataclass
class ScalarSimulator:
    """Executes a scalar program with a stall-model cost per op."""

    program: Program
    memory_size: int = MEMORY_SIZE
    max_cycles: int = 500_000_000
    trace: bool = False
    memory: DataMemory = field(init=False)

    def __post_init__(self) -> None:
        self.memory = DataMemory(self.memory_size)
        self.regs: dict[PhysReg, int] = {}
        self.ra = 0

    def preload(self, data_init: list[tuple[int, bytes]]) -> None:
        for address, blob in data_init:
            self.memory.preload(address, blob)

    def _read(self, src) -> int:
        if isinstance(src, Imm):
            return src.value & MASK32
        if isinstance(src, PhysReg):
            return self.regs.get(src, 0)
        raise SimError(f"unresolved operand {src!r}")

    def run(self) -> ScalarResult:
        from repro import obs
        from repro.sim.counters import record_run

        with obs.span(
            "sim.run",
            machine=self.program.machine.name,
            style="scalar",
            mode="scalar",
        ):
            result = self._run_engine()
        record_run(result, "scalar")
        return result

    def _run_engine(self) -> ScalarResult:
        machine = self.program.machine
        timing = machine.scalar_timing
        assert timing is not None
        instrs = self.program.instrs
        pc = 0
        cycles = 0
        executed = 0
        result = ScalarResult(0, 0, 0)
        while True:
            if pc < 0 or pc >= len(instrs):
                raise SimError(f"PC out of range: {pc}")
            op: MOp = instrs[pc]
            executed += 1
            cost = 1
            for src in op.srcs:
                if isinstance(src, Imm):
                    # IMM-prefix words each cost a fetch cycle.
                    cost += min(immediate_slot_cost(machine, src.value), 1)
            name = op.op
            next_pc = pc + 1
            if name in ("jump", "cjump", "cjumpz", "call", "ret", "halt"):
                if name == "halt":
                    result.exit_code = self.regs.get(return_value_reg(machine), 0)
                    break
                taken = True
                if name in ("cjump", "cjumpz"):
                    pred = self._read(op.srcs[0])
                    taken = (pred != 0) if name == "cjump" else (pred == 0)
                    target = self._read(op.srcs[1])
                elif name == "ret":
                    target = self.ra
                else:
                    target = self._read(op.srcs[0])
                if name == "call":
                    self.ra = pc + 1
                    self.regs[return_value_reg(machine)] = self.regs.get(
                        return_value_reg(machine), 0
                    )
                if taken:
                    next_pc = target
                    cost += timing.call_extra if name in ("call", "ret") else timing.taken_branch_extra
                else:
                    cost += timing.untaken_branch_extra
            elif name in ("ldw", "ldh", "ldq", "ldqu", "ldhu"):
                address = self._read(op.srcs[0])
                self.regs[op.dest] = self.memory.load(name, address)
                result.loads += 1
                cost += timing.load_extra
            elif name in ("stw", "sth", "stq"):
                address = self._read(op.srcs[0])
                value = self._read(op.srcs[1])
                self.memory.store(name, address, value)
                result.stores += 1
                cost += timing.store_extra
            elif name == "copy":
                self.regs[op.dest] = self._read(op.srcs[0])
            elif name == "getra":
                self.regs[op.dest] = self.ra
            elif name == "setra":
                self.ra = self._read(op.srcs[0])
            else:
                operands = [self._read(s) for s in op.srcs]
                self.regs[op.dest] = evaluate(name, operands)
                if name == "mul":
                    cost += timing.mul_extra
                elif name in ("shl", "shr", "shru"):
                    cost += timing.shift_extra
            if name in ("cjump", "cjumpz") and next_pc != pc + 1:
                result.taken_branches += 1
            cycles += cost
            if cycles > self.max_cycles:
                raise SimError("cycle budget exceeded (runaway program?)")
            pc = next_pc
        result.cycles = cycles
        result.instructions = executed
        return result
