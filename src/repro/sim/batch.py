"""Batched lockstep simulation: N runs of one decoded program at once.

The sweep, fuzzing and design-space workloads all share one shape: the
*same* compiled program is executed many times, with at most the data
memory differing between runs.  ``mode="batch"`` exploits that shape
with a fourth engine tier next to checked/fast/turbo:

* **lane** -- one logical run: the program plus an optional list of
  ``(address, bytes)`` memory preloads applied on top of the program's
  own ``data_init``;
* **uniform group** -- lanes whose preloads are byte-identical are
  provably identical runs (per-lane state enters *only* through the
  preloads), so each distinct preload set is simulated **once** on the
  fast engine and the result is replicated across its lanes;
* **vector group** -- when several *distinct* preload sets are batched,
  they execute in lockstep through a vectorized interpreter: register
  files, bus values and FU latches hold hybrid values (a python int
  while every lane agrees, a ``(K,)`` ``uint32`` ndarray once a loaded
  value differs between lanes) and data memory is promoted to a
  ``(K, size)`` byte matrix with per-lane gather/scatter accessors.

Lockstep requires control flow to stay uniform.  When a branch
predicate or computed target disagrees between lanes -- or a lane hits
a dynamic error such as an out-of-range access -- the group splits:
lanes that agree with lane 0 restart the vector run among themselves,
and every other lane **falls back individually to the fast engine**,
mirroring the turbo engine's per-block fallback contract.  Restarting
from cycle 0 is safe (runs are deterministic) and terminates (every
split drops at least one lane).  Dynamic *errors* whose message embeds
engine state are never synthesized by the vector interpreter; the
failing lanes re-run on the fast engine so they raise byte-identical
:class:`~repro.sim.errors.SimError`\\ s at the identical cycle.

Every lane's exit code, cycle count and full statistics record is
byte-identical to the checked reference engine's
(``tests/test_batch.py`` pins this differentially, kernel by kernel).

:func:`run_batch` is also the narrow "decoded program in, stats out"
entry point shared by every tier: ``mode="checked"|"fast"|"turbo"``
runs the same lanes serially through the named engine, and the scalar
core runs its single engine per lane -- so differential harnesses can
compare tiers lane-for-lane through one call signature.

numpy is required only for ``mode="batch"`` itself; the serial modes
work without it.
"""

from __future__ import annotations

import dataclasses
from heapq import heappop as _heappop, heappush as _heappush

from repro import obs
from repro.backend.abi import MEMORY_SIZE, return_value_reg
from repro.isa.operations import OPS, OpKind
from repro.isa.semantics import MASK32, to_signed
from repro.sim.errors import SimError
from repro.sim.predecode import ALU_FUNCS, static_decode_tta, static_decode_vliw

try:
    import numpy as np
except ImportError:  # pragma: no cover - the toolchain image ships numpy
    np = None


class _LaneDiverge(Exception):
    """Internal signal: the lockstep vector run cannot continue for every
    lane.  ``keep`` is a boolean vector over the group's lanes; kept
    lanes restart the vector run among themselves, dropped lanes fall
    back individually to the fast engine."""

    def __init__(self, keep):
        super().__init__("lanes diverged")
        self.keep = keep


# ---------------------------------------------------------------------------
# hybrid value helpers
#
# A value is either a python int in [0, 2**32) (every lane agrees) or a
# (K,) uint32 ndarray (per-lane).  The helpers below coerce scalars into
# numpy's value system only at the moment a vector operand forces it,
# keeping the all-uniform hot path on the exact python semantics of
# ``predecode.ALU_FUNCS``.
# ---------------------------------------------------------------------------


def _vu(x):
    """Operand as unsigned 32-bit for a vector expression."""
    return np.uint32(x) if isinstance(x, int) else x


def _vi(x):
    """Operand as signed 32-bit for a vector expression."""
    return np.int32(to_signed(x)) if isinstance(x, int) else x.view(np.int32)


def _v_gt(a, b):
    return (_vi(a) > _vi(b)).astype(np.uint32)


def _v_shr(a, b):
    # keep the shift count in int32: int32 >> uint32 would promote to int64
    count = (_vu(b) & np.uint32(31)).astype(np.int32)
    return (_vi(a) >> count).view(np.uint32)


def _v_sxhw(a):
    v = _vu(a) & np.uint32(0xFFFF)
    return np.where(v & np.uint32(0x8000), v | np.uint32(0xFFFF0000), v)


def _v_sxqw(a):
    v = _vu(a) & np.uint32(0xFF)
    return np.where(v & np.uint32(0x80), v | np.uint32(0xFFFFFF00), v)


#: vectorized twins of :data:`repro.sim.predecode.ALU_FUNCS`; bit-exact
#: with the scalar semantics (pinned by ``tests/test_batch.py``).  Only
#: consulted when at least one operand is per-lane.
_VEC_ALU = {
    "add": lambda a, b: _vu(a) + _vu(b),
    "sub": lambda a, b: _vu(a) - _vu(b),
    "mul": lambda a, b: _vu(a) * _vu(b),
    "and": lambda a, b: _vu(a) & _vu(b),
    "ior": lambda a, b: _vu(a) | _vu(b),
    "xor": lambda a, b: _vu(a) ^ _vu(b),
    "eq": lambda a, b: (_vu(a) == _vu(b)).astype(np.uint32),
    "gt": _v_gt,
    "gtu": lambda a, b: (_vu(a) > _vu(b)).astype(np.uint32),
    "shl": lambda a, b: _vu(a) << (_vu(b) & np.uint32(31)),
    "shru": lambda a, b: _vu(a) >> (_vu(b) & np.uint32(31)),
    "shr": _v_shr,
    "sxhw": _v_sxhw,
    "sxqw": _v_sxqw,
}


def _apply2(opcode, a, b):
    if isinstance(a, int) and isinstance(b, int):
        return ALU_FUNCS[opcode](a, b)
    return _VEC_ALU[opcode](a, b)


def _apply1(opcode, a):
    if isinstance(a, int):
        return ALU_FUNCS[opcode](a)
    return _VEC_ALU[opcode](a)


def _collapse(value):
    """Fold a per-lane value every lane agrees on back into a python int
    (loaded values frequently agree even when memories differ)."""
    if isinstance(value, int):
        return value
    first = value[0]
    if (value == first).all():
        return int(first)
    return value


def _uniform_target(value, k):
    """Resolve a control-transfer target (or ``ra`` value) to one int, or
    split the group when lanes disagree: lockstep has a single pc."""
    if isinstance(value, int):
        return value
    agree = value == value[0]
    if agree.all():
        return int(value[0])
    raise _LaneDiverge(agree)


def _uniform_truth(value, k):
    """One truth value for a branch predicate, or a control-flow split:
    lanes taking lane 0's direction continue vectorized."""
    if isinstance(value, int):
        return bool(value)
    taken = value != 0
    agree = taken == taken[0]
    if agree.all():
        return bool(taken[0])
    raise _LaneDiverge(agree)


def _drop_all(k):
    """A keep vector dropping every lane: the fault is lane-invariant (or
    its message would embed vector state), so each lane re-runs on the
    fast engine to raise the byte-identical reference error."""
    return np.zeros(k, dtype=bool)


# ---------------------------------------------------------------------------
# per-lane data memory, promoted to a (K, size) byte matrix
# ---------------------------------------------------------------------------


class _VecMemory:
    """Little-endian byte memory for K lanes at once.

    Addresses and stored values may be uniform ints or per-lane vectors;
    out-of-range lanes split the group (in-bounds lanes keep going, the
    faulting lanes fall back to the fast engine for the exact
    :class:`SimError`).
    """

    def __init__(self, arr):
        self.arr = arr  # (K, size) uint8
        self.k, self.size = arr.shape
        self._rows = np.arange(self.k)

    def _addr(self, address, width):
        """Validated gather/scatter index: an int, or a (K,) intp array."""
        if isinstance(address, int):
            if address + width > self.size:
                raise _LaneDiverge(_drop_all(self.k))
            return address
        ok = address <= np.uint32(self.size - width)
        if not ok.all():
            raise _LaneDiverge(ok)
        return address.astype(np.intp)

    def _gather(self, address, width):
        arr = self.arr
        a = self._addr(address, width)
        if isinstance(a, int):
            value = arr[:, a].astype(np.uint32)
            for i in range(1, width):
                value |= arr[:, a + i].astype(np.uint32) << np.uint32(8 * i)
        else:
            rows = self._rows
            value = arr[rows, a].astype(np.uint32)
            for i in range(1, width):
                value |= arr[rows, a + i].astype(np.uint32) << np.uint32(8 * i)
        return value

    def load(self, op, address):
        if op == "ldw":
            return _collapse(self._gather(address, 4))
        if op in ("ldh", "ldhu"):
            raw = self._gather(address, 2)
            return _collapse(_v_sxhw(raw) if op == "ldh" else raw)
        if op in ("ldq", "ldqu"):
            raw = self._gather(address, 1)
            return _collapse(_v_sxqw(raw) if op == "ldq" else raw)
        raise SimError(f"unknown load {op}")

    def store(self, op, address, value):
        width = {"stw": 4, "sth": 2, "stq": 1}.get(op)
        if width is None:
            raise SimError(f"unknown store {op}")
        a = self._addr(address, width)
        if isinstance(a, int) and isinstance(value, int):
            blob = (value & MASK32).to_bytes(4, "little")[:width]
            self.arr[:, a : a + width] = np.frombuffer(blob, dtype=np.uint8)
            return
        v = _vu(value)
        if isinstance(a, int):
            for i in range(width):
                self.arr[:, a + i] = (v >> np.uint32(8 * i)).astype(np.uint8)
        else:
            rows = self._rows
            for i in range(width):
                self.arr[rows, a + i] = (v >> np.uint32(8 * i)).astype(np.uint8)


def _build_vec_memory(compiled, lane_inputs) -> _VecMemory:
    """One (K, size) byte matrix: each row is ``data_init`` plus that
    lane's preloads, applied through the same normalization path the
    serial engines use (so bad preloads raise the identical error)."""
    from repro.sim.memory import DataMemory

    arr = np.zeros((len(lane_inputs), MEMORY_SIZE), dtype=np.uint8)
    for row, lane_input in enumerate(lane_inputs):
        memory = DataMemory(MEMORY_SIZE)
        for address, blob in compiled.data_init:
            memory.preload(address, blob)
        for address, blob in lane_input:
            memory.preload(address, blob)
        arr[row, :] = np.frombuffer(memory.data, dtype=np.uint8)
    return _VecMemory(arr)


# ---------------------------------------------------------------------------
# function-unit model (hybrid values; dues are schedule-static ints)
# ---------------------------------------------------------------------------


class _VecFU:
    """Semi-virtual time-latching FU with hybrid operand/result values.

    Due cycles come from static latencies, so they stay plain ints and
    the monotonicity check matches :class:`repro.sim.tta_sim._FU`."""

    __slots__ = ("name", "o1", "result", "has_result", "pending")

    def __init__(self, name):
        self.name = name
        self.o1 = 0
        self.result = 0
        self.has_result = False
        self.pending = []

    def commit(self, cycle):
        while self.pending and self.pending[0][0] <= cycle:
            _, value = self.pending.pop(0)
            self.result = value
            self.has_result = True

    def push(self, due, value):
        if self.pending and due <= self.pending[-1][0]:
            raise ValueError(
                f"{self.name}: result due {due} not after pending {self.pending[-1][0]}"
            )
        self.pending.append((due, value))


# ---------------------------------------------------------------------------
# vector lockstep interpreters (mirror run_tta_fast / run_vliw_fast)
# ---------------------------------------------------------------------------


def _run_tta_vec(compiled, lane_inputs, max_cycles) -> list:
    from repro.sim.tta_sim import TTAResult

    program = compiled.program
    machine = program.machine
    decoded = static_decode_tta(program)
    jl1 = machine.jump_latency + 1
    k = len(lane_inputs)
    mem = _build_vec_memory(compiled, lane_inputs)
    rfs = {rf.name: [0] * rf.size for rf in machine.register_files}
    fus = {fu.name: _VecFU(fu.name) for fu in machine.all_units}
    ra = 0
    n_instrs = len(decoded)
    hits = [0] * n_instrs
    pc = 0
    cycle = 0
    redirect_cycle = -1
    redirect_target = 0

    def sample(src):
        kind = src[0]
        if kind == "imm":
            return src[1]
        if kind == "rf":
            return rfs[src[1]][src[2]]
        fu = fus[src[1]]
        if fu.pending and fu.pending[0][0] <= cycle:
            fu.commit(cycle)
        if not fu.has_result:
            # schedule violation; timing is lane-invariant, and the
            # reference message embeds FU state -- re-raise it per lane
            raise _LaneDiverge(_drop_all(k))
        return fu.result

    while True:
        if cycle == redirect_cycle:
            pc = redirect_target
            redirect_cycle = -1
        if pc < 0 or pc >= n_instrs:
            raise SimError(f"PC out of range: {pc}")
        rf_moves, o1_moves, trig_moves, _counts = decoded[pc]
        hits[pc] += 1
        # phases mirror run_tta_fast: sample + latch, trigger, RF commit
        if rf_moves:
            pending_rf = [(rfs[rf], idx, sample(src)) for src, rf, idx in rf_moves]
        else:
            pending_rf = ()
        for src, fu_name in o1_moves:
            fus[fu_name].o1 = sample(src)
        halted = False
        for src, fu_name, opcode in trig_moves:
            value = sample(src)
            fu = fus[fu_name]
            effect = None
            if opcode == "halt":
                halted = True
            elif opcode == "getra":
                fu.push(cycle + 1, ra)
            elif opcode == "setra":
                ra = _uniform_target(value, k)
            elif opcode == "jump":
                effect = (cycle + jl1, _uniform_target(value, k))
            elif opcode == "call":
                ra = pc + jl1
                effect = (cycle + jl1, _uniform_target(value, k))
            elif opcode == "ret":
                effect = (cycle + jl1, ra)
            elif opcode == "cjump":
                if _uniform_truth(value, k):
                    effect = (cycle + jl1, _uniform_target(fu.o1, k))
            elif opcode == "cjumpz":
                if not _uniform_truth(value, k):
                    effect = (cycle + jl1, _uniform_target(fu.o1, k))
            else:
                spec = OPS[opcode]
                if spec.kind is OpKind.LSU:
                    if spec.writes_mem:
                        mem.store(opcode, value, fu.o1)
                    else:
                        fu.push(cycle + spec.latency, mem.load(opcode, value))
                elif spec.operands == 2:
                    fu.push(cycle + spec.latency, _apply2(opcode, value, fu.o1))
                else:
                    fu.push(cycle + spec.latency, _apply1(opcode, value))
            if effect is not None:
                if redirect_cycle >= 0:
                    raise SimError("overlapping control transfers")
                redirect_cycle, redirect_target = effect
        for regs, idx, value in pending_rf:
            regs[idx] = value
        if halted:
            break
        cycle += 1
        pc += 1
        if cycle > max_cycles:
            raise SimError("cycle budget exceeded (runaway program?)")

    rv = return_value_reg(machine)
    exit_value = rfs[rv.rf][rv.idx]
    base = TTAResult(0, cycle + 1)
    for count, (_, _, _, counts) in zip(hits, decoded):
        if count:
            base.moves += count * counts[0]
            base.triggers += count * counts[1]
            base.rf_reads += count * counts[2]
            base.bypass_reads += count * counts[3]
            base.rf_writes += count * counts[4]
    return _fan_out(base, exit_value, k)


def _run_vliw_vec(compiled, lane_inputs, max_cycles) -> list:
    from repro.sim.vliw_sim import VLIWResult

    program = compiled.program
    machine = program.machine
    decoded = static_decode_vliw(program)
    jl1 = machine.jump_latency + 1
    k = len(lane_inputs)
    mem = _build_vec_memory(compiled, lane_inputs)
    rfs = {rf.name: [0] * rf.size for rf in machine.register_files}
    ra = 0
    pending = []  # (due, seq, regs, idx, value); seq keeps tuples orderable
    seq = 0
    op_counts = [len(bundle) for bundle in decoded]
    n_instrs = len(decoded)
    hits = [0] * n_instrs
    pc = 0
    cycle = 0
    redirect_cycle = -1
    redirect_target = 0

    def read(src):
        return src[1] if src[0] == "imm" else rfs[src[1]][src[2]]

    while True:
        while pending and pending[0][0] < cycle:
            _, _, regs, idx, value = _heappop(pending)
            regs[idx] = value
        if cycle == redirect_cycle:
            pc = redirect_target
            redirect_cycle = -1
        if pc < 0 or pc >= n_instrs:
            raise SimError(f"PC out of range: {pc}")
        hits[pc] += 1
        halted = False
        for name, srcs, dest, latency in decoded[pc]:
            effect = None
            if name == "halt":
                halted = True
            elif name == "jump":
                effect = (cycle + jl1, _uniform_target(read(srcs[0]), k))
            elif name == "call":
                ra = pc + jl1
                effect = (cycle + jl1, _uniform_target(read(srcs[0]), k))
            elif name == "ret":
                effect = (cycle + jl1, ra)
            elif name in ("cjump", "cjumpz"):
                taken = _uniform_truth(read(srcs[0]), k)
                if name == "cjumpz":
                    taken = not taken
                if taken:
                    effect = (cycle + jl1, _uniform_target(read(srcs[1]), k))
            elif name in ("ldw", "ldh", "ldq", "ldqu", "ldhu"):
                seq += 1
                _heappush(
                    pending,
                    (cycle + latency, seq, rfs[dest[0]], dest[1],
                     mem.load(name, read(srcs[0]))),
                )
            elif name in ("stw", "sth", "stq"):
                mem.store(name, read(srcs[0]), read(srcs[1]))
            elif name == "setra":
                ra = _uniform_target(read(srcs[0]), k)
            elif name == "getra":
                seq += 1
                _heappush(pending, (cycle + latency, seq, rfs[dest[0]], dest[1], ra))
            elif name == "copy":
                seq += 1
                _heappush(
                    pending,
                    (cycle + latency, seq, rfs[dest[0]], dest[1], read(srcs[0])),
                )
            else:
                seq += 1
                value = (
                    _apply2(name, read(srcs[0]), read(srcs[1]))
                    if len(srcs) == 2
                    else _apply1(name, read(srcs[0]))
                )
                _heappush(pending, (cycle + latency, seq, rfs[dest[0]], dest[1], value))
            if effect is not None:
                if redirect_cycle >= 0:
                    raise SimError("overlapping control transfers")
                redirect_cycle, redirect_target = effect
        if halted:
            while pending:
                _, _, regs, idx, value = _heappop(pending)
                regs[idx] = value
            break
        cycle += 1
        pc += 1
        if cycle > max_cycles:
            raise SimError("cycle budget exceeded (runaway program?)")

    rv = return_value_reg(machine)
    exit_value = rfs[rv.rf][rv.idx]
    base = VLIWResult(0, cycle + 1, cycle + 1)
    base.ops = sum(count * ops for count, ops in zip(hits, op_counts))
    return _fan_out(base, exit_value, k)


def _fan_out(base, exit_value, k) -> list:
    """K per-lane result objects from one lockstep run: the counters are
    shared (same path), only the exit code may differ per lane."""
    results = []
    for lane in range(k):
        result = dataclasses.replace(base)
        result.exit_code = (
            exit_value if isinstance(exit_value, int) else int(exit_value[lane])
        )
        results.append(result)
    return results


# ---------------------------------------------------------------------------
# group driver: dedup, vector lockstep, restart-on-divergence, fallback
# ---------------------------------------------------------------------------


def _run_one(compiled, lane_input, mode, max_cycles):
    """One lane through one of the serial engines."""
    from repro.machine.machine import MachineStyle
    from repro.sim.scalar_sim import ScalarSimulator
    from repro.sim.tta_sim import TTASimulator
    from repro.sim.vliw_sim import VLIWSimulator

    style = compiled.machine.style
    if style is MachineStyle.TTA:
        sim = TTASimulator(compiled.program, max_cycles=max_cycles, mode=mode)
    elif style is MachineStyle.VLIW:
        sim = VLIWSimulator(compiled.program, max_cycles=max_cycles, mode=mode)
    else:
        sim = ScalarSimulator(compiled.program, max_cycles=max_cycles)
    sim.preload(compiled.data_init)
    for address, blob in lane_input:
        sim.memory.preload(address, blob)
    return sim.run()


def _run_one_guarded(compiled, lane_input, max_cycles):
    try:
        return _run_one(compiled, lane_input, "fast", max_cycles)
    except SimError as exc:
        return exc


def _run_group(compiled, lane_inputs, max_cycles, counters) -> list:
    """Distinct-input lanes in lockstep, splitting on divergence."""
    k = len(lane_inputs)
    if k == 1:
        return [_run_one_guarded(compiled, lane_inputs[0], max_cycles)]
    from repro.machine.machine import MachineStyle

    runner = (
        _run_tta_vec
        if compiled.machine.style is MachineStyle.TTA
        else _run_vliw_vec
    )
    counters["memory_promotions"] += 1
    try:
        results = runner(compiled, lane_inputs, max_cycles)
        for result in results:
            _record_lane(result, compiled)
        return results
    except _LaneDiverge as diverged:
        keep = diverged.keep
        cont = [i for i in range(k) if keep[i]]
        drop = [i for i in range(k) if not keep[i]]
        if not drop:  # pragma: no cover - splits always drop >= 1 lane
            drop, cont = cont, []
        counters["restarts"] += 1
        counters["fallback_lanes"] += len(drop)
        out = [None] * k
        for i in drop:
            out[i] = _run_one_guarded(compiled, lane_inputs[i], max_cycles)
        if cont:
            sub = _run_group(
                compiled, [lane_inputs[i] for i in cont], max_cycles, counters
            )
            for i, result in zip(cont, sub):
                out[i] = result
        return out
    except (SimError, ValueError):
        # lane-invariant fault (PC range, cycle budget, overlapping
        # transfers, non-monotonic FU completion): every lane re-runs on
        # the fast engine for the byte-identical reference error
        counters["fallback_lanes"] += k
        return [_run_one_guarded(compiled, lane, max_cycles) for lane in lane_inputs]


def _record_lane(result, compiled) -> None:
    from repro.machine.machine import MachineStyle
    from repro.sim.counters import record_run

    style = "tta" if compiled.machine.style is MachineStyle.TTA else "vliw"
    record_run(result, style)


def _replicate(outcome):
    """A lane's own copy of a shared outcome (errors are immutable enough
    to share; result records are mutable dataclasses, so copy)."""
    return outcome if isinstance(outcome, SimError) else dataclasses.replace(outcome)


def run_batch(
    compiled,
    inputs=None,
    *,
    lanes=None,
    mode: str = "batch",
    max_cycles: int = 500_000_000,
    on_error: str = "raise",
) -> list:
    """Execute N independent lanes of *compiled* and return a result list.

    ``inputs`` is a sequence of per-lane preload lists (``(address,
    bytes)`` pairs applied on top of ``compiled.data_init``); ``lanes``
    gives the lane count instead when every lane runs the pristine
    image (default 1).  ``mode`` selects the tier: ``"batch"`` (the
    vectorized lockstep engine with per-lane fast-engine fallback) or
    any serial engine (``"checked"``/``"fast"``/``"turbo"``/
    ``"native"``) run once per lane -- the shared "decoded program in,
    stats out" interface of every tier.  Scalar cores always run their
    single engine per lane.

    ``on_error="raise"`` re-raises the lowest-failing-lane's
    :class:`SimError`; ``on_error="return"`` places the error object in
    that lane's slot so callers can compare per-lane outcomes.
    """
    from repro.machine.machine import MachineStyle

    if on_error not in ("raise", "return"):
        raise ValueError(f"unknown on_error policy {on_error!r}")
    if mode not in ("batch", "checked", "fast", "turbo", "native"):
        raise ValueError(f"unknown simulation mode {mode!r}")
    if inputs is None:
        n = 1 if lanes is None else lanes
        if n < 0:
            raise ValueError(f"lane count must be >= 0, got {n}")
        lane_inputs = [()] * n
    else:
        lane_inputs = [
            tuple((int(address), bytes(blob)) for address, blob in lane)
            for lane in inputs
        ]
        if lanes is not None and lanes != len(lane_inputs):
            raise ValueError(
                f"lanes={lanes} disagrees with {len(lane_inputs)} input rows"
            )
        n = len(lane_inputs)
    if n == 0:
        return []

    style = compiled.machine.style
    serial_mode = None
    if style not in (MachineStyle.TTA, MachineStyle.VLIW):
        serial_mode = "fast"  # single-engine core; mirrors run_compiled
    elif mode != "batch":
        serial_mode = mode

    if serial_mode is not None:
        outcomes = []
        for lane_input in lane_inputs:
            try:
                outcomes.append(_run_one(compiled, lane_input, serial_mode, max_cycles))
            except SimError as exc:
                outcomes.append(exc)
        return _finish(outcomes, on_error)

    if np is None:
        raise RuntimeError(
            "mode='batch' requires numpy; install it or use one of the "
            "serial engine modes ('checked', 'fast', 'turbo')"
        )

    counters = {"restarts": 0, "fallback_lanes": 0, "memory_promotions": 0}
    outcomes = [None] * n
    with obs.span(
        "sim.batch",
        machine=compiled.machine.name,
        style=style.value,
        lanes=n,
    ):
        # lanes with byte-identical preloads are provably identical runs
        # (per-lane state enters only through the preloads): simulate
        # each distinct preload set once
        order: list[tuple] = []
        groups: dict[tuple, list[int]] = {}
        for i, lane_input in enumerate(lane_inputs):
            if lane_input not in groups:
                groups[lane_input] = []
                order.append(lane_input)
            groups[lane_input].append(i)
        if len(order) == 1:
            key_outcomes = [_run_one_guarded(compiled, order[0], max_cycles)]
        else:
            key_outcomes = _run_group(compiled, order, max_cycles, counters)
        for key, outcome in zip(order, key_outcomes):
            for i in groups[key]:
                outcomes[i] = _replicate(outcome)
    obs.count("sim.batch.lanes", n)
    obs.count("sim.batch.dedup_lanes", n - len(order))
    obs.count("sim.batch.fallback_lanes", counters["fallback_lanes"])
    obs.count("sim.batch.restarts", counters["restarts"])
    obs.count("sim.batch.memory_promotions", counters["memory_promotions"])
    return _finish(outcomes, on_error)


def _finish(outcomes, on_error):
    if on_error == "raise":
        for outcome in outcomes:
            if isinstance(outcome, SimError):
                raise outcome
    return outcomes
