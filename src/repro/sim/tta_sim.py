"""Transport-triggered (TTA) simulator.

Executes move code with the semi-virtual time-latching FU model of the
paper's Fig. 3: transporting an operand to a trigger port starts the
operation; the result is readable from the unit's result register once
the latency has elapsed and until the next operation on the same unit
overwrites it.

Three execution modes are offered (``mode="fast"`` is the default):

* ``"fast"`` -- all structural properties (bus exclusivity including
  long-immediate ``extra_slots`` reservations, RF port limits, full
  connectivity routing, resolved immediates, known opcodes) are verified
  **once per static instruction** at load time by
  :mod:`repro.sim.predecode`, which also pre-decodes each instruction
  into flat sampler/writer/trigger closures consumed by a lean inner
  loop.  Dynamic violations (early result reads, overlapping control
  transfers) still raise.
* ``"turbo"`` -- :mod:`repro.sim.blockcompile` additionally compiles
  basic blocks of the pre-decoded program into specialized Python code
  chained through a per-pc dispatch table, falling back per block to
  the fast engine for anything it cannot prove static.
* ``"native"`` -- :mod:`repro.sim.native` compiles the same basic
  blocks to C (one shared object per program, persistently cached in
  the artifact store) and drives them through the same dispatch;
  degrades to turbo with a one-time warning when no C compiler is
  available.
* ``"checked"`` -- the reference implementation: every check is re-run
  on every executed cycle.  The differential tests assert all modes
  agree bit- and cycle-exactly on every workload.

In both modes the simulator doubles as a schedule verifier:

* reading a result before it is due raises :class:`SimError`;
* two moves on one bus in one instruction raise, as does a
  long-immediate move whose extra bus slots cannot be satisfied;
* register-file port over-subscription raises;
* a move over a bus that does not connect its endpoints raises
  (always at load time in fast mode; per executed cycle in checked
  mode when ``check_connectivity=True``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backend.abi import MEMORY_SIZE, return_value_reg
from repro.backend.program import Move, Program, TTAInstr
from repro.isa.operations import OPS, OpKind
from repro.isa.semantics import MASK32, evaluate
from repro.sim.errors import SimError
from repro.sim.memory import DataMemory
from repro.sim.predecode import check_tta_slots, run_tta_fast


@dataclass
class _FU:
    """One function unit: operand latch plus the result register.

    Semi-virtual time latching: a result becomes visible in the result
    register at its due cycle and stays readable until a later-due result
    lands, so several operations can be in flight (e.g. a 3-cycle mul
    followed two cycles later by a 2-cycle shift).
    """

    name: str
    o1: int = 0
    result: int = 0
    has_result: bool = False
    #: in-flight results as (due_cycle, value), strictly increasing due
    pending: list = field(default_factory=list)

    def commit(self, cycle: int) -> None:
        while self.pending and self.pending[0][0] <= cycle:
            _, value = self.pending.pop(0)
            self.result = value
            self.has_result = True

    def read(self, cycle: int):
        """Result-register value, or None when no result is readable yet
        (either the first result is still in flight or the unit was never
        triggered -- :func:`fu_unavailable_error` tells the two apart)."""
        self.commit(cycle)
        return self.result if self.has_result else None

    def push(self, due: int, value: int) -> None:
        if self.pending and due <= self.pending[-1][0]:
            raise ValueError(
                f"{self.name}: result due {due} not after pending {self.pending[-1][0]}"
            )
        self.pending.append((due, value))


def fu_unavailable_error(fu: _FU, cycle: int) -> SimError:
    """Diagnose a read of an FU result register that holds no result yet,
    distinguishing a schedule that reads too early from one that reads a
    unit that was never triggered."""
    if fu.pending:
        return SimError(
            f"schedule violation: {fu.name} result read at {cycle} before "
            f"the first result is due at {fu.pending[0][0]} "
            f"(pending: {fu.pending})"
        )
    return SimError(
        f"schedule violation: {fu.name} result read at {cycle} but the "
        f"unit was never triggered"
    )


@dataclass
class TTAResult:
    exit_code: int
    cycles: int
    moves: int = 0
    triggers: int = 0
    rf_reads: int = 0
    rf_writes: int = 0
    bypass_reads: int = 0


@dataclass
class TTASimulator:
    program: Program
    memory_size: int = MEMORY_SIZE
    max_cycles: int = 500_000_000
    #: checked mode only: verify bus connectivity of every executed move
    #: (fast mode always verifies connectivity, once, at load time)
    check_connectivity: bool = False
    #: "fast" = load-time verification + pre-decoded engine;
    #: "turbo" = fast plus basic-block compilation with block chaining;
    #: "native" = turbo's blocks compiled to C via cffi/ctypes;
    #: "checked" = per-cycle reference implementation
    mode: str = "fast"
    memory: DataMemory = field(init=False)

    def __post_init__(self) -> None:
        if self.mode not in ("fast", "checked", "turbo", "native"):
            raise ValueError(f"unknown simulation mode {self.mode!r}")
        machine = self.program.machine
        self.memory = DataMemory(self.memory_size)
        self.rfs: dict[str, list[int]] = {
            rf.name: [0] * rf.size for rf in machine.register_files
        }
        self.fus: dict[str, _FU] = {fu.name: _FU(fu.name) for fu in machine.all_units}
        self.ra = 0
        self.buses = {bus.index: bus for bus in machine.buses}
        #: control transfer latched by the current instruction's trigger,
        #: (redirect_cycle, target); instance state -- two simulators in
        #: one process must never share a pending branch
        self._pending_redirect: tuple[int, int] | None = None

    def preload(self, data_init: list[tuple[int, bytes]]) -> None:
        for address, blob in data_init:
            self.memory.preload(address, blob)

    # ------------------------------------------------------------------

    def _sample(self, move: Move, cycle: int, stats: TTAResult) -> int:
        kind = move.src[0]
        if kind == "imm":
            value = move.src[1]
            if not isinstance(value, int):
                raise SimError(f"unlinked immediate {value!r}")
            return value & MASK32
        if kind == "rf":
            _, rf, idx = move.src
            stats.rf_reads += 1
            return self.rfs[rf][idx]
        if kind == "fu":
            fu = self.fus[move.src[1]]
            value = fu.read(cycle)
            if value is None:
                raise fu_unavailable_error(fu, cycle)
            stats.bypass_reads += 1
            return value
        raise SimError(f"bad move source {move.src!r}")

    def _endpoint_of_src(self, move: Move) -> str:
        kind = move.src[0]
        if kind == "imm":
            return "IMM"
        if kind == "rf":
            return f"{move.src[1]}.read"
        return f"{move.src[1]}.r"

    def _endpoint_of_dst(self, move: Move) -> str:
        if move.dst[0] == "rf":
            return f"{move.dst[1]}.write"
        _, fu, port, _ = move.dst
        return f"{fu}.{port}"

    def run(self) -> TTAResult:
        from repro import obs
        from repro.sim.counters import record_run

        with obs.span(
            "sim.run",
            machine=self.program.machine.name,
            style="tta",
            mode=self.mode,
        ):
            if self.mode == "fast":
                result = run_tta_fast(self)
            elif self.mode == "turbo":
                from repro.sim.blockcompile import run_tta_turbo

                result = run_tta_turbo(self)
            elif self.mode == "native":
                from repro.sim.native import run_tta_native

                result = run_tta_native(self)
            else:
                result = self._run_checked()
        record_run(result, "tta")
        return result

    def _run_checked(self) -> TTAResult:
        """Reference implementation: re-verify every structural property on
        every executed cycle (the pre-decoded fast engine must agree with
        this path bit- and cycle-exactly)."""
        machine = self.program.machine
        jl = machine.jump_latency
        instrs = self.program.instrs
        rv = return_value_reg(machine)
        stats = TTAResult(0, 0)
        pc = 0
        cycle = 0
        redirect: tuple[int, int] | None = None
        bus_count = len(machine.buses)
        read_limits = {rf.name: rf.read_ports for rf in machine.register_files}
        write_limits = {rf.name: rf.write_ports for rf in machine.register_files}

        while True:
            if redirect is not None and cycle == redirect[0]:
                pc = redirect[1]
                redirect = None
            if pc < 0 or pc >= len(instrs):
                raise SimError(f"PC out of range: {pc}")
            instr: TTAInstr = instrs[pc]

            # --- structural checks -------------------------------------
            # bus exclusivity, including long-immediate extra_slots
            check_tta_slots(instr, pc, bus_count)
            reads: dict[str, int] = {}
            writes: dict[str, int] = {}
            for move in instr.moves:
                if move.src[0] == "rf":
                    reads[move.src[1]] = reads.get(move.src[1], 0) + 1
                if move.dst[0] == "rf":
                    writes[move.dst[1]] = writes.get(move.dst[1], 0) + 1
                if self.check_connectivity:
                    bus = self.buses[move.bus]
                    if not bus.connects(self._endpoint_of_src(move), self._endpoint_of_dst(move)):
                        raise SimError(f"move {move!r} not routable on bus {move.bus}")
            for rf, count in reads.items():
                if count > read_limits[rf]:
                    raise SimError(f"{rf} read ports oversubscribed at pc={pc}")
            for rf, count in writes.items():
                if count > write_limits[rf]:
                    raise SimError(f"{rf} write ports oversubscribed at pc={pc}")

            # --- phase 1: sample all sources ----------------------------
            sampled = [(move, self._sample(move, cycle, stats)) for move in instr.moves]
            stats.moves += len(sampled)

            # --- phase 2: operand-port writes ---------------------------
            triggers: list[tuple[str, str, int]] = []
            rf_writes: list[tuple[str, int, int]] = []
            for move, value in sampled:
                if move.dst[0] == "rf":
                    rf_writes.append((move.dst[1], move.dst[2], value))
                else:
                    _, fu_name, port, opcode = move.dst
                    if port == "o1":
                        self.fus[fu_name].o1 = value
                    else:
                        triggers.append((fu_name, opcode, value))

            # --- phase 3: triggers ---------------------------------------
            halted = False
            for fu_name, opcode, value in triggers:
                stats.triggers += 1
                fu = self.fus[fu_name]
                if opcode is None:
                    raise SimError(f"trigger move without opcode on {fu_name}")
                halted |= self._execute(
                    fu, opcode, value, cycle, pc, jl, stats
                )
                if self._pending_redirect is not None:
                    if redirect is not None:
                        raise SimError("overlapping control transfers")
                    redirect = self._pending_redirect
                    self._pending_redirect = None

            # --- phase 4: RF write commit ---------------------------------
            for rf, idx, value in rf_writes:
                self.rfs[rf][idx] = value
                stats.rf_writes += 1

            if halted:
                stats.exit_code = self.rfs[rv.rf][rv.idx]
                break
            cycle += 1
            pc += 1
            if cycle > self.max_cycles:
                raise SimError("cycle budget exceeded (runaway program?)")

        stats.cycles = cycle + 1
        return stats

    def _execute(
        self,
        fu: _FU,
        opcode: str,
        trigger_value: int,
        cycle: int,
        pc: int,
        jl: int,
        stats: TTAResult,
    ) -> bool:
        """Execute *opcode* on *fu*; returns True on halt."""
        if opcode == "halt":
            return True
        if opcode == "getra":
            fu.push(cycle + 1, self.ra)
            return False
        if opcode == "setra":
            self.ra = trigger_value
            return False
        if opcode == "jump":
            self._pending_redirect = (cycle + jl + 1, trigger_value)
            return False
        if opcode == "call":
            self.ra = pc + jl + 1
            self._pending_redirect = (cycle + jl + 1, trigger_value)
            return False
        if opcode == "ret":
            self._pending_redirect = (cycle + jl + 1, self.ra)
            return False
        if opcode in ("cjump", "cjumpz"):
            taken = (trigger_value != 0) if opcode == "cjump" else (trigger_value == 0)
            if taken:
                self._pending_redirect = (cycle + jl + 1, fu.o1)
            return False
        spec = OPS[opcode]
        if spec.kind is OpKind.LSU:
            if spec.writes_mem:
                self.memory.store(opcode, trigger_value, fu.o1)
                return False
            fu.push(cycle + spec.latency, self.memory.load(opcode, trigger_value))
            return False
        operands = (trigger_value, fu.o1) if spec.operands == 2 else (trigger_value,)
        fu.push(cycle + spec.latency, evaluate(opcode, operands))
        return False
