"""Native (generated-C) simulation engine, ``mode="native"``.

This is the fourth rung of the single-run engine ladder (checked →
fast → turbo → native): :mod:`repro.sim.cgen` emits the turbo engine's
basic blocks as one C translation unit, this module compiles it to a
shared object and drives it through the same pc-keyed dispatch as the
turbo driver.  Control only returns to Python for block boundaries the
C dispatcher cannot chain (carried redirects, uncompiled entries,
budget-edge blocks) — those are stepped by the turbo driver's exact
single-cycle fallback — and for dynamic errors, whose reference
``SimError``/``ValueError`` messages are reconstructed byte-identically
from the synced-back machine state.

Compilation and caching:

* the compiler is discovered once per run via ``$REPRO_CC`` or the
  first of ``cc``/``gcc``/``clang`` on PATH; ``$REPRO_NO_NATIVE_CC``
  (any non-empty value) disables discovery — ``mode="native"`` then
  degrades to the turbo engine with a one-time ``RuntimeWarning``;
* built shared objects are cached at three levels: per-``Program``
  (``predecode_cache``), per-process (dlopened library by source key)
  and persistently in the artifact store's binary-blob kind, keyed by
  SHA-256 of (``SIM_ENGINE_VERSION``, compiler id, generated C source)
  so warm sweeps and service workers never invoke the C compiler;
* the FFI binding is cffi when importable, ctypes otherwise
  (``$REPRO_NATIVE_FFI=cffi|ctypes`` forces one for the differential
  tests).

Byte-identity with ``mode="checked"`` across exit code, cycles, every
statistics counter and error text is asserted by ``tests/test_native.py``
for all kernels × both styles.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import shutil
import subprocess
import tempfile
import warnings
from heapq import heappop as _heappop
from heapq import heappush as _heappush

from repro import obs
from repro.backend.abi import return_value_reg
from repro.sim.blockcompile import SIM_ENGINE_VERSION, _expand_hits
from repro.sim.cgen import (
    CTL_CYCLE,
    CTL_ERR_A,
    CTL_ERR_B,
    CTL_MAX_CYCLES,
    CTL_MEM_SIZE,
    CTL_PC,
    CTL_RA,
    CTL_RC,
    CTL_RT,
    CTL_WB_LEN,
    CTL_WORDS,
    ENTRY_SYMBOL,
    ST_BUDGET,
    ST_FU_PUSH,
    ST_FU_READ,
    ST_HALT,
    ST_MEM_RANGE,
    ST_OVERLAP,
    build_native_program,
)
from repro.sim.errors import SimError
from repro.sim.predecode import (
    _bind_tta_sampler,
    _bind_tta_thunk,
    _bind_vliw_op,
    static_decode_tta,
    static_decode_vliw,
)

#: set to any non-empty value to disable C compiler discovery entirely
NO_CC_ENV = "REPRO_NO_NATIVE_CC"
#: explicit compiler executable (name or path) overriding discovery
CC_ENV = "REPRO_CC"
#: force the FFI binding: "cffi" or "ctypes" (default: cffi, then ctypes)
FFI_ENV = "REPRO_NATIVE_FFI"

#: cache keys on ``Program.predecode_cache`` (None = engine unavailable)
_NATIVE_KEYS = {"tta": "tta-native", "vliw": "vliw-native"}

_ABSENT = object()

#: process-wide dlopened bindings keyed by shared-object key
#: (None records a permanent build failure so it is not retried)
_LIB_CACHE: dict[str, object] = {}

#: one-time degradation warning latch (tests reset it)
_WARNED = False


# ---------------------------------------------------------------------------
# compiler discovery and shared-object build
# ---------------------------------------------------------------------------


def find_compiler() -> str | None:
    """Path of the C compiler to use, or ``None`` when disabled/absent."""
    if os.environ.get(NO_CC_ENV):
        return None
    override = os.environ.get(CC_ENV)
    if override:
        return shutil.which(override)
    for candidate in ("cc", "gcc", "clang"):
        path = shutil.which(candidate)
        if path:
            return path
    return None


def _compiler_id(cc: str) -> str:
    """Short stable fingerprint of the compiler binary, so a toolchain
    upgrade on a shared cache volume invalidates stored objects."""
    cached = _CC_IDS.get(cc)
    if cached is not None:
        return cached
    try:
        out = subprocess.run(
            [cc, "--version"], capture_output=True, timeout=30
        ).stdout
    except (OSError, subprocess.SubprocessError):
        out = b""
    ident = hashlib.sha256(cc.encode() + b"\0" + out).hexdigest()[:16]
    _CC_IDS[cc] = ident
    return ident


_CC_IDS: dict[str, str] = {}


def _so_key(source: str, cc_id: str) -> str:
    """Artifact-store key of the shared object for *source*: any change
    to the engine version, the compiler, or the generated C re-keys it."""
    blob = f"native-v{SIM_ENGINE_VERSION}\0{cc_id}\0".encode() + source.encode()
    return hashlib.sha256(blob).hexdigest()


def _compile_so(cc: str, source: str) -> bytes | None:
    """Compile *source* to shared-object bytes; ``None`` on any failure."""
    with tempfile.TemporaryDirectory(prefix="repro-native-cc-") as tmp:
        c_path = os.path.join(tmp, "program.c")
        so_path = os.path.join(tmp, "program.so")
        with open(c_path, "w") as handle:
            handle.write(source)
        # -O1, not -O2: the dispatch switch is one very large function and
        # -O2's scalar optimisations go superlinear on it (50s+ for the big
        # kernels) for only ~1.4x extra run speed; -O1 compiles in seconds
        # and still clears the bench floor with an order of magnitude to
        # spare.
        cmd = [
            cc,
            "-O1",
            "-fPIC",
            "-shared",
            "-fno-strict-aliasing",
            "-w",
            "-o",
            so_path,
            c_path,
        ]
        try:
            proc = subprocess.run(cmd, capture_output=True, timeout=120)
        except (OSError, subprocess.SubprocessError):
            return None
        if proc.returncode != 0:
            return None
        try:
            with open(so_path, "rb") as handle:
                return handle.read()
        except OSError:
            return None


_SO_DIR: str | None = None


def _so_dir() -> str:
    """Session-lifetime directory holding the dlopen-able ``.so`` files
    (the store keeps only checksummed payload bytes, and dlopen needs a
    real path)."""
    global _SO_DIR
    if _SO_DIR is None:
        _SO_DIR = tempfile.mkdtemp(prefix="repro-native-so-")
        atexit.register(shutil.rmtree, _SO_DIR, ignore_errors=True)
    return _SO_DIR


def _write_so(path: str, blob: bytes) -> None:
    fd, tmp_name = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
    with os.fdopen(fd, "wb") as handle:
        handle.write(blob)
    os.replace(tmp_name, path)


# ---------------------------------------------------------------------------
# FFI bindings (cffi preferred, ctypes fallback) — one tiny shared surface
# ---------------------------------------------------------------------------

_SIGNATURE = (
    f"int {ENTRY_SYMBOL}(uint32_t *, uint32_t *, int64_t *, uint32_t *, "
    "int32_t *, uint8_t *, int64_t *, int64_t *);"
)


class _CffiBinding:
    kind = "cffi"

    def __init__(self, path: str):
        from cffi import FFI

        self._ffi = ffi = FFI()
        ffi.cdef(_SIGNATURE)
        self._lib = ffi.dlopen(path)
        self._fn = getattr(self._lib, ENTRY_SYMBOL)

    def alloc_u32(self, n: int):
        return self._ffi.new("uint32_t[]", max(1, n))

    def alloc_i32(self, n: int):
        return self._ffi.new("int32_t[]", max(1, n))

    def alloc_i64(self, n: int):
        return self._ffi.new("int64_t[]", max(1, n))

    def mem_view(self, data: bytearray):
        return self._ffi.from_buffer("uint8_t[]", data, require_writable=True)

    def call(self, rf, fu32, pd, pv, fum, mem, ctl, execs) -> int:
        return self._fn(rf, fu32, pd, pv, fum, mem, ctl, execs)


class _CtypesBinding:
    kind = "ctypes"

    def __init__(self, path: str):
        import ctypes

        self._ct = ctypes
        lib = ctypes.CDLL(path)
        fn = getattr(lib, ENTRY_SYMBOL)
        fn.restype = ctypes.c_int
        fn.argtypes = [
            ctypes.POINTER(ctypes.c_uint32),
            ctypes.POINTER(ctypes.c_uint32),
            ctypes.POINTER(ctypes.c_int64),
            ctypes.POINTER(ctypes.c_uint32),
            ctypes.POINTER(ctypes.c_int32),
            ctypes.POINTER(ctypes.c_uint8),
            ctypes.POINTER(ctypes.c_int64),
            ctypes.POINTER(ctypes.c_int64),
        ]
        self._lib = lib
        self._fn = fn

    def alloc_u32(self, n: int):
        return (self._ct.c_uint32 * max(1, n))()

    def alloc_i32(self, n: int):
        return (self._ct.c_int32 * max(1, n))()

    def alloc_i64(self, n: int):
        return (self._ct.c_int64 * max(1, n))()

    def mem_view(self, data: bytearray):
        return (self._ct.c_uint8 * len(data)).from_buffer(data)

    def call(self, rf, fu32, pd, pv, fum, mem, ctl, execs) -> int:
        return self._fn(rf, fu32, pd, pv, fum, mem, ctl, execs)


def _make_binding(path: str):
    choice = os.environ.get(FFI_ENV, "").strip().lower()
    if choice not in ("", "cffi", "ctypes"):
        raise ValueError(f"unknown native FFI binding {choice!r}")
    if choice in ("", "cffi"):
        try:
            return _CffiBinding(path)
        except ImportError:
            if choice == "cffi":
                raise
    return _CtypesBinding(path)


# ---------------------------------------------------------------------------
# engine acquisition
# ---------------------------------------------------------------------------


class NativeEngine:
    """One program's compiled shared object plus its dispatch metadata."""

    __slots__ = ("nat", "binding", "entry_len")

    def __init__(self, nat, binding):
        self.nat = nat
        self.binding = binding
        #: entry pc -> block length, mirroring the C dispatch gate
        self.entry_len = {start: length for start, length in nat.entries}


def _load_or_compile(cc: str, key: str, source: str):
    """Binding for *source*, via the store's blob cache when possible."""
    from repro.pipeline.store import default_store

    store = default_store()
    so_path = os.path.join(_so_dir(), f"{key}.so")
    if store is not None:
        blob = store.load_blob(key)
        if blob is not None:
            _write_so(so_path, blob)
            try:
                binding = _make_binding(so_path)
            except OSError:
                # cached object not loadable here (other arch/toolchain,
                # truncated write survivor): rebuild and re-store below
                pass
            else:
                obs.count("sim.native.so_store_hits")
                return binding
    blob = _compile_so(cc, source)
    if blob is None:
        return None
    obs.count("sim.native.so_compiled")
    _write_so(so_path, blob)
    try:
        binding = _make_binding(so_path)
    except OSError:
        return None
    if store is not None:
        store.store_blob(key, blob)
    return binding


def _build_engine(program):
    cc = find_compiler()
    if cc is None:
        obs.count("sim.native.no_compiler")
        return None
    nat = build_native_program(program)
    if nat is None:
        return None
    key = _so_key(nat.source, _compiler_id(cc))
    binding = _LIB_CACHE.get(key, _ABSENT)
    if binding is _ABSENT:
        binding = _load_or_compile(cc, key, nat.source)
        _LIB_CACHE[key] = binding
    else:
        if binding is not None:
            obs.count("sim.native.so_memory_hits")
    if binding is None:
        return None
    return NativeEngine(nat, binding)


def _get_engine(program):
    """The program's native engine, or ``None`` when unavailable (cached
    either way on ``predecode_cache`` so the decision is made once)."""
    key = _NATIVE_KEYS.get(program.style)
    if key is None:
        return None
    cache = program.predecode_cache
    engine = cache.get(key, _ABSENT)
    if engine is _ABSENT:
        engine = _build_engine(program)
        cache[key] = engine
    return engine


def _warn_no_native(reason: str) -> None:
    global _WARNED
    if _WARNED:
        return
    _WARNED = True
    warnings.warn(
        f"mode='native' unavailable ({reason}); falling back to the "
        "turbo engine",
        RuntimeWarning,
        stacklevel=3,
    )


def _unavailable_reason() -> str:
    if find_compiler() is None:
        return "no C compiler found"
    return "program could not be compiled to native code"


# ---------------------------------------------------------------------------
# shared error reconstruction
# ---------------------------------------------------------------------------


def _raise_native_error(status: int, err_a: int, err_b: int, fus):
    """Raise the reference engine's exact error for a negative C status.

    The machine state was synced back *before* this is called, so the
    FU ``pending`` lists seen here are byte-identical to the reference
    engine's at the failing cycle (see the cgen module docstring for why
    the lazy ring drain cannot perturb them).
    """
    from repro.sim.tta_sim import fu_unavailable_error

    if status == ST_FU_READ:
        raise fu_unavailable_error(fus[err_a], err_b)
    if status == ST_FU_PUSH:
        fu = fus[err_a]
        raise ValueError(
            f"{fu.name}: result due {err_b} not after pending {fu.pending[-1][0]}"
        )
    if status == ST_OVERLAP:
        raise SimError("overlapping control transfers")
    if status == ST_MEM_RANGE:
        raise SimError(f"memory access out of range: {err_a:#x}+{err_b}")
    raise SimError(f"native engine internal error (status {status})")


# ---------------------------------------------------------------------------
# TTA driver
# ---------------------------------------------------------------------------


def run_tta_native(sim):
    """Execute *sim*'s program with the generated-C engine.

    Bit- and cycle-exact with ``TTASimulator`` in checked mode, including
    every statistics counter (enforced by ``tests/test_native.py``).
    """
    from repro.sim.tta_sim import TTAResult

    engine = _get_engine(sim.program)
    if engine is None:
        _warn_no_native(_unavailable_reason())
        from repro.sim.blockcompile import run_tta_turbo

        return run_tta_turbo(sim)

    program = sim.program
    decoded = static_decode_tta(program)
    machine = program.machine
    jl = machine.jump_latency
    max_cycles = sim.max_cycles
    n_instrs = len(decoded)
    hits = [0] * n_instrs

    nat = engine.nat
    ffi = engine.binding
    n_fus = len(nat.fu_names)
    pcap = nat.pcap
    pmsk = pcap - 1
    rf_arr = ffi.alloc_u32(nat.rf_total)
    fu32 = ffi.alloc_u32(2 * n_fus)
    pd = ffi.alloc_i64(n_fus * pcap)
    pv = ffi.alloc_u32(n_fus * pcap)
    fum = ffi.alloc_i32(3 * n_fus)
    ctl = ffi.alloc_i64(CTL_WORDS)
    execs = ffi.alloc_i64(nat.n_blocks)
    mem = ffi.mem_view(sim.memory.data)
    ctl[CTL_MAX_CYCLES] = max_cycles
    ctl[CTL_MEM_SIZE] = len(sim.memory.data)

    fus = [sim.fus[name] for name in nat.fu_names]
    rf_lists = [(sim.rfs[name], base, size) for name, base, size in nat.rf_layout]
    entry_len = engine.entry_len

    def push_state(cycle, pc, rc, rt):
        for regs, base, size in rf_lists:
            rf_arr[base : base + size] = regs
        for i, fu in enumerate(fus):
            # committing due results here is observationally neutral (any
            # read would commit first) and bounds the pending ring
            fu.commit(cycle)
            fu32[2 * i] = fu.o1
            fu32[2 * i + 1] = fu.result
            fum[3 * i] = len(fu.pending)
            fum[3 * i + 1] = 0
            fum[3 * i + 2] = 1 if fu.has_result else 0
            base = i * pcap
            for j, (due, value) in enumerate(fu.pending):
                pd[base + j] = due
                pv[base + j] = value
        ctl[CTL_CYCLE] = cycle
        ctl[CTL_PC] = pc
        ctl[CTL_RC] = rc
        ctl[CTL_RT] = rt
        ctl[CTL_RA] = sim.ra

    def pull_state():
        for regs, base, size in rf_lists:
            regs[:] = rf_arr[base : base + size]
        for i, fu in enumerate(fus):
            fu.o1 = fu32[2 * i]
            fu.result = fu32[2 * i + 1]
            fu.has_result = bool(fum[3 * i + 2])
            length = fum[3 * i]
            head = fum[3 * i + 1]
            base = i * pcap
            fu.pending = [
                (
                    pd[base + ((head + j) & pmsk)],
                    pv[base + ((head + j) & pmsk)],
                )
                for j in range(length)
            ]
        sim.ra = ctl[CTL_RA]
        return ctl[CTL_CYCLE], ctl[CTL_PC], ctl[CTL_RC], ctl[CTL_RT]

    fallback: dict[int, tuple] = {}

    def bind_instr(pc):
        rf_moves, o1_moves, trig_moves, _counts = decoded[pc]
        bound = (
            tuple(
                (_bind_tta_sampler(src, sim), sim.rfs[rf], idx)
                for src, rf, idx in rf_moves
            ),
            tuple((_bind_tta_sampler(src, sim), sim.fus[fu]) for src, fu in o1_moves),
            tuple(
                (_bind_tta_sampler(src, sim), _bind_tta_thunk(fu, opcode, sim, jl))
                for src, fu, opcode in trig_moves
            ),
        )
        fallback[pc] = bound
        return bound

    pc = 0
    cycle = 0
    rc = -1  # pending redirect fire cycle (-1 = none)
    rt = 0
    while True:
        if rc < 0 and 0 <= pc < n_instrs:
            blk_len = entry_len.get(pc)
            if blk_len is not None and cycle + blk_len <= max_cycles + 1:
                push_state(cycle, pc, rc, rt)
                obs.count("sim.native.calls")
                status = ffi.call(rf_arr, fu32, pd, pv, fum, mem, ctl, execs)
                cycle, pc, rc, rt = pull_state()
                if status == ST_HALT:
                    break
                if status == ST_BUDGET:
                    raise SimError("cycle budget exceeded (runaway program?)")
                if status < 0:
                    _raise_native_error(status, ctl[CTL_ERR_A], ctl[CTL_ERR_B], fus)
                # status 0: the C gate rejected the next entry (carried
                # redirect, uncovered pc, budget edge), so on re-entering
                # the loop the mirrored gate above falls through to the
                # precise single-cycle step below; budget was already
                # checked in C after every executed block
                continue
        # precise single-cycle fallback (the turbo driver's, verbatim)
        if cycle == rc:
            pc = rt
            rc = -1
        if pc < 0 or pc >= n_instrs:
            raise SimError(f"PC out of range: {pc}")
        bound = fallback.get(pc)
        if bound is None:
            bound = bind_instr(pc)
        rf_moves, o1_moves, trig_moves = bound
        hits[pc] += 1
        if rf_moves:
            pending = [(regs, idx, sample(cycle)) for sample, regs, idx in rf_moves]
        else:
            pending = ()
        for sample, fu in o1_moves:
            fu.o1 = sample(cycle)
        halted = False
        for sample, thunk in trig_moves:
            effect = thunk(sample(cycle), cycle, pc)
            if effect is not None:
                if effect is True:
                    halted = True
                elif rc >= 0:
                    raise SimError("overlapping control transfers")
                else:
                    rc, rt = effect
        for regs, idx, value in pending:
            regs[idx] = value
        if halted:
            break
        cycle += 1
        pc += 1
        if cycle > max_cycles:
            raise SimError("cycle budget exceeded (runaway program?)")

    rv = return_value_reg(machine)
    stats = TTAResult(sim.rfs[rv.rf][rv.idx], cycle + 1)
    block_counters = [
        (start, length, [execs[i]])
        for i, (start, length) in enumerate(nat.entries)
    ]
    _expand_hits(hits, block_counters)
    for count, (_, _, _, counts) in zip(hits, decoded):
        if count:
            stats.moves += count * counts[0]
            stats.triggers += count * counts[1]
            stats.rf_reads += count * counts[2]
            stats.bypass_reads += count * counts[3]
            stats.rf_writes += count * counts[4]
    sim._last_hits = hits
    sim._last_blocks = [(s, n, ctr[0]) for s, n, ctr in block_counters]
    sim._last_engine = "native"
    return stats


# ---------------------------------------------------------------------------
# VLIW driver
# ---------------------------------------------------------------------------


def run_vliw_native(sim):
    """Execute *sim*'s program with the generated-C engine.

    Bit- and cycle-exact with ``VLIWSimulator`` in checked mode,
    including the exposed delayed-write-back semantics.
    """
    from repro.sim.vliw_sim import VLIWResult

    engine = _get_engine(sim.program)
    if engine is None:
        _warn_no_native(_unavailable_reason())
        from repro.sim.blockcompile import run_vliw_turbo

        return run_vliw_turbo(sim)

    program = sim.program
    decoded = static_decode_vliw(program)
    machine = program.machine
    jl1 = machine.jump_latency + 1
    max_cycles = sim.max_cycles
    n_instrs = len(decoded)
    hits = [0] * n_instrs
    op_counts = [len(bundle) for bundle in decoded]

    rfs = {rf.name: [0] * rf.size for rf in machine.register_files}
    sim._fast_rfs = rfs
    heap = sim._pending_slot_writes

    nat = engine.nat
    ffi = engine.binding
    wcap = nat.wcap
    rf_arr = ffi.alloc_u32(nat.rf_total)
    fu32 = ffi.alloc_u32(2)  # unused by VLIW code, the ABI is shared
    pd = ffi.alloc_i64(wcap)
    pv = ffi.alloc_u32(wcap)
    fum = ffi.alloc_i32(wcap)
    ctl = ffi.alloc_i64(CTL_WORDS)
    execs = ffi.alloc_i64(nat.n_blocks)
    mem = ffi.mem_view(sim.memory.data)
    ctl[CTL_MAX_CYCLES] = max_cycles
    ctl[CTL_MEM_SIZE] = len(sim.memory.data)

    rf_lists = [(rfs[name], base, size) for name, base, size in nat.rf_layout]
    base_of = {id(rfs[name]): base for name, base, _size in nat.rf_layout}
    slot_of = []
    for name, _base, size in nat.rf_layout:
        regs = rfs[name]
        slot_of.extend((regs, idx) for idx in range(size))
    entry_len = engine.entry_len

    def push_state(cycle, pc, rc, rt):
        for regs, base, size in rf_lists:
            rf_arr[base : base + size] = regs
        # sorted() on the heap list is exactly its (due, seq) pop order
        entries = sorted(heap)
        if len(entries) > wcap:
            raise SimError("native engine internal error (write-back overflow)")
        for j, (due, _seq, regs, idx, value) in enumerate(entries):
            pd[j] = due
            pv[j] = value
            fum[j] = base_of[id(regs)] + idx
        ctl[CTL_WB_LEN] = len(entries)
        heap.clear()
        ctl[CTL_CYCLE] = cycle
        ctl[CTL_PC] = pc
        ctl[CTL_RC] = rc
        ctl[CTL_RT] = rt
        ctl[CTL_RA] = sim.ra

    def pull_state():
        for regs, base, size in rf_lists:
            regs[:] = rf_arr[base : base + size]
        # the queue is already in pop order, so fresh increasing sequence
        # numbers reproduce the reference heap exactly
        for j in range(ctl[CTL_WB_LEN]):
            regs, idx = slot_of[fum[j]]
            sim._seq += 1
            _heappush(heap, (pd[j], sim._seq, regs, idx, pv[j]))
        sim.ra = ctl[CTL_RA]
        return ctl[CTL_CYCLE], ctl[CTL_PC], ctl[CTL_RC], ctl[CTL_RT]

    fallback: dict[int, tuple] = {}

    def bind_bundle(pc):
        bound = tuple(_bind_vliw_op(op, sim, rfs, jl1) for op in decoded[pc])
        fallback[pc] = bound
        return bound

    pc = 0
    cycle = 0
    rc = -1
    rt = 0
    while True:
        if rc < 0 and 0 <= pc < n_instrs:
            blk_len = entry_len.get(pc)
            if blk_len is not None and cycle + blk_len <= max_cycles + 1:
                push_state(cycle, pc, rc, rt)
                obs.count("sim.native.calls")
                status = ffi.call(rf_arr, fu32, pd, pv, fum, mem, ctl, execs)
                cycle, pc, rc, rt = pull_state()
                if status == ST_HALT:
                    break
                if status == ST_BUDGET:
                    raise SimError("cycle budget exceeded (runaway program?)")
                if status < 0:
                    _raise_native_error(status, ctl[CTL_ERR_A], ctl[CTL_ERR_B], ())
                continue
        # precise single-cycle fallback (the turbo driver's, verbatim)
        while heap and heap[0][0] < cycle:
            _, _, regs, idx, value = _heappop(heap)
            regs[idx] = value
        if cycle == rc:
            pc = rt
            rc = -1
        if pc < 0 or pc >= n_instrs:
            raise SimError(f"PC out of range: {pc}")
        bound = fallback.get(pc)
        if bound is None:
            bound = bind_bundle(pc)
        hits[pc] += 1
        halted = False
        for op_fn in bound:
            effect = op_fn(cycle, pc)
            if effect is not None:
                if effect is True:
                    halted = True
                elif rc >= 0:
                    raise SimError("overlapping control transfers")
                else:
                    rc, rt = effect
        if halted:
            while heap:
                _, _, regs, idx, value = _heappop(heap)
                regs[idx] = value
            break
        cycle += 1
        pc += 1
        if cycle > max_cycles:
            raise SimError("cycle budget exceeded (runaway program?)")

    rv = return_value_reg(machine)
    result = VLIWResult(rfs[rv.rf][rv.idx], cycle + 1, cycle + 1)
    block_counters = [
        (start, length, [execs[i]])
        for i, (start, length) in enumerate(nat.entries)
    ]
    _expand_hits(hits, block_counters)
    result.ops = sum(count * ops for count, ops in zip(hits, op_counts))
    sim._sync_regs_from_fast(rfs)
    sim._last_hits = hits
    sim._last_blocks = [(s, n, ctr[0]) for s, n, ctr in block_counters]
    sim._last_engine = "native"
    return result
