"""Load-time program verification and pre-decoded fast simulation.

The reference simulators (:mod:`repro.sim.tta_sim`,
:mod:`repro.sim.vliw_sim`) re-validate bus exclusivity, register-file
port limits and connectivity on *every executed cycle* and dispatch each
move/operation by inspecting tagged tuples and strings.  All of those
properties are static: they depend only on the instruction word, never
on machine state.  Following the split TCE/OpenASIP makes between the
verifying ``ttasim`` and its compiled simulation engine, this module

1. runs **all structural checks once per static instruction** at load
   time (:func:`verify_tta_program` / :func:`verify_vliw_program`):
   bus double-use *including long-immediate ``extra_slots``
   reservations*, RF read/write port limits, full connectivity routing,
   resolved immediates, known opcodes and in-range register indices; and

2. **pre-decodes** every instruction into flat tuples of source
   samplers, port writers and trigger thunks that a lean inner loop
   consumes with no per-cycle string comparison, no dictionary lookups
   on hot state and no re-verification
   (:func:`run_tta_fast` / :func:`run_vliw_fast`).

Dynamic properties remain checked in the fast engines because they are
data-dependent: reading an FU result before it is due, non-monotonic
result completion, overlapping control transfers, PC range and the
cycle budget all still raise :class:`~repro.sim.errors.SimError`.

The static stage is cached on ``Program.predecode_cache`` so repeated
simulations of one linked program (sweeps, differential tests) verify
and decode only once.  The per-simulator binding stage is redone for
each simulator instance because it closes over that instance's mutable
state (register files, function units, data memory).
"""

from __future__ import annotations

from heapq import heappop as _heappop

from repro import obs
from repro.backend.abi import return_value_reg
from repro.backend.mop import Imm, PhysReg
from repro.backend.program import Program
from repro.isa.operations import OPS, OpKind
from repro.isa.semantics import MASK32, sext8, sext16, to_signed
from repro.sim.errors import SimError

# ---------------------------------------------------------------------------
# pre-bound ALU semantics
# ---------------------------------------------------------------------------
#
# ``isa.semantics.evaluate`` re-resolves the opcode through an if-chain on
# every call.  The fast engines bind one small function per opcode at decode
# time instead.  ``tests/test_predecode.py`` asserts bit-exact agreement
# with ``evaluate`` for every operation, so the two cannot drift silently.
# All simulator-resident values are already wrapped to [0, 2**32); these
# functions preserve that invariant.


def _gt(a: int, b: int) -> int:
    return 1 if to_signed(a) > to_signed(b) else 0


def _shr(a: int, b: int) -> int:
    return (to_signed(a) >> (b & 31)) & MASK32


ALU_FUNCS: dict[str, object] = {
    "add": lambda a, b: (a + b) & MASK32,
    "sub": lambda a, b: (a - b) & MASK32,
    "mul": lambda a, b: (a * b) & MASK32,
    "and": lambda a, b: a & b,
    "ior": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "eq": lambda a, b: 1 if a == b else 0,
    "gt": _gt,
    "gtu": lambda a, b: 1 if a > b else 0,
    "shl": lambda a, b: (a << (b & 31)) & MASK32,
    "shru": lambda a, b: a >> (b & 31),
    "shr": _shr,
    "sxhw": sext16,
    "sxqw": sext8,
}

#: cache keys on ``Program.predecode_cache``
_TTA_KEY = "tta-static"
_VLIW_KEY = "vliw-static"


# ---------------------------------------------------------------------------
# shared structural checks (used by the pre-decode verifier and by the
# checked per-cycle reference path in tta_sim)
# ---------------------------------------------------------------------------


def check_tta_slots(instr, pc: int, bus_count: int) -> set[int]:
    """Verify bus exclusivity for one instruction, *including* the extra
    bus slots reserved by long-immediate templates.

    The scheduler reserves ``move.extra_slots`` additional (otherwise
    free) buses for each wide immediate; the reservation is positional
    only in the instruction encoding, so the verifiable property is that
    explicit moves are pairwise bus-exclusive and that enough free buses
    remain to host every reserved slot.  Returns the busy-bus set with
    the long-immediate reservations marked.
    """
    busy: set[int] = set()
    extra_total = 0
    for move in instr.moves:
        if move.bus in busy:
            raise SimError(f"bus {move.bus} used twice at pc={pc}")
        busy.add(move.bus)
        extra_total += move.extra_slots
    if extra_total:
        free = [index for index in range(bus_count) if index not in busy]
        if len(free) < extra_total:
            raise SimError(
                f"bus oversubscription at pc={pc}: {len(busy)} moves plus "
                f"{extra_total} long-immediate slots exceed {bus_count} buses"
            )
        busy.update(free[:extra_total])
    return busy


def src_endpoint(move) -> str:
    kind = move.src[0]
    if kind == "imm":
        return "IMM"
    if kind == "rf":
        return f"{move.src[1]}.read"
    return f"{move.src[1]}.r"


def dst_endpoint(move) -> str:
    if move.dst[0] == "rf":
        return f"{move.dst[1]}.write"
    _, fu, port, _ = move.dst
    return f"{fu}.{port}"


# ---------------------------------------------------------------------------
# TTA: static verification + decode
# ---------------------------------------------------------------------------


def _check_tta_src(move, pc: int, machine) -> tuple:
    """Validate and normalise one move source into a static descriptor."""
    kind = move.src[0]
    if kind == "imm":
        value = move.src[1]
        if not isinstance(value, int):
            raise SimError(f"unlinked immediate {value!r} at pc={pc}")
        return ("imm", value & MASK32)
    if kind == "rf":
        _, rf, idx = move.src
        spec = machine.rf_by_name.get(rf)
        if spec is None:
            raise SimError(f"unknown register file {rf!r} at pc={pc}")
        if not 0 <= idx < spec.size:
            raise SimError(f"register index {rf}[{idx}] out of range at pc={pc}")
        return ("rf", rf, idx)
    if kind == "fu":
        fu = move.src[1]
        if fu not in machine.fu_by_name:
            raise SimError(f"unknown function unit {fu!r} at pc={pc}")
        return ("fu", fu)
    raise SimError(f"bad move source {move.src!r} at pc={pc}")


def static_decode_tta(program: Program) -> list:
    """Verify *program* structurally and decode it into flat per-instruction
    tuples; cached on ``program.predecode_cache``.

    Each decoded instruction is
    ``(rf_moves, o1_moves, trig_moves, counts)`` where the three move
    groups keep the original intra-group move order (which is the only
    order the reference simulator's four execution phases observe) and
    ``counts`` is the static move/trigger/port statistics vector
    ``(moves, triggers, rf_reads, bypass_reads, rf_writes)``.
    """
    cached = program.predecode_cache.get(_TTA_KEY)
    if cached is not None:
        obs.count("sim.predecode.cache_hits")
        return cached
    obs.count("sim.predecode.cache_misses")
    machine = program.machine
    buses = {bus.index: bus for bus in machine.buses}
    read_limits = {rf.name: rf.read_ports for rf in machine.register_files}
    write_limits = {rf.name: rf.write_ports for rf in machine.register_files}
    decoded = []
    for pc, instr in enumerate(program.instrs):
        check_tta_slots(instr, pc, len(machine.buses))
        reads: dict[str, int] = {}
        writes: dict[str, int] = {}
        rf_moves = []
        o1_moves = []
        trig_moves = []
        n_bypass = 0
        for move in instr.moves:
            if move.bus not in buses:
                raise SimError(f"unknown bus {move.bus} at pc={pc}")
            src = _check_tta_src(move, pc, machine)
            if src[0] == "rf":
                reads[src[1]] = reads.get(src[1], 0) + 1
            elif src[0] == "fu":
                n_bypass += 1
            if not buses[move.bus].connects(src_endpoint(move), dst_endpoint(move)):
                raise SimError(f"move {move!r} not routable on bus {move.bus}")
            if move.dst[0] == "rf":
                _, rf, idx = move.dst
                spec = machine.rf_by_name.get(rf)
                if spec is None:
                    raise SimError(f"unknown register file {rf!r} at pc={pc}")
                if not 0 <= idx < spec.size:
                    raise SimError(
                        f"register index {rf}[{idx}] out of range at pc={pc}"
                    )
                writes[rf] = writes.get(rf, 0) + 1
                rf_moves.append((src, rf, idx))
            elif move.dst[0] == "op":
                _, fu, port, opcode = move.dst
                if fu not in machine.fu_by_name:
                    raise SimError(f"unknown function unit {fu!r} at pc={pc}")
                if port == "o1":
                    o1_moves.append((src, fu))
                elif port == "t":
                    if opcode is None:
                        raise SimError(
                            f"trigger move without opcode on {fu} at pc={pc}"
                        )
                    if opcode not in OPS and opcode not in (
                        "halt",
                        "getra",
                        "setra",
                    ):
                        raise SimError(f"unknown opcode {opcode!r} at pc={pc}")
                    trig_moves.append((src, fu, opcode))
                else:
                    raise SimError(f"unknown FU port {fu}.{port} at pc={pc}")
            else:
                raise SimError(f"bad move destination {move.dst!r} at pc={pc}")
        for rf, count in reads.items():
            if count > read_limits[rf]:
                raise SimError(f"{rf} read ports oversubscribed at pc={pc}")
        for rf, count in writes.items():
            if count > write_limits[rf]:
                raise SimError(f"{rf} write ports oversubscribed at pc={pc}")
        counts = (
            len(instr.moves),
            len(trig_moves),
            sum(reads.values()),
            n_bypass,
            sum(writes.values()),
        )
        decoded.append((tuple(rf_moves), tuple(o1_moves), tuple(trig_moves), counts))
    program.predecode_cache[_TTA_KEY] = decoded
    return decoded


def verify_tta_program(program: Program) -> None:
    """Run every static structural check once; raises :class:`SimError`."""
    static_decode_tta(program)


# ---------------------------------------------------------------------------
# TTA: per-simulator binding + fast loop
# ---------------------------------------------------------------------------


def _bind_tta_sampler(src, sim):
    kind = src[0]
    if kind == "imm":
        value = src[1]

        def sample(cycle, _v=value):
            return _v

        return sample
    if kind == "rf":
        regs = sim.rfs[src[1]]
        idx = src[2]

        def sample(cycle, _r=regs, _i=idx):
            return _r[_i]

        return sample
    fu = sim.fus[src[1]]

    def sample(cycle, _fu=fu):
        if _fu.pending and _fu.pending[0][0] <= cycle:
            _fu.commit(cycle)
        if not _fu.has_result:
            from repro.sim.tta_sim import fu_unavailable_error

            raise fu_unavailable_error(_fu, cycle)
        return _fu.result

    return sample


def _bind_tta_thunk(fu_name: str, opcode: str, sim, jl: int):
    """Build ``thunk(value, cycle, pc)`` for one trigger.

    Returns ``None`` (no control effect), ``True`` (halt) or a
    ``(redirect_cycle, target)`` tuple.
    """
    fu = sim.fus[fu_name]
    jl1 = jl + 1
    if opcode == "halt":
        return lambda value, cycle, pc: True
    if opcode == "getra":

        def thunk(value, cycle, pc, _fu=fu, _sim=sim):
            _fu.push(cycle + 1, _sim.ra)
            return None

        return thunk
    if opcode == "setra":

        def thunk(value, cycle, pc, _sim=sim):
            _sim.ra = value
            return None

        return thunk
    if opcode == "jump":
        return lambda value, cycle, pc, _j=jl1: (cycle + _j, value)
    if opcode == "call":

        def thunk(value, cycle, pc, _sim=sim, _j=jl1):
            _sim.ra = pc + _j
            return (cycle + _j, value)

        return thunk
    if opcode == "ret":
        return lambda value, cycle, pc, _sim=sim, _j=jl1: (cycle + _j, _sim.ra)
    if opcode == "cjump":

        def thunk(value, cycle, pc, _fu=fu, _j=jl1):
            return (cycle + _j, _fu.o1) if value else None

        return thunk
    if opcode == "cjumpz":

        def thunk(value, cycle, pc, _fu=fu, _j=jl1):
            return None if value else (cycle + _j, _fu.o1)

        return thunk
    spec = OPS[opcode]
    if spec.kind is OpKind.LSU:
        memory = sim.memory
        if spec.writes_mem:

            def thunk(value, cycle, pc, _mem=memory, _fu=fu, _op=opcode):
                _mem.store(_op, value, _fu.o1)
                return None

            return thunk
        latency = spec.latency

        def thunk(value, cycle, pc, _mem=memory, _fu=fu, _op=opcode, _lat=latency):
            _fu.push(cycle + _lat, _mem.load(_op, value))
            return None

        return thunk
    fn = ALU_FUNCS[opcode]
    latency = spec.latency
    if spec.operands == 2:

        def thunk(value, cycle, pc, _fu=fu, _fn=fn, _lat=latency):
            _fu.push(cycle + _lat, _fn(value, _fu.o1))
            return None

        return thunk

    def thunk(value, cycle, pc, _fu=fu, _fn=fn, _lat=latency):
        _fu.push(cycle + _lat, _fn(value))
        return None

    return thunk


def bind_tta(program: Program, sim) -> list:
    """Bind the cached static decode of *program* to one simulator's state."""
    decoded = static_decode_tta(program)
    jl = program.machine.jump_latency
    bound = []
    for rf_moves, o1_moves, trig_moves, counts in decoded:
        bound.append(
            (
                tuple(
                    (_bind_tta_sampler(src, sim), sim.rfs[rf], idx)
                    for src, rf, idx in rf_moves
                ),
                tuple(
                    (_bind_tta_sampler(src, sim), sim.fus[fu]) for src, fu in o1_moves
                ),
                tuple(
                    (_bind_tta_sampler(src, sim), _bind_tta_thunk(fu, opcode, sim, jl))
                    for src, fu, opcode in trig_moves
                ),
                counts,
            )
        )
    return bound


def run_tta_fast(sim):
    """Execute *sim*'s program with the pre-decoded engine.

    Bit- and cycle-exact with ``TTASimulator`` in checked mode, including
    every statistics counter (enforced by ``tests/test_predecode.py``).
    """
    from repro.sim.tta_sim import TTAResult

    program = sim.program
    bound = bind_tta(program, sim)
    rv = return_value_reg(program.machine)
    exit_regs = sim.rfs[rv.rf]
    exit_idx = rv.idx
    max_cycles = sim.max_cycles
    n_instrs = len(bound)
    hits = [0] * n_instrs
    pc = 0
    cycle = 0
    redirect_cycle = -1
    redirect_target = 0
    while True:
        if cycle == redirect_cycle:
            pc = redirect_target
            redirect_cycle = -1
        if pc < 0 or pc >= n_instrs:
            raise SimError(f"PC out of range: {pc}")
        rf_moves, o1_moves, trig_moves, _counts = bound[pc]
        hits[pc] += 1
        # phase 1+2: sample sources, latch operand ports.  Interleaving the
        # groups is safe: samplers read only immediates, RF state and
        # committed FU results, none of which an operand-port latch or a
        # trigger can change within the same cycle (minimum result latency
        # is 1, RF writes commit in phase 4).
        if rf_moves:
            pending = [(regs, idx, sample(cycle)) for sample, regs, idx in rf_moves]
        else:
            pending = ()
        for sample, fu in o1_moves:
            fu.o1 = sample(cycle)
        # phase 3: triggers, in move order
        halted = False
        for sample, thunk in trig_moves:
            effect = thunk(sample(cycle), cycle, pc)
            if effect is not None:
                if effect is True:
                    halted = True
                elif redirect_cycle >= 0:
                    raise SimError("overlapping control transfers")
                else:
                    redirect_cycle, redirect_target = effect
        # phase 4: RF write commit
        for regs, idx, value in pending:
            regs[idx] = value
        if halted:
            break
        cycle += 1
        pc += 1
        if cycle > max_cycles:
            raise SimError("cycle budget exceeded (runaway program?)")
    stats = TTAResult(exit_regs[exit_idx], cycle + 1)
    decoded = static_decode_tta(program)
    for count, (_, _, _, counts) in zip(hits, decoded):
        if count:
            stats.moves += count * counts[0]
            stats.triggers += count * counts[1]
            stats.rf_reads += count * counts[2]
            stats.bypass_reads += count * counts[3]
            stats.rf_writes += count * counts[4]
    # zero-overhead profiling hooks: the hit vector already drives the
    # statistics above, so exposing it costs nothing extra per cycle
    sim._last_hits = hits
    sim._last_blocks = None
    sim._last_engine = "fast"
    return stats


# ---------------------------------------------------------------------------
# VLIW: static verification + decode
# ---------------------------------------------------------------------------

_VLIW_CONTROL = frozenset({"jump", "call", "ret", "cjump", "cjumpz", "halt"})
_VLIW_LOADS = frozenset({"ldw", "ldh", "ldq", "ldqu", "ldhu"})
_VLIW_STORES = frozenset({"stw", "sth", "stq"})
_VLIW_PSEUDO = frozenset({"copy", "getra", "setra", "halt"})


def _check_vliw_src(src, pc: int, machine) -> tuple:
    if isinstance(src, Imm):
        return ("imm", src.value & MASK32)
    if isinstance(src, PhysReg):
        spec = machine.rf_by_name.get(src.rf)
        if spec is None:
            raise SimError(f"unknown register file {src.rf!r} at pc={pc}")
        if not 0 <= src.idx < spec.size:
            raise SimError(f"register index {src!r} out of range at pc={pc}")
        return ("reg", src.rf, src.idx)
    raise SimError(f"unresolved operand {src!r} at pc={pc}")


def static_decode_vliw(program: Program) -> list:
    """Verify *program* and decode each bundle into flat op descriptors.

    Checks once per static bundle: known operation names, resolved
    operands, in-range register indices, destination presence for
    result-producing ops, and the machine's issue-width limit.
    """
    cached = program.predecode_cache.get(_VLIW_KEY)
    if cached is not None:
        obs.count("sim.predecode.cache_hits")
        return cached
    obs.count("sim.predecode.cache_misses")
    machine = program.machine
    issue_width = machine.issue_width
    decoded = []
    for pc, bundle in enumerate(program.instrs):
        if len(bundle.ops) > issue_width:
            raise SimError(
                f"bundle at pc={pc} issues {len(bundle.ops)} ops "
                f"(machine issue width is {issue_width})"
            )
        ops = []
        for op in bundle.ops:
            name = op.op
            if name not in OPS and name not in _VLIW_PSEUDO:
                raise SimError(f"unknown operation {name!r} at pc={pc}")
            srcs = tuple(_check_vliw_src(s, pc, machine) for s in op.srcs)
            needs_dest = (
                name not in _VLIW_CONTROL
                and name not in _VLIW_STORES
                and name != "setra"
            )
            dest = None
            if needs_dest:
                if not isinstance(op.dest, PhysReg):
                    raise SimError(f"operation {op!r} lacks a destination at pc={pc}")
                dest = _check_vliw_src(op.dest, pc, machine)[1:]
            is_alu = needs_dest and name not in _VLIW_LOADS and name not in (
                "copy",
                "getra",
            )
            if is_alu and name not in ALU_FUNCS:
                # pure ALU op: the pre-bound function must exist
                raise SimError(f"not a pure ALU operation: {name!r} at pc={pc}")
            ops.append((name, srcs, dest, op.latency))
        decoded.append(tuple(ops))
    program.predecode_cache[_VLIW_KEY] = decoded
    return decoded


def verify_vliw_program(program: Program) -> None:
    """Run every static structural check once; raises :class:`SimError`."""
    static_decode_vliw(program)


# ---------------------------------------------------------------------------
# VLIW: per-simulator binding + fast loop
# ---------------------------------------------------------------------------


def _bind_vliw_reader(src, rfs):
    if src[0] == "imm":
        value = src[1]
        return lambda _v=value: _v
    regs = rfs[src[1]]
    idx = src[2]
    return lambda _r=regs, _i=idx: _r[_i]


def _bind_vliw_op(op, sim, rfs, jl1: int):
    """Build ``f(cycle, pc)`` executing one decoded VLIW operation.

    Returns ``None``, ``True`` (halt) or ``(redirect_cycle, target)``.
    The caller schedules register write-back through ``sim`` state, so
    interleaving sampling with execution is safe: no operation writes a
    register within its own issue cycle (minimum write-back is
    ``cycle + 1``) and memory/``ra`` side effects are observed in op
    order exactly as in the reference engine.
    """
    name, srcs, dest, latency = op
    if name == "halt":
        return lambda cycle, pc: True
    if name in ("jump", "call"):
        read = _bind_vliw_reader(srcs[0], rfs)
        if name == "jump":
            return lambda cycle, pc, _r=read, _j=jl1: (cycle + _j, _r())

        def run_call(cycle, pc, _r=read, _j=jl1, _sim=sim):
            _sim.ra = pc + _j
            return (cycle + _j, _r())

        return run_call
    if name == "ret":
        return lambda cycle, pc, _sim=sim, _j=jl1: (cycle + _j, _sim.ra)
    if name in ("cjump", "cjumpz"):
        read_pred = _bind_vliw_reader(srcs[0], rfs)
        read_target = _bind_vliw_reader(srcs[1], rfs)
        if name == "cjump":

            def run_cjump(cycle, pc, _p=read_pred, _t=read_target, _j=jl1):
                return (cycle + _j, _t()) if _p() else None

            return run_cjump

        def run_cjumpz(cycle, pc, _p=read_pred, _t=read_target, _j=jl1):
            return None if _p() else (cycle + _j, _t())

        return run_cjumpz
    if name in _VLIW_LOADS:
        read_addr = _bind_vliw_reader(srcs[0], rfs)
        regs = rfs[dest[0]]

        def run_load(
            cycle,
            pc,
            _r=read_addr,
            _mem=sim.memory,
            _op=name,
            _lat=latency,
            _w=sim._write_later_slot,
            _regs=regs,
            _i=dest[1],
        ):
            _w(cycle + _lat, _regs, _i, _mem.load(_op, _r()))
            return None

        return run_load
    if name in _VLIW_STORES:
        read_addr = _bind_vliw_reader(srcs[0], rfs)
        read_value = _bind_vliw_reader(srcs[1], rfs)

        def run_store(cycle, pc, _a=read_addr, _v=read_value, _mem=sim.memory, _op=name):
            _mem.store(_op, _a(), _v())
            return None

        return run_store
    if name == "setra":
        read = _bind_vliw_reader(srcs[0], rfs)

        def run_setra(cycle, pc, _r=read, _sim=sim):
            _sim.ra = _r()
            return None

        return run_setra
    if name == "getra":
        regs = rfs[dest[0]]

        def run_getra(
            cycle, pc, _sim=sim, _lat=latency, _w=sim._write_later_slot, _regs=regs, _i=dest[1]
        ):
            _w(cycle + _lat, _regs, _i, _sim.ra)
            return None

        return run_getra
    if name == "copy":
        read = _bind_vliw_reader(srcs[0], rfs)
        regs = rfs[dest[0]]

        def run_copy(
            cycle, pc, _r=read, _lat=latency, _w=sim._write_later_slot, _regs=regs, _i=dest[1]
        ):
            _w(cycle + _lat, _regs, _i, _r())
            return None

        return run_copy
    fn = ALU_FUNCS[name]
    regs = rfs[dest[0]]
    if len(srcs) == 2:
        read_a = _bind_vliw_reader(srcs[0], rfs)
        read_b = _bind_vliw_reader(srcs[1], rfs)

        def run_alu2(
            cycle,
            pc,
            _a=read_a,
            _b=read_b,
            _fn=fn,
            _lat=latency,
            _w=sim._write_later_slot,
            _regs=regs,
            _i=dest[1],
        ):
            _w(cycle + _lat, _regs, _i, _fn(_a(), _b()))
            return None

        return run_alu2
    read_a = _bind_vliw_reader(srcs[0], rfs)

    def run_alu1(
        cycle,
        pc,
        _a=read_a,
        _fn=fn,
        _lat=latency,
        _w=sim._write_later_slot,
        _regs=regs,
        _i=dest[1],
    ):
        _w(cycle + _lat, _regs, _i, _fn(_a()))
        return None

    return run_alu1


def run_vliw_fast(sim):
    """Execute *sim*'s program with the pre-decoded engine.

    Bit- and cycle-exact with ``VLIWSimulator`` in checked mode,
    including the exposed delayed-write-back semantics (a violated
    schedule still reads the stale value).
    """
    from repro.sim.vliw_sim import VLIWResult

    program = sim.program
    decoded = static_decode_vliw(program)
    machine = program.machine
    jl1 = machine.jump_latency + 1
    rfs = {rf.name: [0] * rf.size for rf in machine.register_files}
    sim._fast_rfs = rfs
    bound = [
        tuple(_bind_vliw_op(op, sim, rfs, jl1) for op in bundle) for bundle in decoded
    ]
    op_counts = [len(bundle) for bundle in decoded]
    pending = sim._pending_slot_writes
    max_cycles = sim.max_cycles
    n_instrs = len(bound)
    hits = [0] * n_instrs
    pc = 0
    cycle = 0
    redirect_cycle = -1
    redirect_target = 0
    while True:
        # commit register writes whose write-back cycle has passed
        while pending and pending[0][0] < cycle:
            _, _, regs, idx, value = _heappop(pending)
            regs[idx] = value
        if cycle == redirect_cycle:
            pc = redirect_target
            redirect_cycle = -1
        if pc < 0 or pc >= n_instrs:
            raise SimError(f"PC out of range: {pc}")
        hits[pc] += 1
        halted = False
        for op_fn in bound[pc]:
            effect = op_fn(cycle, pc)
            if effect is not None:
                if effect is True:
                    halted = True
                elif redirect_cycle >= 0:
                    raise SimError("overlapping control transfers")
                else:
                    redirect_cycle, redirect_target = effect
        if halted:
            # flush in-flight writes so the exit code is final
            while pending:
                _, _, regs, idx, value = _heappop(pending)
                regs[idx] = value
            break
        cycle += 1
        pc += 1
        if cycle > max_cycles:
            raise SimError("cycle budget exceeded (runaway program?)")
    rv = return_value_reg(machine)
    result = VLIWResult(rfs[rv.rf][rv.idx], cycle + 1, cycle + 1)
    result.ops = sum(count * ops for count, ops in zip(hits, op_counts))
    sim._sync_regs_from_fast(rfs)
    # zero-overhead profiling hooks (the hit vector already exists)
    sim._last_hits = hits
    sim._last_blocks = None
    sim._last_engine = "fast"
    return result
