"""C code generation for the native simulation engine (``mode="native"``).

This module is the C twin of :mod:`repro.sim.blockcompile`: it reuses the
turbo engine's basic-block partitioning (:func:`~repro.sim.blockcompile._partition`,
same delay-slot-window and halt-terminal rules) but emits each block as
specialized C instead of specialized Python, and assembles every block of
a program into **one translation unit** compiled to a single shared
object by :mod:`repro.sim.native`.

State layout (flat C arrays, shared with the Python driver through the
FFI call)::

    rf[]     uint32  all register files concatenated (layout in
                     :attr:`NativeProgram.rf_layout`)
    fu32[]   uint32  per FU: [o1, result]                       (TTA)
    pd[]     int64   per FU: due-cycle ring of PCAP entries     (TTA)
                     write-back queue due cycles                (VLIW)
    pv[]     uint32  per FU: value ring of PCAP entries         (TTA)
                     write-back queue values                    (VLIW)
    fum[]    int32   per FU: [len, head, has_result]            (TTA)
                     write-back queue rf[] offsets              (VLIW)
    mem[]    uint8   the data memory (zero-copy view of the
                     simulator's bytearray)
    ctl[]    int64   [cycle, pc, rc, rt, ra, max_cycles, err_a,
                     err_b, mem_size, wb_len] -- in/out machine state
    execs[]  int64   per-block execution counters (the turbo engine's
                     ``_x[0]`` counters, used for hit expansion)

The generated function runs blocks chained through a pc-indexed dispatch
table until it must hand control back (status 0: uncompiled entry,
carried redirect, budget-edge block) or the program halts (status 3).
Every dynamic check of the reference engine is kept: a violation stops
execution with a negative status plus error operands in ``ctl``, and the
Python driver reconstructs the reference engine's **byte-identical**
``SimError``/``ValueError`` message from the synced-back state.

Semantics notes pinned by ``tests/test_native.py``:

* ALU templates in :data:`_C_ALU` agree bit-exactly with
  ``predecode.ALU_FUNCS`` (32-bit wrap, signed compares/shifts on
  two's-complement ``int32_t``).
* FU result latching is the reference's *lazy* commit: pending results
  move to the result register only when the unit is read, so the
  ``(pending: ...)`` payload of an early-read error is unchanged.  The
  fixed-capacity ring drains due entries on overflow, which is
  observable only through ``has_result`` -- and any drain sets it, so a
  drained unit can never raise the not-due/never-triggered errors whose
  text depends on the pending list.
* The VLIW write-back queue is kept sorted by (due, insertion order), so
  draining reproduces the reference heap's ``(due, seq)`` pop order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backend.program import Program
from repro.isa.operations import OPS, OpKind
from repro.sim.blockcompile import (
    _TTA_CTL,
    _VLIW_CTL,
    _partition,
    _vliw_max_latency,
)
from repro.sim.predecode import (
    _VLIW_LOADS,
    _VLIW_STORES,
    static_decode_tta,
    static_decode_vliw,
)

#: function exported by every generated translation unit
ENTRY_SYMBOL = "repro_native_run"

#: ``ctl[]`` slot indices shared with the driver
CTL_CYCLE = 0
CTL_PC = 1
CTL_RC = 2
CTL_RT = 3
CTL_RA = 4
CTL_MAX_CYCLES = 5
CTL_ERR_A = 6
CTL_ERR_B = 7
CTL_MEM_SIZE = 8
CTL_WB_LEN = 9
CTL_WORDS = 16

#: return statuses of the generated function
ST_FALLBACK = 0  # hand control back to the Python driver (no error)
ST_HALT = 3
ST_FU_READ = -1  # FU result read with no result available
ST_FU_PUSH = -2  # non-monotonic result completion (ValueError)
ST_OVERLAP = -3  # overlapping control transfers
ST_MEM_RANGE = -5  # memory access out of range
ST_BUDGET = -6  # cycle budget exceeded
ST_INTERNAL = -9  # capacity invariant broken (unreachable by design)

#: cap on the total specialized cycles emitted into one translation unit
_MAX_TOTAL_CYCLES = 65536


class _Unsupported(Exception):
    """Raised during codegen for anything not provably static; the entry
    is skipped and the driver's precise fallback interprets it."""


#: C twins of ``blockcompile._ALU_EXPR`` / ``predecode.ALU_FUNCS``.  All
#: operands are ``uint32_t``, so +,-,*,<< wrap mod 2**32 by the language;
#: signed compare/shift go through ``int32_t`` two's-complement views.
_C_ALU = {
    "add": "({a} + {b})",
    "sub": "({a} - {b})",
    "mul": "({a} * {b})",
    "and": "({a} & {b})",
    "ior": "({a} | {b})",
    "xor": "({a} ^ {b})",
    "eq": "((uint32_t)(({a}) == ({b})))",
    "gt": "((uint32_t)((int32_t)({a}) > (int32_t)({b})))",
    "gtu": "((uint32_t)(({a}) > ({b})))",
    "shl": "(({a}) << (({b}) & 31u))",
    "shru": "(({a}) >> (({b}) & 31u))",
    "shr": "((uint32_t)((int32_t)({a}) >> (int32_t)(({b}) & 31u)))",
    "sxhw": "((uint32_t)(int32_t)(int16_t)(uint16_t)({a}))",
    "sxqw": "((uint32_t)(int32_t)(int8_t)(uint8_t)({a}))",
}

_LD_MACRO = {"ldw": "LDW", "ldh": "LDH", "ldhu": "LDHU", "ldq": "LDQ", "ldqu": "LDQU"}
_ST_MACRO = {"stw": "STW", "sth": "STH", "stq": "STQ"}


@dataclass
class NativeProgram:
    """Everything :mod:`repro.sim.native` needs to build and drive the
    shared object generated for one program."""

    style: str
    source: str
    n_instrs: int
    #: (start_pc, length) per block, index order == ``execs[]`` index
    entries: list
    #: (rf_name, base_offset, size) in machine declaration order
    rf_layout: list
    rf_total: int
    #: TTA: FU names in ``fu32``/``pd``/``pv``/``fum`` index order
    fu_names: list
    #: TTA: per-FU pending-ring capacity (power of two)
    pcap: int
    #: VLIW: write-back queue capacity
    wcap: int
    n_blocks: int


def _cexpr(k: int) -> str:
    return "c" if k == 0 else f"c + {k}"


def _rf_layout(machine):
    layout = []
    base = 0
    for rf in machine.register_files:
        layout.append((rf.name, base, rf.size))
        base += rf.size
    return layout, base


# ---------------------------------------------------------------------------
# shared C prelude
# ---------------------------------------------------------------------------

_PRELUDE = """\
/* generated by repro.sim.cgen -- do not edit */
#include <stdint.h>

#define N_INSTRS {n_instrs}
#define PCAP {pcap}
#define PMSK (PCAP - 1)
#define WCAP {wcap}

static const int32_t entry_idx[N_INSTRS] = {{{entry_idx}}};
static const int32_t block_len[{n_blocks}] = {{{block_len}}};

#define ERR(code, a, b) do {{ ctl[6] = (int64_t)(a); ctl[7] = (int64_t)(b); \\
    st = (code); goto done; }} while (0)

/* lazy FU commit + result read; (pending: ...) stays byte-exact because a
 * unit that errors here has never committed (fum[3f+2] == 0) */
#define FUREAD(t, f, C) do {{ int32_t *_m = fum + 3 * (f); \\
    while (_m[0] && pd[(f) * PCAP + _m[1]] <= (C)) {{ \\
        fu32[2 * (f) + 1] = pv[(f) * PCAP + _m[1]]; _m[2] = 1; \\
        _m[1] = (_m[1] + 1) & PMSK; _m[0]--; }} \\
    if (!_m[2]) {{ ERR(-1, (f), (C)); }} \\
    (t) = fu32[2 * (f) + 1]; }} while (0)

/* _FU.push: monotonicity check first (reference raises before appending);
 * a full ring drains its due entries, which cannot change any observable
 * (see module docstring) and by the due-window bound always frees slots */
#define FUPUSH(f, due, val, C) do {{ int32_t *_m = fum + 3 * (f); \\
    if (_m[0] && (due) <= pd[(f) * PCAP + ((_m[1] + _m[0] - 1) & PMSK)]) \\
        {{ ERR(-2, (f), (due)); }} \\
    if (_m[0] == PCAP) {{ \\
        while (_m[0] && pd[(f) * PCAP + _m[1]] <= (C)) {{ \\
            fu32[2 * (f) + 1] = pv[(f) * PCAP + _m[1]]; _m[2] = 1; \\
            _m[1] = (_m[1] + 1) & PMSK; _m[0]--; }} \\
        if (_m[0] == PCAP) {{ ERR(-9, (f), 0); }} }} \\
    {{ int32_t _s = (_m[1] + _m[0]) & PMSK; \\
       pd[(f) * PCAP + _s] = (due); pv[(f) * PCAP + _s] = (val); _m[0]++; }} \\
    }} while (0)

#define CHK(a, sz) if ((uint64_t)(a) + (sz) > memsz) \\
    {{ ERR(-5, (int64_t)(a), (sz)); }}

#define LDW(t, a) do {{ uint32_t _a = (a); CHK(_a, 4) \\
    (t) = (uint32_t)mem[_a] | ((uint32_t)mem[_a + 1] << 8) | \\
          ((uint32_t)mem[_a + 2] << 16) | ((uint32_t)mem[_a + 3] << 24); \\
    }} while (0)
#define LDHU(t, a) do {{ uint32_t _a = (a); CHK(_a, 2) \\
    (t) = (uint32_t)mem[_a] | ((uint32_t)mem[_a + 1] << 8); }} while (0)
#define LDH(t, a) do {{ LDHU(t, a); \\
    (t) = (uint32_t)(int32_t)(int16_t)(uint16_t)(t); }} while (0)
#define LDQU(t, a) do {{ uint32_t _a = (a); CHK(_a, 1) \\
    (t) = (uint32_t)mem[_a]; }} while (0)
#define LDQ(t, a) do {{ LDQU(t, a); \\
    (t) = (uint32_t)(int32_t)(int8_t)(uint8_t)(t); }} while (0)
#define STW(a, v) do {{ uint32_t _a = (a); CHK(_a, 4) \\
    {{ uint32_t _v = (v); mem[_a] = (uint8_t)_v; \\
       mem[_a + 1] = (uint8_t)(_v >> 8); mem[_a + 2] = (uint8_t)(_v >> 16); \\
       mem[_a + 3] = (uint8_t)(_v >> 24); }} }} while (0)
#define STH(a, v) do {{ uint32_t _a = (a); CHK(_a, 2) \\
    {{ uint32_t _v = (v); mem[_a] = (uint8_t)_v; \\
       mem[_a + 1] = (uint8_t)(_v >> 8); }} }} while (0)
#define STQ(a, v) do {{ uint32_t _a = (a); CHK(_a, 1) \\
    mem[_a] = (uint8_t)(v); }} while (0)

/* VLIW write-back queue: sorted insertion after equal dues reproduces the
 * reference heap's (due, seq) order; returns 1 on capacity overflow
 * (unreachable: live entries are bounded by (maxlat + 2) * issue_width) */
static int wb_push(int64_t *pd, uint32_t *pv, int32_t *wo,
                   int32_t *head, int32_t *len, int64_t due,
                   int32_t off, uint32_t val)
{{
    int32_t h = *head, l = *len, lo, i;
    if (l >= WCAP)
        return 1;
    if (h + l >= WCAP) {{
        for (i = 0; i < l; i++) {{
            pd[i] = pd[h + i]; pv[i] = pv[h + i]; wo[i] = wo[h + i];
        }}
        h = 0; *head = 0;
    }}
    lo = h;
    while (lo < h + l && pd[lo] <= due)
        lo++;
    for (i = h + l; i > lo; i--) {{
        pd[i] = pd[i - 1]; pv[i] = pv[i - 1]; wo[i] = wo[i - 1];
    }}
    pd[lo] = due; pv[lo] = val; wo[lo] = off;
    *len = l + 1;
    return 0;
}}
"""


def _assemble(style, n_instrs, blocks, pcap, wcap):
    """Build the full translation unit from per-block case-line lists."""
    entry_idx = [-1] * n_instrs
    lens = []
    for bi, (start, length, _case) in enumerate(blocks):
        entry_idx[start] = bi
        lens.append(length)
    out = [
        _PRELUDE.format(
            n_instrs=n_instrs,
            pcap=pcap,
            wcap=wcap,
            n_blocks=len(blocks),
            entry_idx=", ".join(str(v) for v in entry_idx),
            block_len=", ".join(str(v) for v in lens),
        )
    ]
    out.append(f"""\
int {ENTRY_SYMBOL}(uint32_t *restrict rf, uint32_t *restrict fu32,
                    int64_t *restrict pd, uint32_t *restrict pv,
                    int32_t *restrict fum, uint8_t *restrict mem,
                    int64_t *restrict ctl, int64_t *restrict execs)
{{
    int64_t c = ctl[0];
    int64_t pc = ctl[1];
    int64_t rc = ctl[2];
    uint32_t rt = (uint32_t)ctl[3];
    uint32_t ra = (uint32_t)ctl[4];
    const int64_t maxc = ctl[5];
    const uint64_t memsz = (uint64_t)ctl[8];
    int st = 0;""")
    if style == "vliw":
        out.append("""\
    int32_t whead = 0;
    int32_t wlen = (int32_t)ctl[9];
    (void)fu32;""")
    out.append("""\
    (void)mem; (void)memsz; (void)ra;
    for (;;) {
        int32_t bi;
        if (rc >= 0 || pc < 0 || pc >= N_INSTRS)
            goto done;
        bi = entry_idx[pc];
        if (bi < 0 || c + (int64_t)block_len[bi] > maxc + 1)
            goto done;
        switch (bi) {""")
    for _start, _length, case_lines in blocks:
        out.extend("        " + line for line in case_lines)
    out.append("""\
        default:
            goto done;
        }
        /* post-block budget check, matching the turbo driver */
        if (c > maxc) { st = -6; goto done; }
    }
done:""")
    if style == "vliw":
        out.append("""\
    if (whead > 0) {
        int32_t i;
        for (i = 0; i < wlen; i++) {
            pd[i] = pd[whead + i]; pv[i] = pv[whead + i];
            fum[i] = fum[whead + i];
        }
    }
    ctl[9] = (int64_t)wlen;""")
    out.append("""\
    ctl[0] = c; ctl[1] = pc; ctl[2] = rc;
    ctl[3] = (int64_t)rt; ctl[4] = (int64_t)ra;
    return st;
}""")
    return "\n".join(out) + "\n"


# ---------------------------------------------------------------------------
# TTA block generation (mirrors blockcompile._compile_tta_block)
# ---------------------------------------------------------------------------


def _gen_tta_block(program, start, decoded, rf_off, fu_idx, bi):
    machine = program.machine
    jl = machine.jump_latency
    jl1 = jl + 1
    n_instrs = len(decoded)

    def has_halt(p):
        return any(op == "halt" for _, _, op in decoded[p][2])

    def has_ctl(p):
        return any(op in _TTA_CTL for _, _, op in decoded[p][2])

    n, halts, _any_ctl = _partition(start, n_instrs, jl, has_halt, has_ctl)
    if n == 0:
        raise _Unsupported("empty block")

    lines: list[str] = []
    tempc = [0]

    def emit(s, ind=""):
        lines.append(ind + s)

    def newtemp():
        tempc[0] += 1
        return f"t{tempc[0]}"

    def sample_fu(fu_name, C, ind=""):
        t = newtemp()
        emit(f"uint32_t {t}; FUREAD({t}, {fu_idx[fu_name]}, {C});", ind)
        return t

    def value_expr(src, C, ind=""):
        kind = src[0]
        if kind == "imm":
            return f"{src[1]}u"
        if kind == "rf":
            return f"rf[{rf_off[src[1]] + src[2]}]"
        return sample_fu(src[1], C, ind)

    def emit_ctl_check(ind=""):
        emit("if (rc >= 0) { ERR(-3, 0, 0); }", ind)

    ctl_emitted = False
    for k in range(n):
        p = start + k
        C = _cexpr(k)
        rf_moves, o1_moves, trig_moves, _counts = decoded[p]
        # phase 1: sample RF-bound sources before any same-cycle effect
        commits = []
        for src, rf, idx in rf_moves:
            off = rf_off[rf] + idx
            if src[0] == "imm":
                commits.append((off, f"{src[1]}u"))
            elif src[0] == "rf":
                t = newtemp()
                emit(f"uint32_t {t} = rf[{rf_off[src[1]] + src[2]}];")
                commits.append((off, t))
            else:
                commits.append((off, sample_fu(src[1], C)))
        # phase 2: operand-port latches
        for src, fu in o1_moves:
            e = value_expr(src, C)
            emit(f"fu32[{2 * fu_idx[fu]}] = {e};")
        # phase 3: triggers, in move order
        for src, fu, opcode in trig_moves:
            f = fu_idx[fu]
            if opcode == "halt":
                if src[0] == "fu":
                    sample_fu(src[1], C)
                continue
            if opcode == "getra":
                if src[0] == "fu":
                    sample_fu(src[1], C)
                emit(f"FUPUSH({f}, c + {k + 1}, ra, {C});")
                continue
            if opcode == "setra":
                e = value_expr(src, C)
                emit(f"ra = {e};")
                continue
            if opcode == "jump":
                e = value_expr(src, C)
                if ctl_emitted:
                    emit_ctl_check()
                emit(f"rc = c + {k + jl1};")
                emit(f"rt = {e};")
                ctl_emitted = True
                continue
            if opcode == "call":
                e = value_expr(src, C)
                emit(f"ra = {p + jl1}u;")
                if ctl_emitted:
                    emit_ctl_check()
                emit(f"rc = c + {k + jl1};")
                emit(f"rt = {e};")
                ctl_emitted = True
                continue
            if opcode == "ret":
                if src[0] == "fu":
                    sample_fu(src[1], C)
                if ctl_emitted:
                    emit_ctl_check()
                emit(f"rc = c + {k + jl1};")
                emit("rt = ra;")
                ctl_emitted = True
                continue
            if opcode in ("cjump", "cjumpz"):
                e = value_expr(src, C)
                cond = e if opcode == "cjump" else f"!({e})"
                emit(f"if ({cond}) {{")
                if ctl_emitted:
                    emit_ctl_check("    ")
                emit(f"rc = c + {k + jl1};", "    ")
                emit(f"rt = fu32[{2 * f}];", "    ")
                emit("}")
                ctl_emitted = True
                continue
            spec = OPS.get(opcode)
            if spec is None:
                raise _Unsupported(opcode)
            if spec.kind is OpKind.LSU:
                e = value_expr(src, C)
                if spec.writes_mem:
                    emit(f"{_ST_MACRO[opcode]}({e}, fu32[{2 * f}]);")
                else:
                    t = newtemp()
                    emit(f"uint32_t {t}; {_LD_MACRO[opcode]}({t}, {e});")
                    emit(f"FUPUSH({f}, c + {k + spec.latency}, {t}, {C});")
                continue
            tmpl = _C_ALU.get(opcode)
            if tmpl is None or spec.latency < 1:
                raise _Unsupported(opcode)
            e = value_expr(src, C)
            if spec.operands == 2:
                expr = tmpl.format(a=e, b=f"fu32[{2 * f}]")
            else:
                expr = tmpl.format(a=e)
            emit(f"FUPUSH({f}, c + {k + spec.latency}, {expr}, {C});")
        # phase 4: RF write commit
        for off, e in commits:
            emit(f"rf[{off}] = {e};")

    case = [f"case {bi}: {{"]
    case.extend("    " + line for line in lines)
    case.append(f"    execs[{bi}] += 1;")
    if halts:
        if n > 1:
            case.append(f"    c += {n - 1};")
        case.append("    st = 3; goto done;")
    else:
        case.append(f"    c += {n};")
        if ctl_emitted:
            case.append("    if (rc == c) { pc = (int64_t)rt; rc = -1; }")
            case.append(f"    else {{ pc = {start + n}; }}")
        else:
            case.append(f"    pc = {start + n};")
        case.append("    break;")
    case.append("}")
    return n, case


# ---------------------------------------------------------------------------
# VLIW block generation (mirrors blockcompile._compile_vliw_block)
# ---------------------------------------------------------------------------


def _gen_vliw_block(program, start, decoded, rf_off, maxlat, bi):
    machine = program.machine
    jl = machine.jump_latency
    jl1 = jl + 1
    n_instrs = len(decoded)

    def has_halt(p):
        return any(op[0] == "halt" for op in decoded[p])

    def has_ctl(p):
        return any(op[0] in _VLIW_CTL for op in decoded[p])

    n, halts, _any_ctl = _partition(start, n_instrs, jl, has_halt, has_ctl)
    if n == 0:
        raise _Unsupported("empty block")

    lines: list[str] = []
    tempc = [0]
    apply_at: dict[int, list] = {}
    exit_writes: list = []

    def emit(s, ind=""):
        lines.append(ind + s)

    def newtemp():
        tempc[0] += 1
        return f"t{tempc[0]}"

    def vsrc(src):
        if src[0] == "imm":
            return f"{src[1]}u"
        return f"rf[{rf_off[src[1]] + src[2]}]"

    def sched_write(due_rel, rf, idx, t):
        off = rf_off[rf] + idx
        point = due_rel + 1
        if point <= n - 1:
            apply_at.setdefault(point, []).append((off, t))
        else:
            exit_writes.append((due_rel, off, t))

    def emit_ctl_check(ind=""):
        emit("if (rc >= 0) { ERR(-3, 0, 0); }", ind)

    def emit_drain(C):
        emit(f"while (wlen > 0 && pd[whead] < ({C})) {{")
        emit("    rf[fum[whead]] = pv[whead]; whead++; wlen--;")
        emit("}")

    ctl_emitted = False
    for k in range(n):
        C = _cexpr(k)
        # external in-flight writes can only land within the first
        # maxlat instructions (same elision as the turbo engine)
        if k <= maxlat:
            emit_drain(C)
        for off, t in apply_at.get(k, ()):
            emit(f"rf[{off}] = {t};")
        for name, srcs, dest, lat in decoded[start + k]:
            if name == "halt":
                continue
            if name == "jump":
                e = vsrc(srcs[0])
                if ctl_emitted:
                    emit_ctl_check()
                emit(f"rc = c + {k + jl1};")
                emit(f"rt = {e};")
                ctl_emitted = True
                continue
            if name == "call":
                e = vsrc(srcs[0])
                emit(f"ra = {start + k + jl1}u;")
                if ctl_emitted:
                    emit_ctl_check()
                emit(f"rc = c + {k + jl1};")
                emit(f"rt = {e};")
                ctl_emitted = True
                continue
            if name == "ret":
                if ctl_emitted:
                    emit_ctl_check()
                emit(f"rc = c + {k + jl1};")
                emit("rt = ra;")
                ctl_emitted = True
                continue
            if name in ("cjump", "cjumpz"):
                pe = vsrc(srcs[0])
                te = vsrc(srcs[1])
                cond = pe if name == "cjump" else f"!({pe})"
                emit(f"if ({cond}) {{")
                if ctl_emitted:
                    emit_ctl_check("    ")
                emit(f"rc = c + {k + jl1};", "    ")
                emit(f"rt = {te};", "    ")
                emit("}")
                ctl_emitted = True
                continue
            if lat < 0:
                raise _Unsupported(name)
            if name in _VLIW_LOADS:
                t = newtemp()
                emit(f"uint32_t {t}; {_LD_MACRO[name]}({t}, {vsrc(srcs[0])});")
                sched_write(k + lat, dest[0], dest[1], t)
                continue
            if name in _VLIW_STORES:
                emit(f"{_ST_MACRO[name]}({vsrc(srcs[0])}, {vsrc(srcs[1])});")
                continue
            if name == "setra":
                emit(f"ra = {vsrc(srcs[0])};")
                continue
            if name == "getra":
                t = newtemp()
                emit(f"uint32_t {t} = ra;")
                sched_write(k + lat, dest[0], dest[1], t)
                continue
            if name == "copy":
                t = newtemp()
                emit(f"uint32_t {t} = {vsrc(srcs[0])};")
                sched_write(k + lat, dest[0], dest[1], t)
                continue
            tmpl = _C_ALU.get(name)
            if tmpl is None:
                raise _Unsupported(name)
            if len(srcs) == 2:
                expr = tmpl.format(a=vsrc(srcs[0]), b=vsrc(srcs[1]))
            else:
                expr = tmpl.format(a=vsrc(srcs[0]))
            t = newtemp()
            emit(f"uint32_t {t} = {expr};")
            sched_write(k + lat, dest[0], dest[1], t)

    for due_rel, off, t in exit_writes:
        emit(
            f"if (wb_push(pd, pv, fum, &whead, &wlen, {_cexpr(due_rel)}, "
            f"{off}, {t})) {{ ERR(-9, 0, 0); }}"
        )

    case = [f"case {bi}: {{"]
    case.extend("    " + line for line in lines)
    case.append(f"    execs[{bi}] += 1;")
    if halts:
        # flush every in-flight write so the exit code is final
        case.append("    while (wlen > 0) {")
        case.append("        rf[fum[whead]] = pv[whead]; whead++; wlen--;")
        case.append("    }")
        if n > 1:
            case.append(f"    c += {n - 1};")
        case.append("    st = 3; goto done;")
    else:
        case.append(f"    c += {n};")
        if ctl_emitted:
            case.append("    if (rc == c) { pc = (int64_t)rt; rc = -1; }")
            case.append(f"    else {{ pc = {start + n}; }}")
        else:
            case.append(f"    pc = {start + n};")
        case.append("    break;")
    case.append("}")
    return n, case


# ---------------------------------------------------------------------------
# entry discovery
# ---------------------------------------------------------------------------


def _collect_entries(n_instrs, jl, has_halt, has_ctl, targets):
    """Block entry pcs: the fall-through partition chain from pc 0, every
    statically-known branch-target candidate, and the closure of their
    fall-through successors -- so chained native execution only leaves
    the shared object for computed targets it has no block for."""
    seen: set[int] = set()
    work = [0] + sorted(t for t in targets if 0 <= t < n_instrs)
    while work:
        p = work.pop()
        if p in seen or not 0 <= p < n_instrs:
            continue
        seen.add(p)
        length, halts, _ = _partition(p, n_instrs, jl, has_halt, has_ctl)
        if length and not halts and p + length < n_instrs:
            work.append(p + length)
    return sorted(seen)


def _tta_targets(decoded, jl):
    """Static branch-target candidates: every in-range immediate anywhere
    in the program (a jump/call/cjump target is always transported as an
    immediate somewhere) plus every call return site."""
    targets = set()
    for pc, (rf_moves, o1_moves, trig_moves, _counts) in enumerate(decoded):
        for src, _rf, _idx in rf_moves:
            if src[0] == "imm":
                targets.add(src[1])
        for src, _fu in o1_moves:
            if src[0] == "imm":
                targets.add(src[1])
        for src, _fu, opcode in trig_moves:
            if src[0] == "imm":
                targets.add(src[1])
            if opcode == "call":
                targets.add(pc + jl + 1)
    return targets


def _vliw_targets(decoded, jl):
    targets = set()
    for pc, bundle in enumerate(decoded):
        for name, srcs, _dest, _lat in bundle:
            for src in srcs:
                if src[0] == "imm":
                    targets.add(src[1])
            if name == "call":
                targets.add(pc + jl + 1)
    return targets


# ---------------------------------------------------------------------------
# program-level builders
# ---------------------------------------------------------------------------


def build_native_program(program: Program) -> NativeProgram | None:
    """Generate the C translation unit for *program*; ``None`` when the
    style is not supported or no block could be compiled."""
    if program.style == "tta":
        return _build_tta(program)
    if program.style == "vliw":
        return _build_vliw(program)
    return None


def _build_tta(program: Program) -> NativeProgram | None:
    decoded = static_decode_tta(program)
    n_instrs = len(decoded)
    if n_instrs == 0:
        return None
    machine = program.machine
    jl = machine.jump_latency
    rf_layout, rf_total = _rf_layout(machine)
    rf_off = {name: base for name, base, _size in rf_layout}
    fu_names = [fu.name for fu in machine.all_units]
    fu_idx = {name: i for i, name in enumerate(fu_names)}

    maxlat = 1  # getra pushes at cycle + 1
    for _rf_moves, _o1_moves, trig_moves, _counts in decoded:
        for _src, _fu, opcode in trig_moves:
            spec = OPS.get(opcode)
            if spec is not None and spec.latency > maxlat:
                maxlat = spec.latency
    pcap = 8
    while pcap < maxlat + 2:
        pcap *= 2

    def has_halt(p):
        return any(op == "halt" for _, _, op in decoded[p][2])

    def has_ctl(p):
        return any(op in _TTA_CTL for _, _, op in decoded[p][2])

    entries = _collect_entries(
        n_instrs, jl, has_halt, has_ctl, _tta_targets(decoded, jl)
    )
    blocks = []
    total = 0
    for start in entries:
        try:
            n, case = _gen_tta_block(
                program, start, decoded, rf_off, fu_idx, len(blocks)
            )
        except _Unsupported:
            continue
        if total + n > _MAX_TOTAL_CYCLES:
            break
        total += n
        blocks.append((start, n, case))
    if not blocks:
        return None
    source = _assemble("tta", n_instrs, blocks, pcap, 16)
    return NativeProgram(
        style="tta",
        source=source,
        n_instrs=n_instrs,
        entries=[(s, n) for s, n, _ in blocks],
        rf_layout=rf_layout,
        rf_total=rf_total,
        fu_names=fu_names,
        pcap=pcap,
        wcap=16,
        n_blocks=len(blocks),
    )


def _build_vliw(program: Program) -> NativeProgram | None:
    decoded = static_decode_vliw(program)
    n_instrs = len(decoded)
    if n_instrs == 0:
        return None
    machine = program.machine
    jl = machine.jump_latency
    rf_layout, rf_total = _rf_layout(machine)
    rf_off = {name: base for name, base, _size in rf_layout}
    maxlat = _vliw_max_latency(decoded)
    wcap = max(16, 4 * (maxlat + 2) * max(1, machine.issue_width))

    def has_halt(p):
        return any(op[0] == "halt" for op in decoded[p])

    def has_ctl(p):
        return any(op[0] in _VLIW_CTL for op in decoded[p])

    entries = _collect_entries(
        n_instrs, jl, has_halt, has_ctl, _vliw_targets(decoded, jl)
    )
    blocks = []
    total = 0
    for start in entries:
        try:
            n, case = _gen_vliw_block(
                program, start, decoded, rf_off, maxlat, len(blocks)
            )
        except _Unsupported:
            continue
        if total + n > _MAX_TOTAL_CYCLES:
            break
        total += n
        blocks.append((start, n, case))
    if not blocks:
        return None
    source = _assemble("vliw", n_instrs, blocks, pcap=8, wcap=wcap)
    return NativeProgram(
        style="vliw",
        source=source,
        n_instrs=n_instrs,
        entries=[(s, n) for s, n, _ in blocks],
        rf_layout=rf_layout,
        rf_total=rf_total,
        fu_names=[],
        pcap=8,
        wcap=wcap,
        n_blocks=len(blocks),
    )
