"""Cycle-accurate simulators for the three programming models.

All three simulators execute linked :class:`~repro.backend.program.Program`
streams against the same byte-addressed data memory and the shared
32-bit operation semantics of :mod:`repro.isa.semantics`, so results are
directly comparable with the IR interpreter (the test suite enforces
bit-exact agreement).  The TTA simulator additionally *verifies* the
schedule: reading a function-unit result before its latency has elapsed,
oversubscribing a bus, or exceeding a register file's ports is an error,
not a silent wrong answer.
"""

from repro.sim.batch import run_batch
from repro.sim.blockcompile import SIM_ENGINE_VERSION
from repro.sim.errors import SimError
from repro.sim.memory import DataMemory
from repro.sim.predecode import verify_tta_program, verify_vliw_program
from repro.sim.profile import SimProfile, collect_profile, format_profile
from repro.sim.run import run_compiled, run_compiled_profiled
from repro.sim.scalar_sim import ScalarResult, ScalarSimulator
from repro.sim.tta_sim import TTAResult, TTASimulator
from repro.sim.vliw_sim import VLIWResult, VLIWSimulator

__all__ = [
    "DataMemory",
    "SIM_ENGINE_VERSION",
    "ScalarResult",
    "ScalarSimulator",
    "SimError",
    "SimProfile",
    "TTAResult",
    "TTASimulator",
    "VLIWResult",
    "VLIWSimulator",
    "collect_profile",
    "format_profile",
    "run_batch",
    "run_compiled",
    "run_compiled_profiled",
    "verify_tta_program",
    "verify_vliw_program",
]
