"""One-call execution of a compiled program on the right simulator."""

from __future__ import annotations

from repro.backend.compile import CompiledProgram
from repro.machine.machine import MachineStyle
from repro.sim.scalar_sim import ScalarSimulator
from repro.sim.tta_sim import TTASimulator
from repro.sim.vliw_sim import VLIWSimulator


def run_compiled(
    compiled: CompiledProgram,
    check_connectivity: bool = False,
    max_cycles: int = 500_000_000,
    mode: str = "fast",
):
    """Simulate *compiled* on its machine; returns the style's result object
    (all results expose ``exit_code`` and ``cycles``).

    ``mode="fast"`` (the default) verifies all structural schedule
    properties once at load time and executes the pre-decoded program;
    ``mode="checked"`` runs the per-cycle reference engine.
    ``check_connectivity`` additionally routes every executed TTA move in
    checked mode (fast mode always verifies connectivity at load time).
    The scalar core has a single engine; *mode* is ignored there.
    """
    style = compiled.machine.style
    if style is MachineStyle.TTA:
        sim = TTASimulator(
            compiled.program,
            check_connectivity=check_connectivity,
            max_cycles=max_cycles,
            mode=mode,
        )
    elif style is MachineStyle.VLIW:
        sim = VLIWSimulator(compiled.program, max_cycles=max_cycles, mode=mode)
    else:
        sim = ScalarSimulator(compiled.program, max_cycles=max_cycles)
    sim.preload(compiled.data_init)
    return sim.run()
