"""One-call execution of a compiled program on the right simulator."""

from __future__ import annotations

from repro.backend.compile import CompiledProgram
from repro.machine.machine import MachineStyle
from repro.sim.scalar_sim import ScalarSimulator
from repro.sim.tta_sim import TTASimulator
from repro.sim.vliw_sim import VLIWSimulator


def _make_simulator(
    compiled: CompiledProgram,
    check_connectivity: bool,
    max_cycles: int,
    mode: str,
):
    style = compiled.machine.style
    if style is MachineStyle.TTA:
        sim = TTASimulator(
            compiled.program,
            check_connectivity=check_connectivity,
            max_cycles=max_cycles,
            mode=mode,
        )
    elif style is MachineStyle.VLIW:
        sim = VLIWSimulator(compiled.program, max_cycles=max_cycles, mode=mode)
    else:
        sim = ScalarSimulator(compiled.program, max_cycles=max_cycles)
    sim.preload(compiled.data_init)
    return sim


def run_compiled(
    compiled: CompiledProgram,
    check_connectivity: bool = False,
    max_cycles: int = 500_000_000,
    mode: str = "fast",
):
    """Simulate *compiled* on its machine; returns the style's result object
    (all results expose ``exit_code`` and ``cycles``).

    ``mode="fast"`` (the default) verifies all structural schedule
    properties once at load time and executes the pre-decoded program;
    ``mode="turbo"`` additionally compiles basic blocks to specialized
    Python code chained through a dispatch table (falling back per block
    to the fast engine where codegen cannot prove the block static);
    ``mode="native"`` compiles the same blocks to C via cffi/ctypes
    with the shared object cached in the artifact store (degrading to
    turbo with a one-time warning when no C compiler is available);
    ``mode="checked"`` runs the per-cycle reference engine;
    ``mode="batch"`` routes through the batched lockstep tier of
    :mod:`repro.sim.batch` (a single lane here -- use
    :func:`~repro.sim.batch.run_batch` directly for N-lane execution).
    ``check_connectivity`` additionally routes every executed TTA move in
    checked mode (fast and turbo modes always verify connectivity at
    load time).  The scalar core has a single engine; *mode* is ignored
    there.  All modes are bit- and cycle-exact with each other.
    """
    if mode == "batch":
        from repro.sim.batch import run_batch

        return run_batch(compiled, lanes=1, max_cycles=max_cycles)[0]
    return _make_simulator(compiled, check_connectivity, max_cycles, mode).run()


def run_compiled_profiled(
    compiled: CompiledProgram,
    max_cycles: int = 500_000_000,
    mode: str = "turbo",
):
    """Simulate *compiled* and return ``(result, SimProfile)``.

    Profiling rides on the hit vectors the fast/turbo/native engines
    already maintain, so it adds no per-cycle overhead; it is
    unavailable for the checked engine (no hit vector) and the scalar
    core.
    """
    from repro.sim.profile import collect_profile

    if compiled.machine.style is MachineStyle.SCALAR:
        raise ValueError("profiling supports TTA and VLIW cores only")
    if mode not in ("fast", "turbo", "native"):
        raise ValueError(
            f"profiling requires mode='fast' or mode='turbo' or "
            f"mode='native', not {mode!r}"
        )
    sim = _make_simulator(compiled, False, max_cycles, mode)
    result = sim.run()
    return result, collect_profile(sim, result)
