"""The benchmark workloads (CHStone-like kernels in MiniC).

Eight self-checking integer kernels mirroring the CHStone programs the
paper evaluates (the two SoftFloat cases are excluded there too), plus
extra hand-written workloads (``fft``) that are *not* part of the
paper's benchmark set.  Every kernel's ``main`` returns 0 on success
and a positive error code identifying the failed check, so correctness
is asserted on every architecture in every run.  See each ``.mc``
header for the exact relationship to its CHStone counterpart and any
substitution made.

Beyond the built-in ``.mc`` files, promoted fuzz kernels (see
``repro.corpus``) are addressable through :func:`load` and
:func:`catalog`: any kernel promoted into the corpus directory becomes
a first-class workload for ``repro sweep`` / ``repro explore`` /
``repro serve``.  ``KERNELS`` itself stays the paper's eight — the
eval layer's published-number comparisons depend on exactly that set.
"""

from __future__ import annotations

import json
import os
from functools import lru_cache
from pathlib import Path

from repro.frontend import compile_source
from repro.ir.module import Module

#: Kernel names in the paper's presentation order.
KERNELS: tuple[str, ...] = (
    "adpcm",
    "aes",
    "blowfish",
    "gsm",
    "jpeg",
    "mips",
    "motion",
    "sha",
)

#: Built-in workloads outside the paper's benchmark set.
EXTRA_KERNELS: tuple[str, ...] = ("fft",)

#: Every built-in kernel (paper set + extras).
ALL_KERNELS: tuple[str, ...] = KERNELS + EXTRA_KERNELS

_KERNEL_DIR = Path(__file__).parent

#: Environment override for the promoted-corpus directory.
PROMOTED_ENV = "REPRO_PROMOTED_CORPUS"


def promoted_dir() -> Path:
    """Directory holding promoted fuzz kernels (``<name>.mc`` files)."""
    env = os.environ.get(PROMOTED_ENV)
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / "fuzz" / "promoted"


def promoted_sources() -> dict[str, str]:
    """Name -> MiniC source for every promoted corpus kernel.

    Reads the directory fresh on every call (tests point
    ``REPRO_PROMOTED_CORPUS`` at temporary corpora), sorted by name for
    deterministic iteration.
    """
    root = promoted_dir()
    if not root.is_dir():
        return {}
    out: dict[str, str] = {}
    for path in sorted(root.glob("*.mc")):
        out[path.stem] = path.read_text()
    return out


def catalog(include_promoted: bool = True) -> tuple[str, ...]:
    """Every addressable kernel name: built-ins, then promoted."""
    names = list(ALL_KERNELS)
    if include_promoted:
        names.extend(n for n in promoted_sources() if n not in ALL_KERNELS)
    return tuple(names)


def kernel_source(name: str) -> str:
    """MiniC source text of the named built-in kernel."""
    if name not in ALL_KERNELS:
        raise KeyError(f"unknown kernel {name!r}; known: {ALL_KERNELS}")
    return (_KERNEL_DIR / f"{name}.mc").read_text()


def expected_exit(name: str) -> int:
    """Exit code the kernel's self-check is expected to produce.

    Built-in kernels return 0 on success; promoted fuzz kernels
    checksum their observable state into the exit code, and the value
    the oracle blessed at promotion time is carried in the kernel's
    golden sidecar (``<name>.golden.json``).  A promoted kernel whose
    golden is missing/unreadable falls back to 0 — which fails its
    sweep loudly rather than silently accepting any exit.
    """
    if name in ALL_KERNELS:
        return 0
    golden = promoted_dir() / f"{name}.golden.json"
    try:
        payload = json.loads(golden.read_text())
        return int(payload["expected_exit"])
    except (OSError, ValueError, KeyError, TypeError):
        return 0


def load(name: str) -> str:
    """MiniC source of any addressable kernel (built-in or promoted).

    Raises ``KeyError`` listing both built-in and promoted names when
    the kernel is unknown, and when a promoted kernel shadows a
    built-in name (the corpus must not silently override the benchmark
    set).
    """
    promoted = promoted_sources()
    if name in ALL_KERNELS:
        if name in promoted:
            raise KeyError(
                f"ambiguous kernel {name!r}: a promoted corpus kernel in "
                f"{promoted_dir()} shadows the built-in; rename the "
                f"promoted kernel"
            )
        return kernel_source(name)
    if name in promoted:
        return promoted[name]
    known = ALL_KERNELS + tuple(n for n in promoted if n not in ALL_KERNELS)
    raise KeyError(f"unknown kernel {name!r}; known: {known}")


@lru_cache(maxsize=None)
def compile_kernel(name: str, optimize: bool = True) -> Module:
    """Compile the named built-in kernel to an IR module (cached)."""
    return compile_source(kernel_source(name), module_name=name, optimize=optimize)
