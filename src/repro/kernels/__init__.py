"""The benchmark workloads (CHStone-like kernels in MiniC).

Eight self-checking integer kernels mirroring the CHStone programs the
paper evaluates (the two SoftFloat cases are excluded there too).  Every
kernel's ``main`` returns 0 on success and a positive error code
identifying the failed check, so correctness is asserted on every
architecture in every run.  See each ``.mc`` header for the exact
relationship to its CHStone counterpart and any substitution made.
"""

from __future__ import annotations

from functools import lru_cache
from pathlib import Path

from repro.frontend import compile_source
from repro.ir.module import Module

#: Kernel names in the paper's presentation order.
KERNELS: tuple[str, ...] = (
    "adpcm",
    "aes",
    "blowfish",
    "gsm",
    "jpeg",
    "mips",
    "motion",
    "sha",
)

_KERNEL_DIR = Path(__file__).parent


def kernel_source(name: str) -> str:
    """MiniC source text of the named kernel."""
    if name not in KERNELS:
        raise KeyError(f"unknown kernel {name!r}; known: {KERNELS}")
    return (_KERNEL_DIR / f"{name}.mc").read_text()


@lru_cache(maxsize=None)
def compile_kernel(name: str, optimize: bool = True) -> Module:
    """Compile the named kernel to an optimised IR module (cached)."""
    return compile_source(kernel_source(name), module_name=name, optimize=optimize)
