"""Process-local structured tracing and metrics.

The whole toolchain — frontend, IR passes, scheduler, register
allocator, linker, all three simulation engines and the sweep pipeline —
is instrumented with *spans* (named, nestable wall-clock intervals) and
*typed counters/gauges* (moves scheduled, spilled intervals, predecode
cache hits, instructions retired, RF traffic, ...).

Design constraints, in order:

1. **Near-zero overhead when disabled.**  Tracing is off by default.
   The module-level helpers :func:`span`, :func:`count` and
   :func:`gauge` read one module global; when no tracer is installed
   they return a shared no-op context manager / return immediately.
   Nothing is ever placed inside a per-cycle simulator loop — simulator
   counters are derived from the statistics the engines already
   maintain, *after* the run — so enabling tracing cannot perturb the
   measured cycle counts either (``benchmarks/bench_sim_throughput.py``
   asserts both properties).

2. **Deterministic measurement.**  Tracing is purely additive: it never
   changes control flow, and every architectural statistic is
   byte-identical with tracing enabled, disabled, or in checked mode
   (``tests/test_obs.py``).

3. **Cross-process aggregation.**  A :class:`Tracer` serialises to a
   plain-dict *payload* (:meth:`Tracer.to_payload`).  Pipeline workers
   ship their payloads back with each task outcome and
   :func:`repro.obs.export.merge_payloads` assembles one merged
   Chrome-trace timeline (absolute wall-clock alignment via each
   payload's epoch origin).

Typical use::

    from repro import obs

    with obs.tracing() as tracer:
        ...  # compile, simulate
    doc = obs.to_chrome_trace([tracer.to_payload()])

Library code adds instrumentation points like::

    with obs.span("backend.regalloc", function=name):
        allocate_registers(...)
    obs.count("regalloc.spills", len(spilled))
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager

#: bump when the payload layout changes
PAYLOAD_SCHEMA = 1

# ---------------------------------------------------------------------------
# module-level fast path
# ---------------------------------------------------------------------------

#: the installed tracer, or ``None`` (tracing disabled).  Read directly by
#: the hot helpers below; process-local by construction (workers install
#: their own tracer).
_ACTIVE: "Tracer | None" = None


class _NoopSpan:
    """Shared, stateless stand-in returned by :func:`span` when tracing
    is disabled.  Identity-comparable so tests can verify the fast path
    structurally instead of by timing."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


#: the singleton no-op span (``obs.span(...) is obs.NOOP_SPAN`` iff disabled)
NOOP_SPAN = _NoopSpan()


def span(name: str, **attrs):
    """A context manager timing one named region (no-op when disabled)."""
    tracer = _ACTIVE
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, **attrs)


def count(name: str, value: int = 1) -> None:
    """Add *value* to counter *name* (no-op when disabled)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.count(name, value)


def gauge(name: str, value: float) -> None:
    """Set gauge *name* to *value* (last write wins; no-op when disabled)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.gauge(name, value)


def enabled() -> bool:
    """Is a tracer currently installed in this process?"""
    return _ACTIVE is not None


def current() -> "Tracer | None":
    """The installed tracer, or ``None``."""
    return _ACTIVE


def enable(tracer: "Tracer | None" = None) -> "Tracer":
    """Install *tracer* (or a fresh one) as the process tracer.

    Raises ``RuntimeError`` if one is already installed: nested
    enablement would silently interleave two owners' spans.  Use one
    :func:`tracing` block per measured region instead.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a tracer is already enabled in this process")
    _ACTIVE = tracer if tracer is not None else Tracer()
    return _ACTIVE


def disable() -> "Tracer | None":
    """Uninstall and return the process tracer (``None`` if not enabled)."""
    global _ACTIVE
    tracer, _ACTIVE = _ACTIVE, None
    return tracer


@contextmanager
def tracing(tracer: "Tracer | None" = None):
    """``with obs.tracing() as tracer:`` — enable for the block's duration."""
    installed = enable(tracer)
    try:
        yield installed
    finally:
        disable()


# ---------------------------------------------------------------------------
# the tracer proper
# ---------------------------------------------------------------------------


class _Span:
    """One live span; records itself on the owning tracer at exit."""

    __slots__ = ("_tracer", "name", "attrs", "_start", "depth")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._start = 0.0
        self.depth = 0

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        self.depth = tracer._depth
        tracer._depth += 1
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        end = time.perf_counter()
        tracer = self._tracer
        tracer._depth -= 1
        tracer.spans.append(
            {
                "name": self.name,
                # microseconds relative to the tracer origin
                "ts": round((self._start - tracer._origin) * 1e6, 1),
                "dur": round((end - self._start) * 1e6, 1),
                "depth": self.depth,
                **({"args": self.attrs} if self.attrs else {}),
            }
        )
        return False


class Tracer:
    """Collects spans, counters and gauges for one process/region.

    Attributes:
        process: display name of the producing context (merged timelines
            use it as the Chrome-trace process name).
        request_id: optional request correlation id.  The serve layer
            stamps the originating HTTP request's id here so a worker's
            payload can be joined back to the request that caused it
            across the process boundary; exporters carry it through.
        spans: completed spans, in *completion* order (nested spans
            finish before their parents; depth + timestamps encode the
            hierarchy).
        counters: name -> accumulated integer value.
        gauges: name -> last written value.
    """

    def __init__(self, process: str | None = None, request_id: str | None = None):
        self.process = process or f"pid-{os.getpid()}"
        self.request_id = request_id
        self.spans: list[dict] = []
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self._depth = 0
        self._origin = time.perf_counter()
        #: wall-clock instant of the origin, for cross-process alignment
        self._origin_epoch_us = time.time() * 1e6 - self._origin * 1e6

    # -- recording --------------------------------------------------------

    def span(self, name: str, **attrs) -> _Span:
        return _Span(self, name, attrs)

    def count(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    # -- serialisation ----------------------------------------------------

    def to_payload(self) -> dict:
        """A plain-dict, JSON/pickle-safe snapshot of everything recorded."""
        payload = {
            "schema": PAYLOAD_SCHEMA,
            "process": self.process,
            "origin_epoch_us": round(self._origin_epoch_us, 1),
            "spans": list(self.spans),
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
        }
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        return payload

    @staticmethod
    def validate_payload(payload: dict) -> dict:
        """Check a payload's shape; returns it or raises ``ValueError``."""
        if not isinstance(payload, dict):
            raise ValueError(f"trace payload must be a dict, got {type(payload)!r}")
        if payload.get("schema") != PAYLOAD_SCHEMA:
            raise ValueError(
                f"trace payload schema mismatch: "
                f"{payload.get('schema')!r} != {PAYLOAD_SCHEMA}"
            )
        for key, kind in (
            ("spans", list),
            ("counters", dict),
            ("gauges", dict),
        ):
            if not isinstance(payload.get(key), kind):
                raise ValueError(f"trace payload field {key!r} malformed")
        if "request_id" in payload and not isinstance(payload["request_id"], str):
            raise ValueError("trace payload field 'request_id' malformed")
        return payload
