"""Trace exporters: merged Chrome-trace documents, flat JSON, summaries.

The on-disk format is the Chrome trace-event *object* form —
``{"traceEvents": [...], ...}`` — loadable directly in
``chrome://tracing`` / Perfetto.  Repro-specific data (merged counters,
per-process payload metadata) rides in a ``"repro"`` side table that
trace viewers ignore but ``repro trace summary`` consumes.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.tracer import PAYLOAD_SCHEMA, Tracer

#: bump when the merged-document layout changes
TRACE_DOC_SCHEMA = 1


def merge_payloads(payloads: list[dict]) -> dict:
    """Aggregate tracer payloads from any number of processes.

    Counters sum across payloads; gauges keep the last write per name
    (payload order); spans stay attributed to their producing payload.
    Returns ``{"schema", "payloads", "counters", "gauges"}``.
    """
    merged_counters: dict[str, int] = {}
    merged_gauges: dict[str, float] = {}
    checked = []
    for payload in payloads:
        payload = Tracer.validate_payload(payload)
        checked.append(payload)
        for name, value in payload["counters"].items():
            merged_counters[name] = merged_counters.get(name, 0) + value
        merged_gauges.update(payload["gauges"])
    return {
        "schema": PAYLOAD_SCHEMA,
        "payloads": checked,
        "counters": merged_counters,
        "gauges": merged_gauges,
    }


def to_chrome_trace(payloads: list[dict]) -> dict:
    """Build one Chrome-trace document from tracer *payloads*.

    Spans become ``ph:"X"`` complete events; each payload becomes one
    Chrome process (named after ``payload["process"]``).  Timestamps are
    aligned on the earliest payload origin, so a merged sweep timeline
    shows the true wall-clock overlap of the worker processes.
    """
    merged = merge_payloads(payloads)
    events: list[dict] = []
    origins = [p["origin_epoch_us"] for p in merged["payloads"]] or [0.0]
    base = min(origins)
    for pid, payload in enumerate(merged["payloads"], start=1):
        offset = payload["origin_epoch_us"] - base
        process_args = {"name": payload["process"]}
        if payload.get("request_id"):
            # request correlation: the serve layer stamps each worker
            # tracer with the originating HTTP request id
            process_args["request_id"] = payload["request_id"]
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": process_args,
            }
        )
        for rec in payload["spans"]:
            event = {
                "name": rec["name"],
                "ph": "X",
                "pid": pid,
                "tid": 0,
                "ts": round(rec["ts"] + offset, 1),
                "dur": rec["dur"],
            }
            if rec.get("args"):
                event["args"] = rec["args"]
            events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "repro": {
            "schema": TRACE_DOC_SCHEMA,
            "counters": merged["counters"],
            "gauges": merged["gauges"],
            "payloads": merged["payloads"],
        },
    }


def write_trace(path: str | Path, doc: dict) -> Path:
    """Serialise *doc* to *path*.  Propagates ``OSError`` — the CLI turns
    an unwritable destination into exit code 2 with a message."""
    path = Path(path)
    path.write_text(json.dumps(doc, sort_keys=True) + "\n")
    return path


def load_trace(path: str | Path) -> dict:
    """Load and shape-check a trace document written by :func:`write_trace`.

    Raises ``OSError`` for unreadable paths and ``ValueError`` for
    files that are not repro trace documents.
    """
    text = Path(path).read_text()
    try:
        doc = json.loads(text)
    except ValueError as exc:
        raise ValueError(f"not JSON: {exc}") from exc
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        raise ValueError("not a Chrome-trace document (missing traceEvents)")
    repro = doc.get("repro")
    if not isinstance(repro, dict) or repro.get("schema") != TRACE_DOC_SCHEMA:
        raise ValueError(
            "not a repro trace document (missing/mismatched repro side table)"
        )
    return doc


# ---------------------------------------------------------------------------
# summaries
# ---------------------------------------------------------------------------


def summarize(doc: dict) -> dict:
    """Aggregate a trace document for human consumption.

    Returns ``{"spans": [...], "counters": {...}, "gauges": {...},
    "processes": [...]}`` where each span row carries ``name``,
    ``count``, ``total_us``, ``mean_us`` and ``max_us``, sorted by total
    time descending.
    """
    by_name: dict[str, list[float]] = {}
    processes: list[str] = []
    for payload in doc["repro"]["payloads"]:
        processes.append(payload["process"])
        for rec in payload["spans"]:
            by_name.setdefault(rec["name"], []).append(rec["dur"])
    rows = [
        {
            "name": name,
            "count": len(durs),
            "total_us": round(sum(durs), 1),
            "mean_us": round(sum(durs) / len(durs), 1),
            "max_us": round(max(durs), 1),
        }
        for name, durs in by_name.items()
    ]
    rows.sort(key=lambda r: (-r["total_us"], r["name"]))
    return {
        "spans": rows,
        "counters": dict(doc["repro"]["counters"]),
        "gauges": dict(doc["repro"]["gauges"]),
        "processes": processes,
    }


def format_summary(summary: dict, top: int = 20) -> str:
    """Render :func:`summarize` output as an aligned text report."""
    lines = [
        f"{len(summary['processes'])} process(es): "
        + ", ".join(summary["processes"][:8])
        + (" ..." if len(summary["processes"]) > 8 else "")
    ]
    lines.append("")
    lines.append(f"top spans (by total time, showing {top}):")
    lines.append(
        f"  {'span':32s} {'count':>7s} {'total':>12s} {'mean':>10s} {'max':>10s}"
    )
    for row in summary["spans"][:top]:
        lines.append(
            f"  {row['name']:32s} {row['count']:7d} "
            f"{row['total_us']:10.1f}us {row['mean_us']:8.1f}us "
            f"{row['max_us']:8.1f}us"
        )
    if not summary["spans"]:
        lines.append("  (no spans recorded)")
    lines.append("")
    lines.append("counters:")
    for name in sorted(summary["counters"]):
        lines.append(f"  {name:40s} {summary['counters'][name]:>14,d}")
    if not summary["counters"]:
        lines.append("  (no counters recorded)")
    if summary["gauges"]:
        lines.append("")
        lines.append("gauges:")
        for name in sorted(summary["gauges"]):
            lines.append(f"  {name:40s} {summary['gauges'][name]:>14}")
    return "\n".join(lines)
