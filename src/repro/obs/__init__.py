"""Observability: structured tracing + metrics for the whole stack.

``repro.obs`` provides a process-local :class:`Tracer` with nestable
spans and typed counters/gauges, module-level no-op fast paths so the
instrumentation costs (almost) nothing when disabled, Chrome-trace and
flat-JSON exporters, and cross-process payload aggregation used by the
sweep pipeline (`repro sweep --trace`).

See :mod:`repro.obs.tracer` for the design notes and
``README.md#observability`` for the user-facing walkthrough.
"""

from repro.obs.export import (
    TRACE_DOC_SCHEMA,
    format_summary,
    load_trace,
    merge_payloads,
    summarize,
    to_chrome_trace,
    write_trace,
)
from repro.obs.tracer import (
    NOOP_SPAN,
    PAYLOAD_SCHEMA,
    Tracer,
    count,
    current,
    disable,
    enable,
    enabled,
    gauge,
    span,
    tracing,
)

__all__ = [
    "NOOP_SPAN",
    "PAYLOAD_SCHEMA",
    "TRACE_DOC_SCHEMA",
    "Tracer",
    "count",
    "current",
    "disable",
    "enable",
    "enabled",
    "format_summary",
    "gauge",
    "load_trace",
    "merge_payloads",
    "span",
    "summarize",
    "to_chrome_trace",
    "tracing",
    "write_trace",
]
