"""repro -- Transport-Triggered Soft Cores, reproduced in Python.

A full-stack soft-core co-design toolkit in the spirit of TCE, built to
reproduce "Transport-Triggered Soft Cores" (Jääskeläinen et al., 2018):

* describe a TTA/VLIW/scalar design point (:mod:`repro.machine`),
* compile MiniC through a shared optimising compiler
  (:mod:`repro.frontend`, :mod:`repro.ir`, :mod:`repro.backend`),
* simulate cycle-accurately (:mod:`repro.sim`),
* estimate FPGA cost and fmax (:mod:`repro.fpga`),
* and regenerate the paper's tables and figures (:mod:`repro.eval`).

Quickstart::

    from repro import compile_and_run

    result = compile_and_run("int main(void){ return 6*7; }", "m-tta-2")
    print(result.exit_code, result.cycles)
"""

from repro.backend import CompiledProgram, compile_for_machine
from repro.frontend import compile_source
from repro.fpga import synthesize
from repro.ir import Interpreter, Module
from repro.machine import (
    Machine,
    build_machine,
    encode_machine,
    preset_names,
    validate_machine,
)
from repro.sim import run_compiled

__version__ = "1.0.0"

__all__ = [
    "CompiledProgram",
    "Interpreter",
    "Machine",
    "Module",
    "build_machine",
    "compile_and_run",
    "compile_for_machine",
    "compile_source",
    "encode_machine",
    "preset_names",
    "run_compiled",
    "synthesize",
    "validate_machine",
]


def compile_and_run(source: str, machine_name: str, check_connectivity: bool = False):
    """Compile MiniC *source* for the named design point and simulate it.

    Returns the simulator result (``exit_code``, ``cycles`` and
    style-specific statistics).
    """
    module = compile_source(source)
    machine = build_machine(machine_name)
    compiled = compile_for_machine(module, machine)
    return run_compiled(compiled, check_connectivity=check_connectivity)
