"""IR generation from the analysed MiniC AST.

Value representation convention: every scalar lives in a 32-bit virtual
register.  Sub-32-bit typed values are kept *normalised* -- sign-extended
(signed) or zero-extended (unsigned) to 32 bits -- at all times; loads
extend, assignments to narrow variables re-normalise, and stores truncate
naturally.  This matches what the hardware's ``sxqw``/``sxhw`` and the
typed loads/stores of Table I do.
"""

from __future__ import annotations

from repro.frontend import cst_ast as ast
from repro.frontend.cst_ast import (
    ArrType,
    CType,
    IntType,
    PtrType,
    VoidType,
    decay,
    is_array,
    is_integer,
    is_pointer,
)
from repro.frontend.errors import CompileError
from repro.frontend.parser import parse
from repro.frontend.runtime import RUNTIME_SOURCE
from repro.frontend.sema import ProgramInfo, analyze
from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.instructions import Const, Operand, Sym, VReg
from repro.ir.module import GlobalVar, Module

_MASK32 = 0xFFFFFFFF


def _load_op(ty: CType) -> str:
    if isinstance(ty, (PtrType, ArrType)):
        return "ldw"
    assert isinstance(ty, IntType)
    if ty.bits == 32:
        return "ldw"
    if ty.bits == 16:
        return "ldh" if ty.signed else "ldhu"
    return "ldq" if ty.signed else "ldqu"


def _store_op(ty: CType) -> str:
    if isinstance(ty, (PtrType, ArrType)):
        return "stw"
    assert isinstance(ty, IntType)
    return {32: "stw", 16: "sth", 8: "stq"}[ty.bits]


def _is_unsigned(ty: CType) -> bool:
    # Pointers compare/shift as unsigned; promoted sub-int types are signed.
    if isinstance(ty, PtrType):
        return True
    return isinstance(ty, IntType) and ty.bits == 32 and not ty.signed


class _LoopContext:
    def __init__(self, break_target: str, continue_target: str) -> None:
        self.break_target = break_target
        self.continue_target = continue_target


class _IRGen:
    def __init__(self, info: ProgramInfo, module_name: str) -> None:
        self.info = info
        self.module = Module(module_name)
        self.fn: Function | None = None
        self.b: IRBuilder | None = None
        self.loops: list[_LoopContext] = []
        #: symbol-id -> VReg for register-stored locals/params
        self.reg_slots: dict[int, VReg] = {}
        #: symbol-id -> frame slot name for frame-stored locals/params
        self.frame_names: dict[int, str] = {}

    # ---- driver --------------------------------------------------------------

    def run(self) -> Module:
        self._emit_globals()
        for item in self.info.unit.items:
            if isinstance(item, ast.FuncDef) and item.body is not None:
                self._function(item)
        missing = [
            name for name, sym in self.info.functions.items() if not sym.defined
        ]
        if missing:
            raise CompileError(f"undefined functions: {sorted(missing)}")
        self.module.verify()
        return self.module

    # ---- globals ----------------------------------------------------------------

    def _emit_globals(self) -> None:
        # Register sizes first (symbol addresses may appear in initialisers
        # and layout is deterministic in insertion order).
        for name, data in self.info.strings:
            self.module.add_global(GlobalVar(name, len(data), 1, data))
        for name, decl in self.info.globals.items():
            ty = decl.ty
            size = ty.size
            self.module.add_global(GlobalVar(name, size, ast.alignment_of(ty)))
        symbols = self.module.layout_globals()
        for name, decl in self.info.globals.items():
            if decl.init is not None:
                data = bytearray(decl.ty.size)
                self._const_init_bytes(decl.init, decl.ty, data, 0, symbols, decl)
                self.module.globals[name].init = bytes(data)

    def _const_init_bytes(
        self,
        init,
        ty: CType,
        out: bytearray,
        offset: int,
        symbols: dict[str, int],
        decl,
    ) -> None:
        if isinstance(init, ast.InitList):
            if not is_array(ty):
                raise CompileError("brace initialiser for scalar global", init.line, init.col)
            elem_size = ty.elem.size
            for i, item in enumerate(init.items):
                self._const_init_bytes(item, ty.elem, out, offset + i * elem_size, symbols, decl)
            return
        if isinstance(init, ast.StrLit):
            if is_array(ty) and isinstance(ty.elem, IntType) and ty.elem.bits == 8:
                data = init.data[: ty.size]
                out[offset : offset + len(data)] = data
                return
            # char* initialised with a string: store its address.
            value = symbols[init.ir_name]
            out[offset : offset + 4] = value.to_bytes(4, "little")
            return
        value = self._const_value(init, symbols)
        size = ty.size if isinstance(ty, IntType) else 4
        out[offset : offset + size] = (value & _MASK32).to_bytes(4, "little")[:size]

    def _const_value(self, expr: ast.Expr, symbols: dict[str, int]) -> int:
        if isinstance(expr, ast.Num):
            return expr.value & _MASK32
        if isinstance(expr, ast.Unary):
            if expr.op == "-":
                return (-self._const_value(expr.operand, symbols)) & _MASK32
            if expr.op == "~":
                return (~self._const_value(expr.operand, symbols)) & _MASK32
            if expr.op == "&" and isinstance(expr.operand, ast.Ident):
                return symbols[expr.operand.symbol.ir_name]
        if isinstance(expr, ast.Ident) and expr.symbol is not None:
            if expr.symbol.kind == "global" and is_array(expr.symbol.ty):
                return symbols[expr.symbol.ir_name]
        if isinstance(expr, ast.Cast):
            return self._truncate_const(self._const_value(expr.operand, symbols), expr.target_type)
        if isinstance(expr, ast.SizeOf):
            ty = expr.target_type if expr.target_type is not None else expr.operand.ty
            return ty.size
        if isinstance(expr, ast.Binary):
            a = self._const_value(expr.left, symbols)
            b = self._const_value(expr.right, symbols)
            from repro.isa.semantics import evaluate, to_signed

            table = {
                "+": "add",
                "-": "sub",
                "*": "mul",
                "&": "and",
                "|": "ior",
                "^": "xor",
                "<<": "shl",
            }
            if expr.op in table:
                return evaluate(table[expr.op], (a, b))
            if expr.op == ">>":
                signed = isinstance(expr.left.ty, IntType) and expr.left.ty.signed
                return evaluate("shr" if signed else "shru", (a, b))
            if expr.op == "/":
                if b == 0:
                    raise CompileError("division by zero in constant", expr.line, expr.col)
                # C division truncates toward zero; Python's ``//`` floors.
                sa, sb = to_signed(a), to_signed(b)
                quotient = abs(sa) // abs(sb)
                if (sa < 0) != (sb < 0):
                    quotient = -quotient
                return quotient & _MASK32
        raise CompileError("initialiser is not a compile-time constant", expr.line, expr.col)

    @staticmethod
    def _truncate_const(value: int, ty: CType) -> int:
        if isinstance(ty, IntType) and ty.bits < 32:
            mask = (1 << ty.bits) - 1
            value &= mask
            if ty.signed and value & (1 << (ty.bits - 1)):
                value |= _MASK32 ^ mask
        return value & _MASK32

    # ---- functions ------------------------------------------------------------------

    def _function(self, fn_ast: ast.FuncDef) -> None:
        fn = Function(fn_ast.name, num_params=len(fn_ast.params))
        self.module.add_function(fn)
        self.fn = fn
        self.b = IRBuilder(fn)
        self.reg_slots.clear()
        self.frame_names.clear()
        entry = fn.new_block("entry")
        self.b.set_block(entry)

        for param_ast, vreg in zip(fn_ast.params, fn.params):
            symbol = param_ast.symbol  # type: ignore[attr-defined]
            if symbol.storage == "frame":
                slot = fn.add_frame_slot(symbol.ir_name, 4, 4)
                self.frame_names[id(symbol)] = slot
                addr = self.b.frame_addr(slot)
                self.b.store("stw", addr, vreg)
            else:
                self.reg_slots[id(symbol)] = vreg

        self._stmt(fn_ast.body)

        # Fall off the end: implicit return.
        if self.b.block is not None and not self.b.block.is_terminated:
            if isinstance(fn_ast.ret_type, VoidType):
                self.b.ret(None)
            else:
                self.b.ret(Const(0))
        self.fn = None
        self.b = None

    # ---- statements -------------------------------------------------------------------

    def _stmt(self, stmt: ast.Stmt) -> None:
        if self.b.block is None or self.b.block.is_terminated:
            # Unreachable code after return/break: drop it into a fresh,
            # unreferenced block so the IR stays well-formed, then let
            # simplify-cfg remove it.
            self.b.set_block(self.fn.new_block("dead"))
        if isinstance(stmt, ast.Block):
            for inner in stmt.stmts:
                self._stmt(inner)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._rvalue(stmt.expr)
        elif isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                self._local_decl(decl)
        elif isinstance(stmt, ast.If):
            self._if(stmt)
        elif isinstance(stmt, ast.While):
            self._while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._for(stmt)
        elif isinstance(stmt, ast.Break):
            if not self.loops:
                raise CompileError("break outside loop", stmt.line, stmt.col)
            self.b.jump(self.loops[-1].break_target)
        elif isinstance(stmt, ast.Continue):
            if not self.loops:
                raise CompileError("continue outside loop", stmt.line, stmt.col)
            self.b.jump(self.loops[-1].continue_target)
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                self.b.ret(None)
            else:
                self.b.ret(self._rvalue(stmt.value))
        else:
            raise CompileError(f"unhandled statement {type(stmt).__name__}", stmt.line, stmt.col)

    def _local_decl(self, decl: ast.Declarator) -> None:
        symbol = decl.symbol
        assert symbol is not None
        if symbol.storage == "frame":
            size = symbol.ty.size if not is_array(symbol.ty) or symbol.ty.count else 4
            slot = self.fn.add_frame_slot(symbol.ir_name, size, ast.alignment_of(symbol.ty))
            self.frame_names[id(symbol)] = slot
            if decl.init is not None:
                if isinstance(decl.init, ast.InitList):
                    base = self.b.frame_addr(slot)
                    self._emit_local_init_list(decl.init, symbol.ty, base, 0)
                elif isinstance(decl.init, ast.StrLit) and is_array(symbol.ty):
                    base = self.b.frame_addr(slot)
                    data = decl.init.data[: symbol.ty.size].ljust(symbol.ty.size, b"\0")
                    for i, byte in enumerate(data):
                        addr = self.b.binop("add", base, Const(i))
                        self.b.store("stq", addr, Const(byte))
                else:
                    value = self._rvalue(decl.init)
                    addr = self.b.frame_addr(slot)
                    self.b.store(_store_op(symbol.ty), addr, value)
        else:
            vreg = self.fn.new_vreg()
            self.reg_slots[id(symbol)] = vreg
            if decl.init is not None:
                value = self._rvalue(decl.init)
                value = self._normalize(value, symbol.ty)
                self.b.copy(value, dest=vreg)

    def _emit_local_init_list(self, init: ast.InitList, ty: ArrType, base: VReg, offset: int) -> None:
        elem = ty.elem
        elem_size = elem.size
        count = ty.count or len(init.items)
        for i in range(count):
            item = init.items[i] if i < len(init.items) else None
            elem_offset = offset + i * elem_size
            if isinstance(item, ast.InitList):
                self._emit_local_init_list(item, elem, base, elem_offset)
            elif item is None:
                if is_array(elem):
                    self._emit_local_init_list(ast.InitList([]), elem, base, elem_offset)
                else:
                    addr = self.b.binop("add", base, Const(elem_offset))
                    self.b.store(_store_op(elem), addr, Const(0))
            else:
                value = self._rvalue(item)
                addr = self.b.binop("add", base, Const(elem_offset))
                self.b.store(_store_op(elem), addr, value)

    def _if(self, stmt: ast.If) -> None:
        then_bb = self.fn.new_block("then")
        end_bb = self.fn.new_block("endif")
        else_bb = self.fn.new_block("else") if stmt.els is not None else end_bb
        self._branch(stmt.cond, then_bb.name, else_bb.name)
        self.b.set_block(then_bb)
        self._stmt(stmt.then)
        if not self.b.block.is_terminated:
            self.b.jump(end_bb)
        if stmt.els is not None:
            self.b.set_block(else_bb)
            self._stmt(stmt.els)
            if not self.b.block.is_terminated:
                self.b.jump(end_bb)
        self.b.set_block(end_bb)

    def _while(self, stmt: ast.While) -> None:
        head = self.fn.new_block("while.head")
        body = self.fn.new_block("while.body")
        end = self.fn.new_block("while.end")
        self.b.jump(head)
        self.b.set_block(head)
        self._branch(stmt.cond, body.name, end.name)
        self.b.set_block(body)
        self.loops.append(_LoopContext(end.name, head.name))
        self._stmt(stmt.body)
        self.loops.pop()
        if not self.b.block.is_terminated:
            self.b.jump(head)
        self.b.set_block(end)

    def _do_while(self, stmt: ast.DoWhile) -> None:
        body = self.fn.new_block("do.body")
        cond = self.fn.new_block("do.cond")
        end = self.fn.new_block("do.end")
        self.b.jump(body)
        self.b.set_block(body)
        self.loops.append(_LoopContext(end.name, cond.name))
        self._stmt(stmt.body)
        self.loops.pop()
        if not self.b.block.is_terminated:
            self.b.jump(cond)
        self.b.set_block(cond)
        self._branch(stmt.cond, body.name, end.name)
        self.b.set_block(end)

    def _for(self, stmt: ast.For) -> None:
        if stmt.init is not None:
            self._stmt(stmt.init)
        head = self.fn.new_block("for.head")
        body = self.fn.new_block("for.body")
        step = self.fn.new_block("for.step")
        end = self.fn.new_block("for.end")
        self.b.jump(head)
        self.b.set_block(head)
        if stmt.cond is not None:
            self._branch(stmt.cond, body.name, end.name)
        else:
            self.b.jump(body)
        self.b.set_block(body)
        self.loops.append(_LoopContext(end.name, step.name))
        self._stmt(stmt.body)
        self.loops.pop()
        if not self.b.block.is_terminated:
            self.b.jump(step)
        self.b.set_block(step)
        if stmt.step is not None:
            self._rvalue(stmt.step)
        self.b.jump(head)
        self.b.set_block(end)

    # ---- branch generation --------------------------------------------------------------

    def _branch(self, cond: ast.Expr, true_bb: str, false_bb: str) -> None:
        """Emit a conditional branch, specialising comparisons and &&/||."""
        if isinstance(cond, ast.Unary) and cond.op == "!":
            self._branch(cond.operand, false_bb, true_bb)
            return
        if isinstance(cond, ast.Binary) and cond.op == "&&":
            mid = self.fn.new_block("and.rhs")
            self._branch(cond.left, mid.name, false_bb)
            self.b.set_block(mid)
            self._branch(cond.right, true_bb, false_bb)
            return
        if isinstance(cond, ast.Binary) and cond.op == "||":
            mid = self.fn.new_block("or.rhs")
            self._branch(cond.left, true_bb, mid.name)
            self.b.set_block(mid)
            self._branch(cond.right, true_bb, false_bb)
            return
        if isinstance(cond, ast.Binary) and cond.op in ("==", "!=", "<", ">", "<=", ">="):
            value, invert = self._compare(cond)
            if invert:
                true_bb, false_bb = false_bb, true_bb
            self.b.cjump(value, true_bb, false_bb)
            return
        value = self._rvalue(cond)
        self.b.cjump(value, true_bb, false_bb)

    def _compare(self, expr: ast.Binary) -> tuple[VReg, bool]:
        """Lower a comparison to (vreg, inverted) using eq/gt/gtu only."""
        a = self._rvalue(expr.left)
        b_val = self._rvalue(expr.right)
        unsigned = _is_unsigned(decay(expr.left.ty)) or _is_unsigned(decay(expr.right.ty))
        gt = "gtu" if unsigned else "gt"
        op = expr.op
        if op == "==":
            return self.b.binop("eq", a, b_val), False
        if op == "!=":
            return self.b.binop("eq", a, b_val), True
        if op == ">":
            return self.b.binop(gt, a, b_val), False
        if op == "<":
            return self.b.binop(gt, b_val, a), False
        if op == "<=":
            return self.b.binop(gt, a, b_val), True
        if op == ">=":
            return self.b.binop(gt, b_val, a), True
        raise CompileError(f"not a comparison: {op}", expr.line, expr.col)

    # ---- lvalues / addresses -------------------------------------------------------------

    def _addr_of(self, expr: ast.Expr) -> Operand:
        if isinstance(expr, ast.Ident):
            symbol = expr.symbol
            assert symbol is not None
            if symbol.kind == "global":
                return Sym(symbol.ir_name)
            if symbol.storage == "frame":
                return self.b.frame_addr(self.frame_names[id(symbol)])
            raise CompileError(f"cannot take address of register variable {expr.name}", expr.line, expr.col)
        if isinstance(expr, ast.StrLit):
            return Sym(expr.ir_name)
        if isinstance(expr, ast.Index):
            base = self._rvalue(expr.base)  # arrays decay to their address
            index = self._rvalue(expr.index)
            elem_ty = decay(expr.base.ty).pointee
            scaled = self._scale(index, elem_ty.size)
            return self.b.binop("add", base, scaled)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return self._rvalue(expr.operand)
        raise CompileError("expression has no address", expr.line, expr.col)

    def _scale(self, index: Operand, size: int) -> Operand:
        if size == 1:
            return index
        if isinstance(index, Const):
            return Const((index.value * size) & _MASK32)
        if size & (size - 1) == 0:
            return self.b.binop("shl", index, Const(size.bit_length() - 1))
        return self.b.binop("mul", index, Const(size))

    # ---- rvalues ------------------------------------------------------------------------

    def _rvalue(self, expr: ast.Expr) -> Operand:
        if isinstance(expr, ast.Num):
            return Const(expr.value & _MASK32)
        if isinstance(expr, ast.StrLit):
            return Sym(expr.ir_name)
        if isinstance(expr, ast.SizeOf):
            ty = expr.target_type if expr.target_type is not None else expr.operand.ty
            return Const(ty.size)
        if isinstance(expr, ast.Ident):
            symbol = expr.symbol
            assert symbol is not None
            if is_array(symbol.ty):
                return self._addr_of(expr)
            if symbol.kind == "global" or symbol.storage == "frame":
                addr = self._addr_of(expr)
                return self.b.load(_load_op(symbol.ty), addr)
            return self.reg_slots[id(symbol)]
        if isinstance(expr, ast.Index):
            elem_ty = decay(expr.base.ty).pointee
            addr = self._addr_of(expr)
            if is_array(elem_ty):
                return addr  # sub-array: the address is the value
            return self.b.load(_load_op(elem_ty), addr)
        if isinstance(expr, ast.Unary):
            return self._unary(expr)
        if isinstance(expr, ast.Binary):
            return self._binary(expr)
        if isinstance(expr, ast.Assign):
            return self._assign(expr)
        if isinstance(expr, ast.IncDec):
            return self._incdec(expr)
        if isinstance(expr, ast.Ternary):
            return self._ternary(expr)
        if isinstance(expr, ast.CallExpr):
            args = [self._rvalue(a) for a in expr.args]
            want = not isinstance(expr.symbol.ret_type, VoidType)
            result = self.b.call(expr.name, args, want_result=want)
            return result if result is not None else Const(0)
        if isinstance(expr, ast.Cast):
            value = self._rvalue(expr.operand)
            return self._normalize(value, expr.target_type)
        raise CompileError(f"unhandled expression {type(expr).__name__}", expr.line, expr.col)

    def _normalize(self, value: Operand, ty: CType) -> Operand:
        """Re-normalise a 32-bit value to a (possibly narrower) type."""
        if not isinstance(ty, IntType) or ty.bits == 32:
            return value
        if isinstance(value, Const):
            return Const(self._truncate_const(value.value, ty))
        if ty.signed:
            return self.b.unop("sxhw" if ty.bits == 16 else "sxqw", value)
        mask = (1 << ty.bits) - 1
        return self.b.binop("and", value, Const(mask))

    def _unary(self, expr: ast.Unary) -> Operand:
        if expr.op == "&":
            return self._addr_of(expr.operand)
        if expr.op == "*":
            pointee = decay(expr.operand.ty).pointee
            addr = self._rvalue(expr.operand)
            if is_array(pointee):
                return addr
            return self.b.load(_load_op(pointee), addr)
        value = self._rvalue(expr.operand)
        if expr.op == "-":
            if isinstance(value, Const):
                return Const((-value.value) & _MASK32)
            return self.b.binop("sub", Const(0), value)
        if expr.op == "~":
            return self.b.binop("xor", value, Const(_MASK32))
        if expr.op == "!":
            return self.b.binop("eq", value, Const(0))
        raise CompileError(f"unhandled unary {expr.op!r}", expr.line, expr.col)

    _DIRECT_BINOPS = {
        "+": "add",
        "-": "sub",
        "*": "mul",
        "&": "and",
        "|": "ior",
        "^": "xor",
        "<<": "shl",
    }

    def _binary(self, expr: ast.Binary) -> Operand:
        op = expr.op
        if op in ("&&", "||"):
            return self._logical(expr)
        if op in ("==", "!=", "<", ">", "<=", ">="):
            value, invert = self._compare(expr)
            if invert:
                return self.b.binop("xor", value, Const(1))
            return value

        lt = decay(expr.left.ty)
        rt = decay(expr.right.ty)

        if op == "+" and (is_pointer(lt) or is_pointer(rt)):
            if is_pointer(rt):
                expr_left, expr_right = expr.right, expr.left
                lt, rt = rt, lt
            else:
                expr_left, expr_right = expr.left, expr.right
            base = self._rvalue(expr_left)
            index = self._rvalue(expr_right)
            return self.b.binop("add", base, self._scale(index, lt.pointee.size))
        if op == "-" and is_pointer(lt) and is_pointer(rt):
            a = self._rvalue(expr.left)
            b_val = self._rvalue(expr.right)
            diff = self.b.binop("sub", a, b_val)
            size = lt.pointee.size
            if size == 1:
                return diff
            if size & (size - 1) == 0:
                return self.b.binop("shr", diff, Const(size.bit_length() - 1))
            return self.b.call("__divs", [diff, Const(size)])
        if op == "-" and is_pointer(lt):
            base = self._rvalue(expr.left)
            index = self._rvalue(expr.right)
            return self.b.binop("sub", base, self._scale(index, lt.pointee.size))

        a = self._rvalue(expr.left)
        b_val = self._rvalue(expr.right)
        unsigned = _is_unsigned(lt) or _is_unsigned(rt)
        if op in self._DIRECT_BINOPS:
            return self.b.binop(self._DIRECT_BINOPS[op], a, b_val)
        if op == ">>":
            shift = "shru" if _is_unsigned(lt) else "shr"
            return self.b.binop(shift, a, b_val)
        if op == "/":
            return self.b.call("__divu" if unsigned else "__divs", [a, b_val])
        if op == "%":
            return self.b.call("__remu" if unsigned else "__rems", [a, b_val])
        raise CompileError(f"unhandled binary {op!r}", expr.line, expr.col)

    def _logical(self, expr: ast.Binary) -> Operand:
        """Short-circuit && / || producing a 0/1 value."""
        result = self.fn.new_vreg()
        true_bb = self.fn.new_block("log.true")
        false_bb = self.fn.new_block("log.false")
        end_bb = self.fn.new_block("log.end")
        self._branch(expr, true_bb.name, false_bb.name)
        self.b.set_block(true_bb)
        self.b.copy(Const(1), dest=result)
        self.b.jump(end_bb)
        self.b.set_block(false_bb)
        self.b.copy(Const(0), dest=result)
        self.b.jump(end_bb)
        self.b.set_block(end_bb)
        return result

    def _ternary(self, expr: ast.Ternary) -> Operand:
        result = self.fn.new_vreg()
        then_bb = self.fn.new_block("sel.then")
        else_bb = self.fn.new_block("sel.else")
        end_bb = self.fn.new_block("sel.end")
        self._branch(expr.cond, then_bb.name, else_bb.name)
        self.b.set_block(then_bb)
        self.b.copy(self._rvalue(expr.then), dest=result)
        self.b.jump(end_bb)
        self.b.set_block(else_bb)
        self.b.copy(self._rvalue(expr.els), dest=result)
        self.b.jump(end_bb)
        self.b.set_block(end_bb)
        return result

    def _assign(self, expr: ast.Assign) -> Operand:
        target = expr.target
        target_ty = target.ty
        if expr.op:
            # Compound assignment: evaluate the address once.
            synthetic = ast.Binary(expr.line, expr.col, None, expr.op, target, expr.value)
            synthetic.ty = decay(target_ty) if not isinstance(target_ty, IntType) else target_ty
            if isinstance(target, ast.Ident) and target.symbol.storage == "reg" and target.symbol.kind != "global":
                value = self._binary_onto(synthetic, self.reg_slots[id(target.symbol)])
                value = self._normalize(value, target_ty)
                self.b.copy(value, dest=self.reg_slots[id(target.symbol)])
                return self.reg_slots[id(target.symbol)]
            addr = self._addr_of(target)
            old = self.b.load(_load_op(target_ty), addr)
            value = self._compound_value(expr, old)
            value = self._normalize(value, target_ty)
            self.b.store(_store_op(target_ty), addr, value)
            return value
        value = self._rvalue(expr.value)
        if isinstance(target, ast.Ident) and target.symbol.kind != "global" and target.symbol.storage == "reg":
            value = self._normalize(value, target_ty)
            vreg = self.reg_slots[id(target.symbol)]
            self.b.copy(value, dest=vreg)
            return vreg
        addr = self._addr_of(target)
        self.b.store(_store_op(target_ty), addr, value)
        return value

    def _binary_onto(self, expr: ast.Binary, current: VReg) -> Operand:
        """Compound-assign helper for register targets: current op= rhs."""
        rhs_expr = expr.right
        lt = decay(expr.left.ty)
        rt = decay(rhs_expr.ty)
        op = expr.op
        if op == "+" and is_pointer(lt):
            index = self._rvalue(rhs_expr)
            return self.b.binop("add", current, self._scale(index, lt.pointee.size))
        if op == "-" and is_pointer(lt) and not is_pointer(rt):
            index = self._rvalue(rhs_expr)
            return self.b.binop("sub", current, self._scale(index, lt.pointee.size))
        b_val = self._rvalue(rhs_expr)
        unsigned = _is_unsigned(lt) or _is_unsigned(rt)
        if op in self._DIRECT_BINOPS:
            return self.b.binop(self._DIRECT_BINOPS[op], current, b_val)
        if op == ">>":
            return self.b.binop("shru" if _is_unsigned(lt) else "shr", current, b_val)
        if op == "/":
            return self.b.call("__divu" if unsigned else "__divs", [current, b_val])
        if op == "%":
            return self.b.call("__remu" if unsigned else "__rems", [current, b_val])
        raise CompileError(f"unhandled compound op {op!r}", expr.line, expr.col)

    def _compound_value(self, expr: ast.Assign, old: Operand) -> Operand:
        lt = decay(expr.target.ty)
        rt = decay(expr.value.ty) if expr.value.ty is not None else lt
        op = expr.op
        if op == "+" and is_pointer(lt):
            index = self._rvalue(expr.value)
            return self.b.binop("add", old, self._scale(index, lt.pointee.size))
        b_val = self._rvalue(expr.value)
        unsigned = _is_unsigned(lt) or _is_unsigned(rt)
        if op in self._DIRECT_BINOPS:
            return self.b.binop(self._DIRECT_BINOPS[op], old, b_val)
        if op == ">>":
            return self.b.binop("shru" if _is_unsigned(lt) else "shr", old, b_val)
        if op == "/":
            return self.b.call("__divu" if unsigned else "__divs", [old, b_val])
        if op == "%":
            return self.b.call("__remu" if unsigned else "__rems", [old, b_val])
        raise CompileError(f"unhandled compound op {op!r}", expr.line, expr.col)

    def _incdec(self, expr: ast.IncDec) -> Operand:
        target = expr.target
        ty = target.ty
        delta = 1
        if is_pointer(decay(ty)):
            delta = decay(ty).pointee.size
        op = "add" if expr.op == "+" else "sub"
        if isinstance(target, ast.Ident) and target.symbol.kind != "global" and target.symbol.storage == "reg":
            vreg = self.reg_slots[id(target.symbol)]
            if expr.prefix:
                value = self.b.binop(op, vreg, Const(delta))
                value = self._normalize(value, ty)
                self.b.copy(value, dest=vreg)
                return vreg
            old = self.b.copy(vreg)
            value = self.b.binop(op, vreg, Const(delta))
            value = self._normalize(value, ty)
            self.b.copy(value, dest=vreg)
            return old
        addr = self._addr_of(target)
        old = self.b.load(_load_op(ty), addr)
        value = self.b.binop(op, old, Const(delta))
        value = self._normalize(value, ty)
        self.b.store(_store_op(ty), addr, value)
        return value if expr.prefix else old


def generate_ir(info: ProgramInfo, module_name: str = "module") -> Module:
    """Generate an IR module from an analysed program."""
    return _IRGen(info, module_name).run()


def compile_source(
    source: str,
    module_name: str = "module",
    with_runtime: bool = True,
    optimize: bool = True,
) -> Module:
    """Compile MiniC source text all the way to an optimised IR module.

    The MiniC runtime library (software division/modulo) is prepended
    unless *with_runtime* is False.  With *optimize*, the standard pass
    pipeline (:mod:`repro.ir.passes`) is run, including whole-program
    unreachable-function pruning.
    """
    from repro import obs

    full = (RUNTIME_SOURCE + "\n" + source) if with_runtime else source
    with obs.span("frontend.parse", module=module_name):
        unit = parse(full)
    with obs.span("frontend.sema", module=module_name):
        info = analyze(unit)
    with obs.span("frontend.irgen", module=module_name):
        module = generate_ir(info, module_name)
    if optimize:
        from repro.ir.passes import optimize_module

        with obs.span("ir.optimize", module=module_name):
            optimize_module(module)
    return module
