"""Frontend diagnostics."""

from __future__ import annotations


class CompileError(Exception):
    """A source-level error with location information."""

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        self.message = message
        self.line = line
        self.col = col
        location = f"{line}:{col}: " if line else ""
        super().__init__(f"{location}{message}")
