"""Semantic analysis: scopes, types, storage decisions.

Annotates the AST in place: every expression gets ``ty`` (its C type;
array-typed expressions stay arrays -- IR generation treats them as
addresses), identifiers get ``symbol``, and every local symbol gets a
storage decision (``reg`` for plain scalars, ``frame`` for arrays and
address-taken scalars).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontend.cst_ast import (
    ArrType,
    Assign,
    Binary,
    Block,
    Break,
    CallExpr,
    Cast,
    Continue,
    CType,
    Declarator,
    DeclStmt,
    DoWhile,
    Expr,
    ExprStmt,
    For,
    FuncDef,
    GlobalDecl,
    Ident,
    If,
    IncDec,
    Index,
    InitList,
    INT,
    IntType,
    is_array,
    is_integer,
    is_pointer,
    Num,
    PtrType,
    Return,
    SizeOf,
    Stmt,
    StrLit,
    Symbol,
    Ternary,
    TranslationUnit,
    UINT,
    Unary,
    VOID,
    VoidType,
    While,
    decay,
)
from repro.frontend.errors import CompileError


@dataclass
class ProgramInfo:
    """Result of semantic analysis over a translation unit."""

    unit: TranslationUnit
    functions: dict[str, Symbol] = field(default_factory=dict)
    globals: dict[str, Declarator] = field(default_factory=dict)
    strings: list[tuple[str, bytes]] = field(default_factory=list)


class _Scope:
    def __init__(self, parent: "_Scope | None" = None) -> None:
        self.parent = parent
        self.names: dict[str, Symbol] = {}

    def define(self, symbol: Symbol, line: int, col: int) -> Symbol:
        if symbol.name in self.names:
            raise CompileError(f"redefinition of {symbol.name!r}", line, col)
        self.names[symbol.name] = symbol
        return symbol

    def lookup(self, name: str) -> Symbol | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


def _promote(ty: CType) -> CType:
    """C integer promotion: sub-int types widen to signed int."""
    if isinstance(ty, IntType) and ty.bits < 32:
        return INT
    return ty


def _arith_result(lt: CType, rt: CType) -> CType:
    lt, rt = _promote(lt), _promote(rt)
    if isinstance(lt, IntType) and isinstance(rt, IntType):
        return UINT if (not lt.signed or not rt.signed) else INT
    raise TypeError("non-integer arithmetic")


class _Analyzer:
    def __init__(self, unit: TranslationUnit) -> None:
        self.unit = unit
        self.info = ProgramInfo(unit)
        self.global_scope = _Scope()
        self.current_fn: Symbol | None = None
        self.loop_depth = 0
        self._string_counter = 0
        self._local_counter = 0

    # ---- driver -----------------------------------------------------------

    def run(self) -> ProgramInfo:
        # Pass 1: declare all functions and globals (allows forward calls).
        for item in self.unit.items:
            if isinstance(item, FuncDef):
                self._declare_function(item)
            else:
                self._declare_global(item)
        # Pass 2: analyse function bodies and global initialisers.
        for item in self.unit.items:
            if isinstance(item, FuncDef) and item.body is not None:
                self._analyze_function(item)
            elif isinstance(item, GlobalDecl) and item.decl.init is not None:
                self._check_global_init(item.decl)
        if "main" not in self.info.functions:
            raise CompileError("no 'main' function defined")
        return self.info

    # ---- declarations ----------------------------------------------------------

    def _declare_function(self, fn: FuncDef) -> None:
        param_types = tuple(decay(p.ty) for p in fn.params)
        existing = self.info.functions.get(fn.name)
        if existing is not None:
            if existing.param_types != param_types or existing.ret_type != fn.ret_type:
                raise CompileError(f"conflicting declaration of {fn.name!r}", fn.line, fn.col)
            if fn.body is not None:
                if existing.defined:
                    raise CompileError(f"redefinition of function {fn.name!r}", fn.line, fn.col)
                existing.defined = True
            fn.symbol = existing
            return
        symbol = Symbol(
            fn.name,
            "func",
            fn.ret_type,
            ir_name=fn.name,
            param_types=param_types,
            ret_type=fn.ret_type,
            defined=fn.body is not None,
        )
        self.info.functions[fn.name] = symbol
        self.global_scope.define(symbol, fn.line, fn.col)
        fn.symbol = symbol

    def _declare_global(self, item: GlobalDecl) -> None:
        decl = item.decl
        if isinstance(decl.ty, VoidType):
            raise CompileError(f"global {decl.name!r} has void type", item.line, item.col)
        decl.ty = _infer_array_size(decl.ty, decl.init, item.line, item.col)
        symbol = Symbol(decl.name, "global", decl.ty, storage="frame", ir_name=decl.name)
        self.global_scope.define(symbol, item.line, item.col)
        decl.symbol = symbol
        self.info.globals[decl.name] = decl

    def _check_global_init(self, decl: Declarator) -> None:
        # Global initialisers must be constant; IR generation evaluates
        # them to bytes.  Here we only type-check expression shapes.
        self._walk_const_init(decl.init, decl.ty, decl.line, decl.col)

    def _walk_const_init(self, init, ty: CType, line: int, col: int) -> None:
        if init is None:
            return
        if isinstance(init, InitList):
            if not is_array(ty):
                raise CompileError("brace initialiser for non-array", init.line, init.col)
            if ty.count is not None and len(init.items) > ty.count:
                raise CompileError("too many initialisers", init.line, init.col)
            for item in init.items:
                self._walk_const_init(item, ty.elem, line, col)
        elif isinstance(init, StrLit):
            self._register_string(init)
        else:
            self._expr(init, self.global_scope)

    # ---- functions ---------------------------------------------------------------

    def _analyze_function(self, fn: FuncDef) -> None:
        self.current_fn = fn.symbol
        self._local_counter = 0
        scope = _Scope(self.global_scope)
        for param in fn.params:
            symbol = Symbol(
                param.name, "param", decay(param.ty), ir_name=self._unique(param.name)
            )
            scope.define(symbol, param.line, param.col)
            # irgen finds parameter symbols through the AST scope walk.
            param.symbol = symbol  # type: ignore[attr-defined]
        self._stmt(fn.body, scope)
        self.current_fn = None

    def _unique(self, name: str) -> str:
        self._local_counter += 1
        return f"{name}.{self._local_counter}"

    # ---- statements -----------------------------------------------------------------

    def _stmt(self, stmt: Stmt, scope: _Scope) -> None:
        if isinstance(stmt, Block):
            inner = _Scope(scope)
            for s in stmt.stmts:
                self._stmt(s, inner)
        elif isinstance(stmt, ExprStmt):
            if stmt.expr is not None:
                self._expr(stmt.expr, scope)
        elif isinstance(stmt, DeclStmt):
            for decl in stmt.decls:
                self._local_decl(decl, scope)
        elif isinstance(stmt, If):
            self._expr(stmt.cond, scope)
            self._stmt(stmt.then, scope)
            if stmt.els is not None:
                self._stmt(stmt.els, scope)
        elif isinstance(stmt, While):
            self._expr(stmt.cond, scope)
            self.loop_depth += 1
            self._stmt(stmt.body, scope)
            self.loop_depth -= 1
        elif isinstance(stmt, DoWhile):
            self.loop_depth += 1
            self._stmt(stmt.body, scope)
            self.loop_depth -= 1
            self._expr(stmt.cond, scope)
        elif isinstance(stmt, For):
            inner = _Scope(scope)
            if stmt.init is not None:
                self._stmt(stmt.init, inner)
            if stmt.cond is not None:
                self._expr(stmt.cond, inner)
            if stmt.step is not None:
                self._expr(stmt.step, inner)
            self.loop_depth += 1
            self._stmt(stmt.body, inner)
            self.loop_depth -= 1
        elif isinstance(stmt, (Break, Continue)):
            if self.loop_depth == 0:
                kind = "break" if isinstance(stmt, Break) else "continue"
                raise CompileError(f"{kind} outside loop", stmt.line, stmt.col)
        elif isinstance(stmt, Return):
            assert self.current_fn is not None
            if stmt.value is not None:
                if isinstance(self.current_fn.ret_type, VoidType):
                    raise CompileError("return with value in void function", stmt.line, stmt.col)
                self._expr(stmt.value, scope)
            elif not isinstance(self.current_fn.ret_type, VoidType):
                raise CompileError("return without value in non-void function", stmt.line, stmt.col)
        else:
            raise CompileError(f"unhandled statement {type(stmt).__name__}", stmt.line, stmt.col)

    def _local_decl(self, decl: Declarator, scope: _Scope) -> None:
        if isinstance(decl.ty, VoidType):
            raise CompileError(f"local {decl.name!r} has void type", decl.line, decl.col)
        decl.ty = _infer_array_size(decl.ty, decl.init, decl.line, decl.col)
        storage = "frame" if is_array(decl.ty) else "reg"
        symbol = Symbol(
            decl.name, "local", decl.ty, storage=storage, ir_name=self._unique(decl.name)
        )
        scope.define(symbol, decl.line, decl.col)
        decl.symbol = symbol
        if decl.init is not None:
            if isinstance(decl.init, InitList):
                if not is_array(decl.ty):
                    raise CompileError("brace initialiser for non-array", decl.line, decl.col)
                self._walk_local_init(decl.init, decl.ty, scope)
            elif isinstance(decl.init, StrLit):
                self._register_string(decl.init)
                decl.init.ty = PtrType(IntType(8, True))
                if not (is_array(decl.ty) or is_pointer(decl.ty)):
                    raise CompileError("string initialiser for non-pointer", decl.line, decl.col)
            else:
                self._expr(decl.init, scope)

    def _walk_local_init(self, init: InitList, ty: ArrType, scope: _Scope) -> None:
        if ty.count is not None and len(init.items) > ty.count:
            raise CompileError("too many initialisers", init.line, init.col)
        for item in init.items:
            if isinstance(item, InitList):
                if not is_array(ty.elem):
                    raise CompileError("nested brace initialiser for scalar", item.line, item.col)
                self._walk_local_init(item, ty.elem, scope)
            else:
                self._expr(item, scope)

    # ---- expressions ------------------------------------------------------------------

    def _register_string(self, lit: StrLit) -> None:
        lit.ir_name = f"__str{self._string_counter}"
        self._string_counter += 1
        self.info.strings.append((lit.ir_name, lit.data))
        lit.ty = ArrType(IntType(8, True), len(lit.data))

    def _expr(self, expr: Expr, scope: _Scope) -> CType:
        ty = self._expr_inner(expr, scope)
        expr.ty = ty
        return ty

    def _expr_inner(self, expr: Expr, scope: _Scope) -> CType:
        if isinstance(expr, Num):
            return UINT if expr.value > 0x7FFFFFFF else INT
        if isinstance(expr, StrLit):
            self._register_string(expr)
            return expr.ty
        if isinstance(expr, Ident):
            symbol = scope.lookup(expr.name)
            if symbol is None:
                raise CompileError(f"undeclared identifier {expr.name!r}", expr.line, expr.col)
            if symbol.kind == "func":
                raise CompileError(
                    f"function {expr.name!r} used as a value (function pointers unsupported)",
                    expr.line,
                    expr.col,
                )
            expr.symbol = symbol
            return symbol.ty
        if isinstance(expr, Unary):
            return self._unary(expr, scope)
        if isinstance(expr, Binary):
            return self._binary(expr, scope)
        if isinstance(expr, Assign):
            return self._assign(expr, scope)
        if isinstance(expr, IncDec):
            target_ty = self._expr(expr.target, scope)
            self._require_lvalue(expr.target)
            if not (is_integer(target_ty) or is_pointer(target_ty)):
                raise CompileError("++/-- needs integer or pointer", expr.line, expr.col)
            return target_ty
        if isinstance(expr, Ternary):
            self._expr(expr.cond, scope)
            then_ty = decay(self._expr(expr.then, scope))
            els_ty = decay(self._expr(expr.els, scope))
            if is_pointer(then_ty):
                return then_ty
            if is_pointer(els_ty):
                return els_ty
            return _arith_result(then_ty, els_ty)
        if isinstance(expr, CallExpr):
            return self._call(expr, scope)
        if isinstance(expr, Index):
            base_ty = decay(self._expr(expr.base, scope))
            index_ty = self._expr(expr.index, scope)
            if not is_pointer(base_ty):
                raise CompileError("indexing a non-array", expr.line, expr.col)
            if not is_integer(index_ty):
                raise CompileError("array index must be an integer", expr.line, expr.col)
            return base_ty.pointee
        if isinstance(expr, Cast):
            self._expr(expr.operand, scope)
            return expr.target_type
        if isinstance(expr, SizeOf):
            if expr.operand is not None:
                ty = self._expr(expr.operand, scope)
            else:
                ty = expr.target_type
            try:
                ty.size
            except ValueError:
                raise CompileError("sizeof of unsized type", expr.line, expr.col) from None
            return UINT
        raise CompileError(f"unhandled expression {type(expr).__name__}", expr.line, expr.col)

    def _unary(self, expr: Unary, scope: _Scope) -> CType:
        operand_ty = self._expr(expr.operand, scope)
        if expr.op == "&":
            self._require_lvalue(expr.operand)
            if isinstance(expr.operand, Ident) and expr.operand.symbol is not None:
                symbol = expr.operand.symbol
                if symbol.kind in ("local", "param") and not is_array(symbol.ty):
                    symbol.addr_taken = True
                    symbol.storage = "frame"
            return PtrType(operand_ty.elem) if is_array(operand_ty) else PtrType(operand_ty)
        if expr.op == "*":
            ty = decay(operand_ty)
            if not is_pointer(ty):
                raise CompileError("dereference of non-pointer", expr.line, expr.col)
            return ty.pointee
        if expr.op == "!":
            return INT
        if expr.op in ("-", "~"):
            if not is_integer(operand_ty):
                raise CompileError(f"unary {expr.op} needs an integer", expr.line, expr.col)
            if (
                expr.op == "-"
                and isinstance(expr.operand, Num)
                and expr.operand.value <= 0x80000000
            ):
                # A negated decimal literal whose value fits the signed
                # 32-bit range denotes a signed constant: ``-2147483648``
                # is INT_MIN, not unsigned 0x80000000.  (The bare literal
                # 2147483648 types as unsigned, which would silently turn
                # ``-2147483648 / 2`` into an unsigned division.)
                return INT
            return _promote(operand_ty)
        raise CompileError(f"unknown unary {expr.op!r}", expr.line, expr.col)

    def _binary(self, expr: Binary, scope: _Scope) -> CType:
        lt = decay(self._expr(expr.left, scope))
        rt = decay(self._expr(expr.right, scope))
        op = expr.op
        if op in ("&&", "||"):
            return INT
        if op in ("==", "!=", "<", ">", "<=", ">="):
            if is_pointer(lt) != is_pointer(rt) and not (
                isinstance(expr.right, Num) and expr.right.value == 0
            ) and not (isinstance(expr.left, Num) and expr.left.value == 0):
                raise CompileError("comparison of pointer and integer", expr.line, expr.col)
            return INT
        if op == "+":
            if is_pointer(lt) and is_integer(rt):
                return lt
            if is_integer(lt) and is_pointer(rt):
                return rt
            return _arith_result(lt, rt)
        if op == "-":
            if is_pointer(lt) and is_pointer(rt):
                return INT
            if is_pointer(lt) and is_integer(rt):
                return lt
            return _arith_result(lt, rt)
        if op in ("*", "/", "%", "&", "|", "^"):
            if not (is_integer(lt) and is_integer(rt)):
                raise CompileError(f"operator {op} needs integers", expr.line, expr.col)
            return _arith_result(lt, rt)
        if op in ("<<", ">>"):
            if not (is_integer(lt) and is_integer(rt)):
                raise CompileError(f"operator {op} needs integers", expr.line, expr.col)
            return _promote(lt)
        raise CompileError(f"unknown binary {op!r}", expr.line, expr.col)

    def _assign(self, expr: Assign, scope: _Scope) -> CType:
        target_ty = self._expr(expr.target, scope)
        self._require_lvalue(expr.target)
        if is_array(target_ty):
            raise CompileError("cannot assign to an array", expr.line, expr.col)
        value_ty = self._expr(expr.value, scope)
        if isinstance(value_ty, VoidType):
            raise CompileError("cannot assign a void value", expr.line, expr.col)
        return target_ty

    def _call(self, expr: CallExpr, scope: _Scope) -> CType:
        symbol = self.info.functions.get(expr.name)
        if symbol is None:
            raise CompileError(f"call to undeclared function {expr.name!r}", expr.line, expr.col)
        if len(expr.args) != len(symbol.param_types):
            raise CompileError(
                f"{expr.name} expects {len(symbol.param_types)} arguments, got {len(expr.args)}",
                expr.line,
                expr.col,
            )
        for arg in expr.args:
            self._expr(arg, scope)
        expr.symbol = symbol
        return symbol.ret_type

    def _require_lvalue(self, expr: Expr) -> None:
        if isinstance(expr, Ident):
            return
        if isinstance(expr, Index):
            return
        if isinstance(expr, Unary) and expr.op == "*":
            return
        raise CompileError("expression is not assignable", expr.line, expr.col)


def _infer_array_size(ty: CType, init, line: int, col: int) -> CType:
    """Complete ``T x[] = {...}`` / ``char s[] = "..."`` array types."""
    if not (isinstance(ty, ArrType) and ty.count is None):
        return ty
    if isinstance(init, InitList):
        return ArrType(ty.elem, len(init.items))
    if isinstance(init, StrLit):
        return ArrType(ty.elem, len(init.data))
    raise CompileError("unsized array needs an initialiser", line, col)


def analyze(unit: TranslationUnit) -> ProgramInfo:
    """Run semantic analysis; returns the annotated program description."""
    return _Analyzer(unit).run()
