"""MiniC frontend: a C subset sufficient for the CHStone-like kernels.

Supported: 8/16/32-bit signed and unsigned integer types, pointers,
multi-dimensional arrays, string literals, the full C expression grammar
over integers (including division/modulo, lowered to runtime-library
calls), all structured control flow, functions, and initialised globals.

Not supported (and not needed by the workloads): floating point, structs,
unions, typedefs beyond the built-in types, function pointers, varargs,
goto, and the preprocessor (kernels use plain constants).
"""

from repro.frontend.errors import CompileError
from repro.frontend.lexer import Token, TokenKind, tokenize
from repro.frontend.parser import parse
from repro.frontend.sema import analyze
from repro.frontend.irgen import compile_source, generate_ir

__all__ = [
    "CompileError",
    "Token",
    "TokenKind",
    "analyze",
    "compile_source",
    "generate_ir",
    "parse",
    "tokenize",
]
