"""MiniC recursive-descent parser."""

from __future__ import annotations

from repro.frontend.cst_ast import (
    Assign,
    Binary,
    Block,
    Break,
    CallExpr,
    Cast,
    CHAR,
    Continue,
    CType,
    Declarator,
    DeclStmt,
    DoWhile,
    Expr,
    ExprStmt,
    For,
    FuncDef,
    GlobalDecl,
    Ident,
    If,
    IncDec,
    Index,
    InitList,
    Initializer,
    INT,
    IntType,
    Num,
    Param,
    PtrType,
    Return,
    SHORT,
    SizeOf,
    Stmt,
    StrLit,
    Ternary,
    TranslationUnit,
    UCHAR,
    UINT,
    Unary,
    USHORT,
    VOID,
    While,
)
from repro.frontend.errors import CompileError
from repro.frontend.lexer import Token, TokenKind, tokenize

_TYPE_KEYWORDS = frozenset({"int", "unsigned", "signed", "char", "short", "long", "void", "const", "static"})


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # ---- token helpers -----------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.cur
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def expect_op(self, op: str) -> Token:
        if not self.cur.is_op(op):
            raise CompileError(f"expected {op!r}, found {self.cur.text!r}", self.cur.line, self.cur.col)
        return self.advance()

    def accept_op(self, *ops: str) -> Token | None:
        if self.cur.is_op(*ops):
            return self.advance()
        return None

    def expect_ident(self) -> Token:
        if self.cur.kind is not TokenKind.IDENT:
            raise CompileError(f"expected identifier, found {self.cur.text!r}", self.cur.line, self.cur.col)
        return self.advance()

    def at_type(self) -> bool:
        return self.cur.kind is TokenKind.KEYWORD and self.cur.text in _TYPE_KEYWORDS

    # ---- types ---------------------------------------------------------------

    def parse_base_type(self) -> CType:
        """Parse declaration specifiers into a base type."""
        signedness: bool | None = None
        core: str | None = None
        saw_any = False
        while self.cur.kind is TokenKind.KEYWORD and self.cur.text in _TYPE_KEYWORDS:
            text = self.advance().text
            saw_any = True
            if text in ("const", "static"):
                continue
            if text == "unsigned":
                signedness = False
            elif text == "signed":
                signedness = True
            elif text == "long":
                core = core or "int"  # long == int in MiniC (32-bit)
            elif core is None:
                core = text
            else:
                raise CompileError(f"duplicate type keyword {text!r}", self.cur.line, self.cur.col)
        if not saw_any:
            raise CompileError(f"expected type, found {self.cur.text!r}", self.cur.line, self.cur.col)
        if core == "void":
            return VOID
        table = {
            ("int", True): INT,
            ("int", False): UINT,
            ("char", True): CHAR,
            ("char", False): UCHAR,
            ("short", True): SHORT,
            ("short", False): USHORT,
        }
        return table[(core or "int", signedness if signedness is not None else True)]

    def parse_pointers(self, ty: CType) -> CType:
        while self.accept_op("*"):
            while self.cur.is_kw("const"):
                self.advance()
            ty = PtrType(ty)
        return ty

    def parse_array_suffix(self, ty: CType) -> CType:
        """Parse ``[N][M]...`` suffixes; sizes are constant-folded by sema."""
        dims: list[int | None] = []
        while self.accept_op("["):
            if self.cur.is_op("]"):
                dims.append(None)
            else:
                size_expr = self.parse_expr()
                dims.append(_const_dim(size_expr))
            self.expect_op("]")
        for dim in reversed(dims):
            from repro.frontend.cst_ast import ArrType

            ty = ArrType(ty, dim)
        return ty

    # ---- expressions -----------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self.parse_assignment()

    def parse_assignment(self) -> Expr:
        left = self.parse_ternary()
        tok = self.cur
        if tok.is_op("="):
            self.advance()
            value = self.parse_assignment()
            return Assign(tok.line, tok.col, None, left, value, "")
        for compound in ("+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="):
            if tok.is_op(compound):
                self.advance()
                value = self.parse_assignment()
                return Assign(tok.line, tok.col, None, left, value, compound[:-1])
        return left

    def parse_ternary(self) -> Expr:
        cond = self.parse_logical_or()
        if self.cur.is_op("?"):
            tok = self.advance()
            then = self.parse_expr()
            self.expect_op(":")
            els = self.parse_assignment()
            return Ternary(tok.line, tok.col, None, cond, then, els)
        return cond

    def _binary_chain(self, ops: tuple[str, ...], next_level) -> Expr:
        left = next_level()
        while self.cur.is_op(*ops):
            tok = self.advance()
            right = next_level()
            left = Binary(tok.line, tok.col, None, tok.text, left, right)
        return left

    def parse_logical_or(self) -> Expr:
        return self._binary_chain(("||",), self.parse_logical_and)

    def parse_logical_and(self) -> Expr:
        return self._binary_chain(("&&",), self.parse_bit_or)

    def parse_bit_or(self) -> Expr:
        return self._binary_chain(("|",), self.parse_bit_xor)

    def parse_bit_xor(self) -> Expr:
        return self._binary_chain(("^",), self.parse_bit_and)

    def parse_bit_and(self) -> Expr:
        return self._binary_chain(("&",), self.parse_equality)

    def parse_equality(self) -> Expr:
        return self._binary_chain(("==", "!="), self.parse_relational)

    def parse_relational(self) -> Expr:
        return self._binary_chain(("<", ">", "<=", ">="), self.parse_shift)

    def parse_shift(self) -> Expr:
        return self._binary_chain(("<<", ">>"), self.parse_additive)

    def parse_additive(self) -> Expr:
        return self._binary_chain(("+", "-"), self.parse_multiplicative)

    def parse_multiplicative(self) -> Expr:
        return self._binary_chain(("*", "/", "%"), self.parse_unary)

    def _at_cast(self) -> bool:
        if not self.cur.is_op("("):
            return False
        nxt = self.peek()
        return nxt.kind is TokenKind.KEYWORD and nxt.text in _TYPE_KEYWORDS and nxt.text not in ("const", "static")

    def parse_unary(self) -> Expr:
        tok = self.cur
        if tok.is_op("-", "!", "~", "&", "*"):
            self.advance()
            operand = self.parse_unary()
            return Unary(tok.line, tok.col, None, tok.text, operand)
        if tok.is_op("+"):
            self.advance()
            return self.parse_unary()
        if tok.is_op("++", "--"):
            self.advance()
            operand = self.parse_unary()
            return IncDec(tok.line, tok.col, None, operand, tok.text[0], True)
        if tok.is_kw("sizeof"):
            self.advance()
            if self.cur.is_op("(") and self._peek_is_type(1):
                self.expect_op("(")
                ty = self.parse_pointers(self.parse_base_type())
                ty = self.parse_array_suffix(ty)
                self.expect_op(")")
                return SizeOf(tok.line, tok.col, None, ty, None)
            operand = self.parse_unary()
            return SizeOf(tok.line, tok.col, None, None, operand)
        if self._at_cast():
            self.expect_op("(")
            ty = self.parse_pointers(self.parse_base_type())
            self.expect_op(")")
            operand = self.parse_unary()
            return Cast(tok.line, tok.col, None, ty, operand)
        return self.parse_postfix()

    def _peek_is_type(self, offset: int) -> bool:
        tok = self.peek(offset)
        return tok.kind is TokenKind.KEYWORD and tok.text in _TYPE_KEYWORDS

    def parse_postfix(self) -> Expr:
        expr = self.parse_primary()
        while True:
            tok = self.cur
            if tok.is_op("["):
                self.advance()
                index = self.parse_expr()
                self.expect_op("]")
                expr = Index(tok.line, tok.col, None, expr, index)
            elif tok.is_op("(") and isinstance(expr, Ident):
                self.advance()
                args: list[Expr] = []
                if not self.cur.is_op(")"):
                    args.append(self.parse_assignment())
                    while self.accept_op(","):
                        args.append(self.parse_assignment())
                self.expect_op(")")
                expr = CallExpr(tok.line, tok.col, None, expr.name, args)
            elif tok.is_op("++", "--"):
                self.advance()
                expr = IncDec(tok.line, tok.col, None, expr, tok.text[0], False)
            else:
                return expr

    def parse_primary(self) -> Expr:
        tok = self.cur
        if tok.kind is TokenKind.NUMBER:
            self.advance()
            return Num(tok.line, tok.col, None, int(tok.value))
        if tok.kind is TokenKind.CHAR:
            self.advance()
            return Num(tok.line, tok.col, None, int(tok.value))
        if tok.kind is TokenKind.STRING:
            self.advance()
            data = bytes(tok.value)
            # Adjacent string literals concatenate, as in C.
            while self.cur.kind is TokenKind.STRING:
                data += bytes(self.advance().value)
            return StrLit(tok.line, tok.col, None, data + b"\0")
        if tok.kind is TokenKind.IDENT:
            self.advance()
            return Ident(tok.line, tok.col, None, tok.text)
        if tok.is_op("("):
            self.advance()
            expr = self.parse_expr()
            self.expect_op(")")
            return expr
        raise CompileError(f"unexpected token {tok.text!r}", tok.line, tok.col)

    # ---- initialisers -----------------------------------------------------------

    def parse_initializer(self) -> Initializer:
        if self.cur.is_op("{"):
            tok = self.advance()
            items: list[Initializer] = []
            if not self.cur.is_op("}"):
                items.append(self.parse_initializer())
                while self.accept_op(","):
                    if self.cur.is_op("}"):
                        break
                    items.append(self.parse_initializer())
            self.expect_op("}")
            return InitList(items, tok.line, tok.col)
        return self.parse_assignment()

    # ---- statements ----------------------------------------------------------------

    def parse_statement(self) -> Stmt:
        tok = self.cur
        if tok.is_op("{"):
            return self.parse_block()
        if tok.is_kw("if"):
            self.advance()
            self.expect_op("(")
            cond = self.parse_expr()
            self.expect_op(")")
            then = self.parse_statement()
            els = None
            if self.cur.is_kw("else"):
                self.advance()
                els = self.parse_statement()
            return If(tok.line, tok.col, cond, then, els)
        if tok.is_kw("while"):
            self.advance()
            self.expect_op("(")
            cond = self.parse_expr()
            self.expect_op(")")
            body = self.parse_statement()
            return While(tok.line, tok.col, cond, body)
        if tok.is_kw("do"):
            self.advance()
            body = self.parse_statement()
            if not self.cur.is_kw("while"):
                raise CompileError("expected 'while' after do-body", self.cur.line, self.cur.col)
            self.advance()
            self.expect_op("(")
            cond = self.parse_expr()
            self.expect_op(")")
            self.expect_op(";")
            return DoWhile(tok.line, tok.col, body, cond)
        if tok.is_kw("for"):
            self.advance()
            self.expect_op("(")
            init: Stmt | None = None
            if not self.cur.is_op(";"):
                if self.at_type():
                    init = self.parse_declaration()
                else:
                    expr = self.parse_expr()
                    self.expect_op(";")
                    init = ExprStmt(tok.line, tok.col, expr)
            else:
                self.advance()
            cond = None if self.cur.is_op(";") else self.parse_expr()
            self.expect_op(";")
            step = None if self.cur.is_op(")") else self.parse_expr()
            self.expect_op(")")
            body = self.parse_statement()
            return For(tok.line, tok.col, init, cond, step, body)
        if tok.is_kw("break"):
            self.advance()
            self.expect_op(";")
            return Break(tok.line, tok.col)
        if tok.is_kw("continue"):
            self.advance()
            self.expect_op(";")
            return Continue(tok.line, tok.col)
        if tok.is_kw("return"):
            self.advance()
            value = None if self.cur.is_op(";") else self.parse_expr()
            self.expect_op(";")
            return Return(tok.line, tok.col, value)
        if self.at_type():
            return self.parse_declaration()
        if tok.is_op(";"):
            self.advance()
            return ExprStmt(tok.line, tok.col, None)
        expr = self.parse_expr()
        self.expect_op(";")
        return ExprStmt(tok.line, tok.col, expr)

    def parse_block(self) -> Block:
        tok = self.expect_op("{")
        stmts: list[Stmt] = []
        while not self.cur.is_op("}"):
            if self.cur.kind is TokenKind.EOF:
                raise CompileError("unterminated block", tok.line, tok.col)
            stmts.append(self.parse_statement())
        self.expect_op("}")
        return Block(tok.line, tok.col, stmts)

    def parse_declaration(self) -> DeclStmt:
        tok = self.cur
        base = self.parse_base_type()
        decls: list[Declarator] = []
        while True:
            dtok = self.cur
            ty = self.parse_pointers(base)
            name = self.expect_ident().text
            ty = self.parse_array_suffix(ty)
            init: Initializer | None = None
            if self.accept_op("="):
                init = self.parse_initializer()
            decls.append(Declarator(name, ty, init, dtok.line, dtok.col))
            if not self.accept_op(","):
                break
        self.expect_op(";")
        return DeclStmt(tok.line, tok.col, decls)

    # ---- top level ----------------------------------------------------------------------

    def parse_translation_unit(self) -> TranslationUnit:
        unit = TranslationUnit()
        while self.cur.kind is not TokenKind.EOF:
            unit.items.extend(self.parse_top_level())
        return unit

    def parse_top_level(self) -> list[FuncDef | GlobalDecl]:
        tok = self.cur
        base = self.parse_base_type()
        ty = self.parse_pointers(base)
        name_tok = self.expect_ident()

        if self.cur.is_op("("):
            self.advance()
            params: list[Param] = []
            if not self.cur.is_op(")"):
                if self.cur.is_kw("void") and self.peek().is_op(")"):
                    self.advance()
                else:
                    params.append(self._parse_param())
                    while self.accept_op(","):
                        params.append(self._parse_param())
            self.expect_op(")")
            if self.accept_op(";"):
                return [FuncDef(name_tok.text, ty, params, None, tok.line, tok.col)]
            body = self.parse_block()
            return [FuncDef(name_tok.text, ty, params, body, tok.line, tok.col)]

        # Global variable declaration(s).
        items: list[FuncDef | GlobalDecl] = []
        gty = self.parse_array_suffix(ty)
        init: Initializer | None = None
        if self.accept_op("="):
            init = self.parse_initializer()
        items.append(
            GlobalDecl(Declarator(name_tok.text, gty, init, tok.line, tok.col), tok.line, tok.col)
        )
        while self.accept_op(","):
            dtok = self.cur
            dty = self.parse_pointers(base)
            dname = self.expect_ident().text
            dty = self.parse_array_suffix(dty)
            dinit: Initializer | None = None
            if self.accept_op("="):
                dinit = self.parse_initializer()
            items.append(GlobalDecl(Declarator(dname, dty, dinit, dtok.line, dtok.col), dtok.line, dtok.col))
        self.expect_op(";")
        return items

    def _parse_param(self) -> Param:
        tok = self.cur
        base = self.parse_base_type()
        ty = self.parse_pointers(base)
        name = self.expect_ident().text
        ty = self.parse_array_suffix(ty)
        # Array parameters decay to pointers immediately.
        from repro.frontend.cst_ast import ArrType

        if isinstance(ty, ArrType):
            ty = PtrType(ty.elem)
        return Param(name, ty, tok.line, tok.col)


def _const_dim(expr: Expr) -> int:
    """Fold a constant array-dimension expression at parse time."""
    value = _try_fold(expr)
    if value is None or value <= 0:
        raise CompileError("array dimension must be a positive constant", expr.line, expr.col)
    return value


def _try_fold(expr: Expr) -> int | None:
    if isinstance(expr, Num):
        return expr.value
    if isinstance(expr, Unary) and expr.op == "-":
        inner = _try_fold(expr.operand)
        return None if inner is None else -inner
    if isinstance(expr, Binary):
        left = _try_fold(expr.left)
        right = _try_fold(expr.right)
        if left is None or right is None:
            return None
        ops = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "/": lambda a, b: a // b if b else None,
            "<<": lambda a, b: a << b,
            ">>": lambda a, b: a >> b,
        }
        fn = ops.get(expr.op)
        return fn(left, right) if fn else None
    return None


def parse(source: str) -> TranslationUnit:
    """Parse MiniC *source* into a translation unit."""
    return _Parser(tokenize(source)).parse_translation_unit()
