"""MiniC runtime library.

The Table I datapaths have no hardware divider, so the compiler lowers
``/`` and ``%`` to these software routines -- exactly the software
emulation route TCE takes for operations missing from a datapath.  The
routines are ordinary MiniC and are compiled, scheduled and simulated
like any user code; unreachable ones are pruned by the whole-program
optimiser.
"""

RUNTIME_SOURCE = """
/* ---- repro MiniC runtime: software division ---- */

unsigned __divu(unsigned n, unsigned d)
{
    unsigned q = 0;
    unsigned r = 0;
    int i;
    if (d == 0)
        return 0xFFFFFFFF;
    if (n < d)
        return 0;
    /* Restoring shift-subtract division, one quotient bit per step. */
    for (i = 31; i >= 0; i = i - 1) {
        r = (r << 1) | ((n >> i) & 1);
        if (r >= d) {
            r = r - d;
            q = q | (((unsigned)1) << i);
        }
    }
    return q;
}

unsigned __remu(unsigned n, unsigned d)
{
    unsigned q = __divu(n, d);
    return n - q * d;
}

int __divs(int a, int b)
{
    unsigned ua;
    unsigned ub;
    unsigned q;
    int neg = 0;
    if (a < 0) { ua = (unsigned)(-a); neg = 1 - neg; } else { ua = (unsigned)a; }
    if (b < 0) { ub = (unsigned)(-b); neg = 1 - neg; } else { ub = (unsigned)b; }
    q = __divu(ua, ub);
    if (neg)
        return -((int)q);
    return (int)q;
}

int __rems(int a, int b)
{
    int q = __divs(a, b);
    return a - q * b;
}
"""
