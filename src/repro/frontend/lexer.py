"""MiniC lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.frontend.errors import CompileError

KEYWORDS = frozenset(
    {
        "int",
        "unsigned",
        "signed",
        "char",
        "short",
        "long",
        "void",
        "const",
        "if",
        "else",
        "while",
        "do",
        "for",
        "break",
        "continue",
        "return",
        "sizeof",
        "static",
    }
)

# Multi-character operators, longest first so maximal munch works.
_OPERATORS = (
    "<<=",
    ">>=",
    "...",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<<",
    ">>",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "->",
    "+",
    "-",
    "*",
    "/",
    "%",
    "&",
    "|",
    "^",
    "~",
    "!",
    "<",
    ">",
    "=",
    "?",
    ":",
    ";",
    ",",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ".",
)


class TokenKind(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    CHAR = "char"
    STRING = "string"
    OP = "op"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    value: int | bytes | None
    line: int
    col: int

    def is_op(self, *ops: str) -> bool:
        return self.kind is TokenKind.OP and self.text in ops

    def is_kw(self, *kws: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text in kws

    def __repr__(self) -> str:
        return f"{self.kind.value}({self.text!r})@{self.line}:{self.col}"


_ESCAPES = {
    "n": 10,
    "t": 9,
    "r": 13,
    "0": 0,
    "\\": 92,
    "'": 39,
    '"': 34,
    "a": 7,
    "b": 8,
    "f": 12,
    "v": 11,
}


def _read_escape(source: str, i: int, line: int, col: int) -> tuple[int, int]:
    """Read one escape sequence after the backslash; returns (byte, next_i)."""
    if i >= len(source):
        raise CompileError("unterminated escape", line, col)
    ch = source[i]
    if ch == "x":
        j = i + 1
        start = j
        while j < len(source) and source[j] in "0123456789abcdefABCDEF":
            j += 1
        if j == start:
            raise CompileError("bad \\x escape", line, col)
        return int(source[start:j], 16) & 0xFF, j
    if ch in _ESCAPES:
        return _ESCAPES[ch], i + 1
    raise CompileError(f"unknown escape \\{ch}", line, col)


def tokenize(source: str) -> list[Token]:
    """Convert MiniC source text into a token list ending with EOF."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(count: int) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            advance(1)
            continue
        if ch == "/" and i + 1 < n and source[i + 1] == "/":
            while i < n and source[i] != "\n":
                advance(1)
            continue
        if ch == "/" and i + 1 < n and source[i + 1] == "*":
            start_line, start_col = line, col
            advance(2)
            while i + 1 < n and not (source[i] == "*" and source[i + 1] == "/"):
                advance(1)
            if i + 1 >= n:
                raise CompileError("unterminated comment", start_line, start_col)
            advance(2)
            continue

        start_line, start_col = line, col
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, None, start_line, start_col))
            advance(j - i)
            continue

        if ch.isdigit():
            j = i
            if ch == "0" and i + 1 < n and source[i + 1] in "xX":
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
                value = int(source[i:j], 16)
            else:
                while j < n and source[j].isdigit():
                    j += 1
                value = int(source[i:j])
            # Swallow C integer suffixes (u, U, l, L combinations).
            while j < n and source[j] in "uUlL":
                j += 1
            tokens.append(Token(TokenKind.NUMBER, source[i:j], value, start_line, start_col))
            advance(j - i)
            continue

        if ch == "'":
            j = i + 1
            if j >= n:
                raise CompileError("unterminated char literal", start_line, start_col)
            if source[j] == "\\":
                value, j = _read_escape(source, j + 1, line, col)
            else:
                value = ord(source[j])
                j += 1
            if j >= n or source[j] != "'":
                raise CompileError("unterminated char literal", start_line, start_col)
            j += 1
            tokens.append(Token(TokenKind.CHAR, source[i:j], value, start_line, start_col))
            advance(j - i)
            continue

        if ch == '"':
            j = i + 1
            data = bytearray()
            while j < n and source[j] != '"':
                if source[j] == "\\":
                    byte, j = _read_escape(source, j + 1, line, col)
                    data.append(byte)
                elif source[j] == "\n":
                    raise CompileError("newline in string literal", start_line, start_col)
                else:
                    data.append(ord(source[j]))
                    j += 1
            if j >= n:
                raise CompileError("unterminated string literal", start_line, start_col)
            j += 1
            tokens.append(
                Token(TokenKind.STRING, source[i:j], bytes(data), start_line, start_col)
            )
            advance(j - i)
            continue

        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token(TokenKind.OP, op, None, start_line, start_col))
                advance(len(op))
                break
        else:
            raise CompileError(f"unexpected character {ch!r}", start_line, start_col)

    tokens.append(Token(TokenKind.EOF, "", None, line, col))
    return tokens
