"""MiniC abstract syntax tree and the (tiny) type system.

Types are value objects; AST nodes are mutable dataclasses that semantic
analysis annotates in place (``ty`` on expressions, ``symbol`` on
identifiers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IntType:
    """An integer type of 8, 16 or 32 bits."""

    bits: int
    signed: bool

    @property
    def size(self) -> int:
        return self.bits // 8

    def __repr__(self) -> str:
        prefix = "" if self.signed else "u"
        name = {8: "char", 16: "short", 32: "int"}[self.bits]
        return f"{prefix}{name}"


@dataclass(frozen=True)
class PtrType:
    """Pointer to *pointee* (4 bytes)."""

    pointee: "CType"

    @property
    def size(self) -> int:
        return 4

    def __repr__(self) -> str:
        return f"{self.pointee!r}*"


@dataclass(frozen=True)
class ArrType:
    """Array of *count* elements of *elem* (count None only in params)."""

    elem: "CType"
    count: Optional[int]

    @property
    def size(self) -> int:
        if self.count is None:
            raise ValueError("unsized array has no size")
        return self.elem.size * self.count

    def __repr__(self) -> str:
        return f"{self.elem!r}[{self.count if self.count is not None else ''}]"


@dataclass(frozen=True)
class VoidType:
    @property
    def size(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "void"


CType = Union[IntType, PtrType, ArrType, VoidType]

INT = IntType(32, True)
UINT = IntType(32, False)
SHORT = IntType(16, True)
USHORT = IntType(16, False)
CHAR = IntType(8, True)
UCHAR = IntType(8, False)
VOID = VoidType()


def is_integer(ty: CType) -> bool:
    return isinstance(ty, IntType)


def is_pointer(ty: CType) -> bool:
    return isinstance(ty, PtrType)


def is_array(ty: CType) -> bool:
    return isinstance(ty, ArrType)


def decay(ty: CType) -> CType:
    """Array-to-pointer decay for rvalue contexts."""
    return PtrType(ty.elem) if isinstance(ty, ArrType) else ty


def alignment_of(ty: CType) -> int:
    if isinstance(ty, IntType):
        return ty.size
    if isinstance(ty, PtrType):
        return 4
    if isinstance(ty, ArrType):
        return alignment_of(ty.elem)
    return 1


# ---------------------------------------------------------------------------
# Symbols (attached by semantic analysis)
# ---------------------------------------------------------------------------


@dataclass
class Symbol:
    """A named entity: local, parameter, global or function."""

    name: str
    kind: str  # 'local' | 'param' | 'global' | 'func'
    ty: CType
    #: for locals: 'reg' (plain vreg) or 'frame' (stack slot; arrays or
    #: address-taken scalars).  Filled in by sema.
    storage: str = "reg"
    addr_taken: bool = False
    #: unique name used for IR frame slots / global symbols
    ir_name: str = ""
    #: function symbols: parameter and return types
    param_types: tuple[CType, ...] = ()
    ret_type: CType = VOID
    defined: bool = False


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    line: int = 0
    col: int = 0
    ty: Optional[CType] = None


@dataclass
class Num(Expr):
    value: int = 0


@dataclass
class StrLit(Expr):
    data: bytes = b""
    #: global symbol generated for the literal (filled by sema)
    ir_name: str = ""


@dataclass
class Ident(Expr):
    name: str = ""
    symbol: Optional[Symbol] = None


@dataclass
class Unary(Expr):
    op: str = ""  # '-', '!', '~', '&', '*'
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    op: str = ""  # + - * / % & | ^ << >> < > <= >= == != && ||
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Assign(Expr):
    target: Optional[Expr] = None
    value: Optional[Expr] = None
    op: str = ""  # '' for plain '=', else the compound operator ('+', ...)


@dataclass
class IncDec(Expr):
    target: Optional[Expr] = None
    op: str = "+"
    prefix: bool = False


@dataclass
class Ternary(Expr):
    cond: Optional[Expr] = None
    then: Optional[Expr] = None
    els: Optional[Expr] = None


@dataclass
class CallExpr(Expr):
    name: str = ""
    args: list[Expr] = field(default_factory=list)
    symbol: Optional[Symbol] = None


@dataclass
class Index(Expr):
    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class Cast(Expr):
    target_type: Optional[CType] = None
    operand: Optional[Expr] = None


@dataclass
class SizeOf(Expr):
    target_type: Optional[CType] = None
    operand: Optional[Expr] = None


# ---------------------------------------------------------------------------
# Initialisers
# ---------------------------------------------------------------------------


@dataclass
class InitList:
    """Brace-enclosed initialiser list (possibly nested)."""

    items: list[Union[Expr, "InitList"]] = field(default_factory=list)
    line: int = 0
    col: int = 0


Initializer = Union[Expr, InitList]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    line: int = 0
    col: int = 0


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class Declarator:
    name: str
    ty: CType
    init: Optional[Initializer]
    line: int = 0
    col: int = 0
    symbol: Optional[Symbol] = None


@dataclass
class DeclStmt(Stmt):
    decls: list[Declarator] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then: Optional[Stmt] = None
    els: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class DoWhile(Stmt):
    body: Optional[Stmt] = None
    cond: Optional[Expr] = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None  # ExprStmt or DeclStmt or None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass
class Param:
    name: str
    ty: CType
    line: int = 0
    col: int = 0


@dataclass
class FuncDef:
    name: str
    ret_type: CType
    params: list[Param]
    body: Optional[Block]  # None for a pure declaration
    line: int = 0
    col: int = 0
    symbol: Optional[Symbol] = None


@dataclass
class GlobalDecl:
    decl: Declarator
    line: int = 0
    col: int = 0


@dataclass
class TranslationUnit:
    items: list[Union[FuncDef, GlobalDecl]] = field(default_factory=list)
