"""Analytic FPGA resource and timing model (the synthesis substitute).

The paper synthesises RTL with Vivado on a Zynq Z7020 (speed grade -1).
No synthesis tools exist in this environment, so this package provides a
component-level analytic model with physically-motivated structure:

* register files follow the LaForest-Steffan distributed-RAM multiport
  design (bank replication per read port, replication x write ports plus
  a live-value table for multi-write files) -- reference [28] of the
  paper, the design the authors used;
* the interconnect is costed as 6-LUT mux trees over the actual bus
  connectivity of the machine description (so bus merging and pruning
  really changes area);
* function units have fixed costs with the multiplier in DSP blocks;
* fmax comes from a critical-path model whose terms grow with RF port
  counts/depth and with interconnect fan-in.

Coefficients were calibrated once against the paper's Table III; see
EXPERIMENTS.md for the per-design-point paper-vs-model comparison.  The
MicroBlaze rows are vendor-IP constants taken from the paper (the core
is a closed black box the authors also only measured).
"""

from repro.fpga.resources import ResourceReport, estimate_resources
from repro.fpga.timing import estimate_fmax
from repro.fpga.report import SynthesisReport, synthesize

__all__ = [
    "ResourceReport",
    "SynthesisReport",
    "estimate_fmax",
    "estimate_resources",
    "synthesize",
]
