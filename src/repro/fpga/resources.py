"""LUT/FF/DSP estimation per component.

Register files (LaForest-Steffan, distributed RAM):

* one 32-deep x 32b simple-dual-port bank = 24 LUTs (RAM32M packs six
  bits per four LUTs); a 64-deep bank = 44 LUTs (RAM64M, three bits per
  four LUTs); deeper files stack 64-deep banks plus output muxing;
* a file with R read ports and one write port replicates the bank R
  times;
* a file with W > 1 write ports uses W x R banks plus a live-value table
  and per-read-port output muxing -- this is the super-linear blow-up
  that makes the monolithic VLIW register files expensive (paper
  Section II and Table III).

The interconnect is costed from the machine's actual bus connectivity:
each bus input is a mux over its source endpoints and each destination
port is a mux over the buses that can drive it (32 bits wide, packed
into 6-LUTs at ~3 mux inputs per LUT-bit level).  VLIW datapaths are
costed on their equivalent transport structure (paper Fig. 4a: a VLIW
datapath is a TTA with a fully-connected bypass network).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.machine.components import Bus, FunctionUnit, RegisterFile
from repro.machine.encoding import encode_machine
from repro.machine.machine import Machine, MachineStyle
from repro.machine.presets import _full_buses  # structural reuse for VLIW costing

#: per-FU LUT costs (32-bit integer units; the multiplier lives in DSPs)
_FU_LUTS = {"alu": 340, "lsu": 130, "cu": 170}
_FU_FFS = {"alu": 180, "lsu": 110, "cu": 90}
_DSP_PER_MUL = 3

#: mux packing: one 6-LUT implements ~3 mux inputs per bit
_MUX_LUTS_PER_BIT_INPUT = 1.0 / 3.0
_DATA_WIDTH = 32

#: MicroBlaze vendor-IP constants (paper Table III; closed IP, measured
#: not modelled -- see package docstring).
MICROBLAZE_RESOURCES = {
    "mblaze-3": {"core_luts": 715, "rf_luts": 128, "lutram": 128, "ic_luts": 0, "ffs": 303, "dsps": 3},
    "mblaze-5": {"core_luts": 829, "rf_luts": 64, "lutram": 64, "ic_luts": 0, "ffs": 582, "dsps": 3},
}


@lru_cache(maxsize=1)
def _vendor_digests() -> dict[str, str]:
    """Structural digest -> vendor preset name for the measured cores."""
    from repro.machine.presets import build_machine
    from repro.machine.serialize import machine_digest

    return {
        machine_digest(build_machine(name)): name
        for name in MICROBLAZE_RESOURCES
    }


def vendor_preset_name(machine: Machine) -> str | None:
    """Vendor preset whose *measured* numbers apply to *machine*, if any.

    Matching is **structural** (name/description-blind digest): a
    renamed clone of a measured core still gets the vendor constants,
    while a machine merely *named* like one -- e.g. an exploration
    mutant derived from it -- falls through to the analytic model
    instead of inheriting measurements of hardware it no longer is.
    """
    from repro.machine.serialize import machine_digest

    return _vendor_digests().get(machine_digest(machine))


@dataclass(frozen=True)
class ResourceReport:
    """Estimated FPGA resources of one design point."""

    machine_name: str
    core_luts: int
    rf_luts: int
    lutram: int
    ic_luts: int
    ffs: int
    dsps: int
    #: approximate slices (4 LUTs / 8 FFs per slice on 7-series)
    @property
    def slices(self) -> int:
        return max((self.core_luts + 3) // 4, (self.ffs + 7) // 8)


def rf_luts(rf: RegisterFile) -> tuple[int, int]:
    """(total LUTs, LUTs used as RAM) for one register file."""
    depth = rf.size
    if depth <= 32:
        per_copy = 24
    else:
        banks = (depth + 63) // 64
        per_copy = banks * 44 + (banks - 1) * 16  # stacked banks + mux
    reads, writes = rf.read_ports, rf.write_ports
    if writes <= 1:
        copies = max(reads, 1)
        ram = copies * per_copy
        logic = 0
    else:
        copies = reads * writes
        ram = copies * per_copy
        lvt_bits = max(1, (writes - 1).bit_length())
        lvt = int(depth * lvt_bits * 0.5)
        out_mux = int(reads * _DATA_WIDTH * (writes - 1) * 0.7)
        logic = lvt + out_mux + 30 * writes
    return ram + logic, ram


def _transport_structure(machine: Machine) -> tuple[Bus, ...]:
    """The bus structure to cost the interconnect on."""
    if machine.style is MachineStyle.TTA:
        return machine.buses
    # A VLIW datapath's routing is equivalent to a fully-connected
    # transport network sustaining its issue rate (paper Fig. 4a):
    # three transports per issue slot.
    count = machine.issue_width * 3
    return _full_buses(count, machine.all_units, machine.register_files)


def _endpoint_rf(machine: Machine, endpoint: str) -> RegisterFile | None:
    unit = endpoint.split(".", 1)[0]
    return machine.rf_by_name.get(unit)


def ic_luts(machine: Machine) -> int:
    """Interconnect mux LUTs from the (real or equivalent) bus structure."""
    buses = _transport_structure(machine)
    total = 0.0
    # Bus input muxes: one mux over all source endpoints per bus.
    for bus in buses:
        n_sources = len(bus.sources)
        total += _DATA_WIDTH * max(0, n_sources - 1) * _MUX_LUTS_PER_BIT_INPUT
    # Destination port muxes: each port selects among the buses driving it.
    ports: dict[str, int] = {}
    for bus in buses:
        for dst in bus.destinations:
            ports[dst] = ports.get(dst, 0) + 1
    for fanin in ports.values():
        total += _DATA_WIDTH * max(0, fanin - 1) * _MUX_LUTS_PER_BIT_INPUT
    # Synthesis shares decoding/mux logic across wide transport networks;
    # scale sublinearly beyond the six-bus point (calibrated on Table III).
    scale = 0.75 * min(1.0, (6.0 / max(len(buses), 6)) ** 0.8)
    return int(total * scale)


def _decode_luts(machine: Machine) -> int:
    """Instruction decode: proportional to the instruction width (the TTA
    format needs very little logic per bit; the VLIW word is denser)."""
    width = encode_machine(machine).instruction_width
    factor = 1.0 if machine.style is MachineStyle.TTA else 1.6
    return int(width * factor)


def estimate_resources(machine: Machine) -> ResourceReport:
    """Estimate the FPGA resources of *machine*."""
    vendor = vendor_preset_name(machine)
    if vendor is not None:
        return ResourceReport(machine.name, **MICROBLAZE_RESOURCES[vendor])

    rf_total = 0
    ram_total = 0
    for rf in machine.register_files:
        luts, ram = rf_luts(rf)
        rf_total += luts
        ram_total += ram
    interconnect = ic_luts(machine)
    fu_total = 0
    ff_total = 120  # PC, fetch and glue registers
    dsps = 0
    for fu in machine.all_units:
        kind = fu.kind.value
        fu_total += _FU_LUTS[kind]
        ff_total += _FU_FFS[kind]
        if "mul" in fu.ops:
            dsps += _DSP_PER_MUL
    decode = _decode_luts(machine)
    # Pipeline/port registers grow with transport parallelism.
    ff_total += 32 * len(_transport_structure(machine))
    ff_total += 40 * len(machine.register_files)
    core = rf_total + interconnect + fu_total + decode
    return ResourceReport(
        machine_name=machine.name,
        core_luts=int(core),
        rf_luts=int(rf_total),
        lutram=int(ram_total),
        ic_luts=int(interconnect),
        ffs=int(ff_total),
        dsps=dsps,
    )
