"""Critical-path / fmax model.

``delay = base + rf_term + ic_term`` in nanoseconds, where

* the RF term grows with read-port count (output mux depth), write-port
  count (LVT arbitration on the write path) and depth (bank cascading);
* the IC term grows with the worst mux fan-in of the transport structure
  (bus source count plus destination port fan-in).

The MicroBlaze fmax values are the vendor-core measurements from the
paper's Table III (black-box IP).
"""

from __future__ import annotations

import math

from repro.fpga.resources import _transport_structure, vendor_preset_name
from repro.machine.machine import Machine

_BASE_NS = 4.0
_READ_PORT_NS = 0.15
_WRITE_PORT_NS = 0.50
_DEPTH_NS = 0.20
_IC_FANIN_NS = 0.07

MICROBLAZE_FMAX = {"mblaze-3": 169.0, "mblaze-5": 174.0}


def _rf_delay(machine: Machine) -> float:
    worst = 0.0
    for rf in machine.register_files:
        depth_levels = max(0.0, math.log2(rf.size / 32)) if rf.size > 32 else 0.0
        delay = (
            _READ_PORT_NS * (rf.read_ports - 1)
            + _WRITE_PORT_NS * (rf.write_ports - 1)
            + _DEPTH_NS * depth_levels
        )
        worst = max(worst, delay)
    return worst


def _ic_delay(machine: Machine) -> float:
    buses = _transport_structure(machine)
    if not buses:
        return 0.0
    max_sources = max(len(bus.sources) for bus in buses)
    ports: dict[str, int] = {}
    for bus in buses:
        for dst in bus.destinations:
            ports[dst] = ports.get(dst, 0) + 1
    max_fanin = max(ports.values()) if ports else 0
    return _IC_FANIN_NS * (max_sources + max_fanin)


def estimate_fmax(machine: Machine) -> float:
    """Estimated maximum clock frequency in MHz.

    Machines structurally identical to a measured MicroBlaze core (by
    name-blind digest, see
    :func:`repro.fpga.resources.vendor_preset_name`) report the vendor
    measurement; everything else — presets and generated design points
    alike — goes through the analytic model.
    """
    vendor = vendor_preset_name(machine)
    if vendor is not None:
        return MICROBLAZE_FMAX[vendor]
    delay = _BASE_NS + _rf_delay(machine) + _ic_delay(machine)
    return round(1000.0 / delay, 1)
