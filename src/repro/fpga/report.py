"""Combined synthesis-style report for one design point."""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.resources import ResourceReport, estimate_resources
from repro.fpga.timing import estimate_fmax
from repro.machine.machine import Machine


@dataclass(frozen=True)
class SynthesisReport:
    """What `synthesize` returns: resources plus timing for a machine."""

    machine_name: str
    resources: ResourceReport
    fmax_mhz: float

    def runtime_seconds(self, cycles: int) -> float:
        """Wall-clock execution time of *cycles* at the estimated fmax."""
        return cycles / (self.fmax_mhz * 1e6)


def synthesize(machine: Machine) -> SynthesisReport:
    """Run the analytic 'synthesis' of *machine*."""
    return SynthesisReport(machine.name, estimate_resources(machine), estimate_fmax(machine))
