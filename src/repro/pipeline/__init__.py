"""Parallel sweep engine with a content-addressed on-disk artifact store.

The design-space studies behind every table and figure re-evaluate the
same (machine, kernel) matrix over and over.  This package makes that
cheap and robust:

* :mod:`repro.pipeline.fingerprint` — stable content keys over the
  machine description, kernel source text, toolchain digest and flags;
* :mod:`repro.pipeline.store` — an on-disk artifact cache with atomic
  writes and corrupted-entry detection-and-rebuild;
* :mod:`repro.pipeline.executor` — a multiprocessing fan-out engine
  with per-task failure isolation, bounded retries and deterministic
  result ordering;
* :mod:`repro.pipeline.sweep` — the orchestration layer gluing the
  three together (and the ``repro sweep`` CLI's engine).

Quickstart::

    from repro.pipeline import sweep

    outcome = sweep(machines=("m-tta-2",), kernels=("mips", "motion"),
                    jobs=4)
    for (m, k), r in outcome.results.items():
        print(m, k, r.cycles)
"""

from repro.pipeline.executor import (
    TracedOutcome,
    execute_task,
    result_extras,
    run_tasks,
)
from repro.pipeline.fingerprint import (
    describe_machine,
    fingerprint,
    job_fingerprint,
    resolve_task_machine,
    task_fingerprint,
    toolchain_fingerprint,
)
from repro.pipeline.store import (
    ArtifactStore,
    CACHE_DIR_ENV,
    NO_CACHE_ENV,
    default_cache_dir,
    default_store,
)
from repro.pipeline.sweep import (
    build_tasks,
    compile_cached,
    parse_subset,
    resolve_kernel_sources,
    sweep,
    sweep_tasks,
    tasks_for_machines,
)
from repro.pipeline.types import (
    SWEEP_JSON_SCHEMA,
    EvalResult,
    SweepFailure,
    SweepOutcome,
    SweepStats,
    SweepTask,
    TaskError,
)

__all__ = [
    "ArtifactStore",
    "CACHE_DIR_ENV",
    "EvalResult",
    "NO_CACHE_ENV",
    "SWEEP_JSON_SCHEMA",
    "SweepFailure",
    "SweepOutcome",
    "SweepStats",
    "SweepTask",
    "TaskError",
    "TracedOutcome",
    "build_tasks",
    "compile_cached",
    "default_cache_dir",
    "default_store",
    "describe_machine",
    "execute_task",
    "fingerprint",
    "job_fingerprint",
    "parse_subset",
    "resolve_kernel_sources",
    "resolve_task_machine",
    "result_extras",
    "run_tasks",
    "sweep",
    "sweep_tasks",
    "task_fingerprint",
    "tasks_for_machines",
    "toolchain_fingerprint",
]
