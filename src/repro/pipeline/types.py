"""Data types shared across the sweep pipeline.

:class:`EvalResult` is the unit of measurement the whole evaluation
stack consumes (tables, figures, benchmarks).  It historically lived in
``repro.eval.runner``; it moved here so the pipeline has no dependency
on the evaluation layer (``repro.eval`` re-exports it unchanged).

:class:`SweepTask` describes one (machine, kernel) measurement request,
including the kernel *source text* (so callers can sweep ad-hoc
workloads, and so the content fingerprint can hash exactly what will be
compiled).  :class:`TaskError` is the structured failure record a
crashing pair produces instead of killing the sweep, and
:class:`SweepOutcome` bundles ordered results, errors and cache/timing
statistics.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

#: bump when the on-disk ``EvalResult`` JSON layout changes
#: (2: added the ``extras`` counter dict — RF traffic, transport stats)
RESULT_SCHEMA = 2

#: version of the ``repro sweep --json`` payload (``SweepOutcome.to_dict``).
#: Emitted as ``schema_version`` so consumers — the compile-and-simulate
#: service, future remote workers — can reject payloads from a
#: mismatched toolchain instead of misparsing them.  Bump on any
#: key/meaning change of the JSON layout.
SWEEP_JSON_SCHEMA = 1


@dataclass(frozen=True)
class EvalResult:
    """One (machine, kernel) measurement.

    ``extras`` carries the style-specific architectural counters the
    simulator already computes (TTA: ``moves``/``triggers``/
    ``rf_reads``/``rf_writes``/``bypass_reads``; VLIW: ``bundles``/
    ``ops``; scalar: ``instructions``/``loads``/``stores``/...), so the
    evaluation layer can report RF-traffic-style statistics alongside
    cycle counts.  The counters are deterministic functions of the
    (machine, kernel, toolchain) content — identical across engines and
    cache states — so they are safe to persist in the artifact store.
    """

    machine: str
    kernel: str
    exit_code: int
    cycles: int
    instruction_count: int
    instruction_width: int
    fmax_mhz: float
    extras: dict = field(default_factory=dict)

    @property
    def program_bits(self) -> int:
        return self.instruction_count * self.instruction_width

    @property
    def runtime_us(self) -> float:
        return self.cycles / self.fmax_mhz

    def to_dict(self) -> dict:
        payload = asdict(self)
        # Underscore-prefixed extras are process-local observability
        # (e.g. the executor's ``_wall_ms`` attempt timing): real wall
        # clock is nondeterministic, so it must never reach the artifact
        # store or a --json payload — those stay byte-identical across
        # serial/parallel/cached runs.
        payload["extras"] = {
            k: v for k, v in payload["extras"].items() if not k.startswith("_")
        }
        payload["schema"] = RESULT_SCHEMA
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "EvalResult":
        if payload.get("schema") != RESULT_SCHEMA:
            raise ValueError(
                f"EvalResult schema mismatch: {payload.get('schema')!r} != {RESULT_SCHEMA}"
            )
        extras = payload.get("extras", {})
        if not isinstance(extras, dict):
            raise ValueError(f"EvalResult extras must be a dict, got {extras!r}")
        return cls(
            machine=str(payload["machine"]),
            kernel=str(payload["kernel"]),
            exit_code=int(payload["exit_code"]),
            cycles=int(payload["cycles"]),
            instruction_count=int(payload["instruction_count"]),
            instruction_width=int(payload["instruction_width"]),
            fmax_mhz=float(payload["fmax_mhz"]),
            extras={
                str(k): int(v)
                for k, v in extras.items()
                if not str(k).startswith("_")
            },
        )


@dataclass(frozen=True)
class SweepTask:
    """One measurement request: compile *source* for *machine*, run it.

    Attributes:
        machine: design-point name -- a preset name, or the display name
            of a generated machine when ``machine_desc`` is set.
        kernel: display name of the workload.
        source: MiniC source text (hashed into the fingerprint).
        mode: simulation engine (``fast`` or ``checked``).
        optimize: run the IR optimisation pipeline before scheduling.
        machine_desc: canonical machine JSON
            (:func:`repro.machine.machine_to_json`) for design points
            that are not presets -- exploration mutants, ad-hoc
            machines.  ``None`` means *machine* names a preset.
        expected_exit: the exit code the workload's self-check must
            produce (0 for the hand-written kernels; promoted fuzz
            kernels checksum their state into a nonzero exit pinned at
            promotion time).  ``None`` skips the check entirely.
    """

    machine: str
    kernel: str
    source: str
    mode: str = "fast"
    optimize: bool = True
    machine_desc: str | None = None
    expected_exit: int | None = 0

    @property
    def pair(self) -> tuple[str, str]:
        return (self.machine, self.kernel)


@dataclass(frozen=True)
class TaskError:
    """Structured record of one failed (machine, kernel) pair.

    A failing pair never aborts the sweep; it yields one of these with
    the exception type/message and the full traceback text of the *last*
    attempt, plus how many attempts were made (1 + retries).
    """

    machine: str
    kernel: str
    error_type: str
    message: str
    traceback: str
    attempts: int = 1

    @property
    def pair(self) -> tuple[str, str]:
        return (self.machine, self.kernel)

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class SweepStats:
    """Cache and timing accounting for one sweep invocation."""

    total: int = 0
    cache_hits: int = 0
    computed: int = 0
    failed: int = 0
    retried: int = 0
    elapsed_s: float = 0.0

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class SweepOutcome:
    """Everything a sweep produced, in deterministic (machine, kernel)
    request order regardless of completion order."""

    results: dict[tuple[str, str], EvalResult] = field(default_factory=dict)
    errors: dict[tuple[str, str], TaskError] = field(default_factory=dict)
    stats: SweepStats = field(default_factory=SweepStats)
    #: tracer payloads shipped back from the workers (one per computed
    #: pair) when the sweep ran with ``trace=True``; merge with
    #: :func:`repro.obs.to_chrome_trace`.  Deliberately excluded from
    #: :meth:`to_dict` — trace timelines go to their own file.
    traces: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_on_error(self) -> None:
        """Re-raise the sweep's failures as one exception (compat path
        for callers that want the pre-pipeline abort-on-failure
        semantics, e.g. ``repro.eval.runner.run_sweep``)."""
        if self.errors:
            first = next(iter(self.errors.values()))
            summary = ", ".join(f"{m}/{k}" for m, k in self.errors)
            raise SweepFailure(
                f"{len(self.errors)} sweep pair(s) failed ({summary}); "
                f"first: {first.error_type}: {first.message}",
                errors=tuple(self.errors.values()),
            )

    def to_dict(self) -> dict:
        return {
            "schema_version": SWEEP_JSON_SCHEMA,
            "results": [r.to_dict() for r in self.results.values()],
            "errors": [e.to_dict() for e in self.errors.values()],
            "stats": self.stats.to_dict(),
        }


class SweepFailure(AssertionError):
    """Raised by :meth:`SweepOutcome.raise_on_error`.

    Subclasses :class:`AssertionError` because the pre-pipeline sweep
    surfaced kernel self-check failures as ``AssertionError`` and tests
    or callers may be catching that.
    """

    def __init__(self, message: str, errors: tuple[TaskError, ...] = ()):
        super().__init__(message)
        self.errors = errors
