"""Content-addressed on-disk artifact store.

Layout (under the store root, default ``~/.cache/repro/artifacts`` or
``$REPRO_CACHE_DIR``)::

    results/<k0k1>/<key>.json    # EvalResult entries (JSON payload)
    programs/<k0k1>/<key>.pkl    # CompiledProgram entries (pickle payload)
    json/<k0k1>/<key>.json       # generic JSON entries (fuzz verdicts, ...)
    blobs/<k0k1>/<key>.bin       # opaque binary entries (native-engine .so)

where ``<key>`` is the hex SHA-256 content fingerprint from
:mod:`repro.pipeline.fingerprint` and ``<k0k1>`` its first two hex
digits (fan-out so no directory grows unbounded).

Every entry file is self-verifying: a one-line header carrying the
SHA-256 of the payload bytes, then the payload.  Loads re-hash the
payload; any mismatch, truncation, unparseable header or undecodable
payload classifies the entry as **corrupt**, deletes it, and returns a
miss so the caller transparently rebuilds it.  Writes go through a
temporary file in the same directory followed by :func:`os.replace`, so
concurrent writers (the multiprocessing pool, parallel CI jobs on a
shared cache volume) can never expose a half-written entry.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from repro.pipeline.types import EvalResult

_HEADER_PREFIX = b"repro-artifact sha256="
_KIND_RESULTS = "results"
_KIND_PROGRAMS = "programs"
_KIND_JSON = "json"
_KIND_BLOBS = "blobs"
_ALL_KINDS = (_KIND_RESULTS, _KIND_PROGRAMS, _KIND_JSON, _KIND_BLOBS)

#: environment override for the store root
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: set to any non-empty value to disable the default store entirely
NO_CACHE_ENV = "REPRO_NO_CACHE"

#: age after which an orphaned ``.tmp`` file (writer killed between
#: ``mkstemp`` and ``os.replace``) is garbage-collected on store init;
#: generous enough that no live writer can still own it
TMP_GC_AGE_S = 3600.0


def default_cache_dir() -> Path:
    """Store root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro/artifacts``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro" / "artifacts"


@dataclass
class StoreStats:
    """Counters for one store's lifetime in this process."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt_dropped: int = 0
    stale_tmp_removed: int = 0
    #: binary-blob entries written (native-engine shared objects)
    blob_writes: int = 0


class ArtifactStore:
    """Content-addressed cache of compiled programs and eval results."""

    def __init__(self, root: Path | str | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.stats = StoreStats()
        self._gc_stale_tmp()

    # ---- paths ----------------------------------------------------------

    def _entry_path(self, kind: str, key: str, suffix: str) -> Path:
        if len(key) < 8 or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed artifact key {key!r}")
        return self.root / kind / key[:2] / f"{key}{suffix}"

    def result_path(self, key: str) -> Path:
        return self._entry_path(_KIND_RESULTS, key, ".json")

    def program_path(self, key: str) -> Path:
        return self._entry_path(_KIND_PROGRAMS, key, ".pkl")

    def json_path(self, key: str) -> Path:
        return self._entry_path(_KIND_JSON, key, ".json")

    def blob_path(self, key: str) -> Path:
        return self._entry_path(_KIND_BLOBS, key, ".bin")

    # ---- raw entry I/O --------------------------------------------------

    def _write_entry(self, path: Path, payload: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        header = _HEADER_PREFIX + hashlib.sha256(payload).hexdigest().encode() + b"\n"
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(header)
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.writes += 1

    def _read_entry(self, path: Path) -> bytes | None:
        """Payload bytes, or ``None`` on miss/corruption (corrupt entries
        are deleted so the caller's rebuild repairs the store)."""
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        newline = blob.find(b"\n")
        header, payload = blob[: newline + 1], blob[newline + 1 :]
        if (
            newline < 0
            or not header.startswith(_HEADER_PREFIX)
            or hashlib.sha256(payload).hexdigest().encode()
            != header[len(_HEADER_PREFIX) : -1]
        ):
            self._drop_corrupt(path)
            return None
        self.stats.hits += 1
        return payload

    def _drop_corrupt(self, path: Path) -> None:
        self.stats.corrupt_dropped += 1
        self.stats.misses += 1
        try:
            path.unlink()
        except OSError:
            pass

    # ---- EvalResult entries ---------------------------------------------

    def store_result(self, key: str, result: EvalResult) -> Path:
        path = self.result_path(key)
        payload = json.dumps(result.to_dict(), sort_keys=True, indent=0).encode()
        self._write_entry(path, payload)
        return path

    def load_result(self, key: str) -> EvalResult | None:
        path = self.result_path(key)
        payload = self._read_entry(path)
        if payload is None:
            return None
        try:
            return EvalResult.from_dict(json.loads(payload))
        except (ValueError, KeyError, TypeError):
            # checksum passed but the payload is semantically unusable
            # (schema bump, hand-edited entry): rebuild it.
            self.stats.hits -= 1
            self._drop_corrupt(path)
            return None

    # ---- generic JSON entries -------------------------------------------

    def store_json(self, key: str, payload: dict) -> Path:
        """Store an arbitrary JSON-serialisable dict (same atomicity and
        self-verification guarantees as the typed entry kinds).  Used by
        the fuzzing subsystem to memoise passing differential verdicts."""
        path = self.json_path(key)
        blob = json.dumps(payload, sort_keys=True, indent=0).encode()
        self._write_entry(path, blob)
        return path

    def load_json(self, key: str) -> dict | None:
        path = self.json_path(key)
        blob = self._read_entry(path)
        if blob is None:
            return None
        try:
            payload = json.loads(blob)
        except ValueError:
            self.stats.hits -= 1
            self._drop_corrupt(path)
            return None
        if not isinstance(payload, dict):
            self.stats.hits -= 1
            self._drop_corrupt(path)
            return None
        return payload

    # ---- opaque binary entries ------------------------------------------

    def store_blob(self, key: str, payload: bytes) -> Path:
        """Store opaque binary data (same atomicity and self-verification
        guarantees as the typed entry kinds).  Used by the native engine
        to memoise compiled shared objects keyed by their generated-C
        fingerprint."""
        path = self.blob_path(key)
        self._write_entry(path, bytes(payload))
        self.stats.blob_writes += 1
        return path

    def load_blob(self, key: str) -> bytes | None:
        """Payload bytes, or ``None`` on miss/corruption (corrupt entries
        are deleted so the caller transparently rebuilds them)."""
        return self._read_entry(self.blob_path(key))

    # ---- CompiledProgram entries ----------------------------------------

    def store_program(self, key: str, compiled) -> Path:
        path = self.program_path(key)
        payload = pickle.dumps(compiled, protocol=pickle.HIGHEST_PROTOCOL)
        self._write_entry(path, payload)
        return path

    def load_program(self, key: str):
        path = self.program_path(key)
        payload = self._read_entry(path)
        if payload is None:
            return None
        try:
            return pickle.loads(payload)
        except Exception:
            self.stats.hits -= 1
            self._drop_corrupt(path)
            return None

    # ---- maintenance ----------------------------------------------------

    def _gc_stale_tmp(self, age_s: float = TMP_GC_AGE_S) -> int:
        """Remove orphaned write-temporaries older than *age_s* seconds.

        A writer killed between ``mkstemp`` and ``os.replace`` leaks its
        ``.tmp`` file; nothing ever reads or replaces it again, so any
        temp file past the age threshold is garbage.  Fresh temp files
        (a concurrent writer mid-flight) are left alone.
        """
        cutoff = time.time() - age_s
        removed = 0
        for kind in _ALL_KINDS:
            base = self.root / kind
            if not base.exists():
                continue
            for path in base.rglob("*.tmp"):
                try:
                    if path.is_file() and path.stat().st_mtime < cutoff:
                        path.unlink()
                        removed += 1
                except OSError:
                    continue  # concurrent GC/writer won the race; fine
        self.stats.stale_tmp_removed += removed
        return removed

    def clear(self) -> int:
        """Delete every entry; returns how many files were removed."""
        removed = 0
        for kind in _ALL_KINDS:
            base = self.root / kind
            if not base.exists():
                continue
            for path in base.rglob("*"):
                if path.is_file():
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        pass
        return removed

    def entry_count(self) -> dict[str, int]:
        counts = {}
        for kind in _ALL_KINDS:
            base = self.root / kind
            counts[kind] = (
                sum(1 for p in base.rglob("*") if p.is_file() and not p.name.endswith(".tmp"))
                if base.exists()
                else 0
            )
        return counts


_DEFAULT_STORE: ArtifactStore | None = None


def default_store() -> ArtifactStore | None:
    """Process-wide store at the default location, or ``None`` when the
    cache is disabled via ``$REPRO_NO_CACHE``."""
    global _DEFAULT_STORE
    if os.environ.get(NO_CACHE_ENV):
        return None
    if _DEFAULT_STORE is None or _DEFAULT_STORE.root != default_cache_dir():
        _DEFAULT_STORE = ArtifactStore()
    return _DEFAULT_STORE
