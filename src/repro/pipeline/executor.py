"""Task execution: the measurement worker and the (optionally parallel)
fan-out engine.

``execute_task`` is the single source of truth for how one (machine,
kernel) pair is measured — the serial path, the multiprocessing pool and
the legacy ``repro.eval.runner`` wrapper all go through it, which is
what makes "parallel results are byte-identical to serial results" a
structural property rather than a test-enforced one.

``run_tasks`` fans a task list out over a ``multiprocessing`` pool.  It
is *worker-generic*: any module-level callable taking one task and
returning a picklable outcome can ride the same machinery (the fuzzing
subsystem fans its differential cases out through it with
``worker=execute_fuzz_task``).  Tasks only need ``machine`` and
``kernel`` attributes for failure attribution.  The pool gives:

* **per-task failure isolation** — a raising pair becomes a
  :class:`~repro.pipeline.types.TaskError` carrying the full traceback;
  every other pair still completes;
* **bounded retries** — failed tasks are resubmitted up to *retries*
  times (guards against transient faults, e.g. an OOM-killed worker);
* **deterministic ordering** — completion order never leaks out; the
  caller receives outcomes in task-list order.
"""

from __future__ import annotations

import functools
import multiprocessing
import os
import time
import traceback
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro import obs
from repro.pipeline.types import EvalResult, SweepTask, TaskError
from repro.sim.counters import STAT_FIELDS

#: callback signature: (done_count, total, task, outcome)
ProgressFn = Callable[[int, int, SweepTask, "EvalResult | TaskError"], None]

#: worker signature: one task in, one picklable outcome out (raises on failure)
WorkerFn = Callable[[SweepTask], object]


@dataclass(frozen=True)
class TracedOutcome:
    """One task's result plus the tracer payload the worker recorded.

    ``run_tasks(..., trace=True)`` yields these instead of bare
    outcomes; the payload crosses the process boundary as a plain dict
    (JSON/pickle-safe) alongside the outcome it explains.  ``wall_ms``
    is the wall-clock time of the final attempt (queue/pool overhead
    excluded), so latency consumers — the service's ``/v1/stats``
    percentiles — need no side channel.
    """

    outcome: object
    trace: dict | None
    wall_ms: float | None = None


def execute_task(task: SweepTask) -> EvalResult:
    """Measure one (machine, kernel) pair: compile, simulate, synthesise.

    Raises on any failure (compile error, simulator fault, kernel
    self-check failure); :func:`run_tasks` converts that into a
    :class:`TaskError`.
    """
    from repro.backend import compile_for_machine
    from repro.fpga import synthesize
    from repro.frontend import compile_source
    from repro.machine import encode_machine
    from repro.pipeline.fingerprint import resolve_task_machine
    from repro.sim import run_compiled

    machine = resolve_task_machine(task)
    module = compile_source(
        task.source, module_name=task.kernel, optimize=task.optimize
    )
    compiled = compile_for_machine(module, machine)
    result = run_compiled(compiled, mode=task.mode)
    expected = getattr(task, "expected_exit", 0)
    if expected is not None and result.exit_code != expected:
        raise AssertionError(
            f"kernel {task.kernel} self-check failed on {task.machine}: "
            f"exit={result.exit_code} (expected {expected})"
        )
    encoding = encode_machine(machine)
    report = synthesize(machine)
    return EvalResult(
        machine=task.machine,
        kernel=task.kernel,
        exit_code=result.exit_code,
        cycles=result.cycles,
        instruction_count=compiled.instruction_count,
        instruction_width=encoding.instruction_width,
        fmax_mhz=report.fmax_mhz,
        extras=result_extras(result),
    )


def result_extras(result) -> dict[str, int]:
    """Style-specific simulator counters folded into ``EvalResult.extras``.

    Deterministic across engines and runs (the differential tests pin
    every statistic byte-identical between checked/fast/turbo), hence
    safe to cache.
    """
    return {
        name: getattr(result, name)
        for name in STAT_FIELDS
        if getattr(result, name, None) is not None
    }


def _attempt(
    worker: WorkerFn, trace: bool, indexed: tuple[int, SweepTask]
) -> tuple[int, object]:
    """Pool worker: never raises; failures come back as TaskError.

    Returns plain dataclasses (no Machine/Program objects) so the
    pickled payload crossing the process boundary stays tiny.  *worker*
    must be a module-level callable (the pool pickles it via
    ``functools.partial``).

    With ``trace=True`` the task runs under its own fresh tracer (any
    inherited/ambient tracer is parked for the duration, so serial and
    forked execution behave identically) and the return value is a
    :class:`TracedOutcome` carrying the span/counter payload.

    Either way the attempt's wall-clock time is surfaced: as
    ``TracedOutcome.wall_ms`` and, for :class:`EvalResult` outcomes, as
    the transient ``extras["_wall_ms"]`` entry.  Underscore-prefixed
    extras are process-local observability — they never reach
    ``EvalResult.to_dict`` and therefore neither the artifact store nor
    ``--json`` payloads, which stay byte-identical.
    """
    index, task = indexed
    if not trace:
        start = time.perf_counter()
        try:
            outcome: object = worker(task)
        except BaseException as exc:  # noqa: BLE001 - isolation is the point
            outcome = _task_error(task, exc)
        _attach_wall_ms(outcome, time.perf_counter() - start)
        return index, outcome
    ambient = obs.disable()
    tracer = obs.enable(
        obs.Tracer(process=f"worker pid={os.getpid()} {task.machine}/{task.kernel}")
    )
    start = time.perf_counter()
    try:
        with tracer.span("task.execute", machine=task.machine, kernel=task.kernel):
            outcome = worker(task)
    except BaseException as exc:  # noqa: BLE001 - isolation is the point
        outcome = _task_error(task, exc)
    finally:
        wall_ms = (time.perf_counter() - start) * 1e3
        obs.disable()
        if ambient is not None:
            obs.enable(ambient)
    _attach_wall_ms(outcome, wall_ms / 1e3)
    return index, TracedOutcome(outcome, tracer.to_payload(), round(wall_ms, 3))


def _attach_wall_ms(outcome: object, seconds: float) -> None:
    """Record the attempt's wall time on an ``extras``-bearing outcome."""
    extras = getattr(outcome, "extras", None)
    if isinstance(extras, dict):
        extras["_wall_ms"] = round(seconds * 1e3, 3)


def _task_error(task: SweepTask, exc: BaseException) -> TaskError:
    return TaskError(
        machine=task.machine,
        kernel=task.kernel,
        error_type=type(exc).__name__,
        message=str(exc),
        traceback=traceback.format_exc(),
    )


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_tasks(
    tasks: Sequence[SweepTask],
    jobs: int = 1,
    retries: int = 1,
    progress: ProgressFn | None = None,
    worker: WorkerFn = execute_task,
    trace: bool = False,
) -> list[EvalResult | TaskError | TracedOutcome]:
    """Execute *tasks*, serially (``jobs<=1``) or over a process pool.

    Returns one outcome per task, **in task order**.  ``retries`` bounds
    how many times a failing task is re-attempted (its final
    :class:`TaskError` records the attempt count).  *worker* is the
    per-task measurement function; the default is the sweep pipeline's
    :func:`execute_task`, and it must be a module-level callable so the
    pool can pickle it.

    With ``trace=True`` every element of the returned list is a
    :class:`TracedOutcome` whose ``trace`` field carries the worker's
    span/counter payload (the payload of the *successful or final*
    attempt).  Progress callbacks always receive the bare outcome.
    """
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    outcomes: list[EvalResult | TaskError | None] = [None] * len(tasks)
    traces: list[dict | None] = [None] * len(tasks)
    walls: list[float | None] = [None] * len(tasks)
    attempts = [0] * len(tasks)
    pending = list(enumerate(tasks))
    done = 0
    while pending:
        next_pending: list[tuple[int, SweepTask]] = []
        for index, outcome in _iter_round(pending, jobs, worker, trace):
            if isinstance(outcome, TracedOutcome):
                traces[index] = outcome.trace
                walls[index] = outcome.wall_ms
                outcome = outcome.outcome
            attempts[index] += 1
            if isinstance(outcome, TaskError):
                if attempts[index] <= retries:
                    next_pending.append((index, tasks[index]))
                    continue
                outcome = TaskError(
                    machine=outcome.machine,
                    kernel=outcome.kernel,
                    error_type=outcome.error_type,
                    message=outcome.message,
                    traceback=outcome.traceback,
                    attempts=attempts[index],
                )
            outcomes[index] = outcome
            done += 1
            if progress:
                progress(done, len(tasks), tasks[index], outcome)
        pending = next_pending
    assert all(o is not None for o in outcomes)
    if trace:
        return [
            TracedOutcome(outcome, payload, wall_ms)
            for outcome, payload, wall_ms in zip(outcomes, traces, walls)
        ]
    return outcomes  # type: ignore[return-value]


def _iter_round(
    pending: list[tuple[int, SweepTask]],
    jobs: int,
    worker: WorkerFn,
    trace: bool = False,
):
    """Yield ``(index, outcome)`` as each pending task completes."""
    attempt = functools.partial(_attempt, worker, trace)
    if jobs <= 1 or len(pending) <= 1:
        for item in pending:
            yield attempt(item)
        return
    ctx = _pool_context()
    workers = min(jobs, len(pending))
    with ctx.Pool(processes=workers) as pool:
        # unordered: slow pairs (jpeg on mblaze) don't serialise the rest;
        # the index restores deterministic order afterwards.
        yield from pool.imap_unordered(attempt, pending)
