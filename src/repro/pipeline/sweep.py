"""Sweep orchestration: cache lookup, fan-out, writeback, ordering.

:func:`sweep` is the one entry point for evaluating a (machine, kernel)
matrix.  Per pair it:

1. computes the content fingerprint (machine description + kernel
   source + toolchain digest + flags),
2. serves the pair from the :class:`~repro.pipeline.store.ArtifactStore`
   when allowed (``use_cache`` and not ``refresh``),
3. fans the remaining misses out over
   :func:`~repro.pipeline.executor.run_tasks` (serial or pool),
4. writes fresh successes back to the store atomically,
5. returns a :class:`~repro.pipeline.types.SweepOutcome` whose result
   and error dicts iterate in request order — independent of pool
   completion order, cache state and job count.

Failures never abort the sweep; they surface as
:class:`~repro.pipeline.types.TaskError` records in ``outcome.errors``.
"""

from __future__ import annotations

import time
from collections.abc import Iterable
from dataclasses import replace

from repro import obs
from repro.pipeline.executor import ProgressFn, TracedOutcome, run_tasks
from repro.pipeline.fingerprint import task_fingerprint
from repro.pipeline.store import ArtifactStore, default_store
from repro.pipeline.types import (
    EvalResult,
    SweepOutcome,
    SweepTask,
    TaskError,
)


def parse_subset(
    spec: str | Iterable[str] | None,
    known: tuple[str, ...],
    what: str,
) -> tuple[str, ...]:
    """Validate a subset selection against *known* names.

    *spec* may be ``None`` (→ all of *known*, in order), a comma-
    separated string (CLI form), or an iterable of names.  Unknown names
    raise ``ValueError`` listing the valid choices; duplicates collapse;
    the result always follows *known*'s canonical order.
    """
    if spec is None:
        return tuple(known)
    if isinstance(spec, str):
        names = [part.strip() for part in spec.split(",") if part.strip()]
    else:
        names = list(spec)
    if not names:
        raise ValueError(f"empty {what} subset")
    unknown = [n for n in names if n not in known]
    if unknown:
        raise ValueError(
            f"unknown {what} {', '.join(repr(n) for n in unknown)}; "
            f"known: {', '.join(known)}"
        )
    requested = set(names)
    return tuple(n for n in known if n in requested)


def resolve_kernel_sources(
    kernels: Iterable[str] | str | None,
) -> tuple[tuple[str, ...], dict[str, str]]:
    """Kernel names + sources for a subset spec over the full catalog.

    ``None`` means the paper's built-in set (``KERNELS``) — the default
    matrix stays the published one.  An explicit subset may name any
    addressable kernel: built-ins, extras (``fft``), and promoted
    corpus kernels (see :mod:`repro.corpus`).  Raises ``ValueError``
    for unknown or ambiguous names.
    """
    from repro.kernels import KERNELS, catalog, load

    if kernels is None:
        names: tuple[str, ...] = tuple(KERNELS)
    else:
        names = parse_subset(kernels, catalog(), "kernel")
    try:
        return names, {name: load(name) for name in names}
    except KeyError as exc:
        raise ValueError(str(exc.args[0]) if exc.args else str(exc)) from exc


def build_tasks(
    machines: Iterable[str] | str | None = None,
    kernels: Iterable[str] | str | None = None,
    *,
    sources: dict[str, str] | None = None,
    mode: str = "fast",
    optimize: bool = True,
) -> list[SweepTask]:
    """The (machine, kernel) matrix as an ordered task list.

    *sources* maps kernel names to MiniC text and defaults to the
    built-in CHStone-like workloads (explicit subsets may also name
    extra/promoted kernels); passing extra names sweeps ad-hoc
    workloads through the same cache/executor machinery.
    """
    from repro.machine import preset_names

    from repro.kernels import expected_exit

    machine_names = parse_subset(machines, preset_names(), "machine")
    if sources is None:
        kernel_names, sources = resolve_kernel_sources(kernels)
        exits = {k: expected_exit(k) for k in kernel_names}
    else:
        kernel_names = (
            tuple(sources) if kernels is None
            else parse_subset(kernels, tuple(sources), "kernel")
        )
        exits = {k: 0 for k in kernel_names}
    return [
        SweepTask(
            machine=m,
            kernel=k,
            source=sources[k],
            mode=mode,
            optimize=optimize,
            expected_exit=exits[k],
        )
        for m in machine_names
        for k in kernel_names
    ]


def tasks_for_machines(
    machines: Iterable,
    kernels: Iterable[str] | str | None = None,
    *,
    sources: dict[str, str] | None = None,
    mode: str = "fast",
    optimize: bool = True,
) -> list[SweepTask]:
    """Tasks over explicit :class:`~repro.machine.Machine` objects.

    The generated-design-point entry into the pipeline: each machine is
    serialised into its task (``machine_desc``), so the executor and the
    fingerprint layer measure and cache it structurally -- no preset
    registry involvement.  Preset *names* in *machines* are accepted too
    and ride as plain named tasks.
    """
    from repro.kernels import expected_exit
    from repro.machine import preset_names
    from repro.machine.machine import Machine
    from repro.machine.serialize import machine_to_json

    if sources is None:
        kernel_names, sources = resolve_kernel_sources(kernels)
        exits = {k: expected_exit(k) for k in kernel_names}
    else:
        kernel_names = (
            tuple(sources) if kernels is None
            else parse_subset(kernels, tuple(sources), "kernel")
        )
        exits = {k: 0 for k in kernel_names}
    known = preset_names()
    tasks: list[SweepTask] = []
    for machine in machines:
        if isinstance(machine, Machine):
            name, desc = machine.name, machine_to_json(machine)
        else:
            name, desc = str(machine), None
            parse_subset((name,), known, "machine")
        tasks.extend(
            SweepTask(
                machine=name,
                kernel=k,
                source=sources[k],
                mode=mode,
                optimize=optimize,
                machine_desc=desc,
                expected_exit=exits[k],
            )
            for k in kernel_names
        )
    return tasks


def sweep(
    machines: Iterable[str] | str | None = None,
    kernels: Iterable[str] | str | None = None,
    *,
    sources: dict[str, str] | None = None,
    mode: str = "fast",
    optimize: bool = True,
    jobs: int = 1,
    retries: int = 1,
    store: ArtifactStore | None = None,
    use_cache: bool = True,
    refresh: bool = False,
    progress: ProgressFn | None = None,
    trace: bool = False,
) -> SweepOutcome:
    """Evaluate the (machine, kernel) matrix; see the module docstring.

    ``store=None`` uses the process-default store (which honours
    ``$REPRO_CACHE_DIR`` / ``$REPRO_NO_CACHE``); ``use_cache=False``
    neither reads nor writes it; ``refresh=True`` recomputes every pair
    and overwrites its cache entry.

    ``trace=True`` runs every computed pair under its own worker tracer
    and collects the span/counter payloads into ``outcome.traces``
    (cache hits compute nothing, so they contribute no payload — pass
    ``refresh=True`` for a full timeline).  When a tracer is enabled in
    the *calling* process, the sweep's own phases (fingerprinting/cache
    lookup, fan-out, writeback) are spanned there as well.
    """
    with obs.span("sweep.plan"):
        tasks = build_tasks(
            machines, kernels, sources=sources, mode=mode, optimize=optimize
        )
    return sweep_tasks(
        tasks,
        jobs=jobs,
        retries=retries,
        store=store,
        use_cache=use_cache,
        refresh=refresh,
        progress=progress,
        trace=trace,
    )


def sweep_tasks(
    tasks: list[SweepTask],
    *,
    jobs: int = 1,
    retries: int = 1,
    store: ArtifactStore | None = None,
    use_cache: bool = True,
    refresh: bool = False,
    progress: ProgressFn | None = None,
    trace: bool = False,
) -> SweepOutcome:
    """Evaluate an explicit task list through cache + executor.

    The task-level half of :func:`sweep`: callers that *generate* their
    design points (the exploration engine, the service layer) build
    tasks themselves -- via :func:`tasks_for_machines` or directly --
    and share the exact cache/fan-out/ordering machinery of the preset
    matrix.

    Fresh results are written back to the store **as each task
    completes** (not at the end of the batch), so a campaign killed
    mid-flight resumes from everything already measured: on the rerun
    those pairs are cache hits, not re-executions.
    """
    started = time.perf_counter()
    outcome = SweepOutcome()
    outcome.stats.total = len(tasks)

    active_store = store if store is not None else default_store()
    if not use_cache:
        active_store = None

    keys: dict[tuple[str, str], str] = {}
    misses: list[SweepTask] = []
    cached: dict[tuple[str, str], EvalResult] = {}
    with obs.span("sweep.cache_lookup", pairs=len(tasks)):
        for task in tasks:
            key = task_fingerprint(task) if active_store is not None else ""
            keys[task.pair] = key
            if active_store is not None and not refresh:
                hit = active_store.load_result(key)
                if hit is not None:
                    cached[task.pair] = hit
                    continue
            misses.append(task)

    fresh: dict[tuple[str, str], EvalResult | TaskError] = {}
    if misses:
        # Progress over the *whole* matrix: cache hits count as already
        # done, so `done/total` is meaningful regardless of cache state.
        base_done = len(cached)

        def _progress(done: int, _total: int, task: SweepTask, result) -> None:
            # Write back *before* announcing completion: a caller that
            # aborts from its progress callback (or is killed right
            # after) never loses a finished measurement.
            if isinstance(result, EvalResult) and active_store is not None:
                with obs.span("sweep.writeback"):
                    active_store.store_result(keys[task.pair], result)
            if progress:
                progress(base_done + done, len(tasks), task, result)

        with obs.span("sweep.execute", pairs=len(misses), jobs=jobs):
            executed = run_tasks(
                misses, jobs=jobs, retries=retries, progress=_progress, trace=trace
            )
        for task, result in zip(misses, executed):
            if isinstance(result, TracedOutcome):
                if result.trace is not None:
                    outcome.traces.append(result.trace)
                result = result.outcome
            if isinstance(result, EvalResult):
                # drop transient executor extras (``_wall_ms``): sweep
                # results are the deterministic products, identical
                # whether computed here or served from the store
                result = replace(result, extras={
                    k: v for k, v in result.extras.items()
                    if not k.startswith("_")
                })
            fresh[task.pair] = result
    if progress and not misses:
        # fully warm sweep: still announce completion once per pair
        for i, task in enumerate(tasks, 1):
            progress(i, len(tasks), task, cached[task.pair])

    for task in tasks:  # deterministic request order
        pair = task.pair
        if pair in cached:
            outcome.results[pair] = cached[pair]
            outcome.stats.cache_hits += 1
        else:
            result = fresh[pair]
            if isinstance(result, TaskError):
                outcome.errors[pair] = result
                outcome.stats.failed += 1
                outcome.stats.retried += result.attempts - 1
            else:
                outcome.results[pair] = result
                outcome.stats.computed += 1
    outcome.stats.elapsed_s = time.perf_counter() - started
    if obs.enabled():
        obs.count("sweep.pairs", outcome.stats.total)
        obs.count("sweep.cache_hits", outcome.stats.cache_hits)
        obs.count("sweep.computed", outcome.stats.computed)
        obs.count("sweep.failed", outcome.stats.failed)
    return outcome


def compile_cached(machine_name: str, kernel_name: str, *,
                   optimize: bool = True,
                   store: ArtifactStore | None = None):
    """Compile a built-in kernel for a preset, through the program cache.

    Returns a :class:`repro.backend.CompiledProgram`; a warm store skips
    the frontend/scheduler entirely (pickle round-trip).  Used by the
    CLI and available to benchmarks/tools that re-run programs under
    different simulator settings without paying recompilation.
    """
    from repro.backend import compile_for_machine
    from repro.frontend import compile_source
    from repro.kernels import load
    from repro.machine import build_machine
    from repro.pipeline.fingerprint import fingerprint

    machine = build_machine(machine_name)
    source = load(kernel_name)
    active_store = store if store is not None else default_store()
    key = None
    if active_store is not None:
        key = fingerprint(machine, source, mode="program", optimize=optimize)
        hit = active_store.load_program(key)
        if hit is not None:
            return hit
    module = compile_source(source, module_name=kernel_name, optimize=optimize)
    compiled = compile_for_machine(module, machine)
    if active_store is not None and key is not None:
        active_store.store_program(key, compiled)
    return compiled
