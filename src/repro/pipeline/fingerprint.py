"""Stable content fingerprints for sweep artifacts.

A cache entry's key must change exactly when its result could change:

* the **machine description** — every architectural field of the design
  point (function units and their opsets, register files, bus
  connectivity, immediate widths, scalar timing), canonically serialised
  with all sets sorted so iteration order never leaks into the key;
* the **kernel source text** — the exact MiniC text that will be
  compiled (not a file path or mtime);
* the **toolchain** — the package version *plus* a digest over every
  ``repro`` source file, so editing the scheduler or the simulator
  invalidates results computed by the old code;
* the **flags** — simulation mode, optimisation level and the
  **sim-engine version token**
  (:data:`repro.sim.blockcompile.SIM_ENGINE_VERSION`).  The toolchain
  digest only sees *this* checkout's sources; the explicit version
  token also retires entries produced by engines whose semantics
  changed without a local source edit (installed-package runs, store
  sharing across checkouts), so a cached artifact can never mask a
  codegen semantics change.

Keys are hex SHA-256 digests, deterministic across processes, machines
and Python versions (``PYTHONHASHSEED`` never enters the picture).
"""

from __future__ import annotations

import hashlib
import json
from functools import lru_cache
from pathlib import Path

from repro.machine.machine import Machine
from repro.machine.serialize import machine_from_json, machine_to_dict

#: canonical machine description used inside fingerprints -- one layout
#: shared with the serialisation layer so a task's ``machine_desc`` and
#: its cache key can never disagree about what a field means
describe_machine = machine_to_dict


def _canonical_json(payload) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


@lru_cache(maxsize=1)
def toolchain_fingerprint() -> str:
    """Digest of the toolchain: package version + all ``repro`` sources.

    Hashing the source tree (path-relative names and contents, sorted)
    means any code change — a scheduler tweak, a simulator fix, a new
    analytic-model coefficient — retires every cached artifact the old
    code produced.  Cheap: computed once per process over ~100 files.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    digest.update(f"repro=={repro.__version__}\n".encode())
    # .mc kernel sources are deliberately excluded: each task hashes the
    # exact source text it compiles, so editing one kernel invalidates
    # only that kernel's entries, not the whole store.
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        digest.update(f"{rel}\n".encode())
        digest.update(path.read_bytes())
        digest.update(b"\n")
    return digest.hexdigest()


def fingerprint(
    machine: Machine,
    source: str,
    *,
    mode: str = "fast",
    optimize: bool = True,
    toolchain: str | None = None,
    engine_version: int | None = None,
) -> str:
    """Hex SHA-256 key for one (machine, kernel-source, flags) artifact.

    *toolchain* defaults to :func:`toolchain_fingerprint`;
    *engine_version* defaults to
    :data:`repro.sim.blockcompile.SIM_ENGINE_VERSION`.  Tests inject
    synthetic values for both to exercise invalidation without editing
    sources.
    """
    if engine_version is None:
        from repro.sim.blockcompile import SIM_ENGINE_VERSION

        engine_version = SIM_ENGINE_VERSION
    payload = {
        "machine": describe_machine(machine),
        "source": source,
        "toolchain": toolchain if toolchain is not None else toolchain_fingerprint(),
        "flags": {
            "mode": mode,
            "optimize": bool(optimize),
            "engine": int(engine_version),
        },
    }
    return hashlib.sha256(_canonical_json(payload)).hexdigest()


def job_fingerprint(
    kind: str,
    fields: dict,
    *,
    toolchain: str | None = None,
    engine_version: int | None = None,
) -> str:
    """Hex SHA-256 key for a *service job* that is not a bare (machine,
    kernel-source, flags) measurement — e.g. a batched ``/v1/run`` with
    per-lane inputs, or a sweep request identified for in-flight
    coalescing.

    *fields* must be a canonical, JSON-serialisable description of
    everything that can change the job's outcome (typically including a
    :func:`fingerprint` of the underlying measurement).  The key obeys
    the same toolchain-digest + engine-version contract as task
    fingerprints, so a code or engine-semantics change retires every
    served artifact the old code produced.
    """
    if engine_version is None:
        from repro.sim.blockcompile import SIM_ENGINE_VERSION

        engine_version = SIM_ENGINE_VERSION
    payload = {
        "job": kind,
        "fields": fields,
        "toolchain": toolchain if toolchain is not None else toolchain_fingerprint(),
        "engine": int(engine_version),
    }
    return hashlib.sha256(_canonical_json(payload)).hexdigest()


def resolve_task_machine(task) -> Machine:
    """The :class:`Machine` a task targets.

    Tasks carrying a ``machine_desc`` (canonical machine JSON) describe
    *generated* design points -- exploration mutants, ad-hoc machines --
    and are materialised from that description; tasks without one name a
    built-in preset.  This is the single lookup the executor and the
    fingerprint layer share, so a generated machine is measured and
    cache-keyed structurally instead of KeyErroring on its name.
    """
    desc = getattr(task, "machine_desc", None)
    if desc:
        return machine_from_json(desc)
    from repro.machine import build_machine

    return build_machine(task.machine)


def task_fingerprint(
    task, *, toolchain: str | None = None, engine_version: int | None = None
) -> str:
    """Fingerprint for a :class:`~repro.pipeline.types.SweepTask`."""
    return fingerprint(
        resolve_task_machine(task),
        task.source,
        mode=task.mode,
        optimize=task.optimize,
        toolchain=toolchain,
        engine_version=engine_version,
    )
