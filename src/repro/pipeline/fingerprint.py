"""Stable content fingerprints for sweep artifacts.

A cache entry's key must change exactly when its result could change:

* the **machine description** — every architectural field of the design
  point (function units and their opsets, register files, bus
  connectivity, immediate widths, scalar timing), canonically serialised
  with all sets sorted so iteration order never leaks into the key;
* the **kernel source text** — the exact MiniC text that will be
  compiled (not a file path or mtime);
* the **toolchain** — the package version *plus* a digest over every
  ``repro`` source file, so editing the scheduler or the simulator
  invalidates results computed by the old code;
* the **flags** — simulation mode, optimisation level and the
  **sim-engine version token**
  (:data:`repro.sim.blockcompile.SIM_ENGINE_VERSION`).  The toolchain
  digest only sees *this* checkout's sources; the explicit version
  token also retires entries produced by engines whose semantics
  changed without a local source edit (installed-package runs, store
  sharing across checkouts), so a cached artifact can never mask a
  codegen semantics change.

Keys are hex SHA-256 digests, deterministic across processes, machines
and Python versions (``PYTHONHASHSEED`` never enters the picture).
"""

from __future__ import annotations

import hashlib
import json
from functools import lru_cache
from pathlib import Path

from repro.machine.machine import Machine


def describe_machine(machine: Machine) -> dict:
    """Canonical, JSON-serialisable description of a design point.

    Every field that can influence compilation, simulation or synthesis
    is included; every unordered collection is sorted.
    """
    desc: dict = {
        "name": machine.name,
        "style": machine.style.value,
        "issue_width": machine.issue_width,
        "simm_bits": machine.simm_bits,
        "jump_latency": machine.jump_latency,
        "function_units": [
            {"name": fu.name, "kind": fu.kind.value, "ops": sorted(fu.ops)}
            for fu in machine.all_units
        ],
        "register_files": [
            {
                "name": rf.name,
                "size": rf.size,
                "width": rf.width,
                "read_ports": rf.read_ports,
                "write_ports": rf.write_ports,
            }
            for rf in machine.register_files
        ],
        "buses": [
            {
                "index": bus.index,
                "sources": sorted(bus.sources),
                "destinations": sorted(bus.destinations),
            }
            for bus in machine.buses
        ],
    }
    if machine.scalar_timing is not None:
        timing = machine.scalar_timing
        desc["scalar_timing"] = {
            "load_extra": timing.load_extra,
            "store_extra": timing.store_extra,
            "mul_extra": timing.mul_extra,
            "shift_extra": timing.shift_extra,
            "taken_branch_extra": timing.taken_branch_extra,
            "untaken_branch_extra": timing.untaken_branch_extra,
            "call_extra": timing.call_extra,
            "pipeline_stages": timing.pipeline_stages,
        }
    return desc


def _canonical_json(payload) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


@lru_cache(maxsize=1)
def toolchain_fingerprint() -> str:
    """Digest of the toolchain: package version + all ``repro`` sources.

    Hashing the source tree (path-relative names and contents, sorted)
    means any code change — a scheduler tweak, a simulator fix, a new
    analytic-model coefficient — retires every cached artifact the old
    code produced.  Cheap: computed once per process over ~100 files.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    digest.update(f"repro=={repro.__version__}\n".encode())
    # .mc kernel sources are deliberately excluded: each task hashes the
    # exact source text it compiles, so editing one kernel invalidates
    # only that kernel's entries, not the whole store.
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        digest.update(f"{rel}\n".encode())
        digest.update(path.read_bytes())
        digest.update(b"\n")
    return digest.hexdigest()


def fingerprint(
    machine: Machine,
    source: str,
    *,
    mode: str = "fast",
    optimize: bool = True,
    toolchain: str | None = None,
    engine_version: int | None = None,
) -> str:
    """Hex SHA-256 key for one (machine, kernel-source, flags) artifact.

    *toolchain* defaults to :func:`toolchain_fingerprint`;
    *engine_version* defaults to
    :data:`repro.sim.blockcompile.SIM_ENGINE_VERSION`.  Tests inject
    synthetic values for both to exercise invalidation without editing
    sources.
    """
    if engine_version is None:
        from repro.sim.blockcompile import SIM_ENGINE_VERSION

        engine_version = SIM_ENGINE_VERSION
    payload = {
        "machine": describe_machine(machine),
        "source": source,
        "toolchain": toolchain if toolchain is not None else toolchain_fingerprint(),
        "flags": {
            "mode": mode,
            "optimize": bool(optimize),
            "engine": int(engine_version),
        },
    }
    return hashlib.sha256(_canonical_json(payload)).hexdigest()


def job_fingerprint(
    kind: str,
    fields: dict,
    *,
    toolchain: str | None = None,
    engine_version: int | None = None,
) -> str:
    """Hex SHA-256 key for a *service job* that is not a bare (machine,
    kernel-source, flags) measurement — e.g. a batched ``/v1/run`` with
    per-lane inputs, or a sweep request identified for in-flight
    coalescing.

    *fields* must be a canonical, JSON-serialisable description of
    everything that can change the job's outcome (typically including a
    :func:`fingerprint` of the underlying measurement).  The key obeys
    the same toolchain-digest + engine-version contract as task
    fingerprints, so a code or engine-semantics change retires every
    served artifact the old code produced.
    """
    if engine_version is None:
        from repro.sim.blockcompile import SIM_ENGINE_VERSION

        engine_version = SIM_ENGINE_VERSION
    payload = {
        "job": kind,
        "fields": fields,
        "toolchain": toolchain if toolchain is not None else toolchain_fingerprint(),
        "engine": int(engine_version),
    }
    return hashlib.sha256(_canonical_json(payload)).hexdigest()


def task_fingerprint(
    task, *, toolchain: str | None = None, engine_version: int | None = None
) -> str:
    """Fingerprint for a :class:`~repro.pipeline.types.SweepTask`."""
    from repro.machine import build_machine

    return fingerprint(
        build_machine(task.machine),
        task.source,
        mode=task.mode,
        optimize=task.optimize,
        toolchain=toolchain,
        engine_version=engine_version,
    )
