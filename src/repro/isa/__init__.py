"""Integer instruction set of the evaluated soft cores.

This package defines the operation repertoire of Table I of the paper --
the minimal integer operation set required by the C compiler plus integer
multiplication -- together with exact 32-bit two's-complement semantics
shared by the IR interpreter and all simulators.
"""

from repro.isa.operations import (
    ALU_OPS,
    CU_OPS,
    LSU_OPS,
    OPS,
    OpKind,
    OpSpec,
    latency_of,
    op_exists,
)
from repro.isa.semantics import (
    MASK32,
    evaluate,
    sext8,
    sext16,
    to_signed,
    to_unsigned,
)

__all__ = [
    "ALU_OPS",
    "CU_OPS",
    "LSU_OPS",
    "MASK32",
    "OPS",
    "OpKind",
    "OpSpec",
    "evaluate",
    "latency_of",
    "op_exists",
    "sext8",
    "sext16",
    "to_signed",
    "to_unsigned",
]
