"""Exact 32-bit two's-complement semantics for the Table I operations.

All datapath values are stored as unsigned 32-bit Python integers in the
range ``[0, 2**32)``.  Signedness is a property of the operation, not the
value, exactly as in the hardware.  These functions are the single source
of truth: the IR interpreter, the TTA/VLIW simulators and the scalar core
model all evaluate operations through :func:`evaluate`, which makes
differential testing across the stack meaningful.
"""

from __future__ import annotations

from collections.abc import Sequence

MASK32 = 0xFFFFFFFF
_SIGN_BIT = 0x80000000


def to_unsigned(value: int) -> int:
    """Wrap an arbitrary Python integer into the unsigned 32-bit domain."""
    return value & MASK32


def to_signed(value: int) -> int:
    """Interpret an unsigned 32-bit value as a signed two's-complement int."""
    value &= MASK32
    return value - 0x100000000 if value & _SIGN_BIT else value


def sext8(value: int) -> int:
    """Sign-extend the low byte of *value* to 32 bits."""
    value &= 0xFF
    return (value | 0xFFFFFF00) & MASK32 if value & 0x80 else value


def sext16(value: int) -> int:
    """Sign-extend the low halfword of *value* to 32 bits."""
    value &= 0xFFFF
    return (value | 0xFFFF0000) & MASK32 if value & 0x8000 else value


def _shift_amount(value: int) -> int:
    # The barrel shifters of the evaluated FUs use the low five bits of the
    # shift operand, like MicroBlaze and most 32-bit ISAs.
    return value & 31


def evaluate(op: str, operands: Sequence[int]) -> int:
    """Evaluate ALU operation *op* on unsigned 32-bit *operands*.

    Returns the unsigned 32-bit result.  Memory and control operations are
    not evaluated here -- they need machine state and live in the
    simulators/interpreter.

    Raises:
        KeyError: for unknown or non-ALU operations.
    """
    a = operands[0] & MASK32
    b = (operands[1] & MASK32) if len(operands) > 1 else 0
    if op == "add":
        return (a + b) & MASK32
    if op == "sub":
        return (a - b) & MASK32
    if op == "mul":
        return (a * b) & MASK32
    if op == "and":
        return a & b
    if op == "ior":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "eq":
        return 1 if a == b else 0
    if op == "gt":
        return 1 if to_signed(a) > to_signed(b) else 0
    if op == "gtu":
        return 1 if a > b else 0
    if op == "shl":
        return (a << _shift_amount(b)) & MASK32
    if op == "shru":
        return (a >> _shift_amount(b)) & MASK32
    if op == "shr":
        return (to_signed(a) >> _shift_amount(b)) & MASK32
    if op == "sxhw":
        return sext16(a)
    if op == "sxqw":
        return sext8(a)
    raise KeyError(f"not a pure ALU operation: {op!r}")
