"""Operation repertoire of the evaluated datapaths (paper Table I).

Every design point in the paper shares the same minimal integer operation
set: an ALU (with a pipelined multiplier), a load-store unit operating on
absolute addresses, and a control unit providing absolute jumps and
return-address-saving calls.  Latencies are the instruction-visible result
latencies from Table I: a result triggered at cycle ``t`` is available to a
transport at cycle ``t + latency``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class OpKind(enum.Enum):
    """Functional class of an operation; decides which FU hosts it."""

    ALU = "alu"
    LSU = "lsu"
    CU = "cu"


@dataclass(frozen=True)
class OpSpec:
    """Static description of one operation.

    Attributes:
        name: mnemonic, lower case (``add``, ``ldw`` ...).
        kind: which functional-unit class executes it.
        latency: result latency in cycles (Table I).  Stores have latency 0:
            they produce no result.
        operands: number of input operands transported to the FU.
        has_result: whether the operation produces a 32-bit result.
        reads_mem: operation loads from data memory.
        writes_mem: operation stores to data memory.
        is_control: operation redirects the program counter.
    """

    name: str
    kind: OpKind
    latency: int
    operands: int
    has_result: bool = True
    reads_mem: bool = False
    writes_mem: bool = False
    is_control: bool = False
    commutative: bool = False
    doc: str = field(default="", compare=False)


def _alu(name: str, latency: int, doc: str, commutative: bool = False) -> OpSpec:
    return OpSpec(name, OpKind.ALU, latency, 2, commutative=commutative, doc=doc)


#: Arithmetic-logic operations (paper Table I, left column).
ALU_OPS: dict[str, OpSpec] = {
    spec.name: spec
    for spec in (
        _alu("add", 1, "32-bit addition", commutative=True),
        _alu("and", 1, "bitwise and", commutative=True),
        _alu("eq", 1, "equality comparison, result 0/1", commutative=True),
        _alu("gt", 1, "signed greater-than, result 0/1"),
        _alu("gtu", 1, "unsigned greater-than, result 0/1"),
        _alu("ior", 1, "bitwise inclusive or", commutative=True),
        _alu("mul", 3, "32-bit multiplication (low word)", commutative=True),
        _alu("shl", 2, "shift left (shift amount mod 32)"),
        _alu("shr", 2, "arithmetic shift right"),
        _alu("shru", 2, "logical shift right"),
        _alu("sub", 1, "32-bit subtraction"),
        OpSpec("sxhw", OpKind.ALU, 1, 1, doc="sign-extend 16-bit halfword"),
        OpSpec("sxqw", OpKind.ALU, 1, 1, doc="sign-extend 8-bit byte"),
        _alu("xor", 1, "bitwise exclusive or", commutative=True),
    )
}

#: Load-store operations (paper Table I, right column).  All addresses are
#: absolute byte addresses.  Loads have a 3-cycle result latency; stores
#: retire immediately from the datapath's point of view.
LSU_OPS: dict[str, OpSpec] = {
    spec.name: spec
    for spec in (
        OpSpec("ldw", OpKind.LSU, 3, 1, reads_mem=True, doc="load 32-bit word"),
        OpSpec("ldh", OpKind.LSU, 3, 1, reads_mem=True, doc="load 16-bit, sign extend"),
        OpSpec("ldq", OpKind.LSU, 3, 1, reads_mem=True, doc="load 8-bit, sign extend"),
        OpSpec("ldqu", OpKind.LSU, 3, 1, reads_mem=True, doc="load 8-bit, zero extend"),
        OpSpec("ldhu", OpKind.LSU, 3, 1, reads_mem=True, doc="load 16-bit, zero extend"),
        OpSpec("stw", OpKind.LSU, 0, 2, has_result=False, writes_mem=True, doc="store 32-bit word"),
        OpSpec("sth", OpKind.LSU, 0, 2, has_result=False, writes_mem=True, doc="store 16-bit halfword"),
        OpSpec("stq", OpKind.LSU, 0, 2, has_result=False, writes_mem=True, doc="store 8-bit byte"),
    )
}

#: Control-unit operations.  The architectures use absolute jumps and a
#: return-address-saving call; conditional control flow is a guarded jump
#: (``cjump``/``cjumpz``) consuming a predicate produced by a comparison.
#: Control transfers have 3 exposed delay slots (latency 3) in the TTA and
#: VLIW machines, matching a lightly pipelined fetch unit.
CU_OPS: dict[str, OpSpec] = {
    spec.name: spec
    for spec in (
        OpSpec("jump", OpKind.CU, 3, 1, has_result=False, is_control=True, doc="absolute jump"),
        OpSpec(
            "cjump",
            OpKind.CU,
            3,
            2,
            has_result=False,
            is_control=True,
            doc="jump to operand 1 when predicate operand 0 is non-zero",
        ),
        OpSpec(
            "cjumpz",
            OpKind.CU,
            3,
            2,
            has_result=False,
            is_control=True,
            doc="jump to operand 1 when predicate operand 0 is zero",
        ),
        OpSpec(
            "call",
            OpKind.CU,
            3,
            1,
            has_result=True,
            is_control=True,
            doc="absolute call; result is the return address",
        ),
        OpSpec("ret", OpKind.CU, 3, 1, has_result=False, is_control=True, doc="jump to return address"),
    )
}

#: Complete operation table.
OPS: dict[str, OpSpec] = {**ALU_OPS, **LSU_OPS, **CU_OPS}


def op_exists(name: str) -> bool:
    """Return True when *name* is a known machine operation."""
    return name in OPS


def latency_of(name: str) -> int:
    """Result latency of operation *name* (cycles)."""
    return OPS[name].latency
