"""Golden replay: re-run every pinned kernel and diff against goldens.

Discovery walks three groups of golden-bearing kernels:

* the **promoted corpus** (``fuzz/promoted/`` or
  ``$REPRO_PROMOTED_CORPUS``) — stress kernels from ``repro corpus
  promote``;
* the **regression vault** (``fuzz/corpus/`` or ``$REPRO_FUZZ_CORPUS``)
  — minimized fuzz reproducers, pinned on their recorded machine;
* the **built-in extras** (``src/repro/kernels/goldens/``) — goldens
  for hand-written non-paper kernels (``fft``).

Replay fans (kernel, machine) pairs through the sweep executor's
process pool, runs every pinned engine via :func:`repro.fuzz.diff.run_case`
(which also performs the full cross-engine comparison), and diffs the
observed run records field-by-field against the pinned ones.  Any
drift, divergence, crash, source-hash mismatch, or unreadable golden is
a failure with a readable, attributable message.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from repro.corpus.goldens import (
    GOLDEN_SUFFIX,
    GoldenError,
    diff_runs,
    golden_path_for,
    load_golden,
    make_golden,
    save_golden,
    source_sha256,
)
from repro.fuzz.corpus import default_corpus_dir
from repro.fuzz.diff import ALL_MODES, FUZZ_MAX_CYCLES, FuzzCase, execute_fuzz_task
from repro.pipeline.types import TaskError

#: goldens for built-in extra kernels (fft), next to their sources
BUILTIN_GOLDEN_DIR = Path(__file__).resolve().parents[1] / "kernels" / "goldens"


@dataclasses.dataclass(frozen=True)
class GoldenEntry:
    """One golden-bearing kernel ready for replay (or a broken one)."""

    name: str
    group: str  # "promoted" | "regression" | "builtin"
    source: str | None
    golden: dict | None
    golden_path: Path
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _entry_from_mc(mc_path: Path, group: str) -> GoldenEntry:
    golden_path = golden_path_for(mc_path)
    source = mc_path.read_text()
    if not golden_path.exists():
        return GoldenEntry(
            name=mc_path.stem,
            group=group,
            source=source,
            golden=None,
            golden_path=golden_path,
            error=f"missing golden {golden_path.name}; pin with `repro corpus pin`",
        )
    try:
        golden = load_golden(golden_path)
    except GoldenError as exc:
        return GoldenEntry(
            name=mc_path.stem,
            group=group,
            source=source,
            golden=None,
            golden_path=golden_path,
            error=str(exc),
        )
    error = None
    if golden["source_sha256"] != source_sha256(source):
        error = (
            f"{mc_path.name} changed since its golden was pinned "
            f"(source hash mismatch); re-pin with `repro corpus pin`"
        )
    return GoldenEntry(
        name=mc_path.stem,
        group=group,
        source=source,
        golden=golden,
        golden_path=golden_path,
        error=error,
    )


def discover_entries(
    promoted_dir: Path | str | None = None,
    corpus_dir: Path | str | None = None,
    include_builtin: bool = True,
) -> list[GoldenEntry]:
    """Every golden-bearing kernel across the three groups, sorted.

    Broken entries (missing/corrupt golden, hash mismatch) are returned
    with ``error`` set so replay can fail loudly instead of skipping.
    In the regression vault, ``.mc`` files *without* a golden are
    included as errors too — a reproducer must never silently drop out
    of replay.
    """
    from repro.kernels import kernel_source, promoted_dir as default_promoted

    entries: list[GoldenEntry] = []

    pdir = Path(promoted_dir) if promoted_dir is not None else default_promoted()
    if pdir.is_dir():
        for mc_path in sorted(pdir.glob("*.mc")):
            entries.append(_entry_from_mc(mc_path, "promoted"))

    cdir = Path(corpus_dir) if corpus_dir is not None else default_corpus_dir()
    if cdir.is_dir():
        for mc_path in sorted(cdir.glob("*.mc")):
            entries.append(_entry_from_mc(mc_path, "regression"))

    if include_builtin and BUILTIN_GOLDEN_DIR.is_dir():
        for golden_path in sorted(BUILTIN_GOLDEN_DIR.glob(f"*{GOLDEN_SUFFIX}")):
            name = golden_path.name[: -len(GOLDEN_SUFFIX)]
            try:
                source = kernel_source(name)
            except KeyError:
                entries.append(
                    GoldenEntry(
                        name=name,
                        group="builtin",
                        source=None,
                        golden=None,
                        golden_path=golden_path,
                        error=f"golden {golden_path.name} has no built-in kernel source",
                    )
                )
                continue
            try:
                golden = load_golden(golden_path)
            except GoldenError as exc:
                entries.append(
                    GoldenEntry(
                        name=name,
                        group="builtin",
                        source=source,
                        golden=None,
                        golden_path=golden_path,
                        error=str(exc),
                    )
                )
                continue
            error = None
            if golden["source_sha256"] != source_sha256(source):
                error = (
                    f"{name}.mc changed since its golden was pinned; "
                    f"re-pin with `repro corpus pin {name}`"
                )
            entries.append(
                GoldenEntry(
                    name=name,
                    group="builtin",
                    source=source,
                    golden=golden,
                    golden_path=golden_path,
                    error=error,
                )
            )

    return entries


@dataclasses.dataclass
class ReplayReport:
    """Outcome of replaying a set of golden entries."""

    entries: int = 0
    cases: int = 0
    drift: list[str] = dataclasses.field(default_factory=list)
    broken: list[str] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.drift and not self.broken

    def to_dict(self) -> dict:
        return {
            "entries": self.entries,
            "cases": self.cases,
            "ok": self.ok,
            "drift": list(self.drift),
            "broken": list(self.broken),
        }


def _cases_for(entry: GoldenEntry, machines: tuple[str, ...] | None) -> list[tuple[FuzzCase, dict]]:
    golden = entry.golden
    assert golden is not None and entry.source is not None
    cases = []
    for machine in sorted(golden["machines"]):
        if machines is not None and machine not in machines:
            continue
        cases.append(
            (
                FuzzCase(
                    machine=machine,
                    kernel=entry.name,
                    source=entry.source,
                    expected_exit=int(golden["expected_exit"]),
                    modes=tuple(golden["modes"]),
                    max_cycles=int(golden["max_cycles"]),
                ),
                golden["machines"][machine],
            )
        )
    return cases


def replay_entries(
    entries: list[GoldenEntry],
    jobs: int = 1,
    machines: tuple[str, ...] | None = None,
    progress=None,
) -> ReplayReport:
    """Re-run every pinned (kernel, machine) pair and diff the records.

    *machines*, when given, restricts replay to those presets (pairs
    pinned on other presets are skipped, not failed) — the CI smoke
    path.  *progress* is forwarded to the executor.
    """
    report = ReplayReport(entries=len(entries))
    work: list[tuple[FuzzCase, dict]] = []
    for entry in entries:
        if not entry.ok:
            report.broken.append(f"{entry.group}/{entry.name}: {entry.error}")
            continue
        work.extend(_cases_for(entry, machines))

    if not work:
        return report

    from repro.pipeline.executor import run_tasks

    cases = [case for case, _ in work]
    outcomes = run_tasks(cases, jobs=jobs, worker=execute_fuzz_task, progress=progress)
    report.cases = len(cases)
    for (case, golden_runs), outcome in zip(work, outcomes):
        if isinstance(outcome, TaskError):
            report.drift.append(
                f"{case.kernel} on {case.machine}: replay crashed: "
                f"{outcome.error_type}: {outcome.message}"
            )
            continue
        for div in outcome.divergences:
            report.drift.append(f"{case.kernel} on {case.machine}: {div.summary()}")
        report.drift.extend(
            diff_runs(case.kernel, case.machine, golden_runs, outcome.runs)
        )
    return report


def pin_entry(
    name: str,
    source: str,
    machines: tuple[str, ...],
    modes: tuple[str, ...] = ALL_MODES,
    max_cycles: int = FUZZ_MAX_CYCLES,
    expected_exit: int | None = None,
    jobs: int = 1,
) -> dict:
    """Measure and build a golden payload for *source* on *machines*.

    When *expected_exit* is ``None`` the IR-interpreter oracle decides
    it (one unoptimized reference run).  Raises :class:`GoldenError` if
    any engine diverges during pinning — a golden must only ever freeze
    conformant behavior.
    """
    from repro.fuzz.oracle import reference_run
    from repro.pipeline.executor import run_tasks

    if expected_exit is None:
        expected_exit = reference_run(source)

    cases = [
        FuzzCase(
            machine=machine,
            kernel=name,
            source=source,
            expected_exit=expected_exit,
            modes=modes,
            max_cycles=max_cycles,
        )
        for machine in sorted(machines)
    ]
    outcomes = run_tasks(cases, jobs=jobs, worker=execute_fuzz_task)
    runs_by_machine: dict[str, dict] = {}
    problems: list[str] = []
    for case, outcome in zip(cases, outcomes):
        if isinstance(outcome, TaskError):
            problems.append(
                f"{name} on {case.machine}: {outcome.error_type}: {outcome.message}"
            )
            continue
        for div in outcome.divergences:
            problems.append(div.summary())
        runs_by_machine[case.machine] = outcome.runs
    if problems:
        raise GoldenError(
            f"cannot pin {name!r}: engines diverged during measurement:\n  "
            + "\n  ".join(problems)
        )
    return make_golden(name, source, expected_exit, runs_by_machine, modes, max_cycles)


def pin_and_save(
    name: str,
    source: str,
    mc_path: Path | str,
    machines: tuple[str, ...],
    modes: tuple[str, ...] = ALL_MODES,
    max_cycles: int = FUZZ_MAX_CYCLES,
    expected_exit: int | None = None,
    jobs: int = 1,
) -> Path:
    """Pin *source* and write its golden next to *mc_path*."""
    payload = pin_entry(
        name,
        source,
        machines,
        modes=modes,
        max_cycles=max_cycles,
        expected_exit=expected_exit,
        jobs=jobs,
    )
    return save_golden(golden_path_for(mc_path), payload)
