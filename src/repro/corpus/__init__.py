"""Stress-benchmark corpus: pinned cross-engine conformance kernels.

The fuzz subsystem's corpus (``fuzz/corpus/``) is a regression vault:
minimized reproducers of bugs that were actually found.  This package
turns fuzz output into a *benchmark* corpus: ``promote`` runs a seeded
campaign, scores the generated kernels by structural/behavioral
interestingness (branchy control flow, FU-mix diversity, memory-traffic
extremes), selects a diverse subset, and persists each survivor with
**pinned golden stats** — the exit code, cycle count, and every
transport counter per (machine, engine), recorded as checksummed JSON.
``replay`` re-runs the whole promoted corpus (plus the regression vault
and the built-in extra kernels' goldens) across every engine and fails
loudly on any drift.

Promoted kernels are first-class workloads: ``repro.kernels.load`` /
``catalog`` make them addressable by name in ``repro sweep``,
``repro explore`` and ``repro serve`` alongside the paper's eight.
"""

from repro.corpus.goldens import (
    GOLDEN_SCHEMA,
    GoldenError,
    diff_runs,
    golden_path_for,
    load_golden,
    make_golden,
    save_golden,
    source_sha256,
)
from repro.corpus.promote import PromoteConfig, PromoteReport, promote
from repro.corpus.replay import (
    GoldenEntry,
    ReplayReport,
    discover_entries,
    pin_entry,
    replay_entries,
)
from repro.corpus.score import KernelTraits, interestingness, measure_traits, select_diverse

__all__ = [
    "GOLDEN_SCHEMA",
    "GoldenEntry",
    "GoldenError",
    "KernelTraits",
    "PromoteConfig",
    "PromoteReport",
    "ReplayReport",
    "diff_runs",
    "discover_entries",
    "golden_path_for",
    "interestingness",
    "load_golden",
    "make_golden",
    "measure_traits",
    "pin_entry",
    "promote",
    "replay_entries",
    "save_golden",
    "select_diverse",
    "source_sha256",
]
