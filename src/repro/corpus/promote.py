"""Promotion campaigns: fuzz-generate, score, select, pin, persist.

A promotion run is deterministic end-to-end for a fixed seed: the
generator, the oracle, the trait profiler, the diverse-subset selector
and the golden pinning are all seeded/exact, and nothing time- or
hash-order-dependent reaches the persisted files, so two runs with the
same seed produce byte-identical corpora on any host.

Each promoted kernel ``stress-<seed>-<index>`` is written as three
files under the promoted-corpus directory::

    <name>.mc            # the generated MiniC source, verbatim
    <name>.json          # provenance + traits (seed, index, axis, ...)
    <name>.golden.json   # pinned per-(machine, engine) stats

Candidates whose oracle run fails (generator pathology, step-budget
exhaustion) are skipped and counted; candidates that expose an actual
engine divergence make the campaign fail — promotion is not the place
to paper over a conformance bug (that is ``repro fuzz``'s job to
minimize and vault).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.corpus.goldens import GoldenError, save_golden
from repro.corpus.replay import golden_path_for, pin_entry
from repro.corpus.score import KernelTraits, SCORE_MACHINE, interestingness, measure_traits, select_diverse
from repro.fuzz.diff import ALL_MODES, FUZZ_MAX_CYCLES
from repro.fuzz.gen import GENERATOR_VERSION, generate_kernels
from repro.fuzz.oracle import GeneratorError, reference_run

#: metadata schema for <name>.json provenance sidecars
PROMOTED_META_SCHEMA = 1


@dataclasses.dataclass(frozen=True)
class PromoteConfig:
    seed: int
    count: int = 40  # candidates to generate and score
    target: int = 12  # corpus size to select
    machines: tuple[str, ...] = ()  # empty = every preset
    modes: tuple[str, ...] = ALL_MODES
    score_machine: str = SCORE_MACHINE
    max_cycles: int = FUZZ_MAX_CYCLES
    jobs: int = 1
    out_dir: Path | str | None = None  # None = default promoted dir


@dataclasses.dataclass
class PromoteReport:
    seed: int
    generated: int = 0
    oracle_rejected: int = 0
    selected: list[dict] = dataclasses.field(default_factory=list)
    out_dir: str = ""

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


def promote(config: PromoteConfig, log=None) -> PromoteReport:
    """Run one promotion campaign; returns the report, writes the corpus."""
    from repro.kernels import promoted_dir
    from repro.machine.presets import preset_names

    def say(msg: str) -> None:
        if log:
            log(msg)

    machines = config.machines or preset_names()
    out_dir = Path(config.out_dir) if config.out_dir is not None else promoted_dir()

    say(f"generating {config.count} candidates (seed {config.seed})")
    kernels = generate_kernels(config.seed, config.count)
    report = PromoteReport(seed=config.seed, generated=len(kernels), out_dir=str(out_dir))

    # oracle + trait measurement; candidates the oracle rejects are
    # skipped (they never become workloads), engine bugs abort below.
    verdicts: dict[str, int] = {}
    traits: list[KernelTraits] = []
    sources: dict[str, str] = {}
    origin: dict[str, tuple[int, int]] = {}
    for kernel in kernels:
        try:
            exit_code = reference_run(kernel.source)
        except GeneratorError:
            report.oracle_rejected += 1
            continue
        measured = measure_traits(
            kernel.name,
            kernel.source,
            machine=config.score_machine,
            max_cycles=config.max_cycles,
        )
        verdicts[kernel.name] = exit_code
        sources[kernel.name] = kernel.source
        origin[kernel.name] = (kernel.seed, kernel.index)
        traits.append(measured)
    say(
        f"scored {len(traits)} candidates on {config.score_machine} "
        f"({report.oracle_rejected} oracle-rejected)"
    )

    chosen = select_diverse(traits, config.target)
    say(f"selected {len(chosen)} kernels across {len(set(a for _, a in chosen))} axes")

    out_dir.mkdir(parents=True, exist_ok=True)
    for t, axis in chosen:
        seed, index = origin[t.name]
        name = f"stress-{seed}-{index:03d}"
        source = sources[t.name]
        say(f"pinning {name} ({axis}) on {len(machines)} machines")
        payload = pin_entry(
            name,
            source,
            machines,
            modes=config.modes,
            max_cycles=config.max_cycles,
            expected_exit=verdicts[t.name],
            jobs=config.jobs,
        )
        mc_path = out_dir / f"{name}.mc"
        mc_path.write_text(source)
        meta = {
            "schema": PROMOTED_META_SCHEMA,
            "generator": GENERATOR_VERSION,
            "seed": seed,
            "index": index,
            "axis": axis,
            "score": interestingness(t),
            "score_machine": config.score_machine,
            "traits": t.to_dict(),
        }
        (out_dir / f"{name}.json").write_text(
            json.dumps(meta, indent=2, sort_keys=True) + "\n"
        )
        save_golden(golden_path_for(mc_path), payload)
        report.selected.append({"name": name, "axis": axis, **meta["traits"]})

    say(f"promoted {len(report.selected)} kernels into {out_dir}")
    return report


def corpus_stats(
    promoted: Path | str | None = None,
) -> dict:
    """Summary of the promoted corpus: entries, traits, pinned coverage."""
    from repro.corpus.goldens import load_golden
    from repro.kernels import promoted_dir

    out_dir = Path(promoted) if promoted is not None else promoted_dir()
    entries = []
    machines: set[str] = set()
    if out_dir.is_dir():
        for mc_path in sorted(out_dir.glob("*.mc")):
            meta: dict = {}
            sidecar = mc_path.with_suffix(".json")
            if sidecar.exists():
                try:
                    loaded = json.loads(sidecar.read_text())
                    if isinstance(loaded, dict):
                        meta = loaded
                except ValueError:
                    pass
            entry = {"name": mc_path.stem}
            for key in ("axis", "seed", "index", "score"):
                if key in meta:
                    entry[key] = meta[key]
            entry.update(meta.get("traits", {}))
            golden_path = golden_path_for(mc_path)
            try:
                golden = load_golden(golden_path)
                entry["machines_pinned"] = len(golden["machines"])
                machines.update(golden["machines"])
            except GoldenError as exc:
                entry["golden_error"] = str(exc)
            entries.append(entry)
    return {
        "dir": str(out_dir),
        "entries": entries,
        "count": len(entries),
        "machines": sorted(machines),
    }
