"""Golden-stats files: checksummed pinned expectations per kernel.

A golden file (``<name>.golden.json``) freezes everything the five
execution engines are allowed to produce for one kernel::

    {
      "schema": 1,
      "name": "stress-2024-003",
      "source_sha256": "...",          # the exact .mc text this pins
      "expected_exit": 77,             # oracle verdict at pin time
      "modes": ["checked", ...],       # engines replay must run
      "max_cycles": 5000000,
      "machines": {                    # per-preset pinned run records
        "m-tta-2": {"checked": {"exit_code": ..., "cycles": ...,
                                "moves": ..., ...}, "fast": {...}, ...},
        "mblaze-3": {"scalar": {...}},
        ...
      },
      "checksum": "..."                # sha256 over everything above
    }

The payload is serialized with sorted keys and no timestamps, so the
same pin run produces byte-identical files on any host and under any
``PYTHONHASHSEED``.  The checksum makes hand-edits and bit rot loud:
:func:`load_golden` raises :class:`GoldenError` on malformed JSON, an
unknown schema, a checksum mismatch, or missing fields, and replay
treats that as a failure, never as "nothing to check".
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

#: bump when the payload layout changes; old goldens must be re-pinned
GOLDEN_SCHEMA = 1

#: filename suffix for golden files (``<name>`` + this)
GOLDEN_SUFFIX = ".golden.json"


class GoldenError(Exception):
    """A golden file is missing, malformed, or fails its checksum."""


def source_sha256(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _checksum(payload: dict) -> str:
    body = {k: v for k, v in payload.items() if k != "checksum"}
    return hashlib.sha256(_canonical(body).encode("utf-8")).hexdigest()


def make_golden(
    name: str,
    source: str,
    expected_exit: int,
    machines: dict[str, dict],
    modes: tuple[str, ...],
    max_cycles: int,
) -> dict:
    """Build a checksummed golden payload from pinned run records.

    *machines* maps preset name -> (mode -> full result record) exactly
    as :class:`repro.fuzz.diff.FuzzCaseReport` records them.
    """
    payload = {
        "schema": GOLDEN_SCHEMA,
        "name": name,
        "source_sha256": source_sha256(source),
        "expected_exit": int(expected_exit),
        "modes": list(modes),
        "max_cycles": int(max_cycles),
        "machines": {m: dict(runs) for m, runs in sorted(machines.items())},
    }
    payload["checksum"] = _checksum(payload)
    return payload


def golden_path_for(mc_path: Path | str) -> Path:
    """``<dir>/<name>.golden.json`` for ``<dir>/<name>.mc``."""
    mc_path = Path(mc_path)
    return mc_path.with_name(mc_path.stem + GOLDEN_SUFFIX)


def save_golden(path: Path | str, payload: dict) -> Path:
    """Write *payload* (must carry a valid checksum) deterministically."""
    if payload.get("checksum") != _checksum(payload):
        raise GoldenError(f"refusing to save golden with bad checksum: {path}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_golden(path: Path | str) -> dict:
    """Read and fully validate a golden file.

    Raises :class:`GoldenError` with a readable reason on any problem;
    never returns a partially-trusted payload.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise GoldenError(f"golden file unreadable: {path}: {exc}") from exc
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise GoldenError(f"golden file is not valid JSON: {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise GoldenError(f"golden file is not a JSON object: {path}")
    if payload.get("schema") != GOLDEN_SCHEMA:
        raise GoldenError(
            f"golden file {path} has schema {payload.get('schema')!r}, "
            f"expected {GOLDEN_SCHEMA}; re-pin with `repro corpus pin`"
        )
    for key in ("name", "source_sha256", "expected_exit", "modes", "max_cycles", "machines"):
        if key not in payload:
            raise GoldenError(f"golden file {path} is missing {key!r}")
    if payload.get("checksum") != _checksum(payload):
        raise GoldenError(
            f"golden file {path} fails its checksum (hand-edited or "
            f"corrupted); re-pin with `repro corpus pin`"
        )
    if not isinstance(payload["machines"], dict) or not payload["machines"]:
        raise GoldenError(f"golden file {path} pins no machines")
    return payload


def diff_runs(name: str, machine: str, golden_runs: dict, observed_runs: dict) -> list[str]:
    """Readable drift lines between pinned and observed run records.

    Compares mode sets, then every field of every mode's record.  An
    empty list means byte-for-byte agreement.
    """
    lines: list[str] = []
    gmodes = set(golden_runs)
    omodes = set(observed_runs)
    for mode in sorted(gmodes - omodes):
        lines.append(f"{name} on {machine}: mode {mode!r} pinned but not replayed")
    for mode in sorted(omodes - gmodes):
        lines.append(f"{name} on {machine}: mode {mode!r} replayed but not pinned")
    for mode in sorted(gmodes & omodes):
        want, got = golden_runs[mode], observed_runs[mode]
        fields = sorted(set(want) | set(got))
        for field in fields:
            if want.get(field) != got.get(field):
                lines.append(
                    f"{name} on {machine}/{mode}: {field}: "
                    f"golden={want.get(field)!r} observed={got.get(field)!r}"
                )
    return lines
