"""Interestingness scoring and diverse-subset selection for promotion.

A candidate kernel earns its place in the stress corpus by being an
*extreme* along some structural or behavioral axis, measured from one
profiled run on a scoring machine (the fast engine's per-pc hit vector
makes the dynamic opcode histogram free):

* **branchy** — dynamic control-transfer ops (jump/cjump/cjumpz);
* **fu-diverse** — distinct opcodes triggered (FU-mix coverage);
* **mem-heavy / mem-light** — dynamic load+store traffic extremes;
* **long / short** — cycle-count extremes.

:func:`select_diverse` is afl-cmin in spirit: rather than keeping the
N highest on one scalar score, it round-robins over the axes, taking
the top remaining candidate of each, so the selected corpus covers the
behavior space.  Everything is integer arithmetic over sorted inputs —
deterministic across hosts and ``PYTHONHASHSEED``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: preset used for trait measurement (any TTA/VLIW preset works; traits
#: only rank candidates relative to each other)
SCORE_MACHINE = "m-tta-2"

#: dynamic control-transfer opcodes (calls/rets are counted separately
#: as part of FU diversity)
BRANCH_OPS = ("jump", "cjump", "cjumpz")

LOAD_OPS = ("ldw", "ldh", "ldq", "ldqu", "ldhu")
STORE_OPS = ("stw", "sth", "stq")


@dataclass(frozen=True)
class KernelTraits:
    """One candidate's measured behavior on the scoring machine."""

    name: str
    exit_code: int
    cycles: int
    branch_ops: int
    loads: int
    stores: int
    distinct_opcodes: int
    opcode_counts: dict[str, int] = field(default_factory=dict, repr=False)

    @property
    def mem_ops(self) -> int:
        return self.loads + self.stores

    def to_dict(self) -> dict:
        return {
            "exit_code": self.exit_code,
            "cycles": self.cycles,
            "branch_ops": self.branch_ops,
            "loads": self.loads,
            "stores": self.stores,
            "mem_ops": self.mem_ops,
            "distinct_opcodes": self.distinct_opcodes,
        }


def measure_traits(
    name: str,
    source: str,
    machine: str = SCORE_MACHINE,
    max_cycles: int = 5_000_000,
) -> KernelTraits:
    """Compile *source* for the scoring machine and profile one run."""
    from repro.backend import compile_for_machine
    from repro.frontend import compile_source
    from repro.machine import build_machine
    from repro.sim import run_compiled_profiled

    module = compile_source(source, module_name=name, optimize=True)
    compiled = compile_for_machine(module, build_machine(machine))
    result, profile = run_compiled_profiled(compiled, max_cycles=max_cycles, mode="fast")
    counts = profile.opcode_counts
    return KernelTraits(
        name=name,
        exit_code=result.exit_code,
        cycles=result.cycles,
        branch_ops=sum(counts.get(op, 0) for op in BRANCH_OPS),
        loads=sum(counts.get(op, 0) for op in LOAD_OPS),
        stores=sum(counts.get(op, 0) for op in STORE_OPS),
        distinct_opcodes=len(counts),
        opcode_counts=dict(counts),
    )


def interestingness(traits: KernelTraits) -> int:
    """A scalar tiebreak score: extremeness summed over the axes.

    Only used to order candidates *within* an axis bucket and in
    reports; selection itself is the multi-axis round-robin of
    :func:`select_diverse`.
    """
    return (
        traits.branch_ops * 3
        + traits.distinct_opcodes * 100
        + traits.mem_ops
        + traits.cycles // 64
    )


#: selection axes: (label, sort key over KernelTraits, descending?)
AXES: tuple[tuple[str, str, bool], ...] = (
    ("branchy", "branch_ops", True),
    ("fu-diverse", "distinct_opcodes", True),
    ("mem-heavy", "mem_ops", True),
    ("mem-light", "mem_ops", False),
    ("long", "cycles", True),
    ("short", "cycles", False),
)


def _axis_value(traits: KernelTraits, attr: str) -> int:
    if attr == "mem_ops":
        return traits.mem_ops
    return getattr(traits, attr)


def select_diverse(candidates: list[KernelTraits], target: int) -> list[tuple[KernelTraits, str]]:
    """Pick up to *target* candidates covering the behavior axes.

    Round-robins over :data:`AXES`, each axis claiming its most extreme
    not-yet-selected candidate; name-sorted input and name tiebreaks
    keep the selection deterministic.  Returns ``(traits, axis_label)``
    pairs in selection order.
    """
    if target <= 0:
        return []
    pool = sorted(candidates, key=lambda t: t.name)
    chosen: list[tuple[KernelTraits, str]] = []
    taken: set[str] = set()
    while len(chosen) < target and len(taken) < len(pool):
        progressed = False
        for label, attr, descending in AXES:
            if len(chosen) >= target:
                break
            remaining = [t for t in pool if t.name not in taken]
            if not remaining:
                break
            sign = -1 if descending else 1
            best = min(remaining, key=lambda t: (sign * _axis_value(t, attr), t.name))
            taken.add(best.name)
            chosen.append((best, label))
            progressed = True
        if not progressed:
            break
    return chosen
