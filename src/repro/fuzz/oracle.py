"""The fuzzing oracle: the frontend reference interpreter.

Generated kernels are executed on :class:`repro.ir.interp.Interpreter`
over **unoptimized** IR.  Everything downstream of ``generate_ir`` --
the whole-program optimizer, both schedulers, register allocation,
finalization and all three simulation engines -- is thereby inside the
differential net: any of them disagreeing with the oracle is a bug in
exactly one identifiable layer.

A kernel the *oracle itself* cannot run (compile error, runaway step
budget) is a **generator** bug, not a toolchain bug; it is reported as
:class:`GeneratorError` so a campaign fails loudly instead of silently
skipping bad kernels.
"""

from __future__ import annotations

from repro.frontend import CompileError, compile_source
from repro.ir.interp import Interpreter, InterpError

#: step budget for generated kernels; the generator's static work bound
#: keeps real kernels far below this, so hitting it means the generator
#: emitted a non-terminating (or absurdly hot) program.
ORACLE_MAX_STEPS = 20_000_000


class GeneratorError(RuntimeError):
    """The random generator emitted a kernel the oracle cannot run."""


def reference_run(source: str, max_steps: int = ORACLE_MAX_STEPS) -> int:
    """Exit code (u32) of *source* per the reference interpreter.

    Raises :class:`GeneratorError` when the kernel does not compile or
    exceeds the step budget -- both are generator defects by
    construction.
    """
    try:
        module = compile_source(source, module_name="fuzz", optimize=False)
    except CompileError as exc:
        raise GeneratorError(f"generated kernel does not compile: {exc}") from exc
    try:
        return Interpreter(module, max_steps=max_steps).run()
    except InterpError as exc:
        raise GeneratorError(f"generated kernel is invalid for the oracle: {exc}") from exc
