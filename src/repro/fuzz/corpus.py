"""Regression corpus: minimized reproducers persisted for pytest replay.

Every divergence a fuzz campaign finds is shrunk and written as a pair
of files under the corpus directory (default ``fuzz/corpus/`` at the
repository root, overridable via ``$REPRO_FUZZ_CORPUS``)::

    <entry>.mc      # the minimized MiniC reproducer
    <entry>.json    # metadata: seed, index, machine, mode, kind,
                    # expected/observed exit codes, generator version

``tests/test_fuzz_regressions.py`` replays every entry on every commit:
each reproducer must now agree with the oracle on its recorded machine
across all engines, so a fixed bug stays fixed forever.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path

#: environment override for the corpus directory
CORPUS_DIR_ENV = "REPRO_FUZZ_CORPUS"

_NAME_RE = re.compile(r"[^A-Za-z0-9._-]+")


def default_corpus_dir() -> Path:
    """``$REPRO_FUZZ_CORPUS`` or ``<repo>/fuzz/corpus``."""
    env = os.environ.get(CORPUS_DIR_ENV)
    if env:
        return Path(env).expanduser()
    # src/repro/fuzz/corpus.py -> repository root is three levels up
    # from the package directory (src/repro/fuzz).
    return Path(__file__).resolve().parents[3] / "fuzz" / "corpus"


@dataclass(frozen=True)
class CorpusEntry:
    """One persisted reproducer."""

    name: str
    source: str
    meta: dict = field(default_factory=dict)
    path: Path | None = None

    @property
    def machine(self) -> str | None:
        return self.meta.get("machine")

    @property
    def mode(self) -> str | None:
        return self.meta.get("mode")


def _safe_name(name: str) -> str:
    cleaned = _NAME_RE.sub("-", name).strip("-")
    if not cleaned:
        raise ValueError(f"unusable corpus entry name {name!r}")
    return cleaned


def save_reproducer(
    directory: Path | str,
    name: str,
    source: str,
    meta: dict,
) -> Path:
    """Write ``<name>.mc`` + ``<name>.json`` under *directory*.

    Returns the ``.mc`` path.  Existing entries with the same name are
    overwritten (re-finding a known bug refreshes its reproducer).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    name = _safe_name(name)
    mc_path = directory / f"{name}.mc"
    mc_path.write_text(source)
    (directory / f"{name}.json").write_text(
        json.dumps(meta, indent=2, sort_keys=True) + "\n"
    )
    return mc_path


def load_corpus(directory: Path | str | None = None) -> list[CorpusEntry]:
    """Every reproducer under *directory*, sorted by name.

    Entries whose ``.json`` sidecar is missing or unparseable still load
    (with empty metadata) -- a reproducer must never be silently skipped
    because its metadata rotted.
    """
    directory = Path(directory) if directory is not None else default_corpus_dir()
    if not directory.is_dir():
        return []
    entries: list[CorpusEntry] = []
    for mc_path in sorted(directory.glob("*.mc")):
        meta: dict = {}
        sidecar = mc_path.with_suffix(".json")
        if sidecar.exists():
            try:
                loaded = json.loads(sidecar.read_text())
                if isinstance(loaded, dict):
                    meta = loaded
            except ValueError:
                pass
        entries.append(
            CorpusEntry(
                name=mc_path.stem,
                source=mc_path.read_text(),
                meta=meta,
                path=mc_path,
            )
        )
    return entries
