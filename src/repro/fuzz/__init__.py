"""Differential fuzzing: randomized kernels, cross-engine co-simulation,
failure minimization.

The paper's evaluation is only meaningful if every (compiler, scheduler,
simulator-engine) combination computes the same answers.  Eight
hand-written CHStone-like kernels cannot cover that state space; this
package machine-generates workloads and checks them against a trusted
oracle:

* :mod:`repro.fuzz.gen` -- seeded, fully deterministic random MiniC
  kernel generator (edge-biased arithmetic, nested control flow,
  function-call DAGs, masked in-footprint memory access, statically
  bounded loops);
* :mod:`repro.fuzz.oracle` -- the frontend reference interpreter run on
  *unoptimized* IR, so the optimizer is inside the differential net;
* :mod:`repro.fuzz.diff` -- compile each kernel for a design point and
  run it through every engine mode (checked/fast/turbo), asserting
  oracle-identical exit codes and cross-engine-identical cycle and
  statistics counters;
* :mod:`repro.fuzz.minimize` -- delta-debugging over the generated AST
  (statement removal, expression shrinking, trip-count reduction) to
  produce a small reproducer for any divergence;
* :mod:`repro.fuzz.corpus` -- persistence of minimized reproducers under
  ``fuzz/corpus/`` for pytest replay;
* :mod:`repro.fuzz.harness` -- campaign orchestration (parallel fan-out
  through :mod:`repro.pipeline`, verdict memoisation in the artifact
  store, time budgets) behind the ``repro fuzz`` CLI.
"""

from repro.fuzz.gen import (
    GENERATOR_VERSION,
    GeneratedKernel,
    generate_kernel,
    generate_kernels,
    render_kernel,
)
from repro.fuzz.oracle import GeneratorError, reference_run
from repro.fuzz.diff import (
    ALL_MODES,
    Divergence,
    FuzzCase,
    FuzzCaseReport,
    execute_fuzz_task,
    run_case,
)
from repro.fuzz.minimize import minimize_kernel
from repro.fuzz.corpus import (
    CorpusEntry,
    default_corpus_dir,
    load_corpus,
    save_reproducer,
)
from repro.fuzz.harness import FUZZ_JSON_SCHEMA, FuzzConfig, FuzzReport, run_fuzz

__all__ = [
    "ALL_MODES",
    "CorpusEntry",
    "Divergence",
    "FuzzCase",
    "FuzzCaseReport",
    "FuzzConfig",
    "FUZZ_JSON_SCHEMA",
    "FuzzReport",
    "GENERATOR_VERSION",
    "GeneratedKernel",
    "GeneratorError",
    "default_corpus_dir",
    "execute_fuzz_task",
    "generate_kernel",
    "generate_kernels",
    "load_corpus",
    "minimize_kernel",
    "reference_run",
    "render_kernel",
    "run_case",
    "run_fuzz",
    "save_reproducer",
]
