"""Fuzz campaign orchestration.

:func:`run_fuzz` is the engine behind ``repro fuzz``:

1. generate ``count`` deterministic kernels for ``seed``
   (:mod:`repro.fuzz.gen`);
2. run each through the oracle (:mod:`repro.fuzz.oracle`) to get the
   expected exit code;
3. fan the (kernel x machine) differential cases out through the
   pipeline executor (:func:`repro.pipeline.executor.run_tasks` with
   ``worker=execute_fuzz_task``), serving already-proven cases from the
   artifact store (a passing verdict is memoised under a fingerprint of
   the machine description, kernel source, toolchain digest, engine
   modes and generator version -- so a warm re-run of the same campaign
   is near-instant, and any toolchain edit retires every verdict);
4. minimize each diverging kernel by delta-debugging
   (:mod:`repro.fuzz.minimize`) against a predicate that re-runs the
   oracle and the diverging design point and demands the *same*
   (machine, mode, kind) divergence;
5. persist the shrunk reproducers to the regression corpus
   (:mod:`repro.fuzz.corpus`).

A ``time_budget`` bounds the campaign: generation proceeds in chunks
and stops scheduling new work once the budget is spent (work already
dispatched still completes, so the budget is approximate by design).
Failing verdicts are never cached: a divergence is recomputed -- and
re-minimized -- until the underlying bug is fixed.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from pathlib import Path

from repro.fuzz.corpus import save_reproducer
from repro.fuzz.diff import (
    ALL_MODES,
    FUZZ_MAX_CYCLES,
    Divergence,
    FuzzCase,
    FuzzCaseReport,
    execute_fuzz_task,
    run_case,
)
from repro.fuzz.gen import (
    GENERATOR_VERSION,
    GeneratedKernel,
    generate_kernel,
    render_kernel,
)
from repro.fuzz.minimize import minimize_kernel
from repro.fuzz.oracle import GeneratorError, reference_run
from repro.pipeline import ArtifactStore, TaskError, default_store, run_tasks
from repro.pipeline.fingerprint import fingerprint
from repro.pipeline.sweep import parse_subset

#: progress callback: (done, planned_total, case, outcome)
ProgressFn = Callable[[int, int, FuzzCase, object], None]

#: oracle step budget for *minimization candidates*.  Generated kernels
#: are statically bounded to ~50k interpreter steps and shrinking never
#: adds work, so a candidate that needs more than this has lost its
#: termination guarantee (ddmin can delete a while-loop's increment) --
#: rejecting it cheaply here keeps minimization from stalling for the
#: full 20M-step campaign budget on every such candidate.
MINIMIZE_ORACLE_STEPS = 500_000

#: version of the ``repro fuzz --json`` payload (``FuzzReport.to_dict``).
#: Emitted as ``schema_version`` so consumers — the compile-and-simulate
#: service, future remote fuzz workers — can reject payloads from a
#: mismatched toolchain.  Bump on any key/meaning change.
FUZZ_JSON_SCHEMA = 1


@dataclass
class FuzzConfig:
    """Everything one campaign needs; mirrors the ``repro fuzz`` CLI."""

    seed: int = 0
    count: int = 20
    machines: Iterable[str] | str | None = None
    modes: Iterable[str] | str | None = None
    jobs: int = 1
    time_budget: float | None = None
    minimize: bool = True
    #: cap on how many distinct diverging kernels get the (expensive)
    #: minimization treatment per campaign
    max_minimized: int = 5
    #: predicate-evaluation budget per minimized kernel (each evaluation
    #: costs one oracle run + one compile + the failing engine runs);
    #: bounded campaigns (CI smoke) dial this down
    minimize_checks: int = 2000
    corpus_dir: Path | str | None = None
    store: ArtifactStore | None = None
    use_cache: bool = True
    max_cycles: int = FUZZ_MAX_CYCLES
    progress: ProgressFn | None = None


@dataclass(frozen=True)
class Reproducer:
    """One minimized, persisted failure."""

    entry: str
    kernel: str
    seed: int
    index: int
    machine: str
    mode: str
    kind: str
    lines: int
    source: str
    path: str | None

    def to_dict(self) -> dict:
        return {
            "entry": self.entry,
            "kernel": self.kernel,
            "seed": self.seed,
            "index": self.index,
            "machine": self.machine,
            "mode": self.mode,
            "kind": self.kind,
            "lines": self.lines,
            "source": self.source,
            "path": self.path,
        }


@dataclass
class FuzzReport:
    """Campaign outcome (deterministic for a given seed/count/subset)."""

    seed: int
    count: int
    machines: tuple[str, ...] = ()
    modes: tuple[str, ...] = ()
    generated: int = 0
    cases_total: int = 0
    cases_cached: int = 0
    cases_ok: int = 0
    cases_diverged: int = 0
    budget_exhausted: bool = False
    elapsed_s: float = 0.0
    divergences: list[Divergence] = field(default_factory=list)
    errors: list[TaskError] = field(default_factory=list)
    reproducers: list[Reproducer] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences and not self.errors

    def to_dict(self) -> dict:
        return {
            "schema_version": FUZZ_JSON_SCHEMA,
            "seed": self.seed,
            "count": self.count,
            "machines": list(self.machines),
            "modes": list(self.modes),
            "generated": self.generated,
            "cases_total": self.cases_total,
            "cases_cached": self.cases_cached,
            "cases_ok": self.cases_ok,
            "cases_diverged": self.cases_diverged,
            "budget_exhausted": self.budget_exhausted,
            "elapsed_s": self.elapsed_s,
            "ok": self.ok,
            "divergences": [d.to_dict() for d in self.divergences],
            "errors": [e.to_dict() for e in self.errors],
            "reproducers": [r.to_dict() for r in self.reproducers],
        }


def _verdict_key(machine_name: str, source: str, modes: tuple[str, ...],
                 max_cycles: int) -> str:
    """Fingerprint for one case's memoised verdict.

    Rides the sweep fingerprint (machine description + source +
    toolchain digest + engine version) with a fuzz-specific flags
    string, so any toolchain or generator change retires old verdicts.
    """
    from repro.machine import build_machine

    flags = f"fuzz:g{GENERATOR_VERSION}:{'+'.join(modes)}:c{max_cycles}"
    return fingerprint(build_machine(machine_name), source, mode=flags)


def _chunked(total: int, chunk: int):
    start = 0
    while start < total:
        yield range(start, min(start + chunk, total))
        start += chunk


def run_fuzz(config: FuzzConfig) -> FuzzReport:
    """Run one campaign; see the module docstring.

    Raises ``ValueError`` for invalid machine/mode subsets and
    :class:`~repro.fuzz.oracle.GeneratorError` when a generated kernel
    cannot even run on the oracle (a generator defect, never swallowed).
    """
    from repro.machine import preset_names

    started = time.perf_counter()
    machines = parse_subset(config.machines, preset_names(), "machine")
    modes = parse_subset(config.modes, ALL_MODES, "mode")
    if config.count < 0:
        raise ValueError(f"count must be >= 0, got {config.count}")

    store = config.store if config.store is not None else default_store()
    if not config.use_cache:
        store = None

    report = FuzzReport(seed=config.seed, count=config.count,
                        machines=machines, modes=modes)
    kernels: dict[str, GeneratedKernel] = {}
    diverged: dict[str, list[Divergence]] = {}  # kernel name -> divergences
    planned_total = config.count * len(machines)
    done = 0

    def out_of_budget() -> bool:
        return (
            config.time_budget is not None
            and time.perf_counter() - started >= config.time_budget
        )

    # enough kernels per chunk to keep every worker busy
    kernels_per_chunk = max(1, (2 * config.jobs + len(machines) - 1) // len(machines))
    for indices in _chunked(config.count, kernels_per_chunk):
        if out_of_budget():
            report.budget_exhausted = True
            break
        pending: list[FuzzCase] = []
        for index in indices:
            kernel = generate_kernel(config.seed, index)
            kernels[kernel.name] = kernel
            expected = reference_run(kernel.source)
            report.generated += 1
            for machine_name in machines:
                case = FuzzCase(
                    machine=machine_name,
                    kernel=kernel.name,
                    source=kernel.source,
                    expected_exit=expected,
                    modes=modes,
                    max_cycles=config.max_cycles,
                )
                report.cases_total += 1
                if store is not None:
                    hit = store.load_json(
                        _verdict_key(machine_name, kernel.source, modes,
                                     config.max_cycles)
                    )
                    if hit is not None:
                        cached = FuzzCaseReport.from_dict(hit)
                        if cached is not None and cached.ok:
                            report.cases_cached += 1
                            report.cases_ok += 1
                            done += 1
                            if config.progress:
                                config.progress(done, planned_total, case, cached)
                            continue
                pending.append(case)

        def _progress(chunk_done: int, _chunk_total: int, case, outcome) -> None:
            if config.progress:
                config.progress(done + chunk_done, planned_total, case, outcome)

        outcomes = run_tasks(
            pending,
            jobs=config.jobs,
            retries=0,
            worker=execute_fuzz_task,
            progress=_progress if config.progress else None,
        )
        done += len(pending)
        for case, outcome in zip(pending, outcomes):
            if isinstance(outcome, TaskError):
                report.errors.append(outcome)
                continue
            assert isinstance(outcome, FuzzCaseReport)
            if outcome.ok:
                report.cases_ok += 1
                if store is not None:
                    store.store_json(
                        _verdict_key(case.machine, case.source, modes,
                                     config.max_cycles),
                        outcome.to_dict(),
                    )
            else:
                report.cases_diverged += 1
                report.divergences.extend(outcome.divergences)
                diverged.setdefault(case.kernel, []).extend(outcome.divergences)

    if config.minimize and diverged:
        _minimize_failures(config, report, kernels, diverged, modes)

    report.elapsed_s = time.perf_counter() - started
    return report


def _minimize_failures(
    config: FuzzConfig,
    report: FuzzReport,
    kernels: dict[str, GeneratedKernel],
    diverged: dict[str, list[Divergence]],
    modes: tuple[str, ...],
) -> None:
    """Shrink (up to ``max_minimized``) diverging kernels and persist
    the reproducers."""
    for kernel_name in sorted(diverged)[: config.max_minimized]:
        kernel = kernels[kernel_name]
        first = diverged[kernel_name][0]
        if kernel.ast is None:  # pragma: no cover - fresh kernels carry ASTs
            continue

        def still_fails(
            source: str,
            machine: str = first.machine,
            mode: str = first.mode,
            kind: str = first.kind,
        ) -> bool:
            try:
                expected = reference_run(source, max_steps=MINIMIZE_ORACLE_STEPS)
            except GeneratorError:
                return False
            probe = run_case(
                FuzzCase(
                    machine=machine,
                    kernel="minimize-probe",
                    source=source,
                    expected_exit=expected,
                    modes=modes,
                    max_cycles=config.max_cycles,
                )
            )
            return any(
                d.mode == mode and d.kind == kind for d in probe.divergences
            )

        minimized = minimize_kernel(
            kernel.ast, still_fails, max_checks=config.minimize_checks
        )
        source = render_kernel(
            minimized,
            header=(
                f"minimized reproducer: seed={kernel.seed} index={kernel.index} "
                f"machine={first.machine} mode={first.mode} kind={first.kind} "
                f"(generator v{GENERATOR_VERSION})"
            ),
        )
        entry = f"{kernel.name}-{first.machine}-{first.mode}-{first.kind}"
        path: str | None = None
        if config.corpus_dir is not None:
            meta = {
                "seed": kernel.seed,
                "index": kernel.index,
                "machine": first.machine,
                "mode": first.mode,
                "kind": first.kind,
                "expected": first.expected,
                "observed": first.observed,
                "detail": first.detail.splitlines()[0] if first.detail else "",
                "modes": list(modes),
                "generator_version": GENERATOR_VERSION,
            }
            path = str(save_reproducer(config.corpus_dir, entry, source, meta))
        report.reproducers.append(
            Reproducer(
                entry=entry,
                kernel=kernel.name,
                seed=kernel.seed,
                index=kernel.index,
                machine=first.machine,
                mode=first.mode,
                kind=first.kind,
                lines=len(source.splitlines()),
                source=source,
                path=path,
            )
        )
