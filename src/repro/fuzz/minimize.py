"""Failure minimization: delta-debugging over the generated AST.

Given a kernel AST and a predicate ``still_fails(source) -> bool`` (the
harness builds one that re-runs the oracle and the diverging
machine/mode and checks the divergence reproduces), the minimizer
shrinks the program while keeping the predicate true:

1. **top-level removal** -- drop whole helper functions, global arrays
   and global scalars;
2. **statement ddmin** -- delta-debug every statement list (function
   bodies, ``main``, loop and branch bodies) with shrinking chunk sizes;
3. **structure collapsing** -- replace a loop by its body, reduce trip
   counts toward 1, normalise while/do loops to ``for``; replace an
   ``if`` by either branch;
4. **expression shrinking** -- replace any expression by one of its
   subexpressions or by ``0``/``1``.

Candidates that no longer compile, no longer terminate under the oracle
budget, or fail *differently* are simply rejected by the predicate, so
the passes can be naive about scoping (removing a declaration whose
uses remain just produces a rejected candidate).

The passes loop to a fixpoint (bounded by ``max_rounds``).  Every
predicate call costs a compile + a couple of simulations, so the whole
thing is O(predicate calls); a source-text cache prevents re-testing
identical candidates.
"""

from __future__ import annotations

import copy
from collections.abc import Callable

from repro.fuzz.diff import INFRA_ERRORS
from repro.fuzz.gen import (
    Assign,
    Bin,
    Break,
    CallE,
    Cast,
    Continue,
    Decl,
    If,
    Idx,
    KernelAst,
    Lit,
    Loop,
    Ret,
    Tern,
    Un,
    render_kernel,
)

Predicate = Callable[[str], bool]


class _Minimizer:
    def __init__(self, predicate: Predicate, max_checks: int = 2000):
        self.predicate = predicate
        self.cache: dict[str, bool] = {}
        self.checks = 0
        self.max_checks = max_checks

    def fails(self, ast: KernelAst) -> bool:
        source = render_kernel(ast)
        if source in self.cache:
            return self.cache[source]
        if self.checks >= self.max_checks:
            return False  # budget exhausted: reject every further change
        self.checks += 1
        try:
            verdict = bool(self.predicate(source))
        except INFRA_ERRORS:
            # harness fault (bad corpus dir, pickle failure, ...), not a
            # property of the candidate: a broken harness must abort the
            # minimization, not masquerade as "no longer reproduces"
            raise
        except Exception:
            verdict = False  # a crashing candidate is not "the same failure"
        self.cache[source] = verdict
        return verdict


# ---------------------------------------------------------------------------
# Pass 1+2: list-level delta debugging
# ---------------------------------------------------------------------------


def _ddmin_list(items: list, test: Callable[[list], bool]) -> list:
    """Shrink *items* while ``test`` accepts the candidate (ddmin-style:
    chunked removal with halving chunk size, iterated to fixpoint)."""
    changed = True
    while changed and items:
        changed = False
        chunk = max(1, len(items) // 2)
        while chunk >= 1:
            i = 0
            while i < len(items):
                candidate = items[:i] + items[i + chunk :]
                if test(candidate):
                    items = candidate
                    changed = True
                else:
                    i += chunk
            chunk //= 2
    return items


def _body_slots(ast: KernelAst):
    """Yield ``(holder, attr)`` for every statement list in the program."""

    def walk(stmts: list, holder, attr):
        yield holder, attr
        for s in stmts:
            if isinstance(s, Loop):
                yield from walk(s.body, s, "body")
            elif isinstance(s, If):
                yield from walk(s.then, s, "then")
                yield from walk(s.els, s, "els")

    yield from walk(ast.main_body, ast, "main_body")
    for fn in ast.funcs:
        yield from walk(fn.body, fn, "body")


def _shrink_toplevel(m: _Minimizer, ast: KernelAst) -> bool:
    changed = False
    for attr in ("funcs", "arrays", "scalars"):
        items = getattr(ast, attr)

        def test(candidate, attr=attr, items=items):
            saved = getattr(ast, attr)
            setattr(ast, attr, candidate)
            ok = m.fails(ast)
            setattr(ast, attr, saved)
            return ok

        reduced = _ddmin_list(list(items), test)
        if len(reduced) < len(items):
            setattr(ast, attr, reduced)
            changed = True
    return changed


def _shrink_statements(m: _Minimizer, ast: KernelAst) -> bool:
    changed = False
    for holder, attr in list(_body_slots(ast)):
        items = getattr(holder, attr)

        def test(candidate, holder=holder, attr=attr):
            saved = getattr(holder, attr)
            setattr(holder, attr, candidate)
            ok = m.fails(ast)
            setattr(holder, attr, saved)
            return ok

        reduced = _ddmin_list(list(items), test)
        if len(reduced) < len(items):
            setattr(holder, attr, reduced)
            changed = True
    return changed


# ---------------------------------------------------------------------------
# Pass 3: structure collapsing
# ---------------------------------------------------------------------------


def _collapse_structures(m: _Minimizer, ast: KernelAst) -> bool:
    changed = False
    for holder, attr in list(_body_slots(ast)):
        stmts = getattr(holder, attr)
        i = 0
        while i < len(stmts):
            s = stmts[i]
            candidates: list[list] = []
            if isinstance(s, Loop):
                # inline the body (drops the loop entirely)
                candidates.append(stmts[:i] + list(s.body) + stmts[i + 1 :])
                if s.trip > 1:
                    candidates.append(
                        stmts[:i]
                        + [Loop(s.counter, 1, s.body, s.style)]
                        + stmts[i + 1 :]
                    )
                if s.style != "for":
                    candidates.append(
                        stmts[:i]
                        + [Loop(s.counter, s.trip, s.body, "for")]
                        + stmts[i + 1 :]
                    )
            elif isinstance(s, If):
                candidates.append(stmts[:i] + list(s.then) + stmts[i + 1 :])
                if s.els:
                    candidates.append(stmts[:i] + list(s.els) + stmts[i + 1 :])
                    candidates.append(
                        stmts[:i] + [If(s.cond, s.then, [])] + stmts[i + 1 :]
                    )
            for candidate in candidates:
                saved = getattr(holder, attr)
                setattr(holder, attr, candidate)
                if m.fails(ast):
                    stmts = candidate
                    changed = True
                    break
                setattr(holder, attr, saved)
            else:
                i += 1
                continue
            # a candidate was accepted; re-examine the same index
    return changed


# ---------------------------------------------------------------------------
# Pass 4: expression shrinking
# ---------------------------------------------------------------------------


def _subexprs(e) -> list:
    if isinstance(e, Bin):
        return [e.a, e.b]
    if isinstance(e, (Un, Cast)):
        return [e.a]
    if isinstance(e, Tern):
        return [e.a, e.b, e.cond]
    if isinstance(e, CallE):
        return list(e.args)
    if isinstance(e, Idx):
        return []  # replacing an lvalue-capable node needs care; skip
    return []


def _expr_slots(stmt):
    """Yield ``(getter, setter)`` for every expression slot of *stmt*."""
    slots = []
    if isinstance(stmt, Decl) and stmt.init is not None:
        slots.append(("init",))
    elif isinstance(stmt, Assign):
        slots.append(("value",))
    elif isinstance(stmt, If):
        slots.append(("cond",))
    elif isinstance(stmt, (Break, Continue)):
        slots.append(("guard",))
    elif isinstance(stmt, Ret):
        slots.append(("value",))
    for (attr,) in slots:
        yield (
            lambda stmt=stmt, attr=attr: getattr(stmt, attr),
            lambda v, stmt=stmt, attr=attr: setattr(stmt, attr, v),
        )


def _all_statements(ast: KernelAst):
    for holder, attr in _body_slots(ast):
        yield from getattr(holder, attr)


def _shrink_expr_at(m: _Minimizer, ast: KernelAst, get, set_) -> bool:
    """Greedily replace the expression at one slot by something smaller."""
    changed = False
    progress = True
    while progress:
        progress = False
        current = get()
        if isinstance(current, Lit):
            # already minimal; in particular never swap one literal for
            # another -- with both variants cached as failing that would
            # ping-pong 0 <-> 1 forever on cache hits (which are free and
            # therefore not stopped by the check budget)
            break
        candidates = [Lit("0"), Lit("1")] + _subexprs(current)
        for candidate in candidates:
            if candidate is current:
                continue
            set_(candidate)
            if m.fails(ast):
                changed = True
                progress = True
                break
            set_(current)
    return changed


def _shrink_expressions(m: _Minimizer, ast: KernelAst) -> bool:
    changed = False
    for stmt in list(_all_statements(ast)):
        for get, set_ in _expr_slots(stmt):
            if _shrink_expr_at(m, ast, get, set_):
                changed = True
    return changed


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def minimize_kernel(
    ast: KernelAst,
    predicate: Predicate,
    *,
    max_rounds: int = 6,
    max_checks: int = 2000,
) -> KernelAst:
    """Shrink *ast* while ``predicate(render_kernel(ast))`` stays true.

    Returns a **new** AST (the input is never mutated).  If the
    predicate does not even hold for the input, the input is returned
    unchanged.  ``max_checks`` bounds the total number of predicate
    evaluations (each one compiles and simulates a candidate).
    """
    work = copy.deepcopy(ast)
    m = _Minimizer(predicate, max_checks=max_checks)
    if not m.fails(work):
        return work
    for _ in range(max_rounds):
        changed = False
        changed |= _shrink_toplevel(m, work)
        changed |= _shrink_statements(m, work)
        changed |= _collapse_structures(m, work)
        changed |= _shrink_expressions(m, work)
        if not changed:
            break
    assert m.fails(work), "minimizer invariant: the result must still fail"
    return work
