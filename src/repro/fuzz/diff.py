"""Differential execution of one generated kernel on one design point.

:func:`run_case` is the measurement worker of the fuzzing subsystem (the
role :func:`repro.pipeline.executor.execute_task` plays for the sweep
pipeline): compile the kernel once for the machine, run it through every
requested engine mode, and compare

* the **exit code** of every run against the oracle's expected value,
* the **full result record** (cycles and every statistics counter) of
  every engine against the first engine's -- the engines advertise
  bit- and cycle-exact equivalence, so any counter drifting between
  checked/fast/turbo/native is a divergence even when the exit codes
  agree.

Divergences never raise; they come back as structured
:class:`Divergence` records inside the :class:`FuzzCaseReport`, so a
campaign keeps running and reports everything at the end.  Only
infrastructure faults (e.g. an unpicklable result) escape, and the
pipeline executor turns those into ``TaskError`` records.

The scalar (MicroBlaze-like) core has a single engine; its one run is
recorded under the pseudo-mode ``"scalar"`` and compared against the
oracle only.
"""

from __future__ import annotations

import dataclasses
import pickle
import traceback

from repro.fuzz.gen import GENERATOR_VERSION

#: every TTA/VLIW execution engine, in comparison order; ``"batch"``
#: additionally self-checks the vectorized lockstep engine against the
#: fast engine on perturbed per-lane inputs (one vectorized differential
#: pass per generated kernel)
ALL_MODES: tuple[str, ...] = ("checked", "fast", "turbo", "native", "batch")

#: faults of the harness, not of the system under test: these must
#: propagate (the executor turns them into TaskError records / the
#: minimizer aborts) instead of being classified as a divergence or as
#: "candidate no longer reproduces"
INFRA_ERRORS = (OSError, MemoryError, RecursionError, pickle.PickleError)

#: cycle budget per simulation; generated kernels are statically bounded
#: far below this, so exceeding it (e.g. a miscompiled branch looping
#: forever) is itself reported as a divergence, not an infinite hang.
FUZZ_MAX_CYCLES = 5_000_000

#: schema of FuzzCaseReport.to_dict (bump on layout change; cached
#: verdicts with another schema are recomputed)
REPORT_SCHEMA = 1


@dataclasses.dataclass(frozen=True)
class FuzzCase:
    """One differential case: a generated kernel on one design point.

    Attributes mirror :class:`repro.pipeline.types.SweepTask` closely
    enough (``machine``, ``kernel``, ``pair``) that the pipeline
    executor can fan these out and attribute failures.
    """

    machine: str
    kernel: str
    source: str
    expected_exit: int
    modes: tuple[str, ...] = ALL_MODES
    max_cycles: int = FUZZ_MAX_CYCLES

    @property
    def pair(self) -> tuple[str, str]:
        return (self.machine, self.kernel)


@dataclasses.dataclass(frozen=True)
class Divergence:
    """One observed disagreement, attributable to a single layer."""

    kernel: str
    machine: str
    mode: str  # engine mode, "scalar", or "compile"
    kind: str  # "exit-mismatch" | "stats-mismatch" | "crash"
    detail: str
    expected: int | None = None
    observed: int | None = None

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "Divergence":
        return cls(
            kernel=str(payload["kernel"]),
            machine=str(payload["machine"]),
            mode=str(payload["mode"]),
            kind=str(payload["kind"]),
            detail=str(payload["detail"]),
            expected=payload.get("expected"),
            observed=payload.get("observed"),
        )

    def summary(self) -> str:
        base = f"{self.kernel} on {self.machine}/{self.mode}: {self.kind}"
        if self.kind == "exit-mismatch":
            return f"{base} (expected {self.expected}, got {self.observed})"
        return f"{base}: {self.detail.splitlines()[0] if self.detail else ''}"


@dataclasses.dataclass(frozen=True)
class FuzzCaseReport:
    """Everything one case produced: per-mode run records + divergences."""

    machine: str
    kernel: str
    expected_exit: int
    #: mode -> full result record (``exit_code``, ``cycles``, and every
    #: style-specific statistics counter)
    runs: dict
    divergences: tuple[Divergence, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.divergences

    @property
    def pair(self) -> tuple[str, str]:
        return (self.machine, self.kernel)

    def to_dict(self) -> dict:
        return {
            "schema": REPORT_SCHEMA,
            "generator": GENERATOR_VERSION,
            "machine": self.machine,
            "kernel": self.kernel,
            "expected_exit": self.expected_exit,
            "runs": self.runs,
            "divergences": [d.to_dict() for d in self.divergences],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FuzzCaseReport | None":
        if payload.get("schema") != REPORT_SCHEMA:
            return None
        return cls(
            machine=str(payload["machine"]),
            kernel=str(payload["kernel"]),
            expected_exit=int(payload["expected_exit"]),
            runs=dict(payload["runs"]),
            divergences=tuple(
                Divergence.from_dict(d) for d in payload.get("divergences", ())
            ),
        )


def _result_record(result) -> dict:
    """A result dataclass as a plain, JSON-able field dict."""
    return {k: v for k, v in dataclasses.asdict(result).items()}


def _batch_differential(compiled, case: FuzzCase, diverge) -> dict:
    """One vectorized differential pass through the batch engine.

    Two checks per generated kernel: (a) a two-lane pristine run whose
    lanes must agree with each other (the record then feeds the normal
    oracle/cross-engine comparison exactly like a serial mode), and (b)
    when the kernel has initialised data, a three-lane run with
    perturbed per-lane memory images -- pristine / first bytes XOR 0xFF
    / first bytes zeroed -- compared lane-for-lane against the fast
    engine on the same inputs, exercising the vector interpreter and its
    per-lane fallback on genuinely divergent data.

    Returns the pristine-lane result record.
    """
    from repro.sim import SimError, run_batch

    lanes = run_batch(compiled, lanes=2, max_cycles=case.max_cycles)
    records = [_result_record(result) for result in lanes]
    if records[0] != records[1]:
        diverge(
            "batch",
            "stats-mismatch",
            f"batch lanes disagree on identical inputs: "
            f"{records[0]!r} != {records[1]!r}",
        )

    if compiled.data_init:
        address, blob = compiled.data_init[0]
        width = min(4, len(blob))
        inputs = [
            (),
            ((address, bytes(b ^ 0xFF for b in blob[:width])),),
            ((address, bytes(width)),),
        ]
        got = run_batch(
            compiled, inputs=inputs, max_cycles=case.max_cycles, on_error="return"
        )
        want = run_batch(
            compiled,
            inputs=inputs,
            mode="fast",
            max_cycles=case.max_cycles,
            on_error="return",
        )
        for lane, (batch_out, fast_out) in enumerate(zip(got, want)):
            if isinstance(fast_out, SimError) or isinstance(batch_out, SimError):
                agree = (
                    type(batch_out) is type(fast_out)
                    and str(batch_out) == str(fast_out)
                )
            else:
                agree = _result_record(batch_out) == _result_record(fast_out)
            if not agree:
                diverge(
                    "batch",
                    "stats-mismatch",
                    f"vector lane {lane}: batch={batch_out!r} != "
                    f"fast={fast_out!r}",
                )

    return records[0]


def run_case(case: FuzzCase) -> FuzzCaseReport:
    """Compile once, run every requested engine, compare everything."""
    from repro.backend import compile_for_machine
    from repro.frontend import compile_source
    from repro.machine import build_machine
    from repro.machine.machine import MachineStyle
    from repro.sim import run_compiled

    divergences: list[Divergence] = []
    runs: dict[str, dict] = {}

    def diverge(mode: str, kind: str, detail: str, observed: int | None = None) -> None:
        divergences.append(
            Divergence(
                kernel=case.kernel,
                machine=case.machine,
                mode=mode,
                kind=kind,
                detail=detail,
                expected=case.expected_exit,
                observed=observed,
            )
        )

    machine = build_machine(case.machine)
    try:
        module = compile_source(case.source, module_name=case.kernel, optimize=True)
        compiled = compile_for_machine(module, machine)
    except INFRA_ERRORS:
        raise
    except Exception:
        # The oracle already compiled (unoptimized) and ran this source,
        # so a crash here is an optimizer/scheduler/regalloc bug.
        diverge("compile", "crash", traceback.format_exc())
        return FuzzCaseReport(
            machine=case.machine,
            kernel=case.kernel,
            expected_exit=case.expected_exit,
            runs=runs,
            divergences=tuple(divergences),
        )

    modes = ("scalar",) if machine.style is MachineStyle.SCALAR else tuple(case.modes)
    for mode in modes:
        try:
            if mode == "batch":
                record = _batch_differential(compiled, case, diverge)
            else:
                result = run_compiled(
                    compiled,
                    max_cycles=case.max_cycles,
                    mode="fast" if mode == "scalar" else mode,
                )
                record = _result_record(result)
        except INFRA_ERRORS:
            raise
        except Exception:
            diverge(mode, "crash", traceback.format_exc())
            continue
        runs[mode] = record
        if record["exit_code"] != case.expected_exit:
            diverge(
                mode,
                "exit-mismatch",
                f"exit_code {record['exit_code']} != oracle {case.expected_exit}",
                observed=record["exit_code"],
            )

    # Cross-engine comparison: every successful engine must agree with
    # the first successful engine on *every* field (cycles, moves,
    # triggers, rf/bypass counters, bundle/op counts, ...).
    succeeded = [m for m in modes if m in runs]
    if len(succeeded) > 1:
        baseline_mode = succeeded[0]
        baseline = runs[baseline_mode]
        for mode in succeeded[1:]:
            record = runs[mode]
            drift = {
                key: (baseline.get(key), record.get(key))
                for key in sorted(set(baseline) | set(record))
                if baseline.get(key) != record.get(key)
            }
            if drift:
                detail = ", ".join(
                    f"{key}: {mode}={got!r} != {baseline_mode}={want!r}"
                    for key, (want, got) in drift.items()
                )
                diverge(mode, "stats-mismatch", detail)

    return FuzzCaseReport(
        machine=case.machine,
        kernel=case.kernel,
        expected_exit=case.expected_exit,
        runs=runs,
        divergences=tuple(divergences),
    )


def execute_fuzz_task(case: FuzzCase) -> FuzzCaseReport:
    """Module-level worker for :func:`repro.pipeline.executor.run_tasks`."""
    return run_case(case)
