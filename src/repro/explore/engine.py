"""The design-space exploration campaign loop.

``run_explore`` grows a population of TTA design points outward from one
or more preset baselines: every generation it mutates the current Pareto
frontier's survivors (:mod:`repro.explore.mutate`), evaluates each new
candidate on every campaign kernel through the shared sweep pipeline
(:func:`repro.pipeline.sweep_tasks` — content-addressed store, parallel
executor, native simulation by default), scores it with the analytic
FPGA model, and keeps the non-dominated set over (geomean cycles, core
LUTs, fmax).

Everything is deterministic in the seed: candidate structures, their
display names, evaluation results and therefore the frontier itself are
pure functions of ``(seed, base, kernels, generations, population,
toolchain)``.  Because every (machine, kernel) pair is fingerprinted
into the artifact store *as it completes*, a killed campaign re-run with
the same seed replays instantly up to where it died and continues from
there — resumability falls out of the cache, no checkpoint file needed.

Candidates the compiler cannot schedule (aggressively pruned
interconnects, starved register files) surface as per-pair task errors;
they are recorded as infeasible design points and excluded from the
frontier, never aborting the campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.explore.mutate import campaign_rng, mutate_machine
from repro.explore.pareto import ParetoPoint, geomean, pareto_frontier
from repro.machine.machine import Machine, MachineStyle
from repro.machine.serialize import machine_digest, machine_to_dict
from repro.pipeline.sweep import sweep_tasks, tasks_for_machines

#: version of the ``repro explore --json`` payload; bump on layout change
EXPLORE_JSON_SCHEMA = 1

#: how many times the spawner may try per requested candidate before
#: concluding the neighbourhood is exhausted
_SPAWN_PATIENCE = 25


class ExploreError(RuntimeError):
    """Campaign-level failure (no feasible baseline, bad configuration)."""


@dataclass(frozen=True)
class ExploreConfig:
    """Parameters of one exploration campaign."""

    base: tuple[str, ...] = ("m-tta-2",)
    kernels: tuple[str, ...] | None = None
    generations: int = 3
    population: int = 8
    seed: int = 0
    mode: str = "native"
    jobs: int = 1
    optimize: bool = True

    def to_dict(self) -> dict:
        return {
            "base": list(self.base),
            "kernels": list(self.kernels) if self.kernels is not None else None,
            "generations": self.generations,
            "population": self.population,
            "seed": self.seed,
            "mode": self.mode,
            "optimize": self.optimize,
        }


@dataclass(frozen=True)
class InfeasiblePoint:
    """A generated design point the toolchain could not carry end-to-end."""

    name: str
    digest: str
    origin: str
    kernel: str
    error_type: str
    message: str

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "digest": self.digest,
            "origin": self.origin,
            "kernel": self.kernel,
            "error_type": self.error_type,
            "message": self.message,
        }


@dataclass
class ExploreStats:
    """Wall-clock / cache accounting (deliberately *not* part of the
    frontier JSON: two runs of the same seed must emit identical bytes,
    and cache-hit counts differ between a cold and a warm run)."""

    evaluated: int = 0
    infeasible: int = 0
    cache_hits: int = 0
    computed: int = 0
    elapsed_s: float = 0.0


@dataclass
class ExploreResult:
    """Everything one campaign produced."""

    config: ExploreConfig
    kernels: tuple[str, ...]
    frontier: list[ParetoPoint] = field(default_factory=list)
    #: canonical machine descriptions of the frontier members, so any
    #: frontier design can be re-materialised and re-verified
    machines: dict[str, dict] = field(default_factory=dict)
    infeasible: list[InfeasiblePoint] = field(default_factory=list)
    #: per-generation summary rows (candidate/feasible counts, frontier)
    history: list[dict] = field(default_factory=list)
    stats: ExploreStats = field(default_factory=ExploreStats)

    def to_dict(self) -> dict:
        """The frontier JSON payload — byte-identical for a given seed
        and toolchain regardless of cache state, parallelism or wall
        clock (stats stay out on purpose)."""
        return {
            "schema_version": EXPLORE_JSON_SCHEMA,
            "config": self.config.to_dict(),
            "kernels": list(self.kernels),
            "frontier": [p.to_dict() for p in self.frontier],
            "machines": {name: self.machines[name] for name in sorted(self.machines)},
            "infeasible": [p.to_dict() for p in self.infeasible],
            "history": self.history,
        }


def _resolve_bases(names: tuple[str, ...]) -> list[Machine]:
    from repro.machine import build_machine

    bases = []
    for name in names:
        machine = build_machine(name)
        if machine.style is not MachineStyle.TTA:
            raise ExploreError(
                f"explore mutates TTA machines only; base {name!r} is "
                f"{machine.style.value}"
            )
        bases.append(machine)
    return bases


def _core_luts(machine: Machine) -> int:
    from repro.fpga import synthesize

    return synthesize(machine).resources.core_luts


def _spawn(
    parents: list[Machine],
    rng,
    population: int,
    seen: set[str],
) -> list[Machine]:
    """Up to *population* structurally-new children of *parents*."""
    children: list[Machine] = []
    attempts = 0
    while len(children) < population and attempts < population * _SPAWN_PATIENCE:
        attempts += 1
        parent = parents[rng.randrange(len(parents))]
        child = mutate_machine(parent, rng)
        if child is None:
            continue
        digest = machine_digest(child)
        if digest in seen:
            continue
        seen.add(digest)
        children.append(child)
    return children


def run_explore(
    config: ExploreConfig,
    *,
    store=None,
    use_cache: bool = True,
    progress=None,
) -> ExploreResult:
    """Run one campaign; see the module docstring.

    *store*/*use_cache* follow :func:`repro.pipeline.sweep_tasks`
    semantics; *progress* is the usual per-pair sweep callback, shared
    by every generation (totals are per-generation).
    """
    import time

    from repro.pipeline.sweep import resolve_kernel_sources

    if config.generations < 0 or config.population < 1:
        raise ExploreError(
            f"need generations >= 0 and population >= 1, got "
            f"{config.generations}/{config.population}"
        )
    # None = the paper's eight; explicit subsets may also name extra
    # (fft) or promoted corpus kernels as exploration workloads
    kernels, _ = resolve_kernel_sources(config.kernels)
    started = time.perf_counter()
    result = ExploreResult(config=config, kernels=kernels)
    rng = campaign_rng(config.seed)

    by_digest: dict[str, Machine] = {}
    points: dict[str, ParetoPoint] = {}
    seen: set[str] = set()

    def evaluate(machines: list[Machine], generation: int) -> None:
        with obs.span(
            "explore.evaluate", generation=generation, candidates=len(machines)
        ):
            tasks = tasks_for_machines(
                machines, kernels, mode=config.mode, optimize=config.optimize
            )
            outcome = sweep_tasks(
                tasks,
                jobs=config.jobs,
                store=store,
                use_cache=use_cache,
                progress=progress,
            )
        result.stats.cache_hits += outcome.stats.cache_hits
        result.stats.computed += outcome.stats.computed
        for machine in machines:
            digest = machine_digest(machine)
            failures = [
                (k, outcome.errors[(machine.name, k)])
                for k in kernels
                if (machine.name, k) in outcome.errors
            ]
            if failures:
                kernel, error = failures[0]
                result.infeasible.append(
                    InfeasiblePoint(
                        name=machine.name,
                        digest=digest,
                        origin=machine.description,
                        kernel=kernel,
                        error_type=error.error_type,
                        message=error.message.splitlines()[0] if error.message else "",
                    )
                )
                result.stats.infeasible += 1
                continue
            measured = [outcome.results[(machine.name, k)] for k in kernels]
            by_digest[digest] = machine
            points[digest] = ParetoPoint(
                name=machine.name,
                digest=digest,
                cycles=geomean(r.cycles for r in measured),
                core_luts=_core_luts(machine),
                fmax_mhz=measured[0].fmax_mhz,
                per_kernel={r.kernel: r.cycles for r in measured},
                origin=machine.description or "preset",
            )
            result.stats.evaluated += 1

    with obs.span(
        "explore.campaign",
        seed=config.seed,
        generations=config.generations,
        population=config.population,
    ):
        bases = _resolve_bases(config.base)
        for base in bases:
            seen.add(machine_digest(base))
        evaluate(bases, generation=0)
        if not points:
            first = result.infeasible[0] if result.infeasible else None
            detail = (
                f": {first.name}/{first.kernel}: {first.error_type}: {first.message}"
                if first
                else ""
            )
            raise ExploreError(f"no feasible baseline design point{detail}")
        frontier = pareto_frontier(points.values())
        result.history.append(_history_row(0, len(bases), points, frontier))

        for generation in range(1, config.generations + 1):
            with obs.span("explore.generation", generation=generation):
                parents = [by_digest[p.digest] for p in frontier]
                with obs.span("explore.mutate", parents=len(parents)):
                    children = _spawn(parents, rng, config.population, seen)
                if not children:
                    break
                evaluate(children, generation=generation)
                frontier = pareto_frontier(points.values())
                result.history.append(
                    _history_row(generation, len(children), points, frontier)
                )

    result.frontier = frontier
    result.machines = {
        p.name: machine_to_dict(by_digest[p.digest]) for p in frontier
    }
    result.stats.elapsed_s = time.perf_counter() - started
    if obs.enabled():
        obs.count("explore.evaluated", result.stats.evaluated)
        obs.count("explore.infeasible", result.stats.infeasible)
        obs.count("explore.frontier", len(frontier))
    return result


def _history_row(
    generation: int, candidates: int, points: dict, frontier: list[ParetoPoint]
) -> dict:
    return {
        "generation": generation,
        "candidates": candidates,
        "feasible_total": len(points),
        "frontier_size": len(frontier),
        "frontier": [p.name for p in frontier],
    }
