"""Plain-text rendering of an exploration campaign's outcome.

Mirrors the style of :mod:`repro.eval.report`: an aligned frontier table
(one row per non-dominated design point) plus a figure-6-style
area-vs-runtime scatter of every frontier member against the campaign
baselines, so an exploration run reads like the paper's own
design-space summary.
"""

from __future__ import annotations

from repro.eval.report import format_table
from repro.explore.engine import ExploreResult


def frontier_rows(result: ExploreResult) -> list[dict]:
    rows = []
    for point in result.frontier:
        rows.append(
            {
                "design": point.name,
                "cycles(geo)": f"{point.cycles:.1f}",
                "core_luts": point.core_luts,
                "fmax": f"{point.fmax_mhz:.1f}MHz",
                "origin": point.origin,
            }
        )
    return rows


def render_frontier_table(result: ExploreResult) -> str:
    title = (
        f"Pareto frontier after {result.history[-1]['generation']} "
        f"generation(s), seed {result.config.seed} "
        f"({result.stats.evaluated} feasible / "
        f"{result.stats.infeasible} infeasible candidates)"
    )
    return format_table(frontier_rows(result), title)


def render_frontier_figure(
    result: ExploreResult, width: int = 56, height: int = 14
) -> str:
    """ASCII scatter of core LUTs (x) vs geomean cycles (y).

    The analog of the paper's Figure 6 for a generated design space:
    down and to the left is better; letters key into the legend, ``*``
    marks a campaign baseline.
    """
    points = result.frontier
    if not points:
        return "(empty frontier)"
    xs = [p.core_luts for p in points]
    ys = [p.cycles for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = max(x_hi - x_lo, 1)
    y_span = max(y_hi - y_lo, 1e-9)
    grid = [[" "] * width for _ in range(height)]
    legend = []
    base_names = set(result.config.base)
    for i, p in enumerate(points):
        col = round((p.core_luts - x_lo) / x_span * (width - 1))
        # fastest designs sit at the bottom: down-and-left is better
        row = round((y_hi - p.cycles) / y_span * (height - 1))
        mark = "*" if p.name in base_names else chr(ord("a") + i % 26)
        grid[row][col] = mark
        legend.append(
            f"  {mark} {p.name}  luts={p.core_luts} cycles={p.cycles:.1f} "
            f"fmax={p.fmax_mhz:.1f}"
        )
    lines = [
        f"geomean cycles ({y_lo:.0f}..{y_hi:.0f}) vs core LUTs ({x_lo}..{x_hi})"
    ]
    lines += ["  |" + "".join(row) for row in grid]
    lines.append("  +" + "-" * width)
    lines += legend
    return "\n".join(lines)


def render_explore(result: ExploreResult) -> str:
    parts = [render_frontier_table(result), ""]
    parts.append("Generation history:")
    for row in result.history:
        parts.append(
            f"  gen {row['generation']}: {row['candidates']} candidate(s), "
            f"{row['feasible_total']} feasible total, "
            f"frontier {row['frontier_size']}"
        )
    if result.infeasible:
        parts.append("")
        parts.append(f"Infeasible design points ({len(result.infeasible)}):")
        for p in result.infeasible[:10]:
            parts.append(
                f"  {p.name} ({p.origin}): {p.kernel}: {p.error_type}: {p.message}"
            )
        if len(result.infeasible) > 10:
            parts.append(f"  ... and {len(result.infeasible) - 10} more")
    parts.append("")
    parts.append(render_frontier_figure(result))
    return "\n".join(parts)
