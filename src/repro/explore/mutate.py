"""Seeded, deterministic mutations over TTA machine descriptions.

Each operator takes a parent :class:`~repro.machine.Machine` and a
``random.Random`` and returns a *structurally different*, validator-clean
child (or ``None`` when the operator does not apply to that parent).  The
operators cover the axes the paper explores by hand between its design
points: transport-bus count, interconnect density (pruned vs
fully-connected buses), register-file ports/partitioning/depth, ALU
count and the short-immediate width.

Determinism contract (property-tested):

* all choices draw from **sorted** views of the machine's sets — a
  ``frozenset`` never meets the RNG directly, so ``PYTHONHASHSEED``
  cannot influence the outcome;
* the RNG is the only source of randomness; the same seed and parent
  produce byte-identical children in any process;
* every child is repaired to pass :func:`repro.machine.validate_machine`
  (connectivity reachability, required-op coverage, ABI register
  minima) before it is returned — infeasibility beyond the validator
  (e.g. an unschedulable kernel) is the evaluation loop's concern.
"""

from __future__ import annotations

import random
from dataclasses import replace

from repro.isa.operations import ALU_OPS, OPS, OpKind
from repro.machine.components import Bus, FunctionUnit, RegisterFile
from repro.machine.machine import Machine, MachineStyle
from repro.machine.presets import _full_destinations, _full_sources
from repro.machine.serialize import machine_digest, structural_name
from repro.machine.validate import MachineValidationError, validate_machine

#: hard bounds keeping the search space inside what the encoding,
#: resource model and scheduler meaningfully cover
MAX_BUSES = 12
MAX_ALUS = 4
MAX_READ_PORTS = 4
MAX_WRITE_PORTS = 3
MIN_SIMM_BITS = 4
MAX_SIMM_BITS = 12
#: ABI floor: RF0 holds SP + return value + argument registers
MIN_RF0_REGS = 8
MIN_TOTAL_REGS = 16

#: the FU palette mutants may instantiate (the multiplier stays unique to
#: ALU0: the paper's design points all carry exactly one DSP multiplier)
FU_PALETTE: dict[str, frozenset[str]] = {
    "alu": frozenset(ALU_OPS) - {"mul"},
    "alu-lite": frozenset({"add", "sub", "and", "ior", "xor", "eq", "gt", "gtu"}),
}


def campaign_rng(seed: int | str) -> random.Random:
    """The one RNG of an exploration campaign.

    String-seeded: ``random.Random`` hashes ``str`` seeds with SHA-512,
    which — unlike ``hash()`` — is independent of ``PYTHONHASHSEED``.
    """
    return random.Random(f"explore:{seed}")


def _pick(rng: random.Random, items) -> object:
    """Deterministic choice from any iterable via its sorted view."""
    ordered = sorted(items)
    return ordered[rng.randrange(len(ordered))]


def _reindex(buses: list[Bus]) -> tuple[Bus, ...]:
    return tuple(Bus(i, b.sources, b.destinations) for i, b in enumerate(buses))


def _valid_endpoints(machine: Machine) -> tuple[frozenset[str], frozenset[str]]:
    return (
        _full_sources(machine.all_units, machine.register_files),
        _full_destinations(machine.all_units, machine.register_files),
    )


def _strip_unknown(machine: Machine) -> Machine:
    """Drop bus endpoints that no longer name a unit of *machine*."""
    src_ok, dst_ok = _valid_endpoints(machine)
    buses = [
        Bus(b.index, b.sources & src_ok, b.destinations & dst_ok)
        for b in machine.buses
    ]
    return replace(machine, buses=_reindex(buses))


def repair(machine: Machine) -> Machine:
    """Minimal connectivity repair so *machine* passes the validator.

    Deterministic: missing links are grafted onto bus 0 in ``all_units``
    order.  Used after destructive operators (bus removal, pruning, RF
    merging) — constructive operators never need it.
    """
    machine = _strip_unknown(machine)
    buses = list(machine.buses)
    if not buses:
        src, dst = _valid_endpoints(machine)
        return replace(machine, buses=(Bus(0, src, dst),))
    rf_reads = sorted(rf.read_endpoint for rf in machine.register_files)
    rf_writes = sorted(rf.write_endpoint for rf in machine.register_files)
    feeds = (*rf_reads, "IMM")
    for fu in machine.all_units:
        for port in (fu.trigger_port, fu.operand_port):
            if not any(b.connects(s, port) for b in buses for s in feeds):
                buses[0] = Bus(
                    0,
                    buses[0].sources | {"IMM", rf_reads[0]},
                    buses[0].destinations | {port},
                )
        if any(OPS[op].has_result for op in fu.ops):
            if not any(
                b.connects(fu.result_port, w) for b in buses for w in rf_writes
            ):
                buses[0] = Bus(
                    0,
                    buses[0].sources | {fu.result_port},
                    buses[0].destinations | {rf_writes[0]},
                )
    return replace(machine, buses=tuple(buses))


# ---- operators ----------------------------------------------------------
# Each returns a (possibly invalid, pre-repair) child or None when
# inapplicable.  ``mutate_machine`` repairs, validates and names.


def _op_add_bus(machine: Machine, rng: random.Random) -> Machine | None:
    if len(machine.buses) >= MAX_BUSES:
        return None
    src, dst = _valid_endpoints(machine)
    return replace(machine, buses=(*machine.buses, Bus(len(machine.buses), src, dst)))


def _op_remove_bus(machine: Machine, rng: random.Random) -> Machine | None:
    if len(machine.buses) < 2:
        return None
    idx = rng.randrange(len(machine.buses))
    buses = [b for b in machine.buses if b.index != idx]
    return replace(machine, buses=_reindex(buses))


def _op_prune_link(machine: Machine, rng: random.Random) -> Machine | None:
    """Remove one endpoint from one bus (interconnect mux narrowing)."""
    candidates = [
        b for b in machine.buses if len(b.sources) + len(b.destinations) > 2
    ]
    if not candidates:
        return None
    bus = candidates[rng.randrange(len(candidates))]
    kind = rng.randrange(2)
    if kind == 0 and len(bus.sources) > 1:
        gone = _pick(rng, bus.sources)
        new = Bus(bus.index, bus.sources - {gone}, bus.destinations)
    elif len(bus.destinations) > 1:
        gone = _pick(rng, bus.destinations)
        new = Bus(bus.index, bus.sources, bus.destinations - {gone})
    else:
        return None
    buses = [new if b.index == bus.index else b for b in machine.buses]
    return replace(machine, buses=tuple(buses))


def _op_densify_link(machine: Machine, rng: random.Random) -> Machine | None:
    """Add one missing endpoint to one bus (interconnect widening)."""
    src_ok, dst_ok = _valid_endpoints(machine)
    sparse = [
        b
        for b in machine.buses
        if (src_ok - b.sources) or (dst_ok - b.destinations)
    ]
    if not sparse:
        return None
    bus = sparse[rng.randrange(len(sparse))]
    missing_src = sorted(src_ok - bus.sources)
    missing_dst = sorted(dst_ok - bus.destinations)
    grow_src = missing_src and (not missing_dst or rng.randrange(2) == 0)
    if grow_src:
        new = Bus(bus.index, bus.sources | {missing_src[rng.randrange(len(missing_src))]}, bus.destinations)
    else:
        new = Bus(bus.index, bus.sources, bus.destinations | {missing_dst[rng.randrange(len(missing_dst))]})
    buses = [new if b.index == bus.index else b for b in machine.buses]
    return replace(machine, buses=tuple(buses))


def _replace_rf(machine: Machine, old: RegisterFile, new: RegisterFile) -> Machine:
    rfs = tuple(new if rf.name == old.name else rf for rf in machine.register_files)
    return replace(machine, register_files=rfs)


def _op_rf_add_port(machine: Machine, rng: random.Random) -> Machine | None:
    grow_read = [rf for rf in machine.register_files if rf.read_ports < MAX_READ_PORTS]
    grow_write = [rf for rf in machine.register_files if rf.write_ports < MAX_WRITE_PORTS]
    if not grow_read and not grow_write:
        return None
    pick_read = grow_read and (not grow_write or rng.randrange(2) == 0)
    pool = grow_read if pick_read else grow_write
    rf = pool[rng.randrange(len(pool))]
    new = (
        replace(rf, read_ports=rf.read_ports + 1)
        if pick_read
        else replace(rf, write_ports=rf.write_ports + 1)
    )
    return _replace_rf(machine, rf, new)


def _op_rf_drop_port(machine: Machine, rng: random.Random) -> Machine | None:
    shrink_read = [rf for rf in machine.register_files if rf.read_ports > 1]
    shrink_write = [rf for rf in machine.register_files if rf.write_ports > 1]
    if not shrink_read and not shrink_write:
        return None
    pick_read = shrink_read and (not shrink_write or rng.randrange(2) == 0)
    pool = shrink_read if pick_read else shrink_write
    rf = pool[rng.randrange(len(pool))]
    new = (
        replace(rf, read_ports=rf.read_ports - 1)
        if pick_read
        else replace(rf, write_ports=rf.write_ports - 1)
    )
    return _replace_rf(machine, rf, new)


def _op_rf_resize(machine: Machine, rng: random.Random) -> Machine | None:
    """Step one RF to an adjacent LUTRAM-bank-quantised depth."""
    rf = machine.register_files[rng.randrange(len(machine.register_files))]
    depths = (32, 64, 96)
    options = []
    for depth in depths:
        if depth == rf.size:
            continue
        floor = MIN_RF0_REGS if rf.name == machine.register_files[0].name else 1
        if depth < floor:
            continue
        if machine.total_registers - rf.size + depth < MIN_TOTAL_REGS:
            continue
        options.append(depth)
    if not options:
        return None
    return _replace_rf(machine, rf, replace(rf, size=options[rng.randrange(len(options))]))


def _next_name(prefix: str, taken: set[str]) -> str:
    i = 0
    while f"{prefix}{i}" in taken:
        i += 1
    return f"{prefix}{i}"


def _op_rf_split(machine: Machine, rng: random.Random) -> Machine | None:
    """Partition one deep RF into two halves (the paper's m- → p- move)."""
    splittable = [
        rf
        for rf in machine.register_files
        if rf.size >= 64 and rf.size % 2 == 0
    ]
    if not splittable:
        return None
    rf = splittable[rng.randrange(len(splittable))]
    taken = {r.name for r in machine.register_files}
    new_name = _next_name("RF", taken)
    half = replace(rf, size=rf.size // 2)
    sibling = RegisterFile(
        new_name, rf.size // 2, read_ports=rf.read_ports, write_ports=rf.write_ports
    )
    rfs = tuple(
        half if r.name == rf.name else r for r in machine.register_files
    ) + (sibling,)
    # the new partition inherits the old file's connectivity
    buses = tuple(
        Bus(
            b.index,
            b.sources | ({sibling.read_endpoint} if rf.read_endpoint in b.sources else frozenset()),
            b.destinations | ({sibling.write_endpoint} if rf.write_endpoint in b.destinations else frozenset()),
        )
        for b in machine.buses
    )
    return replace(machine, register_files=rfs, buses=buses)


def _op_rf_merge(machine: Machine, rng: random.Random) -> Machine | None:
    """Fuse two partitions into one deeper file (the p- → m- move)."""
    if len(machine.register_files) < 2:
        return None
    keep, gone = machine.register_files[-2], machine.register_files[-1]
    merged = replace(
        keep,
        size=keep.size + gone.size,
        read_ports=max(keep.read_ports, gone.read_ports),
        write_ports=max(keep.write_ports, gone.write_ports),
    )
    rfs = tuple(
        merged if r.name == keep.name else r
        for r in machine.register_files
        if r.name != gone.name
    )
    # buses that reached the removed file now reach the merged one
    buses = tuple(
        Bus(
            b.index,
            (b.sources | ({keep.read_endpoint} if gone.read_endpoint in b.sources else frozenset())) - {gone.read_endpoint},
            (b.destinations | ({keep.write_endpoint} if gone.write_endpoint in b.destinations else frozenset())) - {gone.write_endpoint},
        )
        for b in machine.buses
    )
    return replace(machine, register_files=rfs, buses=buses)


def _alus(machine: Machine) -> list[FunctionUnit]:
    return [fu for fu in machine.function_units if fu.kind is OpKind.ALU]


def _op_fu_add(machine: Machine, rng: random.Random) -> Machine | None:
    """Instantiate one FU from the palette, fully connected."""
    if len(_alus(machine)) >= MAX_ALUS:
        return None
    kind = sorted(FU_PALETTE)[rng.randrange(len(FU_PALETTE))]
    taken = {fu.name for fu in machine.all_units}
    fu = FunctionUnit(_next_name("ALU", taken), OpKind.ALU, FU_PALETTE[kind])
    fus = (*machine.function_units, fu)
    buses = tuple(
        Bus(
            b.index,
            b.sources | {fu.result_port},
            b.destinations | {fu.trigger_port, fu.operand_port},
        )
        for b in machine.buses
    )
    return replace(machine, function_units=fus, buses=buses)


def _op_fu_remove(machine: Machine, rng: random.Random) -> Machine | None:
    """Remove one ALU — never the multiplier host (required-op coverage)."""
    removable = [fu for fu in _alus(machine) if "mul" not in fu.ops]
    if not removable:
        return None
    gone = removable[rng.randrange(len(removable))]
    fus = tuple(fu for fu in machine.function_units if fu.name != gone.name)
    return replace(machine, function_units=fus)


def _op_imm_width(machine: Machine, rng: random.Random) -> Machine | None:
    options = [
        w
        for w in (machine.simm_bits - 1, machine.simm_bits + 1)
        if MIN_SIMM_BITS <= w <= MAX_SIMM_BITS
    ]
    if not options:
        return None
    return replace(machine, simm_bits=options[rng.randrange(len(options))])


#: name -> operator, iterated in sorted-name order everywhere
OPERATORS: dict[str, object] = {
    "add-bus": _op_add_bus,
    "remove-bus": _op_remove_bus,
    "prune-link": _op_prune_link,
    "densify-link": _op_densify_link,
    "rf-add-port": _op_rf_add_port,
    "rf-drop-port": _op_rf_drop_port,
    "rf-resize": _op_rf_resize,
    "rf-split": _op_rf_split,
    "rf-merge": _op_rf_merge,
    "fu-add": _op_fu_add,
    "fu-remove": _op_fu_remove,
    "imm-width": _op_imm_width,
}


def mutate_machine(
    parent: Machine,
    rng: random.Random,
    *,
    operators: tuple[str, ...] | None = None,
) -> Machine | None:
    """One validated, structurally-new child of *parent*, or ``None``.

    Only TTA parents are mutable (the exploration space of the paper);
    the child's ``name`` is its :func:`structural_name` — a pure function
    of its architecture — and its ``description`` records the lineage.
    """
    if parent.style is not MachineStyle.TTA:
        return None
    names = sorted(operators if operators is not None else OPERATORS)
    order = names[:]
    rng.shuffle(order)
    parent_digest = machine_digest(parent)
    for op_name in order:
        child = OPERATORS[op_name](parent, rng)
        if child is None:
            continue
        child = repair(child)
        try:
            validate_machine(child)
        except MachineValidationError:
            continue
        if machine_digest(child) == parent_digest:
            continue
        child = replace(
            child,
            name=structural_name(child),
            description=f"{parent.name} + {op_name}",
        )
        return child
    return None
