"""Automated design-space exploration over TTA soft cores.

The paper arrives at its thirteen design points by hand: start from a
baseline, vary the transport-bus count, prune the interconnect, split or
merge register files, and keep the variants that trade area against
cycle count well.  This package automates exactly that walk:

* :mod:`repro.explore.mutate` — seeded, deterministic, validator-safe
  mutations over machine descriptions (buses, interconnect density, RF
  ports/partitioning/depth, ALU count, immediate width);
* :mod:`repro.explore.pareto` — non-dominated selection over
  (geomean cycles, core LUTs, fmax);
* :mod:`repro.explore.engine` — the generation loop: mutate the
  frontier's survivors, evaluate every candidate on every kernel
  through the sweep pipeline (content-addressed store, parallel
  executor), score with the analytic FPGA model;
* :mod:`repro.explore.report` — frontier table and area-vs-runtime
  scatter in the style of the paper's Figure 6.

The campaign is a pure function of its seed and configuration: frontier
JSON is byte-identical across runs and cache states, and a killed
campaign resumes from the artifact store for free.  ``repro explore``
is the CLI entry point.
"""

from repro.explore.engine import (
    EXPLORE_JSON_SCHEMA,
    ExploreConfig,
    ExploreError,
    ExploreResult,
    InfeasiblePoint,
    run_explore,
)
from repro.explore.mutate import (
    FU_PALETTE,
    OPERATORS,
    campaign_rng,
    mutate_machine,
    repair,
)
from repro.explore.pareto import (
    ParetoPoint,
    dominates,
    geomean,
    pareto_frontier,
)
from repro.explore.report import (
    render_explore,
    render_frontier_figure,
    render_frontier_table,
)

__all__ = [
    "EXPLORE_JSON_SCHEMA",
    "ExploreConfig",
    "ExploreError",
    "ExploreResult",
    "FU_PALETTE",
    "InfeasiblePoint",
    "OPERATORS",
    "ParetoPoint",
    "campaign_rng",
    "dominates",
    "geomean",
    "mutate_machine",
    "pareto_frontier",
    "render_explore",
    "render_frontier_figure",
    "render_frontier_table",
    "repair",
    "run_explore",
]
