"""Pareto-frontier selection over (cycles, area, fmax).

A design point is interesting when nothing else is at least as good on
every axis and strictly better on one: fewer (geomean) cycles, fewer
core LUTs, higher fmax.  The frontier is what the exploration engine
reports and what seeds the next generation's mutations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class ParetoPoint:
    """One evaluated design point in objective space.

    ``cycles`` is the geometric mean over the campaign's kernels (the
    paper's summary statistic); ``per_kernel`` keeps the raw counts so a
    frontier member can be re-verified pair by pair.
    """

    name: str
    digest: str
    cycles: float
    core_luts: int
    fmax_mhz: float
    per_kernel: dict[str, int] = field(default_factory=dict)
    origin: str = ""

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "digest": self.digest,
            "cycles_geomean": round(self.cycles, 3),
            "core_luts": self.core_luts,
            "fmax_mhz": self.fmax_mhz,
            "per_kernel": dict(sorted(self.per_kernel.items())),
            "origin": self.origin,
        }


def geomean(values) -> float:
    values = list(values)
    return math.exp(sum(math.log(v) for v in values) / len(values))


def dominates(a: ParetoPoint, b: ParetoPoint) -> bool:
    """True when *a* is at least as good as *b* everywhere and strictly
    better somewhere (minimise cycles and LUTs, maximise fmax)."""
    no_worse = (
        a.cycles <= b.cycles
        and a.core_luts <= b.core_luts
        and a.fmax_mhz >= b.fmax_mhz
    )
    better = (
        a.cycles < b.cycles
        or a.core_luts < b.core_luts
        or a.fmax_mhz > b.fmax_mhz
    )
    return no_worse and better


def pareto_frontier(points) -> list[ParetoPoint]:
    """The non-dominated subset of *points*, deterministically ordered.

    Structural duplicates (same digest) collapse to one entry; ordering
    is (cycles, LUTs, -fmax, digest) so the frontier — and any JSON
    derived from it — is byte-stable across runs and processes.
    """
    unique: dict[str, ParetoPoint] = {}
    for p in points:
        unique.setdefault(p.digest, p)
    pool = list(unique.values())
    frontier = [
        p for p in pool if not any(dominates(q, p) for q in pool if q is not p)
    ]
    frontier.sort(key=lambda p: (p.cycles, p.core_luts, -p.fmax_mhz, p.digest))
    return frontier
