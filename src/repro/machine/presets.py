"""The thirteen design points evaluated in the paper.

===========  ======  =====================================  ==============
name         style   register files                         buses / issue
===========  ======  =====================================  ==============
mblaze-3     scalar  32x32b, 2r1w                           1-issue, 3-stage
mblaze-5     scalar  32x32b, 2r1w                           1-issue, 5-stage
m-tta-1      TTA     32x32b, 1r1w                           3 buses
m-vliw-2     VLIW    64x32b, 4r2w                           2-issue
p-vliw-2     VLIW    2 x 32x32b, 2r1w                       2-issue
m-tta-2      TTA     64x32b, 1r1w                           6 buses
p-tta-2      TTA     2 x 32x32b, 1r1w                       6 buses
bm-tta-2     TTA     2 x 32x32b, 1r1w                       5 merged buses
m-vliw-3     VLIW    96x32b, 6r3w                           3-issue
p-vliw-3     VLIW    3 x 32x32b, 2r1w                       3-issue
m-tta-3      TTA     96x32b, 2r1w                           9 buses
p-tta-3      TTA     3 x 32x32b, 1r1w                       9 buses
bm-tta-3     TTA     3 x 32x32b, 1r1w                       7 merged buses
===========  ======  =====================================  ==============

All multi-issue machines share the same function units: one load-store
unit, one (2-issue) or two (3-issue) ALUs with the full Table I operation
set, and a control unit.  Register counts follow the paper's rule of never
under-utilising a 32-entry distributed-RAM block.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.isa.operations import ALU_OPS, CU_OPS, LSU_OPS, OpKind
from repro.machine.components import Bus, FunctionUnit, RegisterFile
from repro.machine.machine import Machine, MachineStyle, ScalarTiming

_ALU_OPSET = frozenset(ALU_OPS)
_LSU_OPSET = frozenset(LSU_OPS)
_CU_OPSET = frozenset(CU_OPS)


def _alu(index: int) -> FunctionUnit:
    # Only ALU0 hosts the DSP-based multiplier: the paper reports three
    # DSP blocks for every design point, i.e. one multiplier per core.
    ops = _ALU_OPSET if index == 0 else _ALU_OPSET - {"mul"}
    return FunctionUnit(f"ALU{index}", OpKind.ALU, ops)


def _lsu() -> FunctionUnit:
    return FunctionUnit("LSU0", OpKind.LSU, _LSU_OPSET)


def _cu() -> FunctionUnit:
    return FunctionUnit("CU", OpKind.CU, _CU_OPSET)


def _full_sources(fus: Iterable[FunctionUnit], rfs: Iterable[RegisterFile]) -> frozenset[str]:
    sources = {"IMM"}
    sources.update(fu.result_port for fu in fus)
    sources.update(rf.read_endpoint for rf in rfs)
    return frozenset(sources)


def _full_destinations(fus: Iterable[FunctionUnit], rfs: Iterable[RegisterFile]) -> frozenset[str]:
    dests: set[str] = set()
    for fu in fus:
        dests.add(fu.trigger_port)
        dests.add(fu.operand_port)
    dests.update(rf.write_endpoint for rf in rfs)
    return frozenset(dests)


def _full_buses(
    count: int, fus: Iterable[FunctionUnit], rfs: Iterable[RegisterFile]
) -> tuple[Bus, ...]:
    fus = tuple(fus)
    rfs = tuple(rfs)
    # Result ports of control units are sources too (call's return address),
    # so `fus` passed here must already include the CU.
    src = _full_sources(fus, rfs)
    dst = _full_destinations(fus, rfs)
    return tuple(Bus(i, src, dst) for i in range(count))


def _tta(
    name: str,
    issue_width: int,
    rfs: tuple[RegisterFile, ...],
    bus_count: int,
    alus: int,
    description: str,
) -> Machine:
    fus = tuple(_alu(i) for i in range(alus)) + (_lsu(),)
    cu = _cu()
    buses = _full_buses(bus_count, (*fus, cu), rfs)
    return Machine(
        name=name,
        style=MachineStyle.TTA,
        issue_width=issue_width,
        function_units=fus,
        control_unit=cu,
        register_files=rfs,
        buses=buses,
        simm_bits=7,
        description=description,
    )


def _vliw(
    name: str,
    issue_width: int,
    rfs: tuple[RegisterFile, ...],
    alus: int,
    description: str,
) -> Machine:
    fus = tuple(_alu(i) for i in range(alus)) + (_lsu(),)
    # The paper's manual VLIW encoding: source fields carry a register
    # address plus an immediate-select bit, so the inline immediate range
    # equals the register address width.
    regbits = max(1, (sum(rf.size for rf in rfs) - 1).bit_length())
    return Machine(
        name=name,
        style=MachineStyle.VLIW,
        issue_width=issue_width,
        function_units=fus,
        control_unit=_cu(),
        register_files=rfs,
        buses=(),
        simm_bits=regbits,
        description=description,
    )


def _bus_merged_2(rfs: tuple[RegisterFile, ...]) -> tuple[Bus, ...]:
    """Five merged/pruned buses for bm-tta-2 (cf. paper Fig. 4d)."""
    alu, lsu, cu = _alu(0), _lsu(), _cu()
    full_src = _full_sources((alu, lsu, cu), rfs)
    full_dst = _full_destinations((alu, lsu, cu), rfs)
    rf_reads = frozenset(rf.read_endpoint for rf in rfs)
    rf_writes = frozenset(rf.write_endpoint for rf in rfs)
    return (
        Bus(0, full_src, full_dst),
        Bus(1, full_src, full_dst),
        # Operand-feed bus: registers/immediates into FU inputs only.
        Bus(
            2,
            rf_reads | {"IMM", alu.result_port},
            frozenset({alu.trigger_port, alu.operand_port, lsu.trigger_port, lsu.operand_port}),
        ),
        # Write-back bus: FU results into the RFs plus the ALU bypass.
        Bus(
            3,
            frozenset({alu.result_port, lsu.result_port, "IMM"}),
            rf_writes | {alu.trigger_port, alu.operand_port},
        ),
        # Control bus: predicates and jump targets, plus spare write-back.
        Bus(
            4,
            rf_reads | {"IMM", alu.result_port},
            frozenset({cu.trigger_port, cu.operand_port}) | rf_writes,
        ),
    )


def _bus_merged_3(rfs: tuple[RegisterFile, ...]) -> tuple[Bus, ...]:
    """Seven merged/pruned buses for bm-tta-3."""
    alu0, alu1, lsu, cu = _alu(0), _alu(1), _lsu(), _cu()
    fus = (alu0, alu1, lsu, cu)
    full_src = _full_sources(fus, rfs)
    full_dst = _full_destinations(fus, rfs)
    rf_reads = frozenset(rf.read_endpoint for rf in rfs)
    rf_writes = frozenset(rf.write_endpoint for rf in rfs)
    alu_ins = frozenset(
        {alu0.trigger_port, alu0.operand_port, alu1.trigger_port, alu1.operand_port}
    )
    return (
        Bus(0, full_src, full_dst),
        Bus(1, full_src, full_dst),
        Bus(2, full_src, full_dst),
        Bus(
            3,
            rf_reads | {"IMM", alu0.result_port, alu1.result_port},
            alu_ins | {lsu.trigger_port, lsu.operand_port},
        ),
        Bus(
            4,
            frozenset({alu0.result_port, alu1.result_port, lsu.result_port, "IMM"}),
            rf_writes | alu_ins,
        ),
        Bus(
            5,
            rf_reads | {"IMM", alu0.result_port},
            frozenset({cu.trigger_port, cu.operand_port}) | rf_writes,
        ),
        Bus(
            6,
            rf_reads | {"IMM", lsu.result_port},
            alu_ins | {lsu.operand_port},
        ),
    )


def _scalar(name: str, timing: ScalarTiming, description: str) -> Machine:
    rf = RegisterFile("RF0", 32, read_ports=2, write_ports=1)
    return Machine(
        name=name,
        style=MachineStyle.SCALAR,
        issue_width=1,
        function_units=(_alu(0), _lsu()),
        control_unit=_cu(),
        register_files=(rf,),
        buses=(),
        simm_bits=16,
        jump_latency=1,
        scalar_timing=timing,
        description=description,
    )


def _rf(name: str, size: int, reads: int, writes: int) -> RegisterFile:
    return RegisterFile(name, size, read_ports=reads, write_ports=writes)


def _build_presets() -> dict[str, Machine]:
    presets: dict[str, Machine] = {}

    presets["mblaze-3"] = _scalar(
        "mblaze-3",
        ScalarTiming(
            load_extra=1,
            mul_extra=2,
            shift_extra=1,
            taken_branch_extra=2,
            call_extra=2,
            pipeline_stages=3,
        ),
        "MicroBlaze-like 3-stage scalar core (area-optimised, no forwarding)",
    )
    presets["mblaze-5"] = _scalar(
        "mblaze-5",
        ScalarTiming(
            load_extra=0,
            mul_extra=0,
            shift_extra=0,
            taken_branch_extra=2,
            call_extra=2,
            pipeline_stages=5,
        ),
        "MicroBlaze-like 5-stage scalar core (performance-optimised, forwarding)",
    )

    presets["m-tta-1"] = _tta(
        "m-tta-1",
        issue_width=1,
        rfs=(_rf("RF0", 32, 1, 1),),
        bus_count=3,
        alus=1,
        description="3-bus single-issue TTA comparable to a 32b scalar RISC",
    )

    presets["m-vliw-2"] = _vliw(
        "m-vliw-2",
        issue_width=2,
        rfs=(_rf("RF0", 64, 4, 2),),
        alus=1,
        description="dual-issue VLIW with a monolithic 64x32b 4r2w RF",
    )
    presets["p-vliw-2"] = _vliw(
        "p-vliw-2",
        issue_width=2,
        rfs=(_rf("RF0", 32, 2, 1), _rf("RF1", 32, 2, 1)),
        alus=1,
        description="dual-issue VLIW with the RF split into two 2r1w halves",
    )
    presets["m-tta-2"] = _tta(
        "m-tta-2",
        issue_width=2,
        rfs=(_rf("RF0", 64, 1, 1),),
        bus_count=6,
        alus=1,
        description="dual-issue TTA with a monolithic 64x32b RF reduced to 1r1w",
    )
    presets["p-tta-2"] = _tta(
        "p-tta-2",
        issue_width=2,
        rfs=(_rf("RF0", 32, 1, 1), _rf("RF1", 32, 1, 1)),
        bus_count=6,
        alus=1,
        description="dual-issue TTA with two partitioned 1r1w RFs",
    )
    bm2_rfs = (_rf("RF0", 32, 1, 1), _rf("RF1", 32, 1, 1))
    bm2 = _tta("bm-tta-2", 2, bm2_rfs, 5, 1, "")
    presets["bm-tta-2"] = Machine(
        name="bm-tta-2",
        style=MachineStyle.TTA,
        issue_width=2,
        function_units=bm2.function_units,
        control_unit=bm2.control_unit,
        register_files=bm2_rfs,
        buses=_bus_merged_2(bm2_rfs),
        simm_bits=7,
        description="p-tta-2 with rarely co-used buses merged (5 buses)",
    )

    presets["m-vliw-3"] = _vliw(
        "m-vliw-3",
        issue_width=3,
        rfs=(_rf("RF0", 96, 6, 3),),
        alus=2,
        description="three-issue VLIW with a monolithic 96x32b 6r3w RF",
    )
    presets["p-vliw-3"] = _vliw(
        "p-vliw-3",
        issue_width=3,
        rfs=(_rf("RF0", 32, 2, 1), _rf("RF1", 32, 2, 1), _rf("RF2", 32, 2, 1)),
        alus=2,
        description="three-issue VLIW with the RF split into three 2r1w parts",
    )
    presets["m-tta-3"] = _tta(
        "m-tta-3",
        issue_width=3,
        rfs=(_rf("RF0", 96, 2, 1),),
        bus_count=9,
        alus=2,
        description="three-issue TTA with a monolithic 96x32b RF reduced to 2r1w",
    )
    presets["p-tta-3"] = _tta(
        "p-tta-3",
        issue_width=3,
        rfs=(_rf("RF0", 32, 1, 1), _rf("RF1", 32, 1, 1), _rf("RF2", 32, 1, 1)),
        bus_count=9,
        alus=2,
        description="three-issue TTA with three partitioned 1r1w RFs",
    )
    bm3_rfs = (_rf("RF0", 32, 1, 1), _rf("RF1", 32, 1, 1), _rf("RF2", 32, 1, 1))
    bm3 = _tta("bm-tta-3", 3, bm3_rfs, 7, 2, "")
    presets["bm-tta-3"] = Machine(
        name="bm-tta-3",
        style=MachineStyle.TTA,
        issue_width=3,
        function_units=bm3.function_units,
        control_unit=bm3.control_unit,
        register_files=bm3_rfs,
        buses=_bus_merged_3(bm3_rfs),
        simm_bits=7,
        description="p-tta-3 with rarely co-used buses merged (7 buses)",
    )
    return presets


ALL_PRESETS: tuple[str, ...] = (
    "mblaze-3",
    "mblaze-5",
    "m-tta-1",
    "m-vliw-2",
    "p-vliw-2",
    "m-tta-2",
    "p-tta-2",
    "bm-tta-2",
    "m-vliw-3",
    "p-vliw-3",
    "m-tta-3",
    "p-tta-3",
    "bm-tta-3",
)

SINGLE_ISSUE_PRESETS: tuple[str, ...] = ("mblaze-3", "mblaze-5", "m-tta-1")
MULTI_ISSUE_PRESETS: tuple[str, ...] = tuple(
    n for n in ALL_PRESETS if n not in SINGLE_ISSUE_PRESETS
)

_PRESET_CACHE: dict[str, Machine] = {}


def build_machine(name: str) -> Machine:
    """Return the named design point (machines are immutable; cached)."""
    if not _PRESET_CACHE:
        _PRESET_CACHE.update(_build_presets())
    try:
        return _PRESET_CACHE[name]
    except KeyError:
        raise KeyError(f"unknown machine preset {name!r}; known: {ALL_PRESETS}") from None


def preset_names() -> tuple[str, ...]:
    """All preset names, in the paper's presentation order."""
    return ALL_PRESETS
