"""Instruction-encoding model.

TTA machines get an automatically derived move-slot encoding in the style
of TCE: per bus, the destination field enumerates every reachable
destination code (one code per register of a connected RF, one per opcode
of a connected trigger port, one per plain operand port) and the source
field enumerates every reachable source code or a short immediate.  The
instruction width is the sum of the *per-bus* slot widths -- which is why
pruning and merging buses (``bm-tta-*``) shrinks the instruction word, the
effect Table II highlights.

VLIW machines use the paper's manual encoding: per issue slot a 4-bit
opcode, two source fields of ``regbits + 1`` bits (the extra bit selects
an inline immediate) and a ``regbits`` destination field.

Scalar machines use fixed 32-bit instructions with a 16-bit immediate
field and an IMM-prefix instruction for wider constants, like MicroBlaze.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.components import Bus
from repro.machine.machine import Machine, MachineStyle


def _bits_for(codes: int) -> int:
    """Field width to distinguish *codes* distinct codes (min 1)."""
    return max(1, (max(codes, 1) - 1).bit_length())


@dataclass(frozen=True)
class EncodingInfo:
    """Derived encoding facts for one machine.

    Attributes:
        machine_name: design point the encoding belongs to.
        instruction_width: instruction word width in bits.
        slot_widths: per-bus (TTA) or per-issue-slot (VLIW) widths; a
            one-element tuple for scalar machines.
        simm_bits: inline immediate width.
    """

    machine_name: str
    instruction_width: int
    slot_widths: tuple[int, ...]
    simm_bits: int

    def program_bits(self, instruction_count: int) -> int:
        """Program image size in bits for *instruction_count* instructions."""
        return self.instruction_width * instruction_count


def _tta_source_codes(machine: Machine, bus: Bus) -> int:
    codes = 0
    for endpoint in bus.sources:
        if endpoint == "IMM":
            continue  # handled via the short-immediate alternative
        kind = machine.unit_kind_of_endpoint(endpoint)
        if kind == "rf":
            codes += machine.rf_by_name[endpoint.split(".", 1)[0]].size
        else:
            codes += 1  # one FU result port
    return codes


def _tta_destination_codes(machine: Machine, bus: Bus) -> int:
    codes = 0
    for endpoint in bus.destinations:
        kind = machine.unit_kind_of_endpoint(endpoint)
        if kind == "rf":
            codes += machine.rf_by_name[endpoint.split(".", 1)[0]].size
        else:
            unit_name, port = endpoint.split(".", 1)
            fu = machine.fu_by_name[unit_name]
            codes += len(fu.ops) if port == "t" else 1
    return codes


def _tta_slot_width(machine: Machine, bus: Bus) -> int:
    src_bits = _bits_for(_tta_source_codes(machine, bus))
    if "IMM" in bus.sources:
        # One extra code space alternative: an inline immediate needs
        # simm_bits plus the select bit folded into the field width.
        src_bits = max(src_bits, machine.simm_bits + 1)
    dst_bits = _bits_for(_tta_destination_codes(machine, bus))
    return src_bits + dst_bits


def _vliw_slot_width(machine: Machine) -> int:
    regbits = _bits_for(machine.total_registers)
    return 4 + 2 * (regbits + 1) + regbits


def encode_machine(machine: Machine) -> EncodingInfo:
    """Derive the instruction encoding of *machine*."""
    if machine.style is MachineStyle.TTA:
        widths = tuple(_tta_slot_width(machine, bus) for bus in machine.buses)
        return EncodingInfo(machine.name, sum(widths), widths, machine.simm_bits)
    if machine.style is MachineStyle.VLIW:
        slot = _vliw_slot_width(machine)
        widths = (slot,) * machine.issue_width
        return EncodingInfo(machine.name, slot * machine.issue_width, widths, machine.simm_bits)
    # Scalar: fixed 32-bit RISC encoding.
    return EncodingInfo(machine.name, 32, (32,), machine.simm_bits)


def immediate_slot_cost(machine: Machine, value: int) -> int:
    """Extra transport/issue slots needed to encode immediate *value*.

    Returns 0 when the constant fits the inline short-immediate field,
    1 when a 16-bit extension is needed and 2 for full 32-bit constants
    (TTA long-immediate templates span additional move slots; VLIW and
    scalar machines issue IMM-extension words).
    """
    signed = value - 0x100000000 if value & 0x80000000 else value
    simm = machine.simm_bits
    if -(1 << (simm - 1)) <= signed < (1 << (simm - 1)):
        return 0
    if -(1 << 15) <= signed < (1 << 15) or 0 <= value < (1 << 16):
        return 1
    return 2
