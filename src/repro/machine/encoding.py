"""Instruction-encoding model.

TTA machines get an automatically derived move-slot encoding in the style
of TCE: per bus, the destination field enumerates every reachable
destination code (one code per register of a connected RF, one per opcode
of a connected trigger port, one per plain operand port) and the source
field enumerates every reachable source code or a short immediate.  The
instruction width is the sum of the *per-bus* slot widths -- which is why
pruning and merging buses (``bm-tta-*``) shrinks the instruction word, the
effect Table II highlights.

VLIW machines use the paper's manual encoding: per issue slot a 4-bit
opcode, two source fields of ``regbits + 1`` bits (the extra bit selects
an inline immediate) and a ``regbits`` destination field.

Scalar machines use fixed 32-bit instructions with a 16-bit immediate
field and an IMM-prefix instruction for wider constants, like MicroBlaze.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.components import Bus
from repro.machine.machine import Machine, MachineStyle


def _bits_for(codes: int) -> int:
    """Field width to distinguish *codes* distinct codes (min 1)."""
    return max(1, (max(codes, 1) - 1).bit_length())


@dataclass(frozen=True)
class EncodingInfo:
    """Derived encoding facts for one machine.

    Attributes:
        machine_name: design point the encoding belongs to.
        instruction_width: instruction word width in bits.
        slot_widths: per-bus (TTA) or per-issue-slot (VLIW) widths; a
            one-element tuple for scalar machines.
        simm_bits: inline immediate width.
    """

    machine_name: str
    instruction_width: int
    slot_widths: tuple[int, ...]
    simm_bits: int

    def program_bits(self, instruction_count: int) -> int:
        """Program image size in bits for *instruction_count* instructions."""
        return self.instruction_width * instruction_count


def _tta_source_codes(machine: Machine, bus: Bus) -> int:
    codes = 0
    for endpoint in bus.sources:
        if endpoint == "IMM":
            continue  # handled via the short-immediate alternative
        kind = machine.unit_kind_of_endpoint(endpoint)
        if kind == "rf":
            codes += machine.rf_by_name[endpoint.split(".", 1)[0]].size
        else:
            codes += 1  # one FU result port
    return codes


def _tta_destination_codes(machine: Machine, bus: Bus) -> int:
    codes = 0
    for endpoint in bus.destinations:
        kind = machine.unit_kind_of_endpoint(endpoint)
        if kind == "rf":
            codes += machine.rf_by_name[endpoint.split(".", 1)[0]].size
        else:
            unit_name, port = endpoint.split(".", 1)
            fu = machine.fu_by_name[unit_name]
            codes += len(fu.ops) if port == "t" else 1
    return codes


def _tta_slot_width(machine: Machine, bus: Bus) -> int:
    src_bits = _bits_for(_tta_source_codes(machine, bus))
    if "IMM" in bus.sources:
        # One extra code space alternative: an inline immediate needs
        # simm_bits plus the select bit folded into the field width.
        src_bits = max(src_bits, machine.simm_bits + 1)
    dst_bits = _bits_for(_tta_destination_codes(machine, bus))
    return src_bits + dst_bits


def _vliw_slot_width(machine: Machine) -> int:
    regbits = _bits_for(machine.total_registers)
    return 4 + 2 * (regbits + 1) + regbits


def encode_machine(machine: Machine) -> EncodingInfo:
    """Derive the instruction encoding of *machine*."""
    if machine.style is MachineStyle.TTA:
        widths = tuple(_tta_slot_width(machine, bus) for bus in machine.buses)
        return EncodingInfo(machine.name, sum(widths), widths, machine.simm_bits)
    if machine.style is MachineStyle.VLIW:
        slot = _vliw_slot_width(machine)
        widths = (slot,) * machine.issue_width
        return EncodingInfo(machine.name, slot * machine.issue_width, widths, machine.simm_bits)
    # Scalar: fixed 32-bit RISC encoding.
    return EncodingInfo(machine.name, 32, (32,), machine.simm_bits)


# ---------------------------------------------------------------------------
# Bit-level move codec
# ---------------------------------------------------------------------------


class MoveEncodeError(ValueError):
    """A move cannot be expressed in its bus's encoding space."""


class MoveCodec:
    """Bit-exact encoder/decoder for TTA transport moves.

    Materialises, per bus, the deterministic source/destination code
    tables that :func:`encode_machine` only *counts*: every reachable
    (RF, index) register, every FU result port, every (trigger, opcode)
    pair and every plain operand port gets one code, enumerated over the
    bus's endpoints in sorted order.  When the bus carries an ``IMM``
    source, short immediates occupy the code space above the endpoint
    codes as ``simm_bits``-bit two's-complement values.

    ``decode_move(bus, encode_move(move)) == (move.src, move.dst)`` for
    every connected move whose immediate (if any) fits the short-
    immediate field -- the property the encode/decode round-trip tests
    fuzz.  Long immediates span extra template slots in the real
    encoding and are rejected with :class:`MoveEncodeError` here.

    Note: the per-bus codec widths can exceed
    :class:`EncodingInfo.slot_widths` by up to one bit -- the paper's
    width model assumes the immediate alternative *shares* the source
    field's code space (TCE long-immediate templates), while the codec
    must keep every code distinct to stay invertible.
    """

    def __init__(self, machine: Machine):
        if machine.style is not MachineStyle.TTA:
            raise ValueError(
                f"MoveCodec models TTA transport encoding; {machine.name} is "
                f"{machine.style.value}"
            )
        self.machine = machine
        self.simm_bits = machine.simm_bits
        #: bus index -> ordered list of source tuples (("rf", rf, i) | ("fu", fu))
        self._src_table: dict[int, list[tuple]] = {}
        #: bus index -> ordered list of destination tuples
        self._dst_table: dict[int, list[tuple]] = {}
        self._has_imm: dict[int, bool] = {}
        for bus in machine.buses:
            sources: list[tuple] = []
            for endpoint in sorted(bus.sources):
                if endpoint == "IMM":
                    continue
                kind = machine.unit_kind_of_endpoint(endpoint)
                name = endpoint.split(".", 1)[0]
                if kind == "rf":
                    rf = machine.rf_by_name[name]
                    sources.extend(("rf", name, i) for i in range(rf.size))
                else:
                    sources.append(("fu", name))
            destinations: list[tuple] = []
            for endpoint in sorted(bus.destinations):
                kind = machine.unit_kind_of_endpoint(endpoint)
                name, port = endpoint.split(".", 1)
                if kind == "rf":
                    rf = machine.rf_by_name[name]
                    destinations.extend(("rf", name, i) for i in range(rf.size))
                elif port == "t":
                    fu = machine.fu_by_name[name]
                    destinations.extend(("op", name, "t", op) for op in sorted(fu.ops))
                else:
                    destinations.append(("op", name, port, None))
            self._src_table[bus.index] = sources
            self._dst_table[bus.index] = destinations
            self._has_imm[bus.index] = "IMM" in bus.sources
        self._src_index = {
            b: {code: i for i, code in enumerate(table)}
            for b, table in self._src_table.items()
        }
        self._dst_index = {
            b: {code: i for i, code in enumerate(table)}
            for b, table in self._dst_table.items()
        }

    # ---- widths ---------------------------------------------------------

    def src_field_width(self, bus_index: int) -> int:
        codes = len(self._src_table[bus_index])
        if self._has_imm[bus_index]:
            codes += 1 << self.simm_bits
        return _bits_for(codes)

    def dst_field_width(self, bus_index: int) -> int:
        return _bits_for(len(self._dst_table[bus_index]))

    def slot_width(self, bus_index: int) -> int:
        """Bits one encoded move occupies on this bus."""
        return self.src_field_width(bus_index) + self.dst_field_width(bus_index)

    # ---- encode ---------------------------------------------------------

    def _encode_src(self, bus_index: int, src: tuple) -> int:
        if src[0] == "imm":
            if not self._has_imm[bus_index]:
                raise MoveEncodeError(
                    f"bus {bus_index} has no IMM source for {src!r}"
                )
            value = src[1] & 0xFFFFFFFF
            signed = value - 0x100000000 if value & 0x80000000 else value
            half = 1 << (self.simm_bits - 1)
            if not -half <= signed < half:
                raise MoveEncodeError(
                    f"immediate {signed} does not fit {self.simm_bits} bits "
                    f"(long-immediate templates are not codec-encodable)"
                )
            return len(self._src_table[bus_index]) + (signed & ((1 << self.simm_bits) - 1))
        try:
            return self._src_index[bus_index][src]
        except KeyError:
            raise MoveEncodeError(
                f"source {src!r} is not connected to bus {bus_index}"
            ) from None

    def encode_move(self, move) -> int:
        """The move's bit pattern: source field above destination field."""
        try:
            dst_code = self._dst_index[move.bus][move.dst]
        except KeyError:
            raise MoveEncodeError(
                f"destination {move.dst!r} is not connected to bus {move.bus}"
            ) from None
        src_code = self._encode_src(move.bus, move.src)
        return (src_code << self.dst_field_width(move.bus)) | dst_code

    def decode_move(self, bus_index: int, bits: int) -> tuple[tuple, tuple]:
        """Invert :meth:`encode_move`; returns ``(src, dst)`` tuples."""
        width = self.slot_width(bus_index)
        if not 0 <= bits < (1 << width):
            raise MoveEncodeError(
                f"bit pattern {bits:#x} exceeds bus {bus_index}'s {width}-bit slot"
            )
        dst_width = self.dst_field_width(bus_index)
        dst_code = bits & ((1 << dst_width) - 1)
        src_code = bits >> dst_width
        dst_table = self._dst_table[bus_index]
        if dst_code >= len(dst_table):
            raise MoveEncodeError(
                f"destination code {dst_code} out of range on bus {bus_index}"
            )
        dst = dst_table[dst_code]
        src_table = self._src_table[bus_index]
        if src_code < len(src_table):
            src = src_table[src_code]
        else:
            if not self._has_imm[bus_index]:
                raise MoveEncodeError(
                    f"source code {src_code} out of range on bus {bus_index}"
                )
            raw = src_code - len(src_table)
            if raw >= (1 << self.simm_bits):
                raise MoveEncodeError(
                    f"source code {src_code} out of range on bus {bus_index}"
                )
            half = 1 << (self.simm_bits - 1)
            signed = raw - (1 << self.simm_bits) if raw >= half else raw
            src = ("imm", signed & 0xFFFFFFFF)
        return src, dst


def immediate_slot_cost(machine: Machine, value: int) -> int:
    """Extra transport/issue slots needed to encode immediate *value*.

    Returns 0 when the constant fits the inline short-immediate field,
    1 when a 16-bit extension is needed and 2 for full 32-bit constants
    (TTA long-immediate templates span additional move slots; VLIW and
    scalar machines issue IMM-extension words).
    """
    signed = value - 0x100000000 if value & 0x80000000 else value
    simm = machine.simm_bits
    if -(1 << (simm - 1)) <= signed < (1 << (simm - 1)):
        return 0
    if -(1 << 15) <= signed < (1 << 15) or 0 <= value < (1 << 16):
        return 1
    return 2
