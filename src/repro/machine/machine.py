"""The Machine class: one complete soft-core design point."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import cached_property

from repro.isa.operations import OPS, OpKind
from repro.machine.components import Bus, FunctionUnit, RegisterFile


class MachineStyle(enum.Enum):
    """Programming model of the design point.

    * ``TTA`` -- exposed-datapath; programs are parallel data transports,
      scheduled onto the machine's buses with software bypassing.
    * ``VLIW`` -- operation-triggered multi-issue; programs are bundles of
      complete operations, all operands via the register file(s).
    * ``SCALAR`` -- single-issue operation-triggered RISC with a hardware
      pipeline timing model (the MicroBlaze stand-in).
    """

    TTA = "tta"
    VLIW = "vliw"
    SCALAR = "scalar"


@dataclass(frozen=True)
class ScalarTiming:
    """Pipeline timing model for SCALAR machines.

    Cycle cost of each instruction class beyond the 1-cycle base issue
    rate, modelling stalls of an in-order scalar pipeline.  The defaults
    correspond to a 3-stage MicroBlaze-like pipeline without operand
    forwarding.
    """

    load_extra: int = 1
    store_extra: int = 0
    mul_extra: int = 2
    shift_extra: int = 1
    taken_branch_extra: int = 2
    untaken_branch_extra: int = 0
    call_extra: int = 2
    pipeline_stages: int = 3


@dataclass(frozen=True)
class Machine:
    """A complete description of one soft-core design point.

    Attributes:
        name: design point name (``m-tta-2`` ...).
        style: programming model (TTA / VLIW / SCALAR).
        issue_width: operations issued per cycle in VLIW/SCALAR mode; for
            TTA machines this records the *intended* sustained issue rate
            (used only for reporting).
        function_units: datapath FUs (excluding the control unit).
        control_unit: the control FU (jumps, calls).
        register_files: general-purpose RFs.
        buses: transport buses; required for TTA machines, empty otherwise.
        simm_bits: short-immediate width encodable in a move source field /
            issue-slot source field.  Wider constants need a long-immediate
            transport (TTA: +1 bus slot; VLIW/SCALAR: +1 issue slot).
        jump_latency: exposed control-transfer latency (delay slots).
        scalar_timing: pipeline stall model for SCALAR machines.
    """

    name: str
    style: MachineStyle
    issue_width: int
    function_units: tuple[FunctionUnit, ...]
    control_unit: FunctionUnit
    register_files: tuple[RegisterFile, ...]
    buses: tuple[Bus, ...] = ()
    simm_bits: int = 8
    jump_latency: int = 3
    scalar_timing: ScalarTiming | None = None
    description: str = field(default="", compare=False)

    # ---- lookup helpers -------------------------------------------------

    @cached_property
    def all_units(self) -> tuple[FunctionUnit, ...]:
        """Datapath FUs plus the control unit."""
        return (*self.function_units, self.control_unit)

    @cached_property
    def fu_by_name(self) -> dict[str, FunctionUnit]:
        return {fu.name: fu for fu in self.all_units}

    @cached_property
    def rf_by_name(self) -> dict[str, RegisterFile]:
        return {rf.name: rf for rf in self.register_files}

    @cached_property
    def units_for_op(self) -> dict[str, tuple[FunctionUnit, ...]]:
        """Map each operation mnemonic to the units able to execute it."""
        table: dict[str, list[FunctionUnit]] = {}
        for fu in self.all_units:
            for op in fu.ops:
                table.setdefault(op, []).append(fu)
        return {op: tuple(fus) for op, fus in table.items()}

    def unit_kind_of_endpoint(self, endpoint: str) -> str:
        """Classify an endpoint string: 'fu', 'rf' or 'imm'."""
        if endpoint == "IMM":
            return "imm"
        unit = endpoint.split(".", 1)[0]
        if unit in self.fu_by_name:
            return "fu"
        if unit in self.rf_by_name:
            return "rf"
        raise KeyError(f"unknown endpoint {endpoint!r} in machine {self.name}")

    # ---- derived properties ---------------------------------------------

    @property
    def total_registers(self) -> int:
        return sum(rf.size for rf in self.register_files)

    @property
    def bus_count(self) -> int:
        return len(self.buses)

    def supports_op(self, op: str) -> bool:
        return op in self.units_for_op

    @cached_property
    def supported_ops(self) -> frozenset[str]:
        return frozenset(self.units_for_op)

    def buses_connecting(self, source: str, destination: str) -> tuple[Bus, ...]:
        """All buses able to transport *source* -> *destination*."""
        return tuple(b for b in self.buses if b.connects(source, destination))

    def operation_latency(self, op: str) -> int:
        return OPS[op].latency

    @property
    def lsu_names(self) -> tuple[str, ...]:
        return tuple(fu.name for fu in self.function_units if fu.kind is OpKind.LSU)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Machine({self.name}, {self.style.value}, issue={self.issue_width}, "
            f"fus={len(self.function_units)}, rfs={len(self.register_files)}, "
            f"buses={len(self.buses)})"
        )
