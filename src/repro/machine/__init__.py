"""Machine description model (TCE-ADF-like).

A :class:`~repro.machine.machine.Machine` describes one soft-core design
point: its function units, register files, transport buses (for TTA-style
machines), issue width (for VLIW/scalar machines) and immediate-encoding
parameters.  :mod:`repro.machine.presets` provides all thirteen design
points evaluated in the paper.
"""

from repro.machine.components import Bus, FunctionUnit, RegisterFile
from repro.machine.encoding import EncodingInfo, encode_machine
from repro.machine.machine import Machine, MachineStyle
from repro.machine.presets import (
    ALL_PRESETS,
    MULTI_ISSUE_PRESETS,
    SINGLE_ISSUE_PRESETS,
    build_machine,
    preset_names,
)
from repro.machine.serialize import (
    machine_digest,
    machine_from_dict,
    machine_from_json,
    machine_to_dict,
    machine_to_json,
    structural_name,
)
from repro.machine.validate import MachineValidationError, validate_machine

__all__ = [
    "ALL_PRESETS",
    "Bus",
    "EncodingInfo",
    "FunctionUnit",
    "Machine",
    "MachineStyle",
    "MachineValidationError",
    "MULTI_ISSUE_PRESETS",
    "RegisterFile",
    "SINGLE_ISSUE_PRESETS",
    "build_machine",
    "encode_machine",
    "machine_digest",
    "machine_from_dict",
    "machine_from_json",
    "machine_to_dict",
    "machine_to_json",
    "preset_names",
    "structural_name",
    "validate_machine",
]
