"""Machine (de)serialization and structural identity.

A :class:`~repro.machine.machine.Machine` is a value: every architectural
field is immutable and canonically orderable.  This module gives that
value three interchangeable representations:

* ``machine_to_dict`` / ``machine_from_dict`` -- a JSON-serialisable
  description (the same canonical layout the pipeline fingerprints), and
  its exact inverse, so generated design points can cross process
  boundaries, live in sweep tasks, and be re-materialised from a stored
  exploration frontier;
* ``machine_to_json`` / ``machine_from_json`` -- the canonical JSON text
  form (sorted keys, no whitespace), byte-deterministic across processes
  and ``PYTHONHASHSEED`` values;
* ``machine_digest`` -- a hex SHA-256 over the *structure only* (name
  and description excluded), the identity used to deduplicate generated
  machines and to key measured vendor constants structurally instead of
  by preset name.

``structural_name`` derives a stable display name (``x-<digest12>``) for
machines produced by the exploration mutation engine, so a mutant's name
is a pure function of its architecture.
"""

from __future__ import annotations

import hashlib
import json
from functools import lru_cache

from repro.isa.operations import OpKind
from repro.machine.components import Bus, FunctionUnit, RegisterFile
from repro.machine.machine import Machine, MachineStyle, ScalarTiming

#: bump when the serialised machine layout changes incompatibly
MACHINE_SCHEMA = 1

_TIMING_FIELDS = (
    "load_extra",
    "store_extra",
    "mul_extra",
    "shift_extra",
    "taken_branch_extra",
    "untaken_branch_extra",
    "call_extra",
    "pipeline_stages",
)


def machine_to_dict(machine: Machine) -> dict:
    """Canonical, JSON-serialisable description of a design point.

    Every field that can influence compilation, simulation or synthesis
    is included; every unordered collection is sorted.  The control unit
    rides in ``function_units`` (always last, identified by its ``cu``
    kind), matching :attr:`Machine.all_units` order.
    """
    desc: dict = {
        "name": machine.name,
        "style": machine.style.value,
        "issue_width": machine.issue_width,
        "simm_bits": machine.simm_bits,
        "jump_latency": machine.jump_latency,
        "function_units": [
            {"name": fu.name, "kind": fu.kind.value, "ops": sorted(fu.ops)}
            for fu in machine.all_units
        ],
        "register_files": [
            {
                "name": rf.name,
                "size": rf.size,
                "width": rf.width,
                "read_ports": rf.read_ports,
                "write_ports": rf.write_ports,
            }
            for rf in machine.register_files
        ],
        "buses": [
            {
                "index": bus.index,
                "sources": sorted(bus.sources),
                "destinations": sorted(bus.destinations),
            }
            for bus in machine.buses
        ],
    }
    if machine.scalar_timing is not None:
        timing = machine.scalar_timing
        desc["scalar_timing"] = {f: getattr(timing, f) for f in _TIMING_FIELDS}
    return desc


def machine_from_dict(desc: dict) -> Machine:
    """Inverse of :func:`machine_to_dict`.

    Raises ``ValueError`` when the description is not a well-formed
    machine (wrong control-unit count, unknown style/kind, missing
    fields) -- structural *usability* is the validator's job, not this
    function's.
    """
    try:
        style = MachineStyle(desc["style"])
        units = tuple(
            FunctionUnit(str(u["name"]), OpKind(u["kind"]), frozenset(u["ops"]))
            for u in desc["function_units"]
        )
        register_files = tuple(
            RegisterFile(
                str(rf["name"]),
                int(rf["size"]),
                read_ports=int(rf["read_ports"]),
                write_ports=int(rf["write_ports"]),
                width=int(rf.get("width", 32)),
            )
            for rf in desc["register_files"]
        )
        buses = tuple(
            Bus(
                int(b["index"]),
                frozenset(str(s) for s in b["sources"]),
                frozenset(str(d) for d in b["destinations"]),
            )
            for b in desc.get("buses", ())
        )
        timing = None
        if desc.get("scalar_timing") is not None:
            timing = ScalarTiming(
                **{f: int(desc["scalar_timing"][f]) for f in _TIMING_FIELDS}
            )
        name = str(desc["name"])
        issue_width = int(desc["issue_width"])
        simm_bits = int(desc["simm_bits"])
        jump_latency = int(desc["jump_latency"])
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed machine description: {exc!r}") from exc
    control = tuple(u for u in units if u.kind is OpKind.CU)
    if len(control) != 1:
        raise ValueError(
            f"machine description must contain exactly one control unit, "
            f"got {len(control)}"
        )
    return Machine(
        name=name,
        style=style,
        issue_width=issue_width,
        function_units=tuple(u for u in units if u.kind is not OpKind.CU),
        control_unit=control[0],
        register_files=register_files,
        buses=buses,
        simm_bits=simm_bits,
        jump_latency=jump_latency,
        scalar_timing=timing,
        description=str(desc.get("description", "")),
    )


def _canonical_json(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def machine_to_json(machine: Machine) -> str:
    """Canonical JSON text of :func:`machine_to_dict` (sorted keys, no
    whitespace) -- byte-deterministic for a given machine."""
    return _canonical_json(machine_to_dict(machine))


def machine_from_json(text: str) -> Machine:
    """Inverse of :func:`machine_to_json`."""
    payload = json.loads(text)
    if not isinstance(payload, dict):
        raise ValueError(f"machine JSON must be an object, got {type(payload).__name__}")
    return machine_from_dict(payload)


@lru_cache(maxsize=4096)
def machine_digest(machine: Machine) -> str:
    """Hex SHA-256 over the machine's *structure*.

    The name and description are excluded: two design points with
    identical datapaths share a digest regardless of what they are
    called.  This is the identity used to deduplicate exploration
    candidates and to recognise the measured (vendor-IP) design points
    structurally.
    """
    desc = machine_to_dict(machine)
    desc.pop("name", None)
    desc.pop("description", None)
    return hashlib.sha256(_canonical_json(desc).encode()).hexdigest()


def structural_name(machine: Machine, prefix: str = "x") -> str:
    """Deterministic display name for a generated design point."""
    return f"{prefix}-{machine_digest(machine)[:12]}"
