"""Structural validation of machine descriptions.

A machine that passes :func:`validate_machine` is guaranteed to be
compilable: every compiler-required operation is hosted by some unit, and
(for TTA machines) every operand can physically reach every FU and every
result can reach a register file through at least one bus.
"""

from __future__ import annotations

from repro.isa.operations import OPS
from repro.machine.machine import Machine, MachineStyle

#: Operations the code generator may emit and therefore every machine must
#: provide (the full Table I repertoire plus control transfers).
REQUIRED_OPS: frozenset[str] = frozenset(OPS)


class MachineValidationError(ValueError):
    """Raised when a machine description is structurally unusable."""


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise MachineValidationError(message)


def validate_machine(machine: Machine) -> None:
    """Validate *machine*; raises :class:`MachineValidationError` on defects."""
    names = [u.name for u in machine.all_units] + [rf.name for rf in machine.register_files]
    _check(len(names) == len(set(names)), f"{machine.name}: duplicate component names")

    missing = sorted(REQUIRED_OPS - set(machine.units_for_op))
    _check(not missing, f"{machine.name}: operations missing from every unit: {missing}")

    _check(machine.issue_width >= 1, f"{machine.name}: issue width must be >= 1")
    _check(machine.register_files != (), f"{machine.name}: no register files")
    _check(machine.total_registers >= 16, f"{machine.name}: fewer than 16 registers")

    if machine.style is MachineStyle.TTA:
        _validate_tta_connectivity(machine)
    else:
        _check(machine.buses == (), f"{machine.name}: non-TTA machine must not define buses")
    if machine.style is MachineStyle.SCALAR:
        _check(machine.scalar_timing is not None, f"{machine.name}: scalar machine needs timing")


def _validate_tta_connectivity(machine: Machine) -> None:
    _check(len(machine.buses) >= 1, f"{machine.name}: TTA machine without buses")
    valid_sources = {"IMM"}
    valid_dests: set[str] = set()
    for fu in machine.all_units:
        valid_sources.add(fu.result_port)
        valid_dests.add(fu.trigger_port)
        valid_dests.add(fu.operand_port)
    for rf in machine.register_files:
        valid_sources.add(rf.read_endpoint)
        valid_dests.add(rf.write_endpoint)

    for bus in machine.buses:
        bad_src = bus.sources - valid_sources
        bad_dst = bus.destinations - valid_dests
        _check(not bad_src, f"{machine.name}: bus {bus.index} has unknown sources {bad_src}")
        _check(not bad_dst, f"{machine.name}: bus {bus.index} has unknown destinations {bad_dst}")

    rf_reads = {rf.read_endpoint for rf in machine.register_files}
    for fu in machine.all_units:
        for port in (fu.trigger_port, fu.operand_port):
            reachable = any(
                bus.connects(src, port) for bus in machine.buses for src in rf_reads | {"IMM"}
            )
            _check(reachable, f"{machine.name}: no bus feeds {port} from any RF or immediate")
        if any(OPS[op].has_result for op in fu.ops):
            reachable = any(
                bus.connects(fu.result_port, rf.write_endpoint)
                for bus in machine.buses
                for rf in machine.register_files
            )
            _check(reachable, f"{machine.name}: result of {fu.name} cannot reach any RF")
