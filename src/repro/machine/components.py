"""Datapath components: function units, register files and transport buses.

The component model follows the TCE architecture-definition view of the
paper's Fig. 1-3: every function unit exposes a *trigger* input port ``t``
(transporting an operand there starts the operation), an optional second
operand port ``o1`` with input-port storage, and a result output port
``r`` whose value stays readable until the next operation on the same unit
overwrites it (semi-virtual time latching).

Endpoint naming convention used throughout the backend and simulators:

* ``"<fu>.t"`` -- trigger input port of function unit ``<fu>``
* ``"<fu>.o1"`` -- operand input port
* ``"<fu>.r"`` -- result output port
* ``"<rf>.read"`` / ``"<rf>.write"`` -- a read/write port of register file
  ``<rf>`` (individual ports are interchangeable; only the per-cycle port
  *count* constrains scheduling)
* ``"IMM"`` -- a bus-encoded immediate source
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.operations import OPS, OpKind


@dataclass(frozen=True)
class FunctionUnit:
    """A pipelined function unit hosting a set of operations.

    Attributes:
        name: unique unit name within the machine (``ALU0`` ...).
        kind: functional class; every operation executed by the unit must
            belong to this class.
        ops: mnemonics of the operations the unit implements.
    """

    name: str
    kind: OpKind
    ops: frozenset[str]

    def __post_init__(self) -> None:
        unknown = [op for op in self.ops if op not in OPS]
        if unknown:
            raise ValueError(f"unknown operations on {self.name}: {unknown}")
        mismatched = [op for op in self.ops if OPS[op].kind is not self.kind]
        if mismatched:
            raise ValueError(
                f"operations {mismatched} do not match unit kind {self.kind} on {self.name}"
            )

    @property
    def trigger_port(self) -> str:
        return f"{self.name}.t"

    @property
    def operand_port(self) -> str:
        return f"{self.name}.o1"

    @property
    def result_port(self) -> str:
        return f"{self.name}.r"

    @property
    def opcode_bits(self) -> int:
        """Bits needed to select an opcode at the trigger port."""
        return max(1, (len(self.ops) - 1).bit_length())


@dataclass(frozen=True)
class RegisterFile:
    """A general-purpose register file.

    Attributes:
        name: unique name (``RF0`` ...).
        size: number of 32-bit registers.
        read_ports / write_ports: simultaneously usable ports per cycle.
    """

    name: str
    size: int
    read_ports: int
    write_ports: int
    width: int = 32

    def __post_init__(self) -> None:
        if self.size <= 0 or self.read_ports <= 0 or self.write_ports <= 0:
            raise ValueError(f"register file {self.name} must have positive size and ports")

    @property
    def read_endpoint(self) -> str:
        return f"{self.name}.read"

    @property
    def write_endpoint(self) -> str:
        return f"{self.name}.write"

    @property
    def index_bits(self) -> int:
        """Bits needed to address one register."""
        return max(1, (self.size - 1).bit_length())


@dataclass(frozen=True)
class Bus:
    """One transport bus of a TTA machine.

    A move on the bus transports a value from one connected source endpoint
    to one connected destination endpoint per cycle.  The connectivity sets
    determine both what the scheduler may do and how wide the bus's move
    slot is in the instruction word.

    Attributes:
        index: bus number (0-based).
        sources: connected source endpoints (``"ALU0.r"``, ``"RF0.read"``,
            ``"IMM"``).
        destinations: connected destination endpoints (``"ALU0.t"``,
            ``"RF0.write"``, ...).
    """

    index: int
    sources: frozenset[str] = field(default_factory=frozenset)
    destinations: frozenset[str] = field(default_factory=frozenset)

    def connects(self, source: str, destination: str) -> bool:
        """True when the bus can move *source* -> *destination*."""
        return source in self.sources and destination in self.destinations
