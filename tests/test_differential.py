"""Differential testing: random MiniC programs must produce identical
results on the IR interpreter and on every simulator style.

This is the strongest correctness property in the suite: a scheduling
bug, a simulator timing bug or a lowering bug almost always shows up as
a divergence here.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import build_machine, compile_for_machine, compile_source
from repro.ir import Interpreter
from repro.sim import run_compiled

#: one machine per scheduler/simulator style keeps runtime acceptable
DIFF_MACHINES = ("mblaze-3", "m-vliw-2", "m-tta-2")

_BINOPS = ["+", "-", "*", "&", "|", "^"]
_VARS = ["a", "b", "c", "d"]


@st.composite
def expressions(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return str(draw(st.integers(-100, 1000)))
        if choice == 1:
            return draw(st.sampled_from(_VARS))
        return f"(g[{draw(st.integers(0, 7))}])"
    op = draw(st.sampled_from(_BINOPS + ["<<", ">>", "<", ">", "==", "/", "%"]))
    left = draw(expressions(depth=depth + 1))
    right = draw(expressions(depth=depth + 1))
    if op in ("<<", ">>"):
        right = str(draw(st.integers(0, 31)))
    return f"({left} {op} {right})"


@st.composite
def programs(draw):
    """A random straight-line-plus-one-loop integer program."""
    init = [f"int {v} = {draw(st.integers(-50, 50))};" for v in _VARS]
    body = []
    for _ in range(draw(st.integers(1, 4))):
        target = draw(st.sampled_from(_VARS))
        body.append(f"{target} = {draw(expressions())};")
    loop_body = []
    for _ in range(draw(st.integers(1, 2))):
        target = draw(st.sampled_from(_VARS))
        loop_body.append(f"{target} = {target} + {draw(expressions())};")
    trip = draw(st.integers(1, 6))
    guards = " ^ ".join(_VARS)
    return f"""
int g[8] = {{3, -7, 11, 0, 255, -128, 19, 6}};
int main(void) {{
    {' '.join(init)}
    {' '.join(body)}
    int i;
    for (i = 0; i < {trip}; i++) {{
        {' '.join(loop_body)}
    }}
    return ({guards}) & 0xFF;
}}
"""


@pytest.mark.slow  # hypothesis campaign over the whole stack
@settings(max_examples=25, deadline=None)
@given(programs())
def test_random_programs_agree_across_stack(src):
    expected = Interpreter(compile_source(src)).run()
    for name in DIFF_MACHINES:
        compiled = compile_for_machine(compile_source(src), build_machine(name))
        result = run_compiled(compiled, check_connectivity=True, max_cycles=3_000_000)
        assert result.exit_code == expected, f"{name} diverged on:\n{src}"


@settings(max_examples=10, deadline=None)
@given(
    st.lists(st.integers(-(2**31), 2**31 - 1), min_size=1, max_size=8),
    st.sampled_from(["+", "*", "^", "|", "&"]),
)
def test_reduction_agrees(values, op):
    """Fold arbitrary 32-bit constants with one operator on every style."""
    expr = op.join(f"({v})" for v in values)
    src = f"int main(void) {{ return ({expr}) & 0x7FFF; }}"
    expected = Interpreter(compile_source(src)).run()
    for name in DIFF_MACHINES:
        compiled = compile_for_machine(compile_source(src), build_machine(name))
        result = run_compiled(compiled, max_cycles=200_000)
        assert result.exit_code == expected


@pytest.mark.parametrize("machine_name", ("m-tta-1", "p-tta-2", "bm-tta-3", "p-vliw-3", "mblaze-5"))
def test_mixed_workload_on_remaining_machines(machine_name):
    """The machines not in the hypothesis loop get one combined program."""
    src = """
    int fib(int n){ if (n < 2) return n; return fib(n-1) + fib(n-2); }
    unsigned lcg(unsigned s){ return s * 1664525u + 1013904223u; }
    int tmp[12];
    int main(void){
        int i; unsigned seed = 7;
        for (i = 0; i < 12; i++) { seed = lcg(seed); tmp[i] = (int)(seed >> 20); }
        int acc = 0;
        for (i = 0; i < 12; i++) acc += tmp[i] % 97;
        acc += fib(8);
        return acc & 0xFF;
    }
    """
    expected = Interpreter(compile_source(src)).run()
    compiled = compile_for_machine(compile_source(src), build_machine(machine_name))
    result = run_compiled(compiled, check_connectivity=True, max_cycles=3_000_000)
    assert result.exit_code == expected
