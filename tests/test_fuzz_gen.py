"""The random kernel generator: determinism, validity, and coverage.

The contract under test is the one the whole fuzzing subsystem rests
on: ``generate_kernel(seed, index)`` is a pure function of its
arguments (byte-identical across runs and interpreter invocations), and
every kernel it emits compiles and terminates on the reference
interpreter — a kernel the *oracle* cannot run is a generator bug by
definition (:class:`repro.fuzz.GeneratorError`), never a finding.
"""

from __future__ import annotations

import re

import pytest

from repro.frontend import compile_source
from repro.fuzz import GeneratorError, generate_kernel, generate_kernels, reference_run
from repro.fuzz.gen import kernel_rng, render_kernel

SEED = 0
SAMPLE = 25  # kernels per validity sweep; keep the suite fast


def test_generation_is_deterministic():
    for index in range(10):
        a = generate_kernel(SEED, index)
        b = generate_kernel(SEED, index)
        assert a.source == b.source
        assert a.name == b.name
        assert render_kernel(b.ast, header=_header_of(a.source)) == a.source


def _header_of(source: str) -> str:
    first = source.splitlines()[0]
    assert first.startswith("/*") and first.endswith("*/")
    return first[2:-2].strip()


def test_distinct_indices_give_distinct_kernels():
    sources = {generate_kernel(SEED, i).source for i in range(20)}
    assert len(sources) == 20


def test_distinct_seeds_give_distinct_kernels():
    assert generate_kernel(0, 3).source != generate_kernel(1, 3).source


def test_rng_is_hashseed_independent():
    # string-seeded Random: first draws are a pure function of the text
    assert kernel_rng(7, 7).random() == kernel_rng(7, 7).random()


def test_generate_kernels_matches_indexwise_generation():
    batch = generate_kernels(SEED, 5)
    assert [k.source for k in batch] == [
        generate_kernel(SEED, i).source for i in range(5)
    ]


@pytest.mark.parametrize("index", range(SAMPLE))
def test_kernels_compile_and_terminate_on_oracle(index):
    kernel = generate_kernel(SEED, index)
    # both the oracle's unoptimized pipeline and the optimizing one
    compile_source(kernel.source, module_name=kernel.name, optimize=False)
    compile_source(kernel.source, module_name=kernel.name, optimize=True)
    exit_code = reference_run(kernel.source)
    assert 0 <= exit_code < 2**32


def test_feature_coverage_over_a_batch():
    """A modest batch must exercise the interesting language surface."""
    blob = "\n".join(k.source for k in generate_kernels(SEED, 40))
    for feature in (
        "for (",
        "while (",
        "if (",
        "else",
        "return",
        "break",
        "continue",
        "?",  # ternary
        "<<",
        ">>",
        "%",
        "/",
        "(-2147483647 - 1)",  # INT_MIN edge constant
    ):
        assert feature in blob, f"missing feature {feature!r} in 40-kernel batch"
    # helper functions with calls from main
    assert re.search(r"\bint f\d+\(", blob)
    # array accesses stay masked to the declared power-of-two footprint
    assert re.search(r"\[[^\]]*& \d+\]", blob)


@pytest.mark.slow  # drives the oracle into its slow failure paths
def test_oracle_rejects_broken_kernels_loudly():
    with pytest.raises(GeneratorError):
        reference_run("int main( {")  # does not compile
    with pytest.raises(GeneratorError):
        reference_run(
            "int main() { int i = 0; while (1) { i = i + 1; } return i; }",
        )  # does not terminate within the step budget
