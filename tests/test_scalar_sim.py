"""Scalar (MicroBlaze-like) core unit tests.

Hand-built ``MOp`` programs pin down the stall model cycle-by-cycle
(branch/call/load/shift/mul extras, IMM-prefix fetch words) and mirror
the ``DataMemory`` boundary/masking tests through the core's own
load/store path, so the scalar baseline the paper's speedup claims
divide by is itself under test.
"""

from __future__ import annotations

import pytest

from repro import build_machine, compile_for_machine, compile_source
from repro.backend.abi import return_value_reg
from repro.backend.mop import Imm, MOp, PhysReg
from repro.backend.program import Program
from repro.sim import ScalarSimulator, SimError, run_compiled

R1 = PhysReg("RF0", 1)  # return value / first argument register
R2 = PhysReg("RF0", 2)
R3 = PhysReg("RF0", 3)


def _sim(ops, machine_name="mblaze-3", **kwargs):
    machine = build_machine(machine_name)
    assert return_value_reg(machine) == R1
    return ScalarSimulator(Program(machine, "scalar", list(ops)), **kwargs)


def _run(ops, machine_name="mblaze-3", **kwargs):
    sim = _sim(ops, machine_name, **kwargs)
    return sim.run(), sim


HALT = MOp("halt", None, [Imm(0)])


class TestScalarBranchTiming:
    """mblaze-3: taken_branch_extra=2, untaken_branch_extra=0, call_extra=2."""

    def test_halt_is_free_and_counts_as_instruction(self):
        result, _ = _run([MOp("copy", R1, [Imm(5)]), HALT])
        assert result.exit_code == 5
        assert result.instructions == 2
        assert result.cycles == 1  # halt charges no cycle

    def test_taken_conditional_branch_pays_bubbles(self):
        result, _ = _run(
            [
                MOp("copy", R2, [Imm(1)]),
                MOp("cjump", None, [R2, Imm(3)]),
                MOp("copy", R1, [Imm(99)]),  # skipped
                HALT,
            ]
        )
        assert result.exit_code == 0
        assert result.taken_branches == 1
        assert result.cycles == 1 + (1 + 2)  # copy + taken cjump

    def test_untaken_conditional_branch_is_cheap(self):
        result, _ = _run(
            [
                MOp("cjump", None, [R2, Imm(3)]),  # R2 == 0: not taken
                MOp("copy", R1, [Imm(7)]),
                HALT,
            ]
        )
        assert result.exit_code == 7
        assert result.taken_branches == 0
        assert result.cycles == 1 + 1  # untaken_branch_extra is 0

    def test_cjumpz_takes_on_zero(self):
        result, _ = _run(
            [
                MOp("cjumpz", None, [R2, Imm(3)]),  # R2 == 0: taken
                MOp("copy", R1, [Imm(99)]),  # skipped
                HALT,
                MOp("copy", R1, [Imm(3)]),
                MOp("jump", None, [Imm(2)]),
            ]
        )
        assert result.exit_code == 3
        assert result.taken_branches == 1  # only cjump/cjumpz count

    def test_unconditional_jump_pays_bubbles_but_is_not_a_taken_branch(self):
        result, _ = _run([MOp("jump", None, [Imm(2)]), HALT, HALT])
        assert result.taken_branches == 0
        assert result.cycles == 1 + 2

    def test_call_ret_roundtrip_and_cost(self):
        result, sim = _run(
            [
                MOp("call", None, [Imm(2)]),
                HALT,
                MOp("copy", R1, [Imm(7)]),
                MOp("ret", None, []),
            ]
        )
        assert result.exit_code == 7
        assert result.instructions == 4
        # call(1+2) + copy(1) + ret(1+2); halt free
        assert result.cycles == 7
        assert sim.ra == 1

    def test_getra_setra(self):
        result, _ = _run(
            [
                MOp("call", None, [Imm(2)]),
                HALT,
                MOp("getra", R2, []),
                MOp("copy", R1, [R2]),  # ra == 1
                MOp("setra", None, [Imm(1)]),
                MOp("ret", None, []),
            ]
        )
        assert result.exit_code == 1


class TestScalarStallModel:
    def test_load_shift_mul_extras_differ_between_pipelines(self):
        """mblaze-3 (no forwarding) charges +1/+1/+2 for load/shift/mul;
        mblaze-5 (forwarding) charges none of them."""
        ops = [
            MOp("stw", None, [Imm(0), Imm(6)]),
            MOp("ldw", R2, [Imm(0)]),
            MOp("shl", R2, [R2, Imm(1)]),
            MOp("mul", R1, [R2, Imm(2)]),  # (6 << 1) * 2 == 24
            HALT,
        ]
        r3, _ = _run(ops, "mblaze-3")
        r5, _ = _run(ops, "mblaze-5")
        assert r3.exit_code == r5.exit_code == 24
        assert r3.instructions == r5.instructions == 5
        assert r3.cycles - r5.cycles == 1 + 1 + 2

    def test_wide_immediates_cost_a_prefix_fetch(self):
        narrow, _ = _run([MOp("copy", R1, [Imm(1)]), HALT])
        wide, _ = _run([MOp("copy", R1, [Imm(0x12345678)]), HALT])
        assert wide.cycles - narrow.cycles == 1

    def test_falling_off_the_end_raises(self):
        with pytest.raises(SimError, match="PC out of range"):
            _run([MOp("copy", R1, [Imm(1)])])

    def test_cycle_budget_enforced(self):
        with pytest.raises(SimError, match="cycle budget"):
            _run([MOp("jump", None, [Imm(0)])], max_cycles=100)

    def test_unresolved_operand_raises(self):
        from repro.backend.mop import LabelRef

        with pytest.raises(SimError, match="unresolved operand"):
            _run([MOp("copy", R1, [LabelRef("nowhere")]), HALT])


class TestScalarMemoryPath:
    """DataMemory boundary/masking semantics through the core's own
    load/store ops (mirrors TestDataMemory in test_sims.py)."""

    def test_word_roundtrip_and_counters(self):
        result, sim = _run(
            [
                MOp("stw", None, [Imm(8), Imm(0xDEADBEEF)]),
                MOp("ldw", R1, [Imm(8)]),
                HALT,
            ],
            memory_size=64,
        )
        assert result.exit_code == 0xDEADBEEF
        assert result.loads == 1 and result.stores == 1

    def test_subword_sign_extension(self):
        _, sim = _run(
            [
                MOp("stq", None, [Imm(0), Imm(0x80)]),
                MOp("ldq", R1, [Imm(0)]),
                MOp("ldqu", R2, [Imm(0)]),
                MOp("sth", None, [Imm(4), Imm(0x8000)]),
                MOp("ldh", R3, [Imm(4)]),
                HALT,
            ],
            memory_size=64,
        )
        assert sim.regs[R1] == 0xFFFFFF80
        assert sim.regs[R2] == 0x80
        assert sim.regs[R3] == 0xFFFF8000

    def test_truncating_store_and_little_endian(self):
        _, sim = _run(
            [
                MOp("stw", None, [Imm(0), Imm(0x11223344)]),
                MOp("ldqu", R2, [Imm(0)]),
                MOp("ldqu", R3, [Imm(3)]),
                MOp("stq", None, [Imm(8), Imm(0x1FF)]),
                MOp("ldqu", R1, [Imm(8)]),
                HALT,
            ],
            memory_size=64,
        )
        assert sim.regs[R2] == 0x44 and sim.regs[R3] == 0x11
        assert sim.regs[R1] == 0xFF

    def test_out_of_bounds_access_raises(self):
        with pytest.raises(SimError):
            _run([MOp("ldw", R1, [Imm(61)]), HALT], memory_size=64)
        with pytest.raises(SimError):
            _run([MOp("stw", None, [Imm(100), Imm(1)]), HALT], memory_size=64)

    def test_negative_address_wraps_then_bounds_checked(self):
        # -4 & MASK32 == 0xFFFFFFFC: out of range, not a Python tail read.
        with pytest.raises(SimError):
            _run([MOp("ldw", R1, [Imm(-4)]), HALT], memory_size=64)

    def test_preload_visible_to_loads(self):
        sim = _sim([MOp("ldw", R1, [Imm(4)]), HALT], memory_size=64)
        sim.preload([(4, b"\x2a\x00\x00\x00")])
        assert sim.run().exit_code == 42


class TestScalarCompiledPrograms:
    def test_branch_heavy_source_program(self):
        src = """
        int collatz(int n){ int steps=0;
            while (n != 1){ if (n % 2 == 0) n = n / 2; else n = 3*n + 1; steps++; }
            return steps; }
        int main(void){ return collatz(27) - 111; }
        """
        for name in ("mblaze-3", "mblaze-5"):
            compiled = compile_for_machine(compile_source(src), build_machine(name))
            result = run_compiled(compiled)
            assert result.exit_code == 0, name
            assert result.taken_branches > 100, name
            assert result.cycles > result.instructions, name
