"""Edge cases of the MiniC software-division runtime and 32-bit corners.

C leaves several of these undefined; the MiniC runtime gives them the
defined behaviour documented here (matching what the hardware-free
shift-subtract divider naturally produces), and every simulator must
agree with the interpreter on them.
"""

from __future__ import annotations

import pytest

from repro import build_machine, compile_for_machine, compile_source
from repro.ir import Interpreter
from repro.sim import run_compiled

INT_MIN = -(2**31)


def run_interp(src: str) -> int:
    return Interpreter(compile_source(src)).run()


class TestDivisionEdges:
    def test_int_min_div_minus_one(self):
        # Two sign flips cancel; the quotient wraps back to INT_MIN.
        src = "int main(void){ int a = -2147483647 - 1; return (a / -1) == a; }"
        assert run_interp(src) == 1

    def test_int_min_div_one(self):
        src = "int main(void){ int a = -2147483647 - 1; return a / 1 == a; }"
        assert run_interp(src) == 1

    def test_signed_div_by_zero_defined(self):
        # __divu(x, 0) = 0xFFFFFFFF; the sign wrapper negates as usual.
        src = "int main(void){ int q = 5 / 0; return q == -1; }"
        assert run_interp(src) == 1

    def test_modulo_by_zero_defined(self):
        src = "int main(void){ int r = 5 % 0; return r; }"
        # r = 5 - (-1)*0 = 5
        assert run_interp(src) == 5

    def test_unsigned_full_range(self):
        src = """
        int main(void){
            unsigned big = 0xFFFFFFFFu;
            return (big / 3u == 0x55555555u) && (big % 3u == 0u);
        }
        """
        assert run_interp(src) == 1

    @pytest.mark.parametrize("machine_name", ["mblaze-3", "m-vliw-2", "m-tta-2"])
    def test_edges_agree_on_hardware(self, machine_name):
        src = """
        int main(void){
            int a = -2147483647 - 1;
            int checks = 0;
            if (a / -1 == a) checks++;
            if (5 / 0 == -1) checks++;
            if (5 % 0 == 5) checks++;
            if (-7 / 2 == -3) checks++;
            if (-7 % 2 == -1) checks++;
            return checks;
        }
        """
        expected = run_interp(src)
        assert expected == 5
        compiled = compile_for_machine(compile_source(src), build_machine(machine_name))
        assert run_compiled(compiled, max_cycles=3_000_000).exit_code == 5


class TestOverflowCorners:
    def test_int_min_negation(self):
        src = "int main(void){ int a = -2147483647 - 1; return -a == a; }"
        assert run_interp(src) == 1

    def test_mul_wraps(self):
        src = "int main(void){ unsigned a = 0x10001u; return (int)(a * a); }"
        assert run_interp(src) == (0x10001 * 0x10001) % 2**32

    def test_compare_across_sign_boundary(self):
        src = """
        int main(void){
            int a = 2147483647;
            int b = a + 1;           /* wraps to INT_MIN */
            return (b < a) && (b < 0);
        }
        """
        assert run_interp(src) == 1

    def test_shift_by_32_masks(self):
        src = "int main(void){ unsigned v = 7; return (int)(v << 32); }"
        # the barrel shifter masks the amount to 5 bits: << 32 == << 0
        assert run_interp(src) == 7
