"""Property tests for the exploration mutation engine and the machine
serialization layer it rides on."""

from __future__ import annotations

import os
import subprocess
import sys
from collections import Counter

import pytest

from repro.explore import OPERATORS, campaign_rng, mutate_machine, repair
from repro.machine import (
    ALL_PRESETS,
    build_machine,
    machine_digest,
    machine_from_dict,
    machine_from_json,
    machine_to_dict,
    machine_to_json,
    structural_name,
    validate_machine,
)
from repro.machine.machine import MachineStyle

TTA_PRESETS = tuple(
    n for n in ALL_PRESETS if build_machine(n).style is MachineStyle.TTA
)


def _mutant_chain(parent_name: str, seed: int, length: int):
    """A chain of mutants, each mutated from the previous one."""
    rng = campaign_rng(seed)
    machine = build_machine(parent_name)
    chain = []
    for _ in range(length):
        child = mutate_machine(machine, rng)
        assert child is not None
        chain.append(child)
        machine = child
    return chain


class TestSerialization:
    @pytest.mark.parametrize("name", ALL_PRESETS)
    def test_every_preset_round_trips(self, name):
        machine = build_machine(name)
        again = machine_from_json(machine_to_json(machine))
        assert again == machine
        assert machine_to_json(again) == machine_to_json(machine)

    def test_digest_ignores_name_and_description(self):
        from dataclasses import replace

        machine = build_machine("m-tta-2")
        renamed = replace(machine, name="something-else", description="other")
        assert machine_digest(renamed) == machine_digest(machine)
        assert structural_name(renamed) == structural_name(machine)

    def test_digest_sees_structure(self):
        from dataclasses import replace

        machine = build_machine("m-tta-2")
        widened = replace(machine, simm_bits=machine.simm_bits + 1)
        assert machine_digest(widened) != machine_digest(machine)

    def test_malformed_descriptions_rejected(self):
        with pytest.raises(ValueError):
            machine_from_dict({"style": "tta"})
        desc = machine_to_dict(build_machine("m-tta-1"))
        no_cu = dict(desc, function_units=[
            u for u in desc["function_units"] if u["kind"] != "cu"
        ])
        with pytest.raises(ValueError, match="control unit"):
            machine_from_dict(no_cu)
        with pytest.raises(ValueError):
            machine_from_json("[1, 2]")


class TestMutationProperties:
    @pytest.mark.parametrize("name", TTA_PRESETS)
    def test_mutants_pass_validator(self, name):
        for seed in range(3):
            for child in _mutant_chain(name, seed, 8):
                validate_machine(child)

    @pytest.mark.parametrize("name", ("m-tta-2", "p-tta-3"))
    def test_mutants_round_trip_serialization(self, name):
        for child in _mutant_chain(name, seed=11, length=8):
            again = machine_from_json(machine_to_json(child))
            assert again == child
            assert machine_digest(again) == machine_digest(child)

    def test_mutant_differs_from_parent(self):
        rng = campaign_rng(2)
        parent = build_machine("m-tta-2")
        for _ in range(20):
            child = mutate_machine(parent, rng)
            assert machine_digest(child) != machine_digest(parent)

    def test_mutant_name_is_structural(self):
        child = _mutant_chain("m-tta-2", seed=3, length=1)[0]
        assert child.name == structural_name(child)
        assert child.description.startswith("m-tta-2 + ")

    def test_operator_coverage(self):
        """With enough draws the palette exercises every operator class
        (deterministic: fixed seed)."""
        ops = Counter()
        for name in TTA_PRESETS:
            for child in _mutant_chain(name, seed=13, length=20):
                ops[child.description.split(" + ")[1]] += 1
        assert set(ops) >= {
            "add-bus",
            "remove-bus",
            "prune-link",
            "densify-link",
            "rf-add-port",
            "rf-resize",
            "fu-add",
            "imm-width",
        }
        assert set(ops) <= set(OPERATORS)

    def test_non_tta_parents_rejected(self):
        rng = campaign_rng(0)
        assert mutate_machine(build_machine("mblaze-3"), rng) is None
        assert mutate_machine(build_machine("m-vliw-2"), rng) is None

    def test_repair_reconnects_stripped_machine(self):
        from dataclasses import replace

        from repro.machine.components import Bus

        machine = build_machine("m-tta-2")
        crippled = replace(
            machine, buses=(Bus(0, frozenset({"IMM"}), frozenset()),)
        )
        with pytest.raises(Exception):
            validate_machine(crippled)
        validate_machine(repair(crippled))

    def test_abi_register_floor_preserved(self):
        """RF0 never shrinks below the ABI's reserved registers and the
        machine keeps at least 16 registers total."""
        for name in TTA_PRESETS:
            for child in _mutant_chain(name, seed=17, length=12):
                assert child.register_files[0].size >= 8
                assert child.total_registers >= 16


class TestMutationDeterminism:
    def test_same_seed_same_chain(self):
        a = [machine_digest(m) for m in _mutant_chain("m-tta-2", 21, 10)]
        b = [machine_digest(m) for m in _mutant_chain("m-tta-2", 21, 10)]
        assert a == b

    def test_different_seeds_diverge(self):
        a = [machine_digest(m) for m in _mutant_chain("m-tta-2", 1, 10)]
        b = [machine_digest(m) for m in _mutant_chain("m-tta-2", 2, 10)]
        assert a != b

    def test_chain_independent_of_hashseed(self):
        """The mutant chain is byte-identical across interpreter hash
        randomisation: frozensets never meet the RNG unsorted."""
        here = ",".join(machine_digest(m) for m in _mutant_chain("m-tta-2", 7, 6))
        code = (
            "from repro.explore import campaign_rng, mutate_machine\n"
            "from repro.machine import build_machine, machine_digest\n"
            "rng = campaign_rng(7)\n"
            "m = build_machine('m-tta-2')\n"
            "out = []\n"
            "for _ in range(6):\n"
            "    m = mutate_machine(m, rng)\n"
            "    out.append(machine_digest(m))\n"
            "print(','.join(out))\n"
        )
        for seed in ("0", "1", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(sys.path)
            out = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            assert out.stdout.strip() == here
