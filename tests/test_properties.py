"""Cross-cutting property-based tests (hypothesis)."""

from __future__ import annotations

from types import SimpleNamespace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import build_machine, compile_source
from repro.compress import compress_program, per_slot_compression
from repro.frontend import compile_source as compile_minic
from repro.ir import Interpreter
from repro.isa.semantics import MASK32, evaluate, to_signed
from repro.machine import RegisterFile
from repro.machine.encoding import MoveCodec, MoveEncodeError, immediate_slot_cost
from repro.fpga.resources import rf_luts

U32 = st.integers(0, MASK32)


class TestMiniCExpressionSemantics:
    """Constant MiniC expressions must evaluate exactly like Python's
    two's-complement model."""

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(-(2**31), 2**31 - 1),
        st.integers(-(2**31), 2**31 - 1),
        st.sampled_from(["+", "-", "*", "&", "|", "^"]),
    )
    def test_binary_ops_match_python(self, a, b, op):
        src = f"int main(void) {{ return ({a}) {op} ({b}); }}"
        got = Interpreter(compile_minic(src)).run()
        python_ops = {
            "+": a + b,
            "-": a - b,
            "*": a * b,
            "&": a & b,
            "|": a | b,
            "^": a ^ b,
        }
        assert got == python_ops[op] % 2**32

    @settings(max_examples=40, deadline=None)
    @given(st.integers(-(2**31), 2**31 - 1), st.integers(1, 2**31 - 1))
    def test_division_truncates_toward_zero(self, a, b):
        src = f"int main(void) {{ return ({a}) / ({b}); }}"
        got = Interpreter(compile_minic(src)).run()
        expected = int(a / b)  # trunc toward zero, like C
        assert to_signed(got) == expected

    @settings(max_examples=40, deadline=None)
    @given(st.integers(-(2**31), 2**31 - 1), st.integers(1, 2**31 - 1))
    def test_modulo_identity(self, a, b):
        src = f"""
        int main(void) {{
            int q = ({a}) / ({b});
            int r = ({a}) % ({b});
            return q * ({b}) + r == ({a});
        }}
        """
        assert Interpreter(compile_minic(src)).run() == 1

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(0, 31))
    def test_unsigned_shift_roundtrip(self, value, shift):
        src = f"""
        int main(void) {{
            unsigned v = {value}u;
            unsigned s = (v << {shift}) >> {shift};
            return s == (v & (0xFFFFFFFFu >> {shift}));
        }}
        """
        assert Interpreter(compile_minic(src)).run() == 1


def _bigint_reference(op: str, a: int, b: int) -> int:
    """The Table I ALU semantics, re-derived from Python's unbounded
    integers (no masking tricks shared with the implementation)."""
    sa = a - 2**32 if a >= 2**31 else a
    sb = b - 2**32 if b >= 2**31 else b
    if op == "add":
        return (a + b) % 2**32
    if op == "sub":
        return (a - b) % 2**32
    if op == "mul":
        return (a * b) % 2**32
    if op == "and":
        return a & b
    if op == "ior":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "eq":
        return int(a == b)
    if op == "gt":
        return int(sa > sb)
    if op == "gtu":
        return int(a > b)
    if op == "shl":
        return (a * 2 ** (b % 32)) % 2**32
    if op == "shru":
        return a // 2 ** (b % 32)
    if op == "shr":
        return (sa >> (b % 32)) % 2**32
    if op == "sxhw":
        low = a % 2**16
        return low - 2**16 + 2**32 if low >= 2**15 else low
    if op == "sxqw":
        low = a % 2**8
        return low - 2**8 + 2**32 if low >= 2**7 else low
    raise AssertionError(op)


ALU_OPS = (
    "add", "sub", "mul", "and", "ior", "xor", "eq", "gt", "gtu",
    "shl", "shru", "shr", "sxhw", "sxqw",
)


class TestAluBitExactness:
    """``isa.semantics.evaluate`` (the engine the checked simulators and
    the IR interpreter share) against an independent bigint model, and
    the fast engines' pre-bound handlers against ``evaluate``."""

    @settings(max_examples=300, deadline=None)
    @given(U32, U32, st.sampled_from(ALU_OPS))
    def test_evaluate_matches_bigint_model(self, a, b, op):
        assert evaluate(op, [a, b]) == _bigint_reference(op, a, b)

    @settings(max_examples=200, deadline=None)
    @given(U32, U32, st.sampled_from(ALU_OPS))
    def test_predecoded_handlers_match_evaluate(self, a, b, op):
        from repro.sim.predecode import ALU_FUNCS

        func = ALU_FUNCS[op]
        got = func(a, b) if op not in ("sxhw", "sxqw") else func(a)
        assert got == evaluate(op, [a, b])

    @settings(max_examples=100, deadline=None)
    @given(U32, U32, st.sampled_from(["add", "sub", "mul", "shl", "shr", "shru"]))
    def test_results_stay_in_domain(self, a, b, op):
        assert 0 <= evaluate(op, [a, b]) <= MASK32


class TestMoveCodecRoundTrip:
    """Bit-level TTA transport encoding: ``decode(encode(move))`` is the
    identity for every connected move, and decode rejects garbage
    instead of mis-attributing it."""

    MACHINES = ("m-tta-1", "m-tta-2", "bm-tta-2", "p-tta-3")

    @settings(max_examples=200, deadline=None)
    @given(st.data())
    def test_encode_decode_identity_for_random_moves(self, data):
        machine = build_machine(data.draw(st.sampled_from(self.MACHINES)))
        codec = MoveCodec(machine)
        bus = data.draw(st.sampled_from(machine.buses))
        dst = data.draw(st.sampled_from(codec._dst_table[bus.index]))
        srcs = list(codec._src_table[bus.index])
        use_imm = codec._has_imm[bus.index] and data.draw(st.booleans())
        if use_imm:
            half = 1 << (machine.simm_bits - 1)
            src = ("imm", data.draw(st.integers(-half, half - 1)) & MASK32)
        else:
            src = data.draw(st.sampled_from(srcs))
        move = SimpleNamespace(bus=bus.index, src=src, dst=dst)
        bits = codec.encode_move(move)
        assert 0 <= bits < (1 << codec.slot_width(bus.index))
        assert codec.decode_move(bus.index, bits) == (src, dst)

    @settings(max_examples=200, deadline=None)
    @given(st.data())
    def test_decode_is_injective_or_rejects(self, data):
        machine = build_machine(data.draw(st.sampled_from(self.MACHINES)))
        codec = MoveCodec(machine)
        bus = data.draw(st.sampled_from(machine.buses))
        width = codec.slot_width(bus.index)
        bits = data.draw(st.integers(0, (1 << width) - 1))
        try:
            src, dst = codec.decode_move(bus.index, bits)
        except MoveEncodeError:
            return  # garbage is rejected, never mis-decoded
        # anything decodable re-encodes to the exact same bit pattern
        move = SimpleNamespace(bus=bus.index, src=src, dst=dst)
        assert codec.encode_move(move) == bits

    def test_every_compiled_move_roundtrips(self):
        from repro.backend import compile_for_machine

        src = """
        int main(void) {
            int s = 0;
            for (int i = 0; i < 10; i++) { s += i * 7; }
            return s & 0xFF;
        }
        """
        module = compile_source(src)
        for name in self.MACHINES:
            machine = build_machine(name)
            codec = MoveCodec(machine)
            program = compile_for_machine(module, machine).program
            for instr in program.instrs:
                for move in instr.moves:
                    if move is None:
                        continue
                    try:
                        bits = codec.encode_move(move)
                    except MoveEncodeError:
                        continue  # long immediate: spans extra slots
                    assert codec.decode_move(move.bus, bits) == (move.src, move.dst)

    def test_codec_rejects_non_tta_machines(self):
        import pytest

        for name in ("m-vliw-2", "mblaze-3"):
            with pytest.raises(ValueError):
                MoveCodec(build_machine(name))


class TestEncodingProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, MASK32))
    def test_imm_cost_monotone_in_simm(self, value):
        # A machine with a wider short-immediate field never pays more.
        narrow = build_machine("m-tta-2")  # simm 7
        wide = build_machine("mblaze-3")  # simm 16
        assert immediate_slot_cost(wide, value) <= immediate_slot_cost(narrow, value)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 6), st.integers(1, 3), st.sampled_from([32, 64, 96, 128]))
    def test_rf_model_positive_and_monotone_in_reads(self, reads, writes, depth):
        luts, ram = rf_luts(RegisterFile("r", depth, reads, writes))
        more, _ = rf_luts(RegisterFile("r", depth, reads + 1, writes))
        assert luts > 0 and ram > 0 and ram <= luts
        assert more > luts


class TestCompressionProperties:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(2, 9), st.integers(0, 3))
    def test_compression_accounting(self, trip, flavor):
        machines = ("mblaze-3", "m-vliw-2", "m-tta-1", "m-tta-2")
        src = f"""
        int main(void) {{
            int i; int s = 0;
            for (i = 0; i < {trip}; i++) s += i * {trip + 1};
            return s & 0xFF;
        }}
        """
        from repro import compile_for_machine

        compiled = compile_for_machine(compile_source(src), build_machine(machines[flavor]))
        full = compress_program(compiled.program)
        slot = per_slot_compression(compiled.program)
        for report in (full, slot):
            assert report.total_bits == report.index_bits + report.dictionary_bits
            assert report.entries >= 1
            assert report.original_bits >= report.entries  # sanity
        # the dictionary can never have more entries than instructions
        assert full.entries <= len(compiled.program.instrs)
