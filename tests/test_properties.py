"""Cross-cutting property-based tests (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import build_machine, compile_source
from repro.compress import compress_program, per_slot_compression
from repro.frontend import compile_source as compile_minic
from repro.ir import Interpreter
from repro.isa.semantics import MASK32, to_signed
from repro.machine import RegisterFile
from repro.machine.encoding import immediate_slot_cost
from repro.fpga.resources import rf_luts


class TestMiniCExpressionSemantics:
    """Constant MiniC expressions must evaluate exactly like Python's
    two's-complement model."""

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(-(2**31), 2**31 - 1),
        st.integers(-(2**31), 2**31 - 1),
        st.sampled_from(["+", "-", "*", "&", "|", "^"]),
    )
    def test_binary_ops_match_python(self, a, b, op):
        src = f"int main(void) {{ return ({a}) {op} ({b}); }}"
        got = Interpreter(compile_minic(src)).run()
        python_ops = {
            "+": a + b,
            "-": a - b,
            "*": a * b,
            "&": a & b,
            "|": a | b,
            "^": a ^ b,
        }
        assert got == python_ops[op] % 2**32

    @settings(max_examples=40, deadline=None)
    @given(st.integers(-(2**31), 2**31 - 1), st.integers(1, 2**31 - 1))
    def test_division_truncates_toward_zero(self, a, b):
        src = f"int main(void) {{ return ({a}) / ({b}); }}"
        got = Interpreter(compile_minic(src)).run()
        expected = int(a / b)  # trunc toward zero, like C
        assert to_signed(got) == expected

    @settings(max_examples=40, deadline=None)
    @given(st.integers(-(2**31), 2**31 - 1), st.integers(1, 2**31 - 1))
    def test_modulo_identity(self, a, b):
        src = f"""
        int main(void) {{
            int q = ({a}) / ({b});
            int r = ({a}) % ({b});
            return q * ({b}) + r == ({a});
        }}
        """
        assert Interpreter(compile_minic(src)).run() == 1

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(0, 31))
    def test_unsigned_shift_roundtrip(self, value, shift):
        src = f"""
        int main(void) {{
            unsigned v = {value}u;
            unsigned s = (v << {shift}) >> {shift};
            return s == (v & (0xFFFFFFFFu >> {shift}));
        }}
        """
        assert Interpreter(compile_minic(src)).run() == 1


class TestEncodingProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, MASK32))
    def test_imm_cost_monotone_in_simm(self, value):
        # A machine with a wider short-immediate field never pays more.
        narrow = build_machine("m-tta-2")  # simm 7
        wide = build_machine("mblaze-3")  # simm 16
        assert immediate_slot_cost(wide, value) <= immediate_slot_cost(narrow, value)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 6), st.integers(1, 3), st.sampled_from([32, 64, 96, 128]))
    def test_rf_model_positive_and_monotone_in_reads(self, reads, writes, depth):
        luts, ram = rf_luts(RegisterFile("r", depth, reads, writes))
        more, _ = rf_luts(RegisterFile("r", depth, reads + 1, writes))
        assert luts > 0 and ram > 0 and ram <= luts
        assert more > luts


class TestCompressionProperties:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(2, 9), st.integers(0, 3))
    def test_compression_accounting(self, trip, flavor):
        machines = ("mblaze-3", "m-vliw-2", "m-tta-1", "m-tta-2")
        src = f"""
        int main(void) {{
            int i; int s = 0;
            for (i = 0; i < {trip}; i++) s += i * {trip + 1};
            return s & 0xFF;
        }}
        """
        from repro import compile_for_machine

        compiled = compile_for_machine(compile_source(src), build_machine(machines[flavor]))
        full = compress_program(compiled.program)
        slot = per_slot_compression(compiled.program)
        for report in (full, slot):
            assert report.total_bits == report.index_bits + report.dictionary_bits
            assert report.entries >= 1
            assert report.original_bits >= report.entries  # sanity
        # the dictionary can never have more entries than instructions
        assert full.entries <= len(compiled.program.instrs)
